(* provdbd — the provenance service daemon.

   Loads a provdb workspace, serves the authenticated wire protocol on
   a Unix-domain socket (default WORKSPACE/provdbd.sock) and
   optionally a loopback TCP port, and persists the workspace —
   snapshot, provenance store, checkpoint generation, WAL truncation —
   on clean shutdown (SIGINT / SIGTERM).

     provdbd ws
     provdbd ws --socket /tmp/prov.sock --port 7441

   Shutdown is a graceful drain: the first SIGINT/SIGTERM stops the
   accept loops and flips the server into draining mode (new writes
   are refused with Shutting_down), waits for in-flight batches to
   commit, then checkpoints the workspace and exits 0.  A second
   signal during the drain aborts immediately with exit code 4
   ([Workspace.exit_forced]); the WAL tail is replayed by `provdb
   recover` on the next start.

   Clients authenticate as PKI-registered participants (`provdb
   remote --as NAME ...`); the daemon signs the operations they submit
   with the workspace copy of that participant's key. *)

open Cmdliner
open Workspace
module Server = Tep_server.Server

let run dir socket port shards_flag event_loop io_threads idle_timeout =
  match load dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok ws when
      (match shards_flag with
      | Some m -> m <> Array.length ws.shards
      | None -> false) ->
      Printf.eprintf
        "error: workspace %s has %d shard(s), not %d (the shard count is \
         fixed at `provdb init --shards`)\n"
        dir (Array.length ws.shards)
        (Option.get shards_flag);
      exit_usage
  | Ok ws ->
      let nshards = Array.length ws.shards in
      (* shard 0 is the positional engine; the rest ride in ~shards,
         each with its own checkpoint directory + WAL *)
      let extra =
        List.tl (Array.to_list ws.shards)
        |> List.map (fun s -> (s.s_engine, Some (ckpt_dir s.s_dir, s.s_wal)))
      in
      let io_mode =
        if event_loop then Server.Event { workers = io_threads }
        else Server.Threaded
      in
      let server =
        Server.create ~pool:(pool ())
          ~checkpoint:(ckpt_dir ws.shards.(0).s_dir, ws.wal)
          ~shards:extra ?coord:ws.coord ~io_mode ~idle_timeout
          ~participants:ws.participants ws.engine
      in
      let stop = Atomic.make false in
      let signals = Atomic.make 0 in
      List.iter
        (fun s ->
          Sys.set_signal s
            (Sys.Signal_handle
               (fun _ ->
                 if Atomic.fetch_and_add signals 1 = 0 then begin
                   (* first signal: stop accepting, refuse new writes,
                      let in-flight batches commit *)
                   Server.begin_drain server;
                   Atomic.set stop true;
                   (* the serve loops block in their pollsets; nudge
                      them so the drain starts now, not at the next
                      housekeeping tick *)
                   Server.wake server
                 end
                 else begin
                   (* second signal: the operator wants out now; skip
                      the drain and checkpoint, leave the WAL tail for
                      `provdb recover` *)
                   prerr_endline "provdbd: forced shutdown (drain aborted)";
                   Stdlib.exit exit_forced
                 end)))
        [ Sys.sigint; Sys.sigterm ];
      let sock = Option.value socket ~default:(socket_path dir) in
      let threads =
        Thread.create (fun () -> Server.serve_unix server ~path:sock ~stop) ()
        ::
        (match port with
        | None -> []
        | Some port ->
            [ Thread.create (fun () -> Server.serve_tcp server ~port ~stop) () ])
      in
      Printf.printf "provdbd: listening on %s%s%s\n%!" sock
        (match port with
        | Some p -> Printf.sprintf " and 127.0.0.1:%d" p
        | None -> "")
        (if nshards > 1 then Printf.sprintf " (%d shards)" nshards else "");
      List.iter Thread.join threads;
      (* the accept loops are gone; finish whatever the batcher still
         holds before checkpointing, so the saved generation contains
         every committed write *)
      Server.begin_drain server;
      if not (Server.quiesce ~timeout:10. server) then
        prerr_endline
          "provdbd: warning: drain timed out with batches still queued";
      save ws;
      (try Unix.unlink sock with Unix.Unix_error _ | Sys_error _ -> ());
      print_endline "provdbd: drained, checkpointed, workspace saved";
      exit_ok

let () =
  let dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKSPACE")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket to listen on (default: \
                   WORKSPACE/provdbd.sock)")
  in
  let port =
    Arg.(value & opt (some int) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Additionally listen on 127.0.0.1:PORT")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Assert the workspace shard count (informational: the \
                on-disk layout from `provdb init --shards` is \
                authoritative; a mismatch is an error)")
  in
  let event_loop =
    Arg.(value & opt bool true
         & info [ "event-loop" ] ~docv:"BOOL"
             ~doc:
               "Serve connections from the readiness-driven event loop \
                (one reactor + a worker pool per listening socket; the \
                default).  $(b,--event-loop=false) falls back to the \
                legacy thread-per-connection path.")
  in
  let io_threads =
    Arg.(value & opt int 4
         & info [ "io-threads" ] ~docv:"N"
             ~doc:
               "Protocol worker threads per event loop (engine dispatch, \
                signing and proofs run here, never on the reactor). \
                Ignored with $(b,--event-loop=false).")
  in
  let idle_timeout =
    Arg.(value & opt float 300.
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:
               "Reap connections idle this long (no bytes in either \
                direction, nothing in flight) so dead peers cannot pin \
                connection-cap slots; reaps are counted in Ping stats.")
  in
  let exits =
    Cmd.Exit.info exit_fail
      ~doc:"on operational errors (unloadable workspace, I/O failures)."
    :: Cmd.Exit.info exit_forced
         ~doc:"on forced shutdown: a second signal arrived while draining, so \
               the checkpoint was skipped; run `provdb recover` to replay the \
               WAL tail."
    :: Cmd.Exit.defaults
  in
  let info =
    Cmd.info "provdbd" ~version:"1.0.0" ~exits
      ~doc:"Networked daemon for tamper-evident database provenance"
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ dir $ socket $ port $ shards $ event_loop $ io_threads
            $ idle_timeout)))
