(* provdb — a command-line front end for the tamper-evident provenance
   engine.

   A workspace directory holds a backend database snapshot, the forest
   / oid mapping, the provenance store, the CA, and participant
   credentials.  Operations are performed as a named participant and
   persist everything back.

     provdb init ws --table 'stock:sku,qty@int'
     provdb participant ws alice
     provdb insert ws --as alice --table stock --values 'WIDGET-1,100'
     provdb update ws --as alice --table stock --row 0 --column qty --value 90
     provdb verify ws
     provdb show ws --table stock --row 0 --col 1
     provdb tamper ws --attack data
     provdb stats ws

   Lineage queries answer *why* a result exists as semiring provenance
   polynomials over base-object variables, and annotated queries can
   save a signed annotation that `provdb verify` checks (and `provdb
   tamper --attack annotation` corrupts):

     provdb lineage why ws --table stock --row 0
     provdb lineage select ws --table stock --where 'qty > 50' \
         --agg 'sum(qty)' --save audit1 --as alice

   Against a running provdbd daemon (see bin/provdbd.ml), the same
   operations run over the wire:

     provdbd ws &
     provdb remote insert ws --as alice --table stock --values 'WIDGET-2,7'
     provdb remote verify ws --as alice

   Exit codes: 0 success; 1 operational error; 2 malformed argument;
   3 verification or audit detected tampering. *)

open Tep_store
open Tep_tree
open Tep_core
open Cmdliner
open Workspace
module Polynomial = Tep_prov.Polynomial
module Annotate = Tep_prov.Annotate
module Annot = Tep_prov.Annot
module Lineage = Tep_prov.Lineage

(* ------------------------------------------------------------------ *)
(* Value / schema parsing                                              *)
(* ------------------------------------------------------------------ *)

let parse_value ty s =
  match ty with
  | Value.TInt -> (
      match int_of_string_opt s with
      | Some i -> Ok (Value.Int i)
      | None ->
          if s = "NULL" then Ok Value.Null else fail_usage "not an int: %s" s)
  | Value.TFloat -> (
      match float_of_string_opt s with
      | Some f -> Ok (Value.Float f)
      | None ->
          if s = "NULL" then Ok Value.Null else fail_usage "not a float: %s" s)
  | Value.TBool -> (
      match bool_of_string_opt s with
      | Some b -> Ok (Value.Bool b)
      | None ->
          if s = "NULL" then Ok Value.Null else fail_usage "not a bool: %s" s)
  | Value.TText -> Ok (if s = "NULL" then Value.Null else Value.Text s)
  | Value.TBlob -> Ok (Value.Blob s)

(* "name:col1,col2@int,col3@text" -> table name + schema *)
let parse_table_spec spec =
  match String.index_opt spec ':' with
  | None -> fail_usage "table spec must be name:col[,col...]: %s" spec
  | Some i ->
      let name = String.sub spec 0 i in
      let cols =
        String.split_on_char ','
          (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      if cols = [] || List.exists (fun c -> c = "") cols then
        fail_usage "empty column in %s" spec
      else begin
        let parse_col c =
          match String.split_on_char '@' c with
          | [ n ] -> { Schema.name = n; ty = Value.TText; nullable = true }
          | [ n; "int" ] -> { Schema.name = n; ty = Value.TInt; nullable = true }
          | [ n; "float" ] ->
              { Schema.name = n; ty = Value.TFloat; nullable = true }
          | [ n; "bool" ] -> { Schema.name = n; ty = Value.TBool; nullable = true }
          | [ n; "text" ] -> { Schema.name = n; ty = Value.TText; nullable = true }
          | _ -> failwith ("bad column spec " ^ c)
        in
        match List.map parse_col cols with
        | cols -> Ok (name, Schema.make cols)
        | exception Failure e -> fail_usage "%s" e
      end

(* Resolve a CLI target to the engine owning it (tables route to
   shards by the stable hash) plus the oid inside that engine. *)
let locate_oid ws ~table ~row ~col =
  match (table, row, col) with
  | None, None, None ->
      if nshards ws = 1 then Ok (ws.engine, Engine.root_oid ws.engine)
      else
        fail_usage
          "a sharded workspace has one root per shard; pass --table to pick one"
  | Some t, row, col -> (
      let e = engine_for_table ws t in
      let m = Engine.mapping e in
      match (row, col) with
      | None, None -> (
          match Tree_view.table_oid m t with
          | Some o -> Ok (e, o)
          | None -> fail_usage "no table %s" t)
      | Some r, None -> (
          match Tree_view.row_oid m t r with
          | Some o -> Ok (e, o)
          | None -> fail_usage "no row %d in %s" r t)
      | Some r, Some c -> (
          match Tree_view.cell_oid m t r c with
          | Some o -> Ok (e, o)
          | None -> fail_usage "no cell (%s, %d, %d)" t r c)
      | None, Some _ -> fail_usage "--col requires --row")
  | _ -> fail_usage "--row/--col require --table"

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let cmd_init dir tables seed shards =
  if Sys.file_exists (dir // "ca") then begin
    prerr_endline "error: workspace already initialised";
    exit_fail
  end
  else if shards < 1 || shards > 64 then begin
    prerr_endline "error: --shards must be between 1 and 64";
    exit_usage
  end
  else begin
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Unix.mkdir (dir // "participants") 0o755;
    let drbg =
      match seed with
      | Some s -> Tep_crypto.Drbg.create ~seed:s
      | None -> Tep_crypto.Drbg.create_system ()
    in
    let ca = Tep_crypto.Pki.create_ca ~name:"provdb CA" drbg in
    let directory =
      Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
    in
    (* one backend per shard; table specs route by the stable hash, so
       every later session places each table on the same shard *)
    let dbs =
      Array.init shards (fun _ -> Database.create ~name:(Filename.basename dir))
    in
    let rec add_tables = function
      | [] -> Ok ()
      | spec :: rest -> (
          match parse_table_spec spec with
          | Error f -> Error f
          | Ok (name, schema) -> (
              let k = Shards.shard_of_table ~shards name in
              match Database.create_table dbs.(k) ~name schema with
              | Ok _ -> add_tables rest
              | Error e -> Error (Fail e)))
    in
    match add_tables tables with
    | Error f ->
        report_failure f;
        code_of_failure f
    | Ok () ->
        if shards > 1 then write_shards_meta dir shards;
        let shard_arr =
          Array.mapi
            (fun k db ->
              let sdir = shard_dir dir ~shards k in
              if shards > 1 then (
                try Unix.mkdir sdir 0o755
                with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              let wal = Wal.open_file (wal_path sdir) in
              let engine = Engine.create ~wal ~pool:(pool ()) ~directory db in
              { s_dir = sdir; s_engine = engine; s_wal = wal })
            dbs
        in
        let coord =
          if shards > 1 then Some (Wal.open_file (coord_path dir)) else None
        in
        let ws = make ~dir ~ca ~directory ~participants:[] ~coord shard_arr in
        save ws;
        Printf.printf "initialised %s with %d table(s)%s\n" dir
          (List.length tables)
          (if shards > 1 then Printf.sprintf " across %d shards" shards else "");
        exit_ok
  end

let cmd_participant dir name seed =
  with_workspace dir (fun ws ->
      if List.mem_assoc name ws.participants then
        fail "participant %s already exists" name
      else begin
        let drbg =
          match seed with
          | Some s -> Tep_crypto.Drbg.create ~seed:s
          | None -> Tep_crypto.Drbg.create_system ()
        in
        let p = Participant.create ~ca:ws.ca ~name drbg in
        write_file (ws.dir // "participants" // name) (Participant.to_string p);
        Ok
          (Printf.sprintf "added participant %s (key %s)" name
             (Participant.key_fingerprint p))
      end)

let parse_cells tbl values =
  let cols = Schema.columns (Table.schema tbl) in
  let raw = String.split_on_char ',' values in
  if List.length raw <> List.length cols then
    fail_usage "expected %d values, got %d" (List.length cols) (List.length raw)
  else begin
    let rec build acc cols raw =
      match (cols, raw) with
      | [], [] -> Ok (Array.of_list (List.rev acc))
      | c :: cs, v :: vs -> (
          match parse_value c.Schema.ty v with
          | Ok v -> build (v :: acc) cs vs
          | Error f -> Error f)
      | _ -> fail_usage "arity"
    in
    build [] cols raw
  end

let cmd_insert dir as_ table values =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error f -> Error f
      | Ok p -> (
          let e = engine_for_table ws table in
          match Database.get_table (Engine.backend e) table with
          | None -> fail_usage "no table %s" table
          | Some tbl -> (
              match parse_cells tbl values with
              | Error f -> Error f
              | Ok cells -> (
                  match Engine.insert_row e p ~table cells with
                  | Ok row ->
                      Ok
                        (Printf.sprintf "inserted row %d (%d records)" row
                           (Engine.last_metrics e).Engine.records_emitted)
                  | Error e -> fail "%s" e))))

let cmd_update dir as_ table row column value =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error f -> Error f
      | Ok p -> (
          let e = engine_for_table ws table in
          match Database.get_table (Engine.backend e) table with
          | None -> fail_usage "no table %s" table
          | Some tbl -> (
              match Schema.column_index (Table.schema tbl) column with
              | None -> fail_usage "no column %s in %s" column table
              | Some col -> (
                  let ty = (Schema.column_at (Table.schema tbl) col).Schema.ty in
                  match parse_value ty value with
                  | Error f -> Error f
                  | Ok v -> (
                      match Engine.update_cell e p ~table ~row ~col v with
                      | Ok () ->
                          Ok
                            (Printf.sprintf "updated %s[%d].%s (%d records)"
                               table row column
                               (Engine.last_metrics e).Engine.records_emitted)
                      | Error e -> fail "%s" e)))))

let cmd_delete dir as_ table row =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error f -> Error f
      | Ok p -> (
          let e = engine_for_table ws table in
          match Engine.delete_row e p ~table row with
          | Ok () ->
              Ok
                (Printf.sprintf "deleted %s[%d] (%d inherited records)" table
                   row
                   (Engine.last_metrics e).Engine.records_emitted)
          | Error e -> fail "%s" e))

let cmd_verify dir table row col =
  with_workspace ~save_after:false dir (fun ws ->
      match table with
      | None when row <> None || col <> None ->
          fail_usage "--row/--col require --table"
      | Some _ -> (
          match locate_oid ws ~table ~row ~col with
          | Error f -> Error f
          | Ok (e, oid) -> (
              match Engine.verify_object e oid with
              | Error e -> fail "%s" e
              | Ok report ->
                  Format.printf "%a@." Verifier.pp_report report;
                  if Verifier.ok report then Ok ""
                  else fail_verify "verification failed"))
      | None -> (
          (* Whole database: verify every shard's root object and
             additionally audit every stored record (catches corruption
             in chains that are not part of any root's provenance
             object). *)
          let all_ok = ref true in
          let outcome = ref (Ok ()) in
          Array.iteri
            (fun k s ->
              if !outcome = Ok () then begin
                let label =
                  if nshards ws = 1 then "" else Printf.sprintf "shard %d: " k
                in
                if
                  nshards ws > 1
                  && Provstore.record_count (Engine.provstore s.s_engine) = 0
                  && Database.total_rows (Engine.backend s.s_engine) = 0
                then
                  (* the shard never received a write: nothing is
                     signed, so there is nothing to verify — the same
                     objects simply would not exist in a serial run *)
                  Format.printf "%sVERIFIED: empty shard@." label
                else
                match
                  Engine.verify_object s.s_engine (Engine.root_oid s.s_engine)
                with
                | Error e -> outcome := fail "%s%s" label e
                | Ok report ->
                    let audit =
                      Verifier.verify_records ~pool:(pool ())
                        ~algo:(Engine.algo s.s_engine) ~directory:ws.directory
                        (Provstore.all (Engine.provstore s.s_engine))
                    in
                    Format.printf "%s%a@." label Verifier.pp_report report;
                    if not (Verifier.ok audit) then
                      Format.printf "%sstore audit: %a@." label
                        Verifier.pp_report audit;
                    if not (Verifier.ok report && Verifier.ok audit) then
                      all_ok := false
              end)
            ws.shards;
          (* Saved annotations, when present: every entry must parse
             and verify against the participant directory — a flipped
             byte in annot.dat fails here, same exit 3 class as record
             tampering. *)
          let apath = annot_path dir in
          if !outcome = Ok () && Sys.file_exists apath then begin
            match Annot.list_of_string (read_file apath) with
            | Error e ->
                Format.printf "annotations: FAILED: %s@." e;
                all_ok := false
            | Ok annots ->
                let bad = ref 0 in
                List.iter
                  (fun a ->
                    match Annot.verify ws.directory a with
                    | Ok () -> ()
                    | Error e ->
                        incr bad;
                        Format.printf "annotation %S: FAILED: %s@."
                          a.Annot.a_id e)
                  annots;
                if !bad = 0 then
                  Format.printf
                    "annotations: VERIFIED: %d signed annotation(s)@."
                    (List.length annots)
                else all_ok := false
          end;
          match !outcome with
          | Error _ as e -> e
          | Ok () -> if !all_ok then Ok "" else fail_verify "verification failed"))

let cmd_show dir table row col dot =
  with_workspace ~save_after:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error f -> Error f
      | Ok (e, oid) -> (
          match Engine.deliver e oid with
          | Error e -> fail "%s" e
          | Ok (_, records) ->
              if dot then print_string (Dag.to_dot (Dag.build records))
              else
                List.iter (fun r -> Format.printf "%a@." Record.pp r) records;
              Ok ""))

let cmd_stats dir =
  with_workspace ~save_after:false dir (fun ws ->
      let sum f = Array.fold_left (fun acc s -> acc + f s) 0 ws.shards in
      let tables =
        List.concat_map
          (fun s -> Database.table_names (Engine.backend s.s_engine))
          (Array.to_list ws.shards)
      in
      if nshards ws > 1 then
        Printf.printf "shards:              %d\n" (nshards ws);
      Printf.printf "tables:              %s\n" (String.concat ", " tables);
      Printf.printf "rows:                %d\n"
        (sum (fun s -> Database.total_rows (Engine.backend s.s_engine)));
      Printf.printf "tree nodes:          %d\n"
        (sum (fun s -> Forest.node_count (Engine.forest s.s_engine)));
      Printf.printf "participants:        %s\n"
        (String.concat ", " (List.map fst ws.participants));
      Printf.printf "provenance records:  %d\n"
        (sum (fun s -> Provstore.record_count (Engine.provstore s.s_engine)));
      Printf.printf "objects tracked:     %d\n"
        (sum (fun s -> Provstore.object_count (Engine.provstore s.s_engine)));
      Printf.printf "checksum bytes:      %d (paper schema)\n"
        (sum (fun s -> Provstore.paper_space_bytes (Engine.provstore s.s_engine)));
      Printf.printf "root hash:           %s\n"
        (Tep_crypto.Digest_algo.to_hex (published_root ws));
      Ok "")

let cmd_tamper dir attack =
  with_workspace ~save_after:(attack = "data") dir (fun ws ->
      match attack with
      | "data" -> (
          (* mutate a cell behind the engine's back, in whichever
             shard holds one *)
          let find_victim s =
            let forest = Engine.forest s.s_engine in
            List.concat_map
              (fun r -> Forest.children forest r)
              (Forest.roots forest)
            |> List.concat_map (fun t -> Forest.children forest t)
            |> List.concat_map (fun r -> Forest.children forest r)
            |> function
            | cell :: _ -> Some (forest, cell)
            | [] -> None
          in
          match List.find_map find_victim (Array.to_list ws.shards) with
          | Some (forest, cell) ->
              ignore (Forest.update forest cell (Value.Text "TAMPERED"));
              Ok "silently modified one cell; run `provdb verify` to see detection"
          | None -> fail "no cells to tamper with")
      | "provenance" ->
          (* corrupt the fattest shard's store, so there is something
             to flip even when other shards are empty *)
          let path =
            Array.to_list ws.shards
            |> List.map (fun s -> s.s_dir // "prov.dat")
            |> List.sort (fun a b ->
                   compare (Unix.stat b).Unix.st_size (Unix.stat a).Unix.st_size)
            |> List.hd
          in
          let s = Bytes.of_string (read_file path) in
          let mid = Bytes.length s - 20 in
          Bytes.set s mid
            (Char.chr (Char.code (Bytes.get s mid) lxor 1));
          write_file path (Bytes.to_string s);
          Ok "flipped one byte of prov.dat; the next load will reject it"
      | "annotation" ->
          (* corrupt the newest saved annotation: the file ends with
             its signature bytes, so the last byte is inside them *)
          let path = annot_path ws.dir in
          if not (Sys.file_exists path) then
            fail
              "no annot.dat (save one with `provdb lineage select --save`)"
          else begin
            let s = Bytes.of_string (read_file path) in
            let last = Bytes.length s - 1 in
            Bytes.set s last (Char.chr (Char.code (Bytes.get s last) lxor 1));
            write_file path (Bytes.to_string s);
            Ok "flipped one byte of annot.dat; `provdb verify` now exits 3"
          end
      | other ->
          fail_usage "unknown attack %s (known: data, provenance, annotation)"
            other)

let cmd_export dir table row col deep out =
  with_workspace ~save_after:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error f -> Error f
      | Ok (e, oid) -> (
          match Bundle.create ~deep e oid with
          | Error e -> fail "%s" e
          | Ok b -> (
              match Bundle.save b out with
              | Error e -> fail "%s" e
              | Ok () ->
                  Ok
                    (Printf.sprintf
                       "wrote %s: %d records, %d certificates, participants: %s"
                       out
                       (List.length b.Bundle.records)
                       (List.length b.Bundle.certificates)
                       (String.concat ", " (Bundle.participants b))))))

(* Standalone recipient check: needs no workspace. *)
let cmd_check path ca_key_file =
  match Bundle.load path with
  | Error e ->
      prerr_endline ("error: " ^ e);
      exit_fail
  | Ok b -> (
      let trusted_ca =
        match ca_key_file with
        | None ->
            prerr_endline
              "warning: trusting the CA key embedded in the bundle; pass \
               --ca-key for an out-of-band trust anchor";
            Ok None
        | Some f -> (
            match Tep_crypto.Rsa.public_of_string (String.trim (read_file f)) with
            | Some k -> Ok (Some k)
            | None -> fail_usage "unreadable CA key file %s" f)
      in
      match trusted_ca with
      | Error f ->
          report_failure f;
          code_of_failure f
      | Ok trusted_ca ->
          let report = Bundle.verify ?trusted_ca b in
          Format.printf "%a@." Verifier.pp_report report;
          if Verifier.ok report then exit_ok else exit_verify)

let cmd_ca_key dir =
  with_workspace ~save_after:false dir (fun ws ->
      Ok
        (Tep_crypto.Rsa.public_to_string
           (Participant.Directory.ca_key ws.directory)))

let cmd_audit dir =
  with_workspace ~save_after:false dir (fun ws ->
      (* one audit checkpoint per shard, living in the shard's own
         directory (the workspace root for a 1-shard layout) *)
      let all_ok = ref true in
      let examined_total = ref 0 in
      let objects_total = ref 0 in
      Array.iteri
        (fun k s ->
          let label =
            if nshards ws = 1 then "" else Printf.sprintf "shard %d: " k
          in
          let ckpt_path = s.s_dir // "audit.ckpt" in
          let cp =
            if Sys.file_exists ckpt_path then
              match Audit.of_string (read_file ckpt_path) with
              | Ok cp -> cp
              | Error _ -> Audit.empty
            else Audit.empty
          in
          let report, cp', examined =
            Audit.incremental_audit ~pool:(pool ())
              ~algo:(Engine.algo s.s_engine) ~directory:ws.directory cp
              (Engine.provstore s.s_engine)
          in
          Format.printf "%s%a@." label Verifier.pp_report report;
          examined_total := !examined_total + examined;
          objects_total := !objects_total + Audit.objects cp';
          write_file ckpt_path (Audit.to_string cp');
          if not (Verifier.ok report) then all_ok := false)
        ws.shards;
      Printf.printf "examined %d new record(s); checkpoint covers %d object(s)\n"
        !examined_total !objects_total;
      if !all_ok then Ok "" else fail_verify "audit failed")

let cmd_prune dir =
  with_workspace ~save_after:false dir (fun ws ->
      let before_total = ref 0 in
      let after_total = ref 0 in
      Array.iter
        (fun s ->
          let prov = Engine.provstore s.s_engine in
          before_total := !before_total + Provstore.record_count prov;
          let live = ref [] in
          List.iter
            (fun root ->
              Forest.iter_preorder (Engine.forest s.s_engine) root (fun o _ ->
                  live := o :: !live))
            (Forest.roots (Engine.forest s.s_engine));
          let pruned = Provstore.prune prov ~live:!live in
          (* swap in the pruned store by persisting it; the engine in
             this process keeps the old one, so just write and report *)
          write_file (s.s_dir // "prov.dat") (Provstore.to_string pruned);
          after_total := !after_total + Provstore.record_count pruned)
        ws.shards;
      (* prevent the outer save from clobbering prov.dat *)
      Ok
        (Printf.sprintf
           "pruned %d -> %d records (%d bytes reclaimed in paper schema)"
           !before_total !after_total
           ((!before_total - !after_total) * Provstore.paper_row_bytes)))

(* The --where grammar is {!Query.pred_of_string}: and/or/not with
   the usual precedence, parentheses, "col is [not] null", quoted
   text.  Parsed values are coerced to the live schema's column
   types so "qty > 50" compares as an int against an int column. *)
let parse_where schema where =
  match Query.pred_of_string (Option.value where ~default:"") with
  | Error e -> fail_usage "%s" e
  | Ok pred -> Ok (Query.coerce_pred schema pred)

let cmd_select dir table where blame =
  with_workspace ~save_after:false dir (fun ws ->
      let e = engine_for_table ws table in
      match Database.get_table (Engine.backend e) table with
      | None -> fail_usage "no table %s" table
      | Some tbl -> (
          let schema = Table.schema tbl in
          match parse_where schema where with
          | Error f -> Error f
          | Ok pred -> (
              match Query.select tbl pred with
              | Error e -> fail "%s" e
              | Ok rows ->
                  let cols = Schema.columns schema in
                  let row_blame r =
                    if not blame then ""
                    else
                      let writer =
                        match
                          Tree_view.row_oid (Engine.mapping e) table r.Table.id
                        with
                        | None -> None
                        | Some oid ->
                            Prov_query.last_writer (Engine.provstore e) oid
                      in
                      " | " ^ Option.value ~default:"-" writer
                  in
                  Printf.printf "row | %s%s\n"
                    (String.concat " | "
                       (List.map (fun c -> c.Schema.name) cols))
                    (if blame then " | last_writer" else "");
                  List.iter
                    (fun r ->
                      Printf.printf "%3d | %s%s\n" r.Table.id
                        (String.concat " | "
                           (Array.to_list
                              (Array.map Value.to_string r.Table.cells)))
                        (row_blame r))
                    rows;
                  Printf.printf "(%d rows)\n" (List.length rows);
                  Ok "")))

(* ------------------------------------------------------------------ *)
(* Lineage commands                                                    *)
(* ------------------------------------------------------------------ *)

let cmd_lineage_kind kind dir table row col =
  with_workspace ~save_after:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error f -> Error f
      | Ok (e, oid) ->
          let idx = Prov_index.of_store (Engine.provstore e) in
          (match kind with
          | `Why ->
              Printf.printf "why(%s) = %s\n" (Oid.to_string oid)
                (Lineage.poly_to_string (Lineage.why idx oid));
              Printf.printf "depth %d, min support %d\n"
                (Lineage.depth idx oid)
                (Lineage.min_support idx oid)
          | `Inputs ->
              List.iter
                (fun o -> print_endline (Oid.to_string o))
                (Lineage.which_inputs idx oid)
          | `Depth -> Printf.printf "%d\n" (Lineage.depth idx oid)
          | `Impact ->
              List.iter
                (fun o -> print_endline (Oid.to_string o))
                (Lineage.impact idx oid));
          Ok "")

(* Annotated select/aggregate over one table.  Row variables are
   forest oids, so the printed polynomials name the same objects
   `provdb lineage why` does.  With --save ID --as P the result is
   signed by P — binding query, rows, polynomials, aggregate and the
   published root — and appended to WORKSPACE/annot.dat, which
   `provdb verify` checks from then on. *)
let cmd_lineage_select dir table where agg save as_ =
  with_workspace ~save_after:false dir (fun ws ->
      let e = engine_for_table ws table in
      match Database.get_table (Engine.backend e) table with
      | None -> fail_usage "no table %s" table
      | Some tbl -> (
          let schema = Table.schema tbl in
          match parse_where schema where with
          | Error f -> Error f
          | Ok pred -> (
              let mapping = Engine.mapping e in
              let rvar r = Annotate.row_var mapping table r in
              let var r = Polynomial.var (rvar r) in
              match Annotate.select ~var tbl pred with
              | Error e -> fail "%s" e
              | Ok rows -> (
                  let value =
                    match agg with
                    | None -> Ok None
                    | Some a -> (
                        match Query.agg_of_string a with
                        | Error e -> fail_usage "%s" e
                        | Ok a -> (
                            match
                              Query.aggregate_rows schema (List.map fst rows) a
                            with
                            | Error e -> fail "%s" e
                            | Ok v -> Ok (Some v)))
                  in
                  match value with
                  | Error f -> Error f
                  | Ok value -> (
                      List.iter
                        (fun ((r : Table.row), p) ->
                          Printf.printf "%3d | %s | %s\n" r.Table.id
                            (String.concat " | "
                               (Array.to_list
                                  (Array.map Value.to_string r.Table.cells)))
                            (Lineage.poly_to_string p))
                        rows;
                      (match value with
                      | Some v ->
                          Printf.printf "%s = %s\n"
                            (Option.value agg ~default:"")
                            (Value.to_string v)
                      | None ->
                          Printf.printf "(%d rows)\n" (List.length rows));
                      match save with
                      | None -> Ok ""
                      | Some id -> (
                          match as_ with
                          | None -> fail_usage "--save requires --as PARTICIPANT"
                          | Some name -> (
                              match List.assoc_opt name ws.participants with
                              | None -> fail_usage "unknown participant %s" name
                              | Some p -> (
                                  let annot =
                                    Annot.make ~id ~table
                                      ~pred:(Query.pred_to_string pred)
                                      ~agg:(Option.value agg ~default:"")
                                      ~rows:
                                        (List.map
                                           (fun (r, poly) -> (rvar r, poly))
                                           rows)
                                      ~value ~root:(published_root ws) p
                                  in
                                  let path = annot_path dir in
                                  let existing =
                                    if Sys.file_exists path then
                                      Annot.list_of_string (read_file path)
                                    else Ok []
                                  in
                                  match existing with
                                  | Error e -> fail "%s: %s" path e
                                  | Ok l ->
                                      write_file path
                                        (Annot.list_to_string (l @ [ annot ]));
                                      Ok
                                        (Printf.sprintf
                                           "saved signed annotation %S (%d \
                                            total)"
                                           id
                                           (List.length l + 1))))))))))

let cmd_checkpoint dir keep =
  with_workspace ~save_after:false dir (fun ws ->
      let rec go k lines =
        if k = nshards ws then Ok (List.rev lines)
        else
          let s = ws.shards.(k) in
          match
            Recovery.checkpoint ?keep ~dir:(ckpt_dir s.s_dir) ~wal:s.s_wal
              s.s_engine
          with
          | Error e -> fail "%s" e
          | Ok gen ->
              let label =
                if nshards ws = 1 then "" else Printf.sprintf "shard %d: " k
              in
              go (k + 1)
                (Printf.sprintf
                   "%swrote checkpoint generation %d (lsn %d); %d \
                    generation(s) retained"
                   label gen (Wal.last_seq s.s_wal)
                   (List.length (Recovery.generations ~dir:(ckpt_dir s.s_dir)))
                 :: lines)
      in
      match go 0 [] with
      | Error f -> Error f
      | Ok lines ->
          (* every shard WAL is truncated, so no Prepare survives and
             the coordinator's decisions carry no live information *)
          (match ws.coord with
          | None -> ()
          | Some coord ->
              ignore (Wal.truncate coord ~upto:(Wal.last_seq coord)));
          Ok (String.concat "\n" lines))

(* Rebuild the workspace from the newest valid checkpoint generation
   plus the WAL tail — the path to take after a crash, or after
   `tamper --attack provenance` wrecks prov.dat. *)
let cmd_recover dir =
  match load_identity dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok (ca, directory, participants) -> (
      let n = shard_count dir in
      (* the coordinator log resolves prepared-but-unmarked cross-shard
         transactions: decided ⇒ commit, undecided ⇒ roll back *)
      let is_decided =
        if n > 1 then Some (Shards.is_decided_from (coord_path dir)) else None
      in
      let rec go k acc =
        if k = n then Ok (List.rev acc)
        else
          let sdir = shard_dir dir ~shards:n k in
          match
            (* Workspace.save below writes the post-recovery checkpoint,
               so recover itself need not *)
            Recovery.recover ~final_checkpoint:false ~pool:(pool ())
              ?is_decided ~dir:(ckpt_dir sdir) ~wal_path:(wal_path sdir)
              ~directory ()
          with
          | Error e ->
              Error
                (if n = 1 then e else Printf.sprintf "shard %d: %s" k e)
          | Ok (engine, wal, report) ->
              if n > 1 then Format.printf "shard %d:@." k;
              Format.printf "%a@." Recovery.pp_report report;
              go (k + 1)
                (({ s_dir = sdir; s_engine = engine; s_wal = wal }, report)
                 :: acc)
      in
      match go 0 [] with
      | Error e ->
          prerr_endline ("error: " ^ e);
          exit_fail
      | Ok pairs ->
          let shards = Array.of_list (List.map fst pairs) in
          let coord =
            if n > 1 then Some (Wal.open_file (coord_path dir)) else None
          in
          let ws = make ~dir ~ca ~directory ~participants ~coord shards in
          save ws;
          print_endline "workspace files rewritten from recovered state";
          if List.for_all (fun (_, r) -> r.Recovery.hash_verified) pairs then
            exit_ok
          else begin
            prerr_endline
              "error: recovered root hash does not match committed \
               provenance — run `provdb verify` to locate the tampering";
            exit_verify
          end)

(* ------------------------------------------------------------------ *)
(* Remote commands (against a running provdbd)                         *)
(* ------------------------------------------------------------------ *)

module Client = Tep_client.Client
module Message = Tep_wire.Message

(* The daemon types values against the live schema, so the remote CLI
   only guesses from syntax: int, then float, then bool, else text. *)
let guess_value s =
  if s = "NULL" then Value.Null
  else
    match int_of_string_opt s with
    | Some i -> Value.Int i
    | None -> (
        match float_of_string_opt s with
        | Some f -> Value.Float f
        | None -> (
            match bool_of_string_opt s with
            | Some b -> Value.Bool b
            | None -> Value.Text s))

let parse_oid s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok (Oid.of_int n)
  | _ -> fail_usage "not an oid: %s" s

let print_report r =
  let s = Message.render_report r in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then print_string s
  else print_endline s

(* Load the named participant's credential (the same file `provdb
   participant` wrote), connect, authenticate, run, close. *)
let with_remote dir socket host port as_ key f =
  let key_file =
    match key with Some f -> f | None -> dir // "participants" // as_
  in
  let outcome =
    if not (Sys.file_exists key_file) then
      fail_usage "no credential file %s (pass --key, or add the participant)"
        key_file
    else
      match Participant.of_string (read_file key_file) with
      | None -> fail "unreadable participant credential %s" key_file
      | Some p -> (
          let conn =
            match port with
            | Some port -> Client.connect_tcp ~host ~port ()
            | None ->
                Client.connect_unix
                  (Option.value socket ~default:(socket_path dir))
          in
          match conn with
          | Error e -> fail "%s" e
          | Ok c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.authenticate c p with
                  | Error e -> fail "authentication failed: %s" e
                  | Ok () -> f c))
  in
  match outcome with
  | Ok msg ->
      if msg <> "" then print_endline msg;
      exit_ok
  | Error f ->
      report_failure f;
      code_of_failure f

let lift_remote = function Ok v -> Ok v | Error e -> Error (Fail e)

let cmd_remote_insert dir socket host port as_ key table values =
  with_remote dir socket host port as_ key (fun c ->
      let cells =
        Array.of_list (List.map guess_value (String.split_on_char ',' values))
      in
      match Client.insert c ~table cells with
      | Ok (row, records) ->
          Ok (Printf.sprintf "inserted row %d (%d records)" row records)
      | Error e -> fail "%s" e)

let cmd_remote_update dir socket host port as_ key table row col value =
  with_remote dir socket host port as_ key (fun c ->
      match Client.update c ~table ~row ~col (guess_value value) with
      | Ok records ->
          Ok (Printf.sprintf "updated %s[%d].%d (%d records)" table row col records)
      | Error e -> fail "%s" e)

let cmd_remote_delete dir socket host port as_ key table row =
  with_remote dir socket host port as_ key (fun c ->
      match Client.delete c ~table ~row with
      | Ok records ->
          Ok (Printf.sprintf "deleted %s[%d] (%d inherited records)" table row records)
      | Error e -> fail "%s" e)

let cmd_remote_aggregate dir socket host port as_ key oids value =
  with_remote dir socket host port as_ key (fun c ->
      let rec parse acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
            match parse_oid s with
            | Ok o -> parse (o :: acc) rest
            | Error f -> Error f)
      in
      match parse [] (String.split_on_char ',' oids) with
      | Error f -> Error f
      | Ok inputs -> (
          let value = Option.map guess_value value in
          match Client.aggregate c ?value inputs with
          | Ok (oid, records) ->
              Ok
                (Printf.sprintf "aggregate object %s (%d records)"
                   (Oid.to_string oid) records)
          | Error e -> fail "%s" e))

let cmd_remote_query dir socket host port as_ key oid =
  with_remote dir socket host port as_ key (fun c ->
      let oid = Option.map Oid.of_int oid in
      match Client.query c ?oid () with
      | Ok records ->
          List.iter (fun r -> Format.printf "%a@." Record.pp r) records;
          Ok ""
      | Error e -> fail "%s" e)

let cmd_remote_verify dir socket host port as_ key oid =
  with_remote dir socket host port as_ key (fun c ->
      let oid = Option.map Oid.of_int oid in
      match Client.verify c ?oid () with
      | Ok (report, store_audit) ->
          print_report report;
          let audit_ok =
            match store_audit with
            | None -> true
            | Some a ->
                if not (Message.report_ok a) then begin
                  print_string "store audit: ";
                  print_report a
                end;
                Message.report_ok a
          in
          if Message.report_ok report && audit_ok then Ok ""
          else fail_verify "verification failed"
      | Error e -> fail "%s" e)

let cmd_remote_audit dir socket host port as_ key sample seed =
  with_remote dir socket host port as_ key (fun c ->
      match sample with
      | None -> (
          match Client.audit c with
          | Ok (report, examined, objects) ->
              print_report report;
              Printf.printf
                "examined %d new record(s); checkpoint covers %d object(s)\n"
                examined objects;
              if Message.report_ok report then Ok ""
              else fail_verify "audit failed"
          | Error e -> fail "%s" e)
      | Some alpha ->
          if not (alpha > 0. && alpha <= 1.) then
            fail_usage "--sample must be in (0, 1]"
          else
            (* ppm granularity: the fraction the server actually
               applies, so the bound below is computed from it, not
               from the possibly-rounded request *)
            let alpha_ppm = max 1 (int_of_float (alpha *. 1e6)) in
            let seed = Option.value seed ~default:"provdb-audit" in
            (match Client.audit_sample c ~seed ~alpha_ppm with
            | Error e -> fail "%s" e
            | Ok (report, sampled, population) ->
                print_report report;
                let a = float_of_int alpha_ppm /. 1e6 in
                Printf.printf
                  "sampled %d of %d live object(s) (alpha = %g, seed %S)\n"
                  sampled population a seed;
                Printf.printf
                  "detection bound: P(miss k tampered) <= (1 - alpha)^k = \
                   %.4f^k  (k=1: %.4f, k=5: %.4f, k=20: %.4f)\n"
                  (1. -. a) (1. -. a)
                  ((1. -. a) ** 5.)
                  ((1. -. a) ** 20.);
                if Message.report_ok report then Ok ""
                else fail_verify "sampled audit failed"))

let cmd_remote_checkpoint dir socket host port as_ key =
  with_remote dir socket host port as_ key (fun c ->
      match Client.checkpoint c with
      | Ok (generation, lsn) ->
          Ok
            (Printf.sprintf "wrote checkpoint generation %d (lsn %d)" generation
               lsn)
      | Error e -> fail "%s" e)

let cmd_remote_root_hash dir socket host port as_ key =
  with_remote dir socket host port as_ key (fun c ->
      match lift_remote (Client.root_hash c) with
      | Ok hash -> Ok (Tep_crypto.Digest_algo.to_hex hash)
      | Error f -> Error f)

let cmd_remote_shard_stats dir socket host port as_ key =
  with_remote dir socket host port as_ key (fun c ->
      match lift_remote (Client.shard_stats c) with
      | Error f -> Error f
      | Ok stats ->
          List.iteri
            (fun k s ->
              Printf.printf
                "shard %d: batches=%d ops=%d queued=%d root_recomputes=%d \
                 root_hits=%d proofs_served=%d proof_cache_hits=%d \
                 proof_cache_misses=%d proof_bytes=%d\n"
                k s.Message.ss_batches s.Message.ss_ops s.Message.ss_queued
                s.Message.ss_root_recomputes s.Message.ss_root_hits
                s.Message.ss_proofs_served s.Message.ss_proof_cache_hits
                s.Message.ss_proof_cache_misses s.Message.ss_proof_bytes)
            stats;
          Ok "")

(* Aggregate daemon statistics: the batcher/signing counters plus the
   per-shard proof-path counters in one place. *)
let cmd_remote_stats dir socket host port as_ key =
  with_remote dir socket host port as_ key (fun c ->
      match lift_remote (Client.stats c) with
      | Error f -> Error f
      | Ok st -> (
          Printf.printf "batches=%d ops=%d sign_wall_us=%d sign_cpu_us=%d\n"
            st.Client.batches st.Client.ops st.Client.sign_wall_us
            st.Client.sign_cpu_us;
          match lift_remote (Client.shard_stats c) with
          | Error f -> Error f
          | Ok shards ->
              List.iteri
                (fun k s ->
                  let mean =
                    if s.Message.ss_proofs_served = 0 then 0
                    else s.Message.ss_proof_bytes / s.Message.ss_proofs_served
                  in
                  Printf.printf
                    "shard %d: proofs_served=%d proof_cache_hits=%d \
                     proof_cache_misses=%d mean_proof_bytes=%d\n"
                    k s.Message.ss_proofs_served s.Message.ss_proof_cache_hits
                    s.Message.ss_proof_cache_misses mean)
                shards;
              Ok ""))

(* Remote Merkle-proof verification, the read-side dual of Economical
   hashing: fetch the root hash once (the only thing taken from the
   server that the session's HMAC already authenticates), then have
   every claim in the proof answer rechecked locally — O(depth ×
   fanout) wire bytes and client work instead of a full report. *)
let cmd_remote_prove dir socket host port as_ key table row col =
  match load_identity dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok (_ca, directory, _participants) ->
      with_remote dir socket host port as_ key (fun c ->
          match lift_remote (Client.root_hash c) with
          | Error f -> Error f
          | Ok trusted -> (
              match Client.prove c ~table ~row ?col () with
              | Error e -> fail "%s" e
              | Ok proofs -> (
                  (* workspaces hash with the engine default *)
                  let algo = Tep_crypto.Digest_algo.SHA1 in
                  let bytes =
                    List.fold_left
                      (fun a (it : Client.proof_item) ->
                        a + String.length it.Client.pf_encoded)
                      0 proofs.Client.pf_items
                  in
                  match
                    Client.check_proofs ~algo ~directory ~trusted_root:trusted
                      proofs
                  with
                  | Error e -> fail_verify "proof: %s" e
                  | Ok r ->
                      if Verifier.ok r then begin
                        Printf.printf
                          "VERIFIED: %d leaf(s), %d records, %d signatures \
                           checked against root %s (%d proof bytes)\n"
                          (List.length proofs.Client.pf_items)
                          r.Verifier.records_checked
                          r.Verifier.signatures_checked
                          (Tep_crypto.Digest_algo.to_hex trusted)
                          bytes;
                        Ok ""
                      end
                      else begin
                        Format.printf "%a@." Verifier.pp_report r;
                        fail_verify "proof verification failed"
                      end)))

let cmd_remote_lineage dir socket host port as_ key kind oid =
  with_remote dir socket host port as_ key (fun c ->
      match Message.lineage_kind_of_name kind with
      | None ->
          fail_usage "unknown lineage kind %s (why|inputs|depth|impact)" kind
      | Some k -> (
          match Client.lineage c ~kind:k ~oid:(Oid.of_int oid) with
          | Error e -> fail "%s" e
          | Ok l ->
              (match l.Client.l_poly with
              | Some p ->
                  Printf.printf "why(%s) = %s\n" (Lineage.oid_name oid)
                    (Lineage.poly_to_string p)
              | None -> ());
              (match k with
              | Message.L_why | Message.L_depth ->
                  Printf.printf "depth %d\n" l.Client.l_depth
              | Message.L_inputs | Message.L_impact ->
                  List.iter
                    (fun o -> print_endline (Oid.to_string o))
                    l.Client.l_oids);
              Ok ""))

(* Annotated remote select: rows come back with their provenance
   polynomials plus an annotation signed by the server as the
   authenticated session participant.  The annotation is verified
   here against the local participant directory, so a result whose
   rows or polynomials were altered in flight or at rest exits 3. *)
let cmd_remote_select dir socket host port as_ key table where agg =
  match load_identity dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok (_ca, directory, _participants) ->
      with_remote dir socket host port as_ key (fun c ->
          match
            Client.annotated_query c ~table
              ~where:(Option.value where ~default:"")
              ~agg:(Option.value agg ~default:"")
              ()
          with
          | Error e -> fail "%s" e
          | Ok (rows, value, annot) -> (
              List.iter
                (fun (r : Client.annotated_row) ->
                  Printf.printf "%s | %s | %s\n"
                    (Lineage.oid_name r.Client.ar_var)
                    (String.concat " | "
                       (Array.to_list
                          (Array.map Value.to_string r.Client.ar_cells)))
                    (Lineage.poly_to_string r.Client.ar_poly))
                rows;
              (match value with
              | Some v ->
                  Printf.printf "%s = %s\n"
                    (Option.value agg ~default:"")
                    (Value.to_string v)
              | None -> Printf.printf "(%d rows)\n" (List.length rows));
              match Annot.verify directory annot with
              | Ok () ->
                  Ok
                    (Printf.sprintf "annotation signed by %s: VERIFIED"
                       annot.Annot.a_participant)
              | Error e -> fail_verify "annotation: %s" e))

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let exits =
  Cmd.Exit.info exit_fail
    ~doc:"on operational errors (I/O failures, corrupt state, rejected \
          engine operations)."
  :: Cmd.Exit.info exit_usage
       ~doc:"on malformed arguments: unparseable values, bad table/column \
             specs, unknown tables, rows, participants or attacks."
  :: Cmd.Exit.info exit_verify
       ~doc:"when verification, audit or recovery cross-checks detect \
             tampering."
  :: Cmd.Exit.defaults

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKSPACE")

let as_arg =
  Arg.(required & opt (some string) None & info [ "as" ] ~docv:"PARTICIPANT")

let table_opt = Arg.(value & opt (some string) None & info [ "table" ])
let table_req = Arg.(required & opt (some string) None & info [ "table" ])
let row_opt = Arg.(value & opt (some int) None & info [ "row" ])
let row_req = Arg.(required & opt (some int) None & info [ "row" ])
let col_opt = Arg.(value & opt (some int) None & info [ "col" ])

let init_cmd =
  let tables =
    Arg.(value & opt_all string [] & info [ "table" ] ~docv:"NAME:COL[@TYPE],...")
  in
  let seed = Arg.(value & opt (some string) None & info [ "seed" ]) in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:
               "Partition the provenance forest into N shards (fixed at \
                init; tables route to shards by a stable hash)")
  in
  Cmd.v (Cmd.info "init" ~doc:"Create a workspace" ~exits)
    Term.(const cmd_init $ dir_arg $ tables $ seed $ shards)

let participant_cmd =
  let pname = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  let seed = Arg.(value & opt (some string) None & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "participant" ~doc:"Register a participant (generates a keypair)"
       ~exits)
    Term.(const cmd_participant $ dir_arg $ pname $ seed)

let insert_cmd =
  let values =
    Arg.(required & opt (some string) None & info [ "values" ] ~docv:"V1,V2,...")
  in
  Cmd.v (Cmd.info "insert" ~doc:"Insert a row" ~exits)
    Term.(const cmd_insert $ dir_arg $ as_arg $ table_req $ values)

let update_cmd =
  let column =
    Arg.(required & opt (some string) None & info [ "column" ] ~docv:"NAME")
  in
  let value = Arg.(required & opt (some string) None & info [ "value" ]) in
  Cmd.v (Cmd.info "update" ~doc:"Update one cell" ~exits)
    Term.(const cmd_update $ dir_arg $ as_arg $ table_req $ row_req $ column $ value)

let delete_cmd =
  Cmd.v (Cmd.info "delete" ~doc:"Delete a row" ~exits)
    Term.(const cmd_delete $ dir_arg $ as_arg $ table_req $ row_req)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Verify provenance (whole database, or --table/--row/--col).  \
          Exits 3 when tampering is detected."
       ~exits)
    Term.(const cmd_verify $ dir_arg $ table_opt $ row_opt $ col_opt)

let show_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Graphviz output") in
  Cmd.v (Cmd.info "show" ~doc:"Print an object's provenance records" ~exits)
    Term.(const cmd_show $ dir_arg $ table_opt $ row_opt $ col_opt $ dot)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Workspace statistics" ~exits)
    Term.(const cmd_stats $ dir_arg)

let export_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let deep =
    Arg.(value & flag & info [ "deep" ] ~doc:"Include descendants' provenance")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export an object + provenance as a portable bundle"
       ~exits)
    Term.(const cmd_export $ dir_arg $ table_opt $ row_opt $ col_opt $ deep $ out)

let check_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE") in
  let ca_key = Arg.(value & opt (some string) None & info [ "ca-key" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify a bundle as a data recipient (no workspace needed).  \
          Exits 3 when the bundle fails verification."
       ~exits)
    Term.(const cmd_check $ path $ ca_key)

let ca_key_cmd =
  Cmd.v (Cmd.info "ca-key" ~doc:"Print the workspace CA public key" ~exits)
    Term.(const cmd_ca_key $ dir_arg)

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Incremental audit: verify only records added since the last \
          audit.  Exits 3 when tampering is detected."
       ~exits)
    Term.(const cmd_audit $ dir_arg)

let prune_cmd =
  Cmd.v
    (Cmd.info "prune"
       ~doc:"Drop provenance of deleted objects (keeps cited prefixes)" ~exits)
    Term.(const cmd_prune $ dir_arg)

let select_cmd =
  let where =
    Arg.(value & opt (some string) None & info [ "where" ] ~docv:"PRED"
           ~doc:"e.g. 'qty > 50 and sku = WIDGET-1'")
  in
  let blame =
    Arg.(value & flag & info [ "blame" ] ~doc:"Append a last-writer column")
  in
  Cmd.v (Cmd.info "select" ~doc:"Query a table" ~exits)
    Term.(const cmd_select $ dir_arg $ table_req $ where $ blame)

let where_arg =
  Arg.(value & opt (some string) None
       & info [ "where" ] ~docv:"PRED"
           ~doc:
             "Predicate: and/or/not, parentheses, comparisons, 'col is \
              [not] null', quoted text — e.g. $(b,\"qty > 50 and (sku = \
              'WIDGET-1' or sku is null)\")")

let agg_arg =
  Arg.(value & opt (some string) None
       & info [ "agg" ] ~docv:"FN"
           ~doc:"count, sum(col), avg(col), min(col) or max(col)")

let lineage_cmd =
  let kind_cmd name kind doc =
    Cmd.v (Cmd.info name ~doc ~exits)
      Term.(
        const (cmd_lineage_kind kind) $ dir_arg $ table_opt $ row_opt $ col_opt)
  in
  let select =
    let save =
      Arg.(value & opt (some string) None
           & info [ "save" ] ~docv:"ID"
               ~doc:
                 "Append the result as a signed annotation to \
                  WORKSPACE/annot.dat (requires --as); `provdb verify` \
                  checks it from then on")
    in
    let as_opt =
      Arg.(value & opt (some string) None
           & info [ "as" ] ~docv:"PARTICIPANT")
    in
    Cmd.v
      (Cmd.info "select"
         ~doc:"Annotated query: result rows with provenance polynomials"
         ~exits)
      Term.(
        const cmd_lineage_select $ dir_arg $ table_req $ where_arg $ agg_arg
        $ save $ as_opt)
  in
  Cmd.group
    (Cmd.info "lineage"
       ~doc:
         "Lineage queries over the provenance DAG, answered as semiring \
          provenance polynomials"
       ~exits)
    [
      kind_cmd "why" `Why
        "Provenance polynomial of an object, with depth and min support";
      kind_cmd "inputs" `Inputs "Base objects the derivation depends on";
      kind_cmd "depth" `Depth "Aggregation hops from the deepest base object";
      kind_cmd "impact" `Impact
        "Every object transitively derived from this one";
      select;
    ]

let checkpoint_cmd =
  let keep =
    Arg.(value & opt (some int) None & info [ "keep" ] ~docv:"N"
           ~doc:"Checkpoint generations to retain (default 2)")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Write a checkpoint generation and truncate the WAL" ~exits)
    Term.(const cmd_checkpoint $ dir_arg $ keep)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild the workspace from the newest valid checkpoint plus the \
          WAL tail (crash recovery).  Exits 3 when the recovered root hash \
          fails its cross-checks."
       ~exits)
    Term.(const cmd_recover $ dir_arg)

let tamper_cmd =
  let attack =
    Arg.(required & opt (some string) None & info [ "attack" ] ~docv:"data|provenance")
  in
  Cmd.v (Cmd.info "tamper" ~doc:"Inject tampering (for demonstrations)" ~exits)
    Term.(const cmd_tamper $ dir_arg $ attack)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket (default: WORKSPACE/provdbd.sock)")

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT" ~doc:"Connect over TCP instead")

let key_arg =
  Arg.(value & opt (some string) None
       & info [ "key" ] ~docv:"FILE"
           ~doc:
             "Participant credential file (default: \
              WORKSPACE/participants/PARTICIPANT)")

let remote_cmd =
  let values =
    Arg.(required & opt (some string) None & info [ "values" ] ~docv:"V1,V2,...")
  in
  let value_req = Arg.(required & opt (some string) None & info [ "value" ]) in
  let value_opt = Arg.(value & opt (some string) None & info [ "value" ]) in
  let oids =
    Arg.(required & opt (some string) None & info [ "oids" ] ~docv:"OID,OID,...")
  in
  let oid_opt = Arg.(value & opt (some int) None & info [ "oid" ] ~docv:"OID") in
  Cmd.group
    (Cmd.info "remote"
       ~doc:
         "Operate on a running provdbd daemon over its authenticated wire \
          protocol"
       ~exits)
    [
      Cmd.v (Cmd.info "insert" ~doc:"Insert a row over the wire" ~exits)
        Term.(
          const cmd_remote_insert $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ table_req $ values);
      Cmd.v (Cmd.info "update" ~doc:"Update one cell over the wire" ~exits)
        Term.(
          const cmd_remote_update $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ table_req $ row_req
          $ Arg.(required & opt (some int) None & info [ "col" ] ~docv:"INDEX")
          $ value_req);
      Cmd.v (Cmd.info "delete" ~doc:"Delete a row over the wire" ~exits)
        Term.(
          const cmd_remote_delete $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ table_req $ row_req);
      Cmd.v
        (Cmd.info "aggregate" ~doc:"Aggregate objects over the wire" ~exits)
        Term.(
          const cmd_remote_aggregate $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg $ oids $ value_opt);
      Cmd.v
        (Cmd.info "query" ~doc:"Fetch an object's provenance records" ~exits)
        Term.(
          const cmd_remote_query $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ oid_opt);
      Cmd.v
        (Cmd.info "verify"
           ~doc:
             "Run server-side verification and print the report.  Exits 3 \
              when tampering is detected."
           ~exits)
        Term.(
          const cmd_remote_verify $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ oid_opt);
      Cmd.v
        (Cmd.info "audit"
           ~doc:
             "Run a server-side incremental audit, or with --sample a \
              seed-reproducible sampled sweep with its detection bound.  \
              Exits 3 when tampering is detected."
           ~exits)
        Term.(
          const cmd_remote_audit $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg
          $ Arg.(
              value
              & opt (some float) None
              & info [ "sample" ] ~docv:"ALPHA"
                  ~doc:
                    "Verify a DRBG-sampled ALPHA-fraction of live objects \
                     (0 < ALPHA <= 1) instead of the incremental sweep")
          $ Arg.(
              value
              & opt (some string) None
              & info [ "seed" ] ~docv:"SEED"
                  ~doc:
                    "DRBG seed for --sample; the same seed replays the \
                     same sample"));
      Cmd.v
        (Cmd.info "prove"
           ~doc:
             "Fetch a Merkle membership proof for one cell (or a whole row \
              with no --col) and verify it locally against the published \
              root — O(log n) bytes instead of a full report.  Exits 3 on \
              any chain mismatch."
           ~exits)
        Term.(
          const cmd_remote_prove $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg $ table_req $ row_req $ col_opt);
      Cmd.v
        (Cmd.info "stats"
           ~doc:
             "Print daemon statistics: batching/signing counters and the \
              per-shard proof-path counters"
           ~exits)
        Term.(
          const cmd_remote_stats $ dir_arg $ socket_arg $ host_arg $ port_arg
          $ as_arg $ key_arg);
      Cmd.v
        (Cmd.info "checkpoint" ~doc:"Ask the daemon to checkpoint" ~exits)
        Term.(
          const cmd_remote_checkpoint $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg);
      Cmd.v
        (Cmd.info "root-hash" ~doc:"Print the daemon's current root hash"
           ~exits)
        Term.(
          const cmd_remote_root_hash $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg);
      Cmd.v
        (Cmd.info "shard-stats"
           ~doc:"Print per-shard batching and root-cache statistics" ~exits)
        Term.(
          const cmd_remote_shard_stats $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg);
      Cmd.v
        (Cmd.info "lineage"
           ~doc:"Lineage query over the wire (why|inputs|depth|impact)"
           ~exits)
        Term.(
          const cmd_remote_lineage $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg
          $ Arg.(value & opt string "why" & info [ "kind" ] ~docv:"KIND")
          $ Arg.(
              required & opt (some int) None & info [ "oid" ] ~docv:"OID"));
      Cmd.v
        (Cmd.info "select"
           ~doc:
             "Annotated query over the wire; verifies the server-signed \
              annotation against the local directory (exit 3 on failure)"
           ~exits)
        Term.(
          const cmd_remote_select $ dir_arg $ socket_arg $ host_arg
          $ port_arg $ as_arg $ key_arg $ table_req $ where_arg $ agg_arg);
    ]

let () =
  let info =
    Cmd.info "provdb" ~version:"1.0.0"
      ~doc:"Tamper-evident database provenance (Zhang/Chapman/LeFevre 2009)"
      ~exits
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            init_cmd;
            participant_cmd;
            insert_cmd;
            update_cmd;
            delete_cmd;
            verify_cmd;
            show_cmd;
            stats_cmd;
            export_cmd;
            check_cmd;
            ca_key_cmd;
            audit_cmd;
            prune_cmd;
            select_cmd;
            lineage_cmd;
            tamper_cmd;
            checkpoint_cmd;
            recover_cmd;
            remote_cmd;
          ]))
