(* provdb — a command-line front end for the tamper-evident provenance
   engine.

   A workspace directory holds a backend database snapshot, the forest
   / oid mapping, the provenance store, the CA, and participant
   credentials.  Operations are performed as a named participant and
   persist everything back.

     provdb init ws --table 'stock:sku,qty'
     provdb participant ws alice
     provdb insert ws --as alice --table stock --values 'WIDGET-1,100'
     provdb update ws --as alice --table stock --row 0 --column qty --value 90
     provdb verify ws
     provdb show ws --table stock --row 0 --col 1
     provdb tamper ws --attack data
     provdb stats ws *)

open Tep_store
open Tep_tree
open Tep_core
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Workspace persistence                                               *)
(* ------------------------------------------------------------------ *)

type workspace = {
  dir : string;
  ca : Tep_crypto.Pki.ca;
  directory : Participant.Directory.t;
  participants : (string * Participant.t) list;
  engine : Engine.t;
  wal : Wal.t;
}

let ( // ) = Filename.concat

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt
let ckpt_dir dir = dir // "checkpoints"
let wal_path dir = dir // "wal.log"

(* Shared domain pool for verification / audit / Merkle sweeps.  Size
   comes from TEP_DOMAINS or the host's recommended domain count; on a
   single-core host this degrades to the sequential code path. *)
let pool () = Tep_parallel.Pool.default ()

(* CA + participant credentials, shared by normal loads and by
   [recover] (which rebuilds everything else from checkpoints). *)
let load_identity dir =
  if not (Sys.file_exists (dir // "ca")) then
    fail "%s is not a provdb workspace (run `provdb init %s` first)" dir dir
  else begin
    match Tep_crypto.Pki.ca_of_string (read_file (dir // "ca")) with
    | None -> fail "corrupt CA file"
    | Some ca ->
        let directory =
          Participant.Directory.create
            ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
        in
        let pdir = dir // "participants" in
        let participants =
          if Sys.file_exists pdir then
            Sys.readdir pdir |> Array.to_list |> List.sort compare
            |> List.filter_map (fun f ->
                   match Participant.of_string (read_file (pdir // f)) with
                   | Some p ->
                       Participant.Directory.register directory p;
                       Some (Participant.name p, p)
                   | None -> None)
          else []
        in
        Ok (ca, directory, participants)
  end

let load_workspace dir =
  match load_identity dir with
  | Error e -> Error e
  | Ok (ca, directory, participants) -> (
      match Snapshot.load (dir // "backend.snap") with
      | Error e -> fail "backend: %s" e
      | Ok db -> (
          match Provstore.of_string (read_file (dir // "prov.dat")) with
          | Error e -> fail "provenance store: %s" e
          | Ok prov ->
              let forest, _ = Forest.decode (read_file (dir // "forest.dat")) 0 in
              let view, _ =
                Tree_view.decode (read_file (dir // "view.dat")) 0
              in
              let wal = Wal.open_file (wal_path dir) in
              (* a non-empty log means the last session died before its
                 checkpoint: its committed tail is only in the WAL *)
              (match Wal.salvage_file (wal_path dir) with
              | Ok sv when sv.Wal.entries <> [] ->
                  Printf.eprintf
                    "warning: %d un-checkpointed WAL frame(s) found — a \
                     previous session crashed; run `provdb recover %s` to \
                     replay them (continuing discards them at next save)\n"
                    (List.length sv.Wal.entries) dir
              | _ -> ());
              let engine =
                Engine.of_parts ~wal ~pool:(pool ()) ~provstore:prov
                  ~directory ~forest ~view db
              in
              Ok { dir; ca; directory; participants; engine; wal }))

let save_workspace ws =
  let dir = ws.dir in
  write_file (dir // "ca") (Tep_crypto.Pki.ca_to_string ws.ca);
  (match Snapshot.save (Engine.backend ws.engine) (dir // "backend.snap") with
  | Ok () -> ()
  | Error e -> failwith e);
  write_file (dir // "prov.dat") (Provstore.to_string (Engine.provstore ws.engine));
  let buf = Buffer.create 4096 in
  Forest.encode buf (Engine.forest ws.engine);
  write_file (dir // "forest.dat") (Buffer.contents buf);
  Buffer.clear buf;
  Tree_view.encode buf (Engine.mapping ws.engine);
  write_file (dir // "view.dat") (Buffer.contents buf);
  (* checkpoint generation + WAL truncation: the crash-safe copy of
     everything written above *)
  match Recovery.checkpoint ~dir:(ckpt_dir dir) ~wal:ws.wal ws.engine with
  | Ok _gen -> ()
  | Error e -> failwith e

let with_workspace ?(save = true) dir f =
  match load_workspace dir with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok ws -> (
      match f ws with
      | Ok msg ->
          if save then save_workspace ws;
          if msg <> "" then print_endline msg;
          0
      | Error e ->
          prerr_endline ("error: " ^ e);
          1)

let get_participant ws name =
  match List.assoc_opt name ws.participants with
  | Some p -> Ok p
  | None ->
      fail "no participant %s (add with `provdb participant %s %s`)" name
        ws.dir name

(* ------------------------------------------------------------------ *)
(* Value / schema parsing                                              *)
(* ------------------------------------------------------------------ *)

let parse_value ty s =
  match ty with
  | Value.TInt -> (
      match int_of_string_opt s with
      | Some i -> Ok (Value.Int i)
      | None -> if s = "NULL" then Ok Value.Null else fail "not an int: %s" s)
  | Value.TFloat -> (
      match float_of_string_opt s with
      | Some f -> Ok (Value.Float f)
      | None -> if s = "NULL" then Ok Value.Null else fail "not a float: %s" s)
  | Value.TBool -> (
      match bool_of_string_opt s with
      | Some b -> Ok (Value.Bool b)
      | None -> if s = "NULL" then Ok Value.Null else fail "not a bool: %s" s)
  | Value.TText -> Ok (if s = "NULL" then Value.Null else Value.Text s)
  | Value.TBlob -> Ok (Value.Blob s)

(* "name:col1,col2@int,col3@text" -> table name + schema *)
let parse_table_spec spec =
  match String.index_opt spec ':' with
  | None -> fail "table spec must be name:col[,col...]: %s" spec
  | Some i ->
      let name = String.sub spec 0 i in
      let cols =
        String.split_on_char ','
          (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      if cols = [] || List.exists (fun c -> c = "") cols then
        fail "empty column in %s" spec
      else begin
        let parse_col c =
          match String.split_on_char '@' c with
          | [ n ] -> { Schema.name = n; ty = Value.TText; nullable = true }
          | [ n; "int" ] -> { Schema.name = n; ty = Value.TInt; nullable = true }
          | [ n; "float" ] ->
              { Schema.name = n; ty = Value.TFloat; nullable = true }
          | [ n; "bool" ] -> { Schema.name = n; ty = Value.TBool; nullable = true }
          | [ n; "text" ] -> { Schema.name = n; ty = Value.TText; nullable = true }
          | _ -> failwith ("bad column spec " ^ c)
        in
        match List.map parse_col cols with
        | cols -> Ok (name, Schema.make cols)
        | exception Failure e -> Error e
      end

let locate_oid ws ~table ~row ~col =
  let m = Engine.mapping ws.engine in
  match (table, row, col) with
  | None, None, None -> Ok (Engine.root_oid ws.engine)
  | Some t, None, None -> (
      match Tree_view.table_oid m t with
      | Some o -> Ok o
      | None -> fail "no table %s" t)
  | Some t, Some r, None -> (
      match Tree_view.row_oid m t r with
      | Some o -> Ok o
      | None -> fail "no row %d in %s" r t)
  | Some t, Some r, Some c -> (
      match Tree_view.cell_oid m t r c with
      | Some o -> Ok o
      | None -> fail "no cell (%s, %d, %d)" t r c)
  | _ -> fail "--row/--col require --table"

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let cmd_init dir tables seed =
  if Sys.file_exists (dir // "ca") then begin
    prerr_endline "error: workspace already initialised";
    1
  end
  else begin
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Unix.mkdir (dir // "participants") 0o755;
    let drbg =
      match seed with
      | Some s -> Tep_crypto.Drbg.create ~seed:s
      | None -> Tep_crypto.Drbg.create_system ()
    in
    let ca = Tep_crypto.Pki.create_ca ~name:"provdb CA" drbg in
    let directory =
      Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
    in
    let db = Database.create ~name:(Filename.basename dir) in
    let rec add_tables = function
      | [] -> Ok ()
      | spec :: rest -> (
          match parse_table_spec spec with
          | Error e -> Error e
          | Ok (name, schema) -> (
              match Database.create_table db ~name schema with
              | Ok _ -> add_tables rest
              | Error e -> Error e))
    in
    match add_tables tables with
    | Error e ->
        prerr_endline ("error: " ^ e);
        1
    | Ok () ->
        let wal = Wal.open_file (wal_path dir) in
        let engine = Engine.create ~wal ~pool:(pool ()) ~directory db in
        let ws = { dir; ca; directory; participants = []; engine; wal } in
        save_workspace ws;
        Printf.printf "initialised %s with %d table(s)\n" dir
          (List.length tables);
        0
  end

let cmd_participant dir name seed =
  with_workspace dir (fun ws ->
      if List.mem_assoc name ws.participants then
        fail "participant %s already exists" name
      else begin
        let drbg =
          match seed with
          | Some s -> Tep_crypto.Drbg.create ~seed:s
          | None -> Tep_crypto.Drbg.create_system ()
        in
        let p = Participant.create ~ca:ws.ca ~name drbg in
        write_file (ws.dir // "participants" // name) (Participant.to_string p);
        Ok
          (Printf.sprintf "added participant %s (key %s)" name
             (Participant.key_fingerprint p))
      end)

let cmd_insert dir as_ table values =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error e -> Error e
      | Ok p -> (
          match Database.get_table (Engine.backend ws.engine) table with
          | None -> fail "no table %s" table
          | Some tbl -> (
              let cols = Schema.columns (Table.schema tbl) in
              let raw = String.split_on_char ',' values in
              if List.length raw <> List.length cols then
                fail "expected %d values, got %d" (List.length cols)
                  (List.length raw)
              else begin
                let rec build acc cols raw =
                  match (cols, raw) with
                  | [], [] -> Ok (List.rev acc)
                  | c :: cs, v :: vs -> (
                      match parse_value c.Schema.ty v with
                      | Ok v -> build (v :: acc) cs vs
                      | Error e -> Error e)
                  | _ -> Error "arity"
                in
                match build [] cols raw with
                | Error e -> Error e
                | Ok cells -> (
                    match
                      Engine.insert_row ws.engine p ~table
                        (Array.of_list cells)
                    with
                    | Ok row ->
                        Ok
                          (Printf.sprintf "inserted row %d (%d records)" row
                             (Engine.last_metrics ws.engine).Engine.records_emitted)
                    | Error e -> Error e)
              end)))

let cmd_update dir as_ table row column value =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error e -> Error e
      | Ok p -> (
          match Database.get_table (Engine.backend ws.engine) table with
          | None -> fail "no table %s" table
          | Some tbl -> (
              match Schema.column_index (Table.schema tbl) column with
              | None -> fail "no column %s in %s" column table
              | Some col -> (
                  let ty = (Schema.column_at (Table.schema tbl) col).Schema.ty in
                  match parse_value ty value with
                  | Error e -> Error e
                  | Ok v -> (
                      match
                        Engine.update_cell ws.engine p ~table ~row ~col v
                      with
                      | Ok () ->
                          Ok
                            (Printf.sprintf "updated %s[%d].%s (%d records)"
                               table row column
                               (Engine.last_metrics ws.engine).Engine.records_emitted)
                      | Error e -> Error e)))))

let cmd_delete dir as_ table row =
  with_workspace dir (fun ws ->
      match get_participant ws as_ with
      | Error e -> Error e
      | Ok p -> (
          match Engine.delete_row ws.engine p ~table row with
          | Ok () ->
              Ok
                (Printf.sprintf "deleted %s[%d] (%d inherited records)" table
                   row
                   (Engine.last_metrics ws.engine).Engine.records_emitted)
          | Error e -> Error e))

let cmd_verify dir table row col =
  with_workspace ~save:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error e -> Error e
      | Ok oid -> (
          match Engine.verify_object ws.engine oid with
          | Error e -> Error e
          | Ok report ->
              (* With no target narrowing, additionally audit every
                 stored record (catches corruption in chains that are
                 not part of the root's provenance object). *)
              let audit =
                if table = None then
                  Verifier.verify_records ~pool:(pool ())
                    ~algo:(Engine.algo ws.engine) ~directory:ws.directory
                    (Provstore.all (Engine.provstore ws.engine))
                else report
              in
              Format.printf "%a@." Verifier.pp_report report;
              if table = None && not (Verifier.ok audit) then
                Format.printf "store audit: %a@." Verifier.pp_report audit;
              if Verifier.ok report && Verifier.ok audit then Ok ""
              else Error "verification failed"))

let cmd_show dir table row col dot =
  with_workspace ~save:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error e -> Error e
      | Ok oid -> (
          match Engine.deliver ws.engine oid with
          | Error e -> Error e
          | Ok (_, records) ->
              if dot then print_string (Dag.to_dot (Dag.build records))
              else
                List.iter (fun r -> Format.printf "%a@." Record.pp r) records;
              Ok ""))

let cmd_stats dir =
  with_workspace ~save:false dir (fun ws ->
      let prov = Engine.provstore ws.engine in
      let db = Engine.backend ws.engine in
      Printf.printf "tables:              %s\n"
        (String.concat ", " (Database.table_names db));
      Printf.printf "rows:                %d\n" (Database.total_rows db);
      Printf.printf "tree nodes:          %d\n"
        (Forest.node_count (Engine.forest ws.engine));
      Printf.printf "participants:        %s\n"
        (String.concat ", " (List.map fst ws.participants));
      Printf.printf "provenance records:  %d\n" (Provstore.record_count prov);
      Printf.printf "objects tracked:     %d\n" (Provstore.object_count prov);
      Printf.printf "checksum bytes:      %d (paper schema)\n"
        (Provstore.paper_space_bytes prov);
      Printf.printf "root hash:           %s\n"
        (Tep_crypto.Digest_algo.to_hex (Engine.root_hash ws.engine));
      Ok "")

let cmd_tamper dir attack =
  with_workspace ~save:(attack = "data") dir (fun ws ->
      match attack with
      | "data" -> (
          (* mutate a cell behind the engine's back *)
          let forest = Engine.forest ws.engine in
          let victim =
            List.concat_map
              (fun r -> Forest.children forest r)
              (Forest.roots forest)
            |> List.concat_map (fun t -> Forest.children forest t)
            |> List.concat_map (fun r -> Forest.children forest r)
          in
          match victim with
          | cell :: _ ->
              ignore (Forest.update forest cell (Value.Text "TAMPERED"));
              Ok "silently modified one cell; run `provdb verify` to see detection"
          | [] -> Error "no cells to tamper with")
      | "provenance" ->
          let path = ws.dir // "prov.dat" in
          let s = Bytes.of_string (read_file path) in
          let mid = Bytes.length s - 20 in
          Bytes.set s mid
            (Char.chr (Char.code (Bytes.get s mid) lxor 1));
          write_file path (Bytes.to_string s);
          Ok "flipped one byte of prov.dat; the next load will reject it"
      | other -> fail "unknown attack %s (known: data, provenance)" other)

let cmd_export dir table row col deep out =
  with_workspace ~save:false dir (fun ws ->
      match locate_oid ws ~table ~row ~col with
      | Error e -> Error e
      | Ok oid -> (
          match Bundle.create ~deep ws.engine oid with
          | Error e -> Error e
          | Ok b -> (
              match Bundle.save b out with
              | Error e -> Error e
              | Ok () ->
                  Ok
                    (Printf.sprintf
                       "wrote %s: %d records, %d certificates, participants: %s"
                       out
                       (List.length b.Bundle.records)
                       (List.length b.Bundle.certificates)
                       (String.concat ", " (Bundle.participants b))))))

(* Standalone recipient check: needs no workspace. *)
let cmd_check path ca_key_file =
  match Bundle.load path with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok b -> (
      let trusted_ca =
        match ca_key_file with
        | None ->
            prerr_endline
              "warning: trusting the CA key embedded in the bundle; pass \
               --ca-key for an out-of-band trust anchor";
            None
        | Some f -> (
            match Tep_crypto.Rsa.public_of_string (String.trim (read_file f)) with
            | Some k -> Some k
            | None -> failwith "unreadable CA key file")
      in
      let report = Bundle.verify ?trusted_ca b in
      Format.printf "%a@." Verifier.pp_report report;
      if Verifier.ok report then 0 else 1)

let cmd_ca_key dir =
  with_workspace ~save:false dir (fun ws ->
      Ok
        (Tep_crypto.Rsa.public_to_string
           (Participant.Directory.ca_key ws.directory)))

let cmd_audit dir =
  with_workspace ~save:false dir (fun ws ->
      let ckpt_path = ws.dir // "audit.ckpt" in
      let cp =
        if Sys.file_exists ckpt_path then
          match Audit.of_string (read_file ckpt_path) with
          | Ok cp -> cp
          | Error _ -> Audit.empty
        else Audit.empty
      in
      let report, cp', examined =
        Audit.incremental_audit ~pool:(pool ())
          ~algo:(Engine.algo ws.engine) ~directory:ws.directory cp
          (Engine.provstore ws.engine)
      in
      Format.printf "%a@." Verifier.pp_report report;
      Printf.printf "examined %d new record(s); checkpoint covers %d object(s)\n"
        examined (Audit.objects cp');
      write_file ckpt_path (Audit.to_string cp');
      if Verifier.ok report then Ok "" else Error "audit failed")

let cmd_prune dir =
  with_workspace ~save:false dir (fun ws ->
      let prov = Engine.provstore ws.engine in
      let before = Provstore.record_count prov in
      let live = ref [] in
      List.iter
        (fun root ->
          Forest.iter_preorder (Engine.forest ws.engine) root (fun o _ ->
              live := o :: !live))
        (Forest.roots (Engine.forest ws.engine));
      let pruned = Provstore.prune prov ~live:!live in
      (* swap in the pruned store by persisting it; the engine in this
         process keeps the old one, so just write and report *)
      write_file (ws.dir // "prov.dat") (Provstore.to_string pruned);
      (* prevent the outer save from clobbering prov.dat *)
      Ok
        (Printf.sprintf
           "pruned %d -> %d records (%d bytes reclaimed in paper schema)"
           before
           (Provstore.record_count pruned)
           ((before - Provstore.record_count pruned) * Provstore.paper_row_bytes)))

(* Tiny predicate parser: conjunctions of comparisons,
   e.g. "qty > 50 and sku = WIDGET-1" *)
let parse_predicate schema input =
  let parse_atom atom =
    let atom = String.trim atom in
    let ops = [ ("<=", Query.Le); (">=", Query.Ge); ("<>", Query.Ne);
                ("=", Query.Eq); ("<", Query.Lt); (">", Query.Gt) ] in
    let rec try_ops = function
      | [] -> Error (Printf.sprintf "cannot parse %S" atom)
      | (sym, op) :: rest -> (
          match String.index_opt atom sym.[0] with
          | Some i
            when String.length atom >= i + String.length sym
                 && String.sub atom i (String.length sym) = sym ->
              let col = String.trim (String.sub atom 0 i) in
              let rhs =
                String.trim
                  (String.sub atom
                     (i + String.length sym)
                     (String.length atom - i - String.length sym))
              in
              (match Schema.column_index schema col with
              | None -> Error (Printf.sprintf "unknown column %s" col)
              | Some ci -> (
                  let ty = (Schema.column_at schema ci).Schema.ty in
                  match parse_value ty rhs with
                  | Ok v -> Ok (Query.Cmp (col, op, v))
                  | Error e -> Error e))
          | _ -> try_ops rest)
    in
    (* "col is null" special form *)
    match String.lowercase_ascii atom with
    | a when Filename.check_suffix a " is null" ->
        let col = String.trim (String.sub atom 0 (String.length atom - 8)) in
        if Schema.column_index schema col = None then
          Error (Printf.sprintf "unknown column %s" col)
        else Ok (Query.IsNull col)
    | _ -> try_ops ops
  in
  (* split on " and " *)
  let rec split acc s =
    let low = String.lowercase_ascii s in
    match
      let rec find i =
        if i + 5 > String.length low then None
        else if String.sub low i 5 = " and " then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i ->
        split (String.sub s 0 i :: acc) (String.sub s (i + 5) (String.length s - i - 5))
    | None -> List.rev (s :: acc)
  in
  let atoms = split [] input in
  List.fold_left
    (fun acc atom ->
      match (acc, parse_atom atom) with
      | Error e, _ | _, Error e -> Error e
      | Ok p, Ok a -> Ok (Query.And (p, a)))
    (Ok Query.True) atoms

let cmd_select dir table where blame =
  with_workspace ~save:false dir (fun ws ->
      match Database.get_table (Engine.backend ws.engine) table with
      | None -> fail "no table %s" table
      | Some tbl -> (
          let schema = Table.schema tbl in
          let pred =
            match where with
            | None -> Ok Query.True
            | Some w -> parse_predicate schema w
          in
          match pred with
          | Error e -> Error e
          | Ok pred -> (
              match Query.select tbl pred with
              | Error e -> Error e
              | Ok rows ->
                  let cols = Schema.columns schema in
                  let row_blame r =
                    if not blame then ""
                    else
                      let writer =
                        match
                          Tree_view.row_oid (Engine.mapping ws.engine) table
                            r.Table.id
                        with
                        | None -> None
                        | Some oid ->
                            Prov_query.last_writer
                              (Engine.provstore ws.engine) oid
                      in
                      " | " ^ Option.value ~default:"-" writer
                  in
                  Printf.printf "row | %s%s\n"
                    (String.concat " | "
                       (List.map (fun c -> c.Schema.name) cols))
                    (if blame then " | last_writer" else "");
                  List.iter
                    (fun r ->
                      Printf.printf "%3d | %s%s\n" r.Table.id
                        (String.concat " | "
                           (Array.to_list
                              (Array.map Value.to_string r.Table.cells)))
                        (row_blame r))
                    rows;
                  Printf.printf "(%d rows)\n" (List.length rows);
                  Ok "")))

let cmd_checkpoint dir keep =
  with_workspace ~save:false dir (fun ws ->
      match
        Recovery.checkpoint ?keep ~dir:(ckpt_dir ws.dir) ~wal:ws.wal ws.engine
      with
      | Error e -> Error e
      | Ok gen ->
          Ok
            (Printf.sprintf
               "wrote checkpoint generation %d (lsn %d); %d generation(s) \
                retained"
               gen (Wal.last_seq ws.wal)
               (List.length (Recovery.generations ~dir:(ckpt_dir ws.dir)))))

(* Rebuild the workspace from the newest valid checkpoint generation
   plus the WAL tail — the path to take after a crash, or after
   `tamper --attack provenance` wrecks prov.dat. *)
let cmd_recover dir =
  match load_identity dir with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok (ca, directory, participants) -> (
      match
        (* save_workspace below writes the post-recovery checkpoint,
           so recover itself need not *)
        Recovery.recover ~final_checkpoint:false ~pool:(pool ())
          ~dir:(ckpt_dir dir) ~wal_path:(wal_path dir) ~directory ()
      with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok (engine, wal, report) ->
          Format.printf "%a@." Recovery.pp_report report;
          let ws = { dir; ca; directory; participants; engine; wal } in
          save_workspace ws;
          print_endline "workspace files rewritten from recovered state";
          if report.Recovery.hash_verified then 0
          else begin
            prerr_endline
              "error: recovered root hash does not match committed \
               provenance — run `provdb verify` to locate the tampering";
            1
          end)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKSPACE")

let as_arg =
  Arg.(required & opt (some string) None & info [ "as" ] ~docv:"PARTICIPANT")

let table_opt = Arg.(value & opt (some string) None & info [ "table" ])
let table_req = Arg.(required & opt (some string) None & info [ "table" ])
let row_opt = Arg.(value & opt (some int) None & info [ "row" ])
let row_req = Arg.(required & opt (some int) None & info [ "row" ])
let col_opt = Arg.(value & opt (some int) None & info [ "col" ])

let init_cmd =
  let tables =
    Arg.(value & opt_all string [] & info [ "table" ] ~docv:"NAME:COL[@TYPE],...")
  in
  let seed = Arg.(value & opt (some string) None & info [ "seed" ]) in
  Cmd.v (Cmd.info "init" ~doc:"Create a workspace")
    Term.(const cmd_init $ dir_arg $ tables $ seed)

let participant_cmd =
  let pname = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  let seed = Arg.(value & opt (some string) None & info [ "seed" ]) in
  Cmd.v
    (Cmd.info "participant" ~doc:"Register a participant (generates a keypair)")
    Term.(const cmd_participant $ dir_arg $ pname $ seed)

let insert_cmd =
  let values =
    Arg.(required & opt (some string) None & info [ "values" ] ~docv:"V1,V2,...")
  in
  Cmd.v (Cmd.info "insert" ~doc:"Insert a row")
    Term.(const cmd_insert $ dir_arg $ as_arg $ table_req $ values)

let update_cmd =
  let column =
    Arg.(required & opt (some string) None & info [ "column" ] ~docv:"NAME")
  in
  let value = Arg.(required & opt (some string) None & info [ "value" ]) in
  Cmd.v (Cmd.info "update" ~doc:"Update one cell")
    Term.(const cmd_update $ dir_arg $ as_arg $ table_req $ row_req $ column $ value)

let delete_cmd =
  Cmd.v (Cmd.info "delete" ~doc:"Delete a row")
    Term.(const cmd_delete $ dir_arg $ as_arg $ table_req $ row_req)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Verify provenance (whole database, or --table/--row/--col)")
    Term.(const cmd_verify $ dir_arg $ table_opt $ row_opt $ col_opt)

let show_cmd =
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Graphviz output") in
  Cmd.v (Cmd.info "show" ~doc:"Print an object's provenance records")
    Term.(const cmd_show $ dir_arg $ table_opt $ row_opt $ col_opt $ dot)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"Workspace statistics")
    Term.(const cmd_stats $ dir_arg)

let export_cmd =
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
  in
  let deep =
    Arg.(value & flag & info [ "deep" ] ~doc:"Include descendants' provenance")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export an object + provenance as a portable bundle")
    Term.(const cmd_export $ dir_arg $ table_opt $ row_opt $ col_opt $ deep $ out)

let check_cmd =
  let path = Arg.(required & pos 0 (some string) None & info [] ~docv:"BUNDLE") in
  let ca_key = Arg.(value & opt (some string) None & info [ "ca-key" ] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Verify a bundle as a data recipient (no workspace needed)")
    Term.(const cmd_check $ path $ ca_key)

let ca_key_cmd =
  Cmd.v (Cmd.info "ca-key" ~doc:"Print the workspace CA public key")
    Term.(const cmd_ca_key $ dir_arg)

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Incremental audit: verify only records added since the last audit")
    Term.(const cmd_audit $ dir_arg)

let prune_cmd =
  Cmd.v
    (Cmd.info "prune"
       ~doc:"Drop provenance of deleted objects (keeps cited prefixes)")
    Term.(const cmd_prune $ dir_arg)

let select_cmd =
  let where =
    Arg.(value & opt (some string) None & info [ "where" ] ~docv:"PRED"
           ~doc:"e.g. 'qty > 50 and sku = WIDGET-1'")
  in
  let blame =
    Arg.(value & flag & info [ "blame" ] ~doc:"Append a last-writer column")
  in
  Cmd.v (Cmd.info "select" ~doc:"Query a table")
    Term.(const cmd_select $ dir_arg $ table_req $ where $ blame)

let checkpoint_cmd =
  let keep =
    Arg.(value & opt (some int) None & info [ "keep" ] ~docv:"N"
           ~doc:"Checkpoint generations to retain (default 2)")
  in
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Write a checkpoint generation and truncate the WAL")
    Term.(const cmd_checkpoint $ dir_arg $ keep)

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Rebuild the workspace from the newest valid checkpoint plus the \
          WAL tail (crash recovery)")
    Term.(const cmd_recover $ dir_arg)

let tamper_cmd =
  let attack =
    Arg.(required & opt (some string) None & info [ "attack" ] ~docv:"data|provenance")
  in
  Cmd.v (Cmd.info "tamper" ~doc:"Inject tampering (for demonstrations)")
    Term.(const cmd_tamper $ dir_arg $ attack)

let () =
  let info =
    Cmd.info "provdb" ~version:"1.0.0"
      ~doc:"Tamper-evident database provenance (Zhang/Chapman/LeFevre 2009)"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            init_cmd;
            participant_cmd;
            insert_cmd;
            update_cmd;
            delete_cmd;
            verify_cmd;
            show_cmd;
            stats_cmd;
            export_cmd;
            check_cmd;
            ca_key_cmd;
            audit_cmd;
            prune_cmd;
            select_cmd;
            tamper_cmd;
            checkpoint_cmd;
            recover_cmd;
          ]))
