(* Workspace persistence shared by the provdb CLI and the provdbd
   daemon.

   A workspace directory holds a backend database snapshot, the forest
   / oid mapping, the provenance store, the CA, participant
   credentials, the WAL and checkpoint generations.

   Sharded layout: a `shards` meta file at the workspace root records
   the shard count N.  When absent (or 1) the workspace uses the
   legacy flat layout — every data file directly under [dir].  When
   N > 1, each shard k owns a `shard-00k/` subdirectory with its own
   backend.snap / prov.dat / forest.dat / view.dat / wal.log /
   checkpoints, while the CA, participant credentials and the
   cross-shard coordinator log (`coord.wal`) stay at the root.  Tables
   route to shards by {!Tep_core.Shards.shard_of_table}; the shard
   count is fixed at init time (the routing hash is durable state). *)

open Tep_store
open Tep_tree
open Tep_core

type shard_ws = { s_dir : string; s_engine : Engine.t; s_wal : Wal.t }

type t = {
  dir : string;
  ca : Tep_crypto.Pki.ca;
  directory : Participant.Directory.t;
  participants : (string * Participant.t) list;
  engine : Engine.t; (* = shards.(0).s_engine, kept for 1-shard call sites *)
  wal : Wal.t; (* = shards.(0).s_wal *)
  shards : shard_ws array;
  coord : Wal.t option; (* Some iff Array.length shards > 1 *)
}

let ( // ) = Filename.concat

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Command failures carry their exit-code class so every front end
   maps them uniformly: operational errors exit 1, malformed
   arguments exit 2, verification / audit failures (tampering
   detected) exit 3. *)
type failure = Fail of string | Usage of string | Verify_failed of string

let exit_ok = 0
let exit_fail = 1
let exit_usage = 2
let exit_verify = 3

let exit_forced = 4
(* a second signal arrived while provdbd was draining: the process
   died without completing the drain/checkpoint; recovery will replay
   the WAL tail on next start *)

let code_of_failure = function
  | Fail _ -> exit_fail
  | Usage _ -> exit_usage
  | Verify_failed _ -> exit_verify

let message_of_failure = function
  | Fail e | Usage e | Verify_failed e -> e

let fail fmt = Printf.ksprintf (fun s -> Error (Fail s)) fmt
let fail_usage fmt = Printf.ksprintf (fun s -> Error (Usage s)) fmt
let fail_verify fmt = Printf.ksprintf (fun s -> Error (Verify_failed s)) fmt

let ckpt_dir dir = dir // "checkpoints"
let wal_path dir = dir // "wal.log"
let socket_path dir = dir // "provdbd.sock"
let shards_meta_path dir = dir // "shards"
let coord_path dir = dir // "coord.wal"
let annot_path dir = dir // "annot.dat"

(* The on-disk shard count.  A missing meta file is the legacy flat
   single-shard layout. *)
let shard_count dir =
  if Sys.file_exists (shards_meta_path dir) then
    match int_of_string_opt (String.trim (read_file (shards_meta_path dir))) with
    | Some n when n >= 1 && n <= 64 -> n
    | _ -> 1
  else 1

let shard_dir dir ~shards k =
  if shards <= 1 then dir else dir // Printf.sprintf "shard-%03d" k

let write_shards_meta dir n =
  write_file (shards_meta_path dir) (string_of_int n ^ "\n")

(* Shared domain pool for verification / audit / Merkle sweeps.  Size
   comes from TEP_DOMAINS or the host's recommended domain count; on a
   single-core host this degrades to the sequential code path.  All
   shard engines share the one process-wide pool. *)
let pool () = Tep_parallel.Pool.default ()

let nshards ws = Array.length ws.shards
let shard_for_table ws table = Shards.shard_of_table ~shards:(nshards ws) table
let engine_for_table ws table = ws.shards.(shard_for_table ws table).s_engine

(* The database-wide root: the engine root for one shard, the Merkle
   root-of-roots over per-shard engine roots otherwise.  Matches what
   a sharded provdbd publishes over the wire. *)
let published_root ws =
  if nshards ws = 1 then Engine.root_hash ws.engine
  else
    Merkle.root_of_roots
      (Engine.algo ws.engine)
      (Array.to_list (Array.map (fun s -> Engine.root_hash s.s_engine) ws.shards))

let make ~dir ~ca ~directory ~participants ~coord shards =
  {
    dir;
    ca;
    directory;
    participants;
    engine = shards.(0).s_engine;
    wal = shards.(0).s_wal;
    shards;
    coord;
  }

(* CA + participant credentials, shared by normal loads and by
   [recover] (which rebuilds everything else from checkpoints). *)
let load_identity dir =
  if not (Sys.file_exists (dir // "ca")) then
    fail "%s is not a provdb workspace (run `provdb init %s` first)" dir dir
  else begin
    match Tep_crypto.Pki.ca_of_string (read_file (dir // "ca")) with
    | None -> fail "corrupt CA file"
    | Some ca ->
        let directory =
          Participant.Directory.create
            ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
        in
        let pdir = dir // "participants" in
        let participants =
          if Sys.file_exists pdir then
            Sys.readdir pdir |> Array.to_list |> List.sort compare
            |> List.filter_map (fun f ->
                   match Participant.of_string (read_file (pdir // f)) with
                   | Some p ->
                       Participant.Directory.register directory p;
                       Some (Participant.name p, p)
                   | None -> None)
          else []
        in
        Ok (ca, directory, participants)
  end

(* One shard's data files, loaded from its own directory.  [label]
   qualifies error / warning messages in multi-shard workspaces. *)
let load_shard ~directory ~label ~recover_hint sdir =
  match Snapshot.load (sdir // "backend.snap") with
  | Error e -> fail "%sbackend: %s" label e
  | Ok db -> (
      match Provstore.of_string (read_file (sdir // "prov.dat")) with
      | Error e -> fail "%sprovenance store: %s" label e
      | Ok prov ->
          let forest, _ = Forest.decode (read_file (sdir // "forest.dat")) 0 in
          let view, _ = Tree_view.decode (read_file (sdir // "view.dat")) 0 in
          let wal = Wal.open_file (wal_path sdir) in
          (* a non-empty log means the last session died before its
             checkpoint: its committed tail is only in the WAL *)
          (match Wal.salvage_file (wal_path sdir) with
          | Ok sv when sv.Wal.entries <> [] ->
              Printf.eprintf
                "warning: %s%d un-checkpointed WAL frame(s) found — a \
                 previous session crashed; run `provdb recover %s` to \
                 replay them (continuing discards them at next save)\n"
                label (List.length sv.Wal.entries) recover_hint
          | _ -> ());
          let engine =
            Engine.of_parts ~wal ~pool:(pool ()) ~provstore:prov ~directory
              ~forest ~view db
          in
          Ok { s_dir = sdir; s_engine = engine; s_wal = wal })

let load dir =
  match load_identity dir with
  | Error e -> Error e
  | Ok (ca, directory, participants) ->
      let n = shard_count dir in
      let rec load_all k acc =
        if k = n then Ok (Array.of_list (List.rev acc))
        else
          let label = if n = 1 then "" else Printf.sprintf "shard %d: " k in
          match
            load_shard ~directory ~label ~recover_hint:dir
              (shard_dir dir ~shards:n k)
          with
          | Error e -> Error e
          | Ok s -> load_all (k + 1) (s :: acc)
      in
      (match load_all 0 [] with
      | Error e -> Error e
      | Ok shards ->
          let coord =
            if n > 1 then Some (Wal.open_file (coord_path dir)) else None
          in
          Ok (make ~dir ~ca ~directory ~participants ~coord shards))

let save_shard s =
  let sdir = s.s_dir in
  (match Snapshot.save (Engine.backend s.s_engine) (sdir // "backend.snap") with
  | Ok () -> ()
  | Error e -> failwith e);
  write_file (sdir // "prov.dat")
    (Provstore.to_string (Engine.provstore s.s_engine));
  let buf = Buffer.create 4096 in
  Forest.encode buf (Engine.forest s.s_engine);
  write_file (sdir // "forest.dat") (Buffer.contents buf);
  Buffer.clear buf;
  Tree_view.encode buf (Engine.mapping s.s_engine);
  write_file (sdir // "view.dat") (Buffer.contents buf);
  (* checkpoint generation + WAL truncation: the crash-safe copy of
     everything written above *)
  match Recovery.checkpoint ~dir:(ckpt_dir sdir) ~wal:s.s_wal s.s_engine with
  | Ok _gen -> ()
  | Error e -> failwith e

let save ws =
  write_file (ws.dir // "ca") (Tep_crypto.Pki.ca_to_string ws.ca);
  Array.iter save_shard ws.shards;
  (* every shard is checkpointed, so no Prepare frame survives in any
     shard WAL — the coordinator's decisions carry no live
     information and the log can be emptied *)
  match ws.coord with
  | None -> ()
  | Some coord -> (
      match Wal.truncate coord ~upto:(Wal.last_seq coord) with
      | Ok () -> ()
      | Error e -> failwith ("coordinator log: " ^ e))

let report_failure f = prerr_endline ("error: " ^ message_of_failure f)

let with_workspace ?(save_after = true) dir f =
  match load dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok ws -> (
      match f ws with
      | Ok msg ->
          if save_after then save ws;
          if msg <> "" then print_endline msg;
          exit_ok
      | Error f ->
          report_failure f;
          code_of_failure f)

let get_participant ws name =
  match List.assoc_opt name ws.participants with
  | Some p -> Ok p
  | None ->
      fail_usage "no participant %s (add with `provdb participant %s %s`)" name
        ws.dir name
