(* Workspace persistence shared by the provdb CLI and the provdbd
   daemon.

   A workspace directory holds a backend database snapshot, the forest
   / oid mapping, the provenance store, the CA, participant
   credentials, the WAL and checkpoint generations. *)

open Tep_store
open Tep_tree
open Tep_core

type t = {
  dir : string;
  ca : Tep_crypto.Pki.ca;
  directory : Participant.Directory.t;
  participants : (string * Participant.t) list;
  engine : Engine.t;
  wal : Wal.t;
}

let ( // ) = Filename.concat

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Command failures carry their exit-code class so every front end
   maps them uniformly: operational errors exit 1, malformed
   arguments exit 2, verification / audit failures (tampering
   detected) exit 3. *)
type failure = Fail of string | Usage of string | Verify_failed of string

let exit_ok = 0
let exit_fail = 1
let exit_usage = 2
let exit_verify = 3

let exit_forced = 4
(* a second signal arrived while provdbd was draining: the process
   died without completing the drain/checkpoint; recovery will replay
   the WAL tail on next start *)

let code_of_failure = function
  | Fail _ -> exit_fail
  | Usage _ -> exit_usage
  | Verify_failed _ -> exit_verify

let message_of_failure = function
  | Fail e | Usage e | Verify_failed e -> e

let fail fmt = Printf.ksprintf (fun s -> Error (Fail s)) fmt
let fail_usage fmt = Printf.ksprintf (fun s -> Error (Usage s)) fmt
let fail_verify fmt = Printf.ksprintf (fun s -> Error (Verify_failed s)) fmt

let ckpt_dir dir = dir // "checkpoints"
let wal_path dir = dir // "wal.log"
let socket_path dir = dir // "provdbd.sock"

(* Shared domain pool for verification / audit / Merkle sweeps.  Size
   comes from TEP_DOMAINS or the host's recommended domain count; on a
   single-core host this degrades to the sequential code path. *)
let pool () = Tep_parallel.Pool.default ()

(* CA + participant credentials, shared by normal loads and by
   [recover] (which rebuilds everything else from checkpoints). *)
let load_identity dir =
  if not (Sys.file_exists (dir // "ca")) then
    fail "%s is not a provdb workspace (run `provdb init %s` first)" dir dir
  else begin
    match Tep_crypto.Pki.ca_of_string (read_file (dir // "ca")) with
    | None -> fail "corrupt CA file"
    | Some ca ->
        let directory =
          Participant.Directory.create
            ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
        in
        let pdir = dir // "participants" in
        let participants =
          if Sys.file_exists pdir then
            Sys.readdir pdir |> Array.to_list |> List.sort compare
            |> List.filter_map (fun f ->
                   match Participant.of_string (read_file (pdir // f)) with
                   | Some p ->
                       Participant.Directory.register directory p;
                       Some (Participant.name p, p)
                   | None -> None)
          else []
        in
        Ok (ca, directory, participants)
  end

let load dir =
  match load_identity dir with
  | Error e -> Error e
  | Ok (ca, directory, participants) -> (
      match Snapshot.load (dir // "backend.snap") with
      | Error e -> fail "backend: %s" e
      | Ok db -> (
          match Provstore.of_string (read_file (dir // "prov.dat")) with
          | Error e -> fail "provenance store: %s" e
          | Ok prov ->
              let forest, _ = Forest.decode (read_file (dir // "forest.dat")) 0 in
              let view, _ =
                Tree_view.decode (read_file (dir // "view.dat")) 0
              in
              let wal = Wal.open_file (wal_path dir) in
              (* a non-empty log means the last session died before its
                 checkpoint: its committed tail is only in the WAL *)
              (match Wal.salvage_file (wal_path dir) with
              | Ok sv when sv.Wal.entries <> [] ->
                  Printf.eprintf
                    "warning: %d un-checkpointed WAL frame(s) found — a \
                     previous session crashed; run `provdb recover %s` to \
                     replay them (continuing discards them at next save)\n"
                    (List.length sv.Wal.entries) dir
              | _ -> ());
              let engine =
                Engine.of_parts ~wal ~pool:(pool ()) ~provstore:prov
                  ~directory ~forest ~view db
              in
              Ok { dir; ca; directory; participants; engine; wal }))

let save ws =
  let dir = ws.dir in
  write_file (dir // "ca") (Tep_crypto.Pki.ca_to_string ws.ca);
  (match Snapshot.save (Engine.backend ws.engine) (dir // "backend.snap") with
  | Ok () -> ()
  | Error e -> failwith e);
  write_file (dir // "prov.dat") (Provstore.to_string (Engine.provstore ws.engine));
  let buf = Buffer.create 4096 in
  Forest.encode buf (Engine.forest ws.engine);
  write_file (dir // "forest.dat") (Buffer.contents buf);
  Buffer.clear buf;
  Tree_view.encode buf (Engine.mapping ws.engine);
  write_file (dir // "view.dat") (Buffer.contents buf);
  (* checkpoint generation + WAL truncation: the crash-safe copy of
     everything written above *)
  match Recovery.checkpoint ~dir:(ckpt_dir dir) ~wal:ws.wal ws.engine with
  | Ok _gen -> ()
  | Error e -> failwith e

let report_failure f = prerr_endline ("error: " ^ message_of_failure f)

let with_workspace ?(save_after = true) dir f =
  match load dir with
  | Error f ->
      report_failure f;
      code_of_failure f
  | Ok ws -> (
      match f ws with
      | Ok msg ->
          if save_after then save ws;
          if msg <> "" then print_endline msg;
          exit_ok
      | Error f ->
          report_failure f;
          code_of_failure f)

let get_participant ws name =
  match List.assoc_opt name ws.participants with
  | Some p -> Ok p
  | None ->
      fail_usage "no participant %s (add with `provdb participant %s %s`)" name
        ws.dir name
