(** HMAC-DRBG (NIST SP 800-90A style) deterministic random bit
    generator.

    All randomness in this repository flows through a DRBG so that key
    generation, workload generation and experiments are reproducible
    from a seed.  Seed from [/dev/urandom] via {!create_system} when
    real entropy is wanted. *)

type t

val create : seed:string -> t
(** Instantiate from arbitrary seed material. *)

val create_system : unit -> t
(** Seed from [/dev/urandom] (falls back to PID/time mixing if the
    device is unavailable). *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val generate : t -> int -> string
(** [generate t n] returns [n] pseudo-random bytes. *)

val byte_source : t -> Tep_bignum.Prime.byte_source
(** Adapter for the bignum layer. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] draws uniformly from [[0, bound)] without
    modulo bias. @raise Invalid_argument if [bound <= 0]. *)
