(** HMAC (RFC 2104) over any {!Digest_algo.algo}.  Used by
    {!Drbg} and available for keyed provenance-store MACs. *)

val mac : algo:Digest_algo.algo -> key:string -> string -> string
(** [mac ~algo ~key msg] is the HMAC tag (same width as the digest). *)

type ctx
(** Precomputed ipad/opad key schedule for one [(algo, key)] pair.
    Immutable after {!context}, so a single value may be shared by
    concurrent taggers. *)

val context : algo:Digest_algo.algo -> key:string -> ctx

val mac_with : ctx -> string -> string
(** Same tag as {!mac} with the context's algo and key, without
    re-deriving the key schedule — the per-frame path for sealed
    sessions. *)

val hex : algo:Digest_algo.algo -> key:string -> string -> string

val verify : algo:Digest_algo.algo -> key:string -> msg:string -> tag:string -> bool
(** Constant-time tag comparison. *)

val equal_constant_time : string -> string -> bool
(** Timing-safe string equality (length leak only). *)
