(** SHA-256 (FIPS 180-2), 32-byte digests.  Offered alongside
    {!Sha1} so deployments can choose a collision-resistant hash; the
    provenance layer is parametric in the digest algorithm. *)

type ctx

val digest_size : int
(** 32 bytes. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return a context to its initial state for reuse. *)

val update : ctx -> string -> unit
val update_sub : ctx -> string -> int -> int -> unit
val final : ctx -> string
val digest : string -> string
val hex : string -> string
