(* MD5 (RFC 1321) over 32-bit words emulated in native ints.
   Little-endian word encoding, unlike the SHA family. *)

let digest_size = 16
let mask32 = 0xffffffff

(* Per-round shift amounts and sine-derived constants. *)
let s =
  [|
    7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 7; 12; 17; 22; 5; 9; 14; 20;
    5; 9; 14; 20; 5; 9; 14; 20; 5; 9; 14; 20; 4; 11; 16; 23; 4; 11; 16; 23; 4;
    11; 16; 23; 4; 11; 16; 23; 6; 10; 15; 21; 6; 10; 15; 21; 6; 10; 15; 21; 6;
    10; 15; 21;
  |]

let k =
  [|
    0xd76aa478; 0xe8c7b756; 0x242070db; 0xc1bdceee; 0xf57c0faf; 0x4787c62a;
    0xa8304613; 0xfd469501; 0x698098d8; 0x8b44f7af; 0xffff5bb1; 0x895cd7be;
    0x6b901122; 0xfd987193; 0xa679438e; 0x49b40821; 0xf61e2562; 0xc040b340;
    0x265e5a51; 0xe9b6c7aa; 0xd62f105d; 0x02441453; 0xd8a1e681; 0xe7d3fbc8;
    0x21e1cde6; 0xc33707d6; 0xf4d50d87; 0x455a14ed; 0xa9e3e905; 0xfcefa3f8;
    0x676f02d9; 0x8d2a4c8a; 0xfffa3942; 0x8771f681; 0x6d9d6122; 0xfde5380c;
    0xa4beea44; 0x4bdecfa9; 0xf6bb4b60; 0xbebfbc70; 0x289b7ec6; 0xeaa127fa;
    0xd4ef3085; 0x04881d05; 0xd9d4d039; 0xe6db99e5; 0x1fa27cf8; 0xc4ac5665;
    0xf4292244; 0x432aff97; 0xab9423a7; 0xfc93a039; 0x655b59c3; 0x8f0ccc92;
    0xffeff47d; 0x85845dd1; 0x6fa87e4f; 0xfe2ce6e0; 0xa3014314; 0x4e0811a1;
    0xf7537e82; 0xbd3af235; 0x2ad7d2bb; 0xeb86d391;
  |]

type ctx = {
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  buf : Bytes.t;
  mutable buf_len : int;
  mutable total : int;
  m : int array; (* 16 message words *)
}

let init () =
  {
    a = 0x67452301;
    b = 0xefcdab89;
    c = 0x98badcfe;
    d = 0x10325476;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    m = Array.make 16 0;
  }

let reset ctx =
  ctx.a <- 0x67452301;
  ctx.b <- 0xefcdab89;
  ctx.c <- 0x98badcfe;
  ctx.d <- 0x10325476;
  ctx.buf_len <- 0;
  ctx.total <- 0

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* The caller guarantees [off + 64 <= Bytes.length block]; every index
   below is then in bounds, so the four specialised round loops use
   unsafe array/bytes access throughout. *)
let compress ctx block off =
  let m = ctx.m in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set m i
      (Char.code (Bytes.unsafe_get block j)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 3)) lsl 24))
  done;
  let a = ref ctx.a and b = ref ctx.b and c = ref ctx.c and d = ref ctx.d in
  for i = 0 to 15 do
    let f = ((!b land !c) lor (lnot !b land !d)) land mask32 in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      (!b
      + rotl
          ((!a + f + Array.unsafe_get k i + Array.unsafe_get m i) land mask32)
          (Array.unsafe_get s i))
      land mask32;
    a := tmp
  done;
  for i = 16 to 31 do
    let f = ((!d land !b) lor (lnot !d land !c)) land mask32
    and g = ((5 * i) + 1) land 15 in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      (!b
      + rotl
          ((!a + f + Array.unsafe_get k i + Array.unsafe_get m g) land mask32)
          (Array.unsafe_get s i))
      land mask32;
    a := tmp
  done;
  for i = 32 to 47 do
    let f = !b lxor !c lxor !d and g = ((3 * i) + 5) land 15 in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      (!b
      + rotl
          ((!a + f + Array.unsafe_get k i + Array.unsafe_get m g) land mask32)
          (Array.unsafe_get s i))
      land mask32;
    a := tmp
  done;
  for i = 48 to 63 do
    let f = (!c lxor (!b lor (lnot !d land mask32))) land mask32
    and g = 7 * i land 15 in
    let tmp = !d in
    d := !c;
    c := !b;
    b :=
      (!b
      + rotl
          ((!a + f + Array.unsafe_get k i + Array.unsafe_get m g) land mask32)
          (Array.unsafe_get s i))
      land mask32;
    a := tmp
  done;
  ctx.a <- (ctx.a + !a) land mask32;
  ctx.b <- (ctx.b + !b) land mask32;
  ctx.c <- (ctx.c + !c) land mask32;
  ctx.d <- (ctx.d + !d) land mask32

let update_sub ctx str off len =
  if off < 0 || len < 0 || off + len > String.length str then
    invalid_arg "Md5.update_sub";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit_string str !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks compressed in place from the input, no copy. *)
  let raw = Bytes.unsafe_of_string str in
  while !remaining >= 64 do
    compress ctx raw !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string str !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx str = update_sub ctx str 0 (String.length str)

let final ctx =
  let total_bits = ctx.total * 8 in
  let pad_len =
    let r = (ctx.total + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  (* Length is little-endian in MD5. *)
  for i = 0 to 7 do
    Bytes.set tail
      (1 + pad_len + i)
      (Char.chr ((total_bits lsr (i * 8)) land 0xff))
  done;
  update ctx (Bytes.unsafe_to_string tail);
  let out = Bytes.create 16 in
  let put i v =
    Bytes.set out i (Char.chr (v land 0xff));
    Bytes.set out (i + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (i + 2) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (i + 3) (Char.chr ((v lsr 24) land 0xff))
  in
  put 0 ctx.a;
  put 4 ctx.b;
  put 8 ctx.c;
  put 12 ctx.d;
  Bytes.unsafe_to_string out

(* One-shot digests allocate a fresh context: they run concurrently
   from sys-threads sharing a domain, so no shared mutable state. *)
let digest str =
  let ctx = init () in
  update ctx str;
  final ctx

let hex str =
  let d = digest str in
  let buf = Buffer.create 32 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
