(** CRC-32 (IEEE 802.3 / zlib polynomial, reflected).

    Not a cryptographic digest — used by the storage layer to detect
    accidental corruption (torn writes, bit rot) in WAL frames, where a
    keyed or collision-resistant hash would be overkill.  The checksum
    is returned as a non-negative [int] in [0, 2^32). *)

val compute : string -> int -> int -> int
(** [compute s off len] is the CRC-32 of [s.[off .. off+len-1]].
    @raise Invalid_argument on out-of-range slices. *)

val digest : string -> int
(** CRC-32 of a whole string. *)

val add_be : Buffer.t -> int -> unit
(** Append a checksum as 4 big-endian bytes. *)

val read_be : string -> int -> int
(** Read 4 big-endian bytes at [off] back into a checksum.
    @raise Invalid_argument if fewer than 4 bytes remain. *)
