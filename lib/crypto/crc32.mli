(** CRC-32 (IEEE 802.3 / zlib polynomial, reflected).

    Not a cryptographic digest — used by the storage layer to detect
    accidental corruption (torn writes, bit rot) in WAL frames, where a
    keyed or collision-resistant hash would be overkill.  The checksum
    is returned as a non-negative [int] in [0, 2^32). *)

type ctx
(** Streaming checksum state, for data that arrives in pieces (WAL
    frames assembled from a sequence prefix plus an entry body, wire
    frames checksummed as header · payload without concatenating). *)

val init : unit -> ctx
(** Fresh streaming state. *)

val feed : ctx -> string -> unit
(** Fold a whole string into the running checksum. *)

val feed_sub : ctx -> string -> int -> int -> unit
(** [feed_sub ctx s off len] folds [s.[off .. off+len-1]] into the
    running checksum.
    @raise Invalid_argument on out-of-range slices. *)

val finalize : ctx -> int
(** The checksum of everything fed so far.  Does not invalidate [ctx]:
    further [feed]s continue the stream. *)

val compute : string -> int -> int -> int
(** [compute s off len] is the CRC-32 of [s.[off .. off+len-1]].
    Equivalent to [init] · [feed_sub] · [finalize].
    @raise Invalid_argument on out-of-range slices. *)

val digest : string -> int
(** CRC-32 of a whole string. *)

val add_be : Buffer.t -> int -> unit
(** Append a checksum as 4 big-endian bytes. *)

val read_be : string -> int -> int
(** Read 4 big-endian bytes at [off] back into a checksum.
    @raise Invalid_argument if fewer than 4 bytes remain. *)
