(* HMAC-DRBG per SP 800-90A (simplified: no personalisation string,
   no explicit reseed counter limit — callers reseed at will). *)

let algo = Digest_algo.SHA256
let outlen = 32

type t = { mutable k : string; mutable v : string }

let hmac k m = Hmac.mac ~algo ~key:k m

(* The SP 800-90A update function. *)
let update t provided =
  t.k <- hmac t.k (t.v ^ "\x00" ^ provided);
  t.v <- hmac t.k t.v;
  if provided <> "" then begin
    t.k <- hmac t.k (t.v ^ "\x01" ^ provided);
    t.v <- hmac t.k t.v
  end

let create ~seed =
  let t = { k = String.make outlen '\000'; v = String.make outlen '\001' } in
  update t seed;
  t

let create_system () =
  let entropy =
    try
      let ic = open_in_bin "/dev/urandom" in
      let s = really_input_string ic 48 in
      close_in ic;
      s
    with _ ->
      Printf.sprintf "%d-%f-%d" (Unix.getpid ()) (Unix.gettimeofday ())
        (Hashtbl.hash (Sys.getcwd ()))
  in
  create ~seed:entropy

let reseed t extra = update t extra

let generate t n =
  if n < 0 then invalid_arg "Drbg.generate: negative length";
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- hmac t.k t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let byte_source t n = generate t n

let uniform_int t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform_int: bound <= 0";
  if bound = 1 then 0
  else begin
    (* Rejection sampling on 62-bit draws. *)
    let limit = max_int - (max_int mod bound) in
    let rec draw () =
      let s = generate t 8 in
      let x = ref 0 in
      String.iter (fun c -> x := ((!x lsl 8) lor Char.code c)) s;
      let x = !x land max_int in
      if x >= limit then draw () else x mod bound
    in
    draw ()
  end
