(* SHA-1 over 32-bit words emulated in OCaml's 63-bit ints, masked
   after every operation that can overflow 32 bits. *)

let digest_size = 20
let mask32 = 0xffffffff

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes fed *)
  w : int array; (* 80-entry message schedule, reused *)
}

let init () =
  {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    w = Array.make 80 0;
  }

let reset ctx =
  ctx.h0 <- 0x67452301;
  ctx.h1 <- 0xefcdab89;
  ctx.h2 <- 0x98badcfe;
  ctx.h3 <- 0x10325476;
  ctx.h4 <- 0xc3d2e1f0;
  ctx.buf_len <- 0;
  ctx.total <- 0

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

(* The caller guarantees [off + 64 <= Bytes.length block]; with that
   invariant every access below is in bounds, so unsafe indexing and
   the four specialised round loops keep the hot path branch-free. *)
let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3)))
  done;
  for i = 16 to 79 do
    Array.unsafe_set w i
      (rotl
         (Array.unsafe_get w (i - 3)
         lxor Array.unsafe_get w (i - 8)
         lxor Array.unsafe_get w (i - 14)
         lxor Array.unsafe_get w (i - 16))
         1)
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4 in
  for i = 0 to 19 do
    let f = (!b land !c) lor (lnot !b land !d) in
    let t =
      (rotl !a 5 + f + !e + 0x5a827999 + Array.unsafe_get w i) land mask32
    in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := t
  done;
  for i = 20 to 39 do
    let f = !b lxor !c lxor !d in
    let t =
      (rotl !a 5 + f + !e + 0x6ed9eba1 + Array.unsafe_get w i) land mask32
    in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := t
  done;
  for i = 40 to 59 do
    let f = (!b land !c) lor (!b land !d) lor (!c land !d) in
    let t =
      (rotl !a 5 + f + !e + 0x8f1bbcdc + Array.unsafe_get w i) land mask32
    in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := t
  done;
  for i = 60 to 79 do
    let f = !b lxor !c lxor !d in
    let t =
      (rotl !a 5 + f + !e + 0xca62c1d6 + Array.unsafe_get w i) land mask32
    in
    e := !d;
    d := !c;
    c := rotl !b 30;
    b := !a;
    a := t
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask32;
  ctx.h1 <- (ctx.h1 + !b) land mask32;
  ctx.h2 <- (ctx.h2 + !c) land mask32;
  ctx.h3 <- (ctx.h3 + !d) land mask32;
  ctx.h4 <- (ctx.h4 + !e) land mask32

let update_sub ctx s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Sha1.update_sub";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Fill a partial buffered block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  (* Whole blocks compressed in place from the input, no copy.  The
     unsafe_of_string view is read-only here. *)
  let raw = Bytes.unsafe_of_string s in
  while !remaining >= 64 do
    compress ctx raw !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx s = update_sub ctx s 0 (String.length s)

let final ctx =
  let total_bits = ctx.total * 8 in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let r = (ctx.total + 1) mod 64 in
    if r <= 56 then 56 - r else 120 - r
  in
  let tail = Bytes.make (1 + pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  for i = 0 to 7 do
    Bytes.set tail
      (1 + pad_len + i)
      (Char.chr ((total_bits lsr ((7 - i) * 8)) land 0xff))
  done;
  update ctx (Bytes.unsafe_to_string tail);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 20 in
  let put i v =
    Bytes.set out i (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out (i + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out (i + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out (i + 3) (Char.chr (v land 0xff))
  in
  put 0 ctx.h0;
  put 4 ctx.h1;
  put 8 ctx.h2;
  put 12 ctx.h3;
  put 16 ctx.h4;
  Bytes.unsafe_to_string out

(* No context caching here: one-shot digests run concurrently from
   sys-threads sharing a domain (server connection threads), so any
   shared mutable context would be corrupted mid-hash.  Callers that
   own a context outright can amortise allocation with [reset]. *)
let digest s =
  let ctx = init () in
  update ctx s;
  final ctx

let hex s =
  let d = digest s in
  let buf = Buffer.create 40 in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) d;
  Buffer.contents buf
