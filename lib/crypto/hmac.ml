let block_size (_ : Digest_algo.algo) = 64
(* MD5, SHA-1 and SHA-256 all use 64-byte blocks. *)

(* The padded-and-xored key blocks depend only on (algo, key), so a
   session that MACs thousands of frames under one key derives them
   once instead of re-padding and re-xoring per tag. *)
type ctx = { algo : Digest_algo.algo; ipad : string; opad : string }

let context ~algo ~key =
  let bs = block_size algo in
  let key =
    if String.length key > bs then Digest_algo.digest algo key else key
  in
  let key_block = key ^ String.make (bs - String.length key) '\000' in
  let xor_with byte =
    String.map (fun c -> Char.chr (Char.code c lxor byte)) key_block
  in
  { algo; ipad = xor_with 0x36; opad = xor_with 0x5c }

let mac_with ctx msg =
  let inner = Digest_algo.digest ctx.algo (ctx.ipad ^ msg) in
  Digest_algo.digest ctx.algo (ctx.opad ^ inner)

let mac ~algo ~key msg = mac_with (context ~algo ~key) msg

let hex ~algo ~key msg = Digest_algo.to_hex (mac ~algo ~key msg)

let equal_constant_time a b =
  if String.length a <> String.length b then false
  else begin
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i])) a;
    !diff = 0
  end

let verify ~algo ~key ~msg ~tag = equal_constant_time (mac ~algo ~key msg) tag
