(* Table-driven reflected CRC-32, polynomial 0xEDB88320 (zlib). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let compute s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.compute";
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let digest s = compute s 0 (String.length s)

let add_be buf c =
  Buffer.add_char buf (Char.chr ((c lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (c land 0xff))

let read_be s off =
  if off < 0 || off + 4 > String.length s then invalid_arg "Crc32.read_be";
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]
