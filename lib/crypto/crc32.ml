(* Table-driven reflected CRC-32, polynomial 0xEDB88320 (zlib).

   Two interfaces:
   - one-shot: {!compute} / {!digest} over a substring;
   - streaming: {!init} / {!feed} / {!finalize}, for callers that
     checksum data arriving in pieces (WAL frames assembled from a
     sequence prefix plus an entry body, wire frames checksummed as
     header · payload without concatenating).  [compute] is the
     streaming interface applied to a single piece, so both paths
     share one implementation. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

type ctx = { mutable acc : int }

let init () = { acc = 0xFFFFFFFF }

let feed_sub ctx s off len =
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.feed_sub";
  let table = Lazy.force table in
  let c = ref ctx.acc in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code s.[i]) land 0xff) lxor (!c lsr 8)
  done;
  ctx.acc <- !c

let feed ctx s = feed_sub ctx s 0 (String.length s)

let finalize ctx = ctx.acc lxor 0xFFFFFFFF

let compute s off len =
  let ctx = init () in
  feed_sub ctx s off len;
  finalize ctx

let digest s = compute s 0 (String.length s)

let add_be buf c =
  Buffer.add_char buf (Char.chr ((c lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((c lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (c land 0xff))

let read_be s off =
  if off < 0 || off + 4 > String.length s then invalid_arg "Crc32.read_be";
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]
