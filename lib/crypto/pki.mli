(** Minimal public-key infrastructure.

    The paper assumes "a suitable public-key infrastructure, and that
    each participant is authenticated by a certificate authority".
    This module provides exactly that: a CA that issues certificates
    binding participant names to RSA public keys, and recipient-side
    chain validation. *)

type certificate = {
  subject : string;  (** participant name *)
  subject_key : Rsa.public_key;
  issuer : string;  (** CA name *)
  serial : int;
  signature : string;  (** CA signature over the TBS encoding *)
}

type ca
(** A certificate authority (name + keypair + serial counter). *)

val create_ca : ?bits:int -> name:string -> Drbg.t -> ca
val ca_name : ca -> string
val ca_public_key : ca -> Rsa.public_key

val issue : ca -> subject:string -> Rsa.public_key -> certificate
(** Sign a certificate for [subject]'s key.  Serial numbers increase
    monotonically per CA. *)

val verify_certificate : ca_key:Rsa.public_key -> certificate -> bool
(** Check the CA signature over the to-be-signed encoding. *)

val tbs_encoding : certificate -> string
(** The deterministic byte string the CA signs (exposed for tests). *)

val certificate_to_string : certificate -> string
val certificate_of_string : string -> certificate option

val ca_to_string : ca -> string
(** Serialise a CA (including its private key and serial counter) for
    persistence.  Protect the result like any private key. *)

val ca_of_string : string -> ca option
