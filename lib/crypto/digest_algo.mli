(** Uniform interface over the hash algorithms, so the provenance
    layer can be parameterised by digest ({!Sha1} is the paper's
    default; {!Sha256} is the recommended modern choice). *)

type algo = MD5 | SHA1 | SHA256

val all : algo list
val name : algo -> string
val of_name : string -> algo option
(** Case-insensitive; accepts ["md5"], ["sha1"]/["sha"], ["sha256"]. *)

val size : algo -> int
(** Digest size in bytes: 16 / 20 / 32. *)

val digest : algo -> string -> string
val hex : algo -> string -> string

val to_hex : string -> string
(** Lowercase hex of an arbitrary byte string. *)

val of_hex : string -> string
(** Inverse of {!to_hex}. @raise Invalid_argument on bad input. *)

(** Incremental hashing, dispatching on the algorithm. *)
type ctx

val init : algo -> ctx
val update : ctx -> string -> unit
val update_sub : ctx -> string -> int -> int -> unit
val final : ctx -> string
