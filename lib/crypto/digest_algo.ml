type algo = MD5 | SHA1 | SHA256

let all = [ MD5; SHA1; SHA256 ]

let name = function MD5 -> "md5" | SHA1 -> "sha1" | SHA256 -> "sha256"

let of_name s =
  match String.lowercase_ascii s with
  | "md5" -> Some MD5
  | "sha1" | "sha" | "sha-1" -> Some SHA1
  | "sha256" | "sha-256" -> Some SHA256
  | _ -> None

let size = function MD5 -> 16 | SHA1 -> 20 | SHA256 -> 32

let digest algo s =
  match algo with
  | MD5 -> Md5.digest s
  | SHA1 -> Sha1.digest s
  | SHA256 -> Sha256.digest s

let to_hex s =
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c)))
    s;
  Buffer.contents buf

let of_hex s =
  let len = String.length s in
  if len mod 2 <> 0 then invalid_arg "Digest_algo.of_hex: odd length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Digest_algo.of_hex: bad digit"
  in
  String.init (len / 2)
    (fun i -> Char.chr ((digit s.[2 * i] lsl 4) lor digit s.[(2 * i) + 1]))

let hex algo s = to_hex (digest algo s)

type ctx = Cmd5 of Md5.ctx | Csha1 of Sha1.ctx | Csha256 of Sha256.ctx

let init = function
  | MD5 -> Cmd5 (Md5.init ())
  | SHA1 -> Csha1 (Sha1.init ())
  | SHA256 -> Csha256 (Sha256.init ())

let update ctx s =
  match ctx with
  | Cmd5 c -> Md5.update c s
  | Csha1 c -> Sha1.update c s
  | Csha256 c -> Sha256.update c s

let update_sub ctx s off len =
  match ctx with
  | Cmd5 c -> Md5.update_sub c s off len
  | Csha1 c -> Sha1.update_sub c s off len
  | Csha256 c -> Sha256.update_sub c s off len

let final = function
  | Cmd5 c -> Md5.final c
  | Csha1 c -> Sha1.final c
  | Csha256 c -> Sha256.final c
