type certificate = {
  subject : string;
  subject_key : Rsa.public_key;
  issuer : string;
  serial : int;
  signature : string;
}

type ca = { name : string; keys : Rsa.keypair; mutable next_serial : int }

let create_ca ?bits ~name drbg =
  { name; keys = Rsa.generate ?bits drbg; next_serial = 1 }

let ca_name ca = ca.name
let ca_public_key ca = ca.keys.Rsa.public

(* Length-prefixed fields so no crafted subject can collide with a
   different (subject, key, issuer, serial) triple. *)
let tbs ~subject ~subject_key ~issuer ~serial =
  let field s = Printf.sprintf "%d:%s" (String.length s) s in
  String.concat ""
    [
      "cert-v1|";
      field subject;
      field (Rsa.public_to_string subject_key);
      field issuer;
      field (string_of_int serial);
    ]

let tbs_encoding c =
  tbs ~subject:c.subject ~subject_key:c.subject_key ~issuer:c.issuer
    ~serial:c.serial

let issue ca ~subject key =
  let serial = ca.next_serial in
  ca.next_serial <- serial + 1;
  let body = tbs ~subject ~subject_key:key ~issuer:ca.name ~serial in
  let signature = Rsa.sign ~algo:Digest_algo.SHA256 ca.keys.Rsa.private_ body in
  { subject; subject_key = key; issuer = ca.name; serial; signature }

let verify_certificate ~ca_key c =
  Rsa.verify ~algo:Digest_algo.SHA256 ca_key ~msg:(tbs_encoding c)
    ~signature:c.signature

let certificate_to_string c =
  String.concat "|"
    [
      "certser-v1";
      Digest_algo.to_hex c.subject;
      Rsa.public_to_string c.subject_key;
      Digest_algo.to_hex c.issuer;
      string_of_int c.serial;
      Digest_algo.to_hex c.signature;
    ]

let certificate_of_string s =
  match String.split_on_char '|' s with
  | [ "certser-v1"; subject; key; issuer; serial; signature ] -> (
      try
        match Rsa.public_of_string key with
        | None -> None
        | Some subject_key ->
            Some
              {
                subject = Digest_algo.of_hex subject;
                subject_key;
                issuer = Digest_algo.of_hex issuer;
                serial = int_of_string serial;
                signature = Digest_algo.of_hex signature;
              }
      with _ -> None)
  | _ -> None

let ca_to_string ca =
  String.concat "|"
    [
      "caser-v1";
      Digest_algo.to_hex ca.name;
      Rsa.private_to_string ca.keys.Rsa.private_;
      string_of_int ca.next_serial;
    ]

let ca_of_string s =
  match String.split_on_char '|' s with
  | [ "caser-v1"; name; priv; serial ] -> (
      try
        match Rsa.private_of_string priv with
        | None -> None
        | Some private_ ->
            Some
              {
                name = Digest_algo.of_hex name;
                keys = { Rsa.public = Rsa.public_of_private private_; private_ };
                next_serial = int_of_string serial;
              }
      with _ -> None)
  | _ -> None
