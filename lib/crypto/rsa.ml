open Tep_bignum

type public_key = { n : Nat.t; e : Nat.t }

type private_key = {
  pn : Nat.t;
  pe : Nat.t;
  d : Nat.t;
  p : Nat.t;
  q : Nat.t;
  dp : Nat.t; (* d mod p-1 *)
  dq : Nat.t; (* d mod q-1 *)
  qinv : Nat.t; (* q^{-1} mod p *)
  mont_p : Zmod.Montgomery.ctx;
  mont_q : Zmod.Montgomery.ctx;
}

type keypair = { public : public_key; private_ : private_key }

let default_bits = 1024

let public_of_private k = { n = k.pn; e = k.pe }

let key_bytes pk = (Nat.num_bits pk.n + 7) / 8

let make_private ~n ~e ~d ~p ~q =
  let dp = Nat.rem d (Nat.sub p Nat.one) in
  let dq = Nat.rem d (Nat.sub q Nat.one) in
  let qinv =
    match Zmod.modinv q p with
    | Some x -> x
    | None -> invalid_arg "Rsa.make_private: p, q not coprime"
  in
  {
    pn = n;
    pe = e;
    d;
    p;
    q;
    dp;
    dq;
    qinv;
    mont_p = Zmod.Montgomery.create p;
    mont_q = Zmod.Montgomery.create q;
  }

let generate ?(bits = default_bits) ?(e = 65537) drbg =
  if bits < 128 then invalid_arg "Rsa.generate: modulus too small";
  if e land 1 = 0 || e < 3 then invalid_arg "Rsa.generate: bad public exponent";
  let e_nat = Nat.of_int e in
  let src = Drbg.byte_source drbg in
  let half = bits / 2 in
  let rec gen_prime () =
    let p = Prime.generate src ~bits:half in
    (* e must be invertible mod p-1. *)
    if Nat.is_one (Zmod.gcd e_nat (Nat.sub p Nat.one)) then p else gen_prime ()
  in
  let rec attempt () =
    let p = gen_prime () in
    let q = gen_prime () in
    if Nat.equal p q then attempt ()
    else begin
      let n = Nat.mul p q in
      if Nat.num_bits n <> bits then attempt ()
      else begin
        let phi = Nat.mul (Nat.sub p Nat.one) (Nat.sub q Nat.one) in
        match Zmod.modinv e_nat phi with
        | None -> attempt ()
        | Some d ->
            let p, q = if Nat.compare p q > 0 then (p, q) else (q, p) in
            let priv = make_private ~n ~e:e_nat ~d ~p ~q in
            { public = { n; e = e_nat }; private_ = priv }
      end
    end
  in
  attempt ()

(* CRT exponentiation: m^d mod n from residues mod p and q. *)
let raw_sign key m =
  let m = Nat.rem m key.pn in
  let m1 = Zmod.Montgomery.pow key.mont_p m key.dp in
  let m2 = Zmod.Montgomery.pow key.mont_q m key.dq in
  (* h = qinv * (m1 - m2) mod p *)
  let diff =
    if Nat.compare m1 m2 >= 0 then Nat.sub m1 m2
    else Nat.sub key.p (Nat.rem (Nat.sub m2 m1) key.p)
  in
  let h = Nat.rem (Nat.mul key.qinv diff) key.p in
  Nat.add m2 (Nat.mul h key.q)

let raw_public pk m = Zmod.modpow m pk.e pk.n

(* DER DigestInfo prefixes (RFC 3447 §9.2 notes). *)
let digestinfo_prefix = function
  | Digest_algo.MD5 ->
      "\x30\x20\x30\x0c\x06\x08\x2a\x86\x48\x86\xf7\x0d\x02\x05\x05\x00\x04\x10"
  | Digest_algo.SHA1 -> "\x30\x21\x30\x09\x06\x05\x2b\x0e\x03\x02\x1a\x05\x00\x04\x14"
  | Digest_algo.SHA256 ->
      "\x30\x31\x30\x0d\x06\x09\x60\x86\x48\x01\x65\x03\x04\x02\x01\x05\x00\x04\x20"

let emsa_pkcs1_v1_5 algo len msg =
  let t = digestinfo_prefix algo ^ Digest_algo.digest algo msg in
  let tlen = String.length t in
  if len < tlen + 11 then invalid_arg "Rsa.emsa_pkcs1_v1_5: key too small";
  (* 0x00 0x01 FF..FF 0x00 T *)
  "\x00\x01" ^ String.make (len - tlen - 3) '\xff' ^ "\x00" ^ t

let sign ?(algo = Digest_algo.SHA1) key msg =
  let len = (Nat.num_bits key.pn + 7) / 8 in
  let em = emsa_pkcs1_v1_5 algo len msg in
  let m = Nat.of_bytes_be em in
  let s = raw_sign key m in
  Nat.to_bytes_be_padded len s

let verify ?(algo = Digest_algo.SHA1) pk ~msg ~signature =
  let len = key_bytes pk in
  if String.length signature <> len then false
  else begin
    let s = Nat.of_bytes_be signature in
    if Nat.compare s pk.n >= 0 then false
    else begin
      let m = raw_public pk s in
      let em = Nat.to_bytes_be_padded len m in
      match emsa_pkcs1_v1_5 algo len msg with
      | expected -> Hmac.equal_constant_time em expected
      | exception Invalid_argument _ -> false
    end
  end

(* RSAES-PKCS1-v1_5 (RFC 3447 §7.2): EM = 00 02 PS 00 M with PS at
   least eight nonzero random bytes.  Used by the wire handshake to
   transport a session-key share; there the ciphertext is covered by
   the client's transcript signature, which the server verifies
   *before* decrypting, so decryption never runs on attacker-chosen
   ciphertexts (no Bleichenbacher padding oracle). *)
let encrypt drbg pk msg =
  let len = key_bytes pk in
  let mlen = String.length msg in
  if mlen > len - 11 then invalid_arg "Rsa.encrypt: message too long for key";
  let ps = Bytes.of_string (Drbg.generate drbg (len - mlen - 3)) in
  for i = 0 to Bytes.length ps - 1 do
    while Bytes.get ps i = '\x00' do
      Bytes.set ps i (Drbg.generate drbg 1).[0]
    done
  done;
  let em = "\x00\x02" ^ Bytes.unsafe_to_string ps ^ "\x00" ^ msg in
  Nat.to_bytes_be_padded len (raw_public pk (Nat.of_bytes_be em))

let decrypt key c =
  let len = (Nat.num_bits key.pn + 7) / 8 in
  if String.length c <> len then None
  else begin
    let cn = Nat.of_bytes_be c in
    if Nat.compare cn key.pn >= 0 then None
    else begin
      let em = Nat.to_bytes_be_padded len (raw_sign key cn) in
      if len < 11 || em.[0] <> '\x00' || em.[1] <> '\x02' then None
      else
        (* the 00 separator must leave >= 8 bytes of PS before it *)
        match String.index_from_opt em 2 '\x00' with
        | Some z when z >= 10 -> Some (String.sub em (z + 1) (len - z - 1))
        | _ -> None
    end
  end

let public_to_string pk =
  Printf.sprintf "rsa-pub:%s:%s" (Nat.to_hex pk.n) (Nat.to_hex pk.e)

let public_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa-pub"; n; e ] -> (
      try Some { n = Nat.of_hex n; e = Nat.of_hex e } with Invalid_argument _ -> None)
  | _ -> None

let private_to_string k =
  Printf.sprintf "rsa-priv:%s:%s:%s:%s:%s" (Nat.to_hex k.pn) (Nat.to_hex k.pe)
    (Nat.to_hex k.d) (Nat.to_hex k.p) (Nat.to_hex k.q)

let private_of_string s =
  match String.split_on_char ':' s with
  | [ "rsa-priv"; n; e; d; p; q ] -> (
      try
        Some
          (make_private ~n:(Nat.of_hex n) ~e:(Nat.of_hex e) ~d:(Nat.of_hex d)
             ~p:(Nat.of_hex p) ~q:(Nat.of_hex q))
      with Invalid_argument _ -> None)
  | _ -> None

let fingerprint pk =
  String.sub (Digest_algo.hex Digest_algo.SHA256 (public_to_string pk)) 0 16
