(** RSA key generation and PKCS#1 v1.5 signatures.

    The paper signs provenance checksums with 1024-bit RSA producing
    128-byte signatures; that is the default here.  Signing uses the
    Chinese-Remainder-Theorem optimisation with precomputed Montgomery
    contexts. *)

type public_key = {
  n : Tep_bignum.Nat.t;  (** modulus *)
  e : Tep_bignum.Nat.t;  (** public exponent *)
}

type private_key
(** Holds the CRT components (p, q, dP, dQ, qInv) plus (n, d). *)

type keypair = { public : public_key; private_ : private_key }

val default_bits : int
(** 1024, as in the paper. *)

val generate : ?bits:int -> ?e:int -> Drbg.t -> keypair
(** Generate a fresh keypair.  [bits] is the modulus size (default
    1024); [e] the public exponent (default 65537).
    @raise Invalid_argument if [bits < 128] or [e] is even. *)

val public_of_private : private_key -> public_key

val key_bytes : public_key -> int
(** Modulus length in bytes (the signature length): 128 for 1024-bit
    keys. *)

(** {1 Signatures (EMSA-PKCS1-v1_5)} *)

val sign : ?algo:Digest_algo.algo -> private_key -> string -> string
(** [sign key msg] hashes [msg] (default {!Digest_algo.SHA1}), wraps
    the digest in a DER [DigestInfo], applies PKCS#1 v1.5 padding and
    exponentiates.  Returns a signature of exactly [key_bytes] bytes. *)

val verify :
  ?algo:Digest_algo.algo -> public_key -> msg:string -> signature:string -> bool
(** Full encode-then-compare verification (immune to padding-laxity
    forgeries). *)

(** {1 Encryption (RSAES-PKCS1-v1_5)} *)

val encrypt : Drbg.t -> public_key -> string -> string
(** [encrypt drbg pk msg] pads [msg] with nonzero random bytes drawn
    from [drbg] (PKCS#1 v1.5 type 2) and exponentiates.  Returns a
    ciphertext of exactly [key_bytes pk] bytes.
    @raise Invalid_argument if [msg] exceeds [key_bytes pk - 11]. *)

val decrypt : private_key -> string -> string option
(** Inverse of {!encrypt}: [None] on wrong-length ciphertext, a value
    outside the modulus, or bad padding.  Callers that decrypt
    network input must authenticate the ciphertext first (see the
    wire handshake) — the [None]/[Some] distinction is a padding
    oracle otherwise. *)

(** {1 Raw primitives (exposed for tests)} *)

val raw_sign : private_key -> Tep_bignum.Nat.t -> Tep_bignum.Nat.t
val raw_public : public_key -> Tep_bignum.Nat.t -> Tep_bignum.Nat.t

val emsa_pkcs1_v1_5 : Digest_algo.algo -> int -> string -> string
(** [emsa_pkcs1_v1_5 algo len msg] is the padded encoding of
    [hash(msg)] at [len] bytes. @raise Invalid_argument if [len] is
    too small for the digest. *)

(** {1 Serialisation} *)

val public_to_string : public_key -> string
(** Compact textual encoding ["rsa-pub:<hex n>:<hex e>"]. *)

val public_of_string : string -> public_key option

val private_to_string : private_key -> string
val private_of_string : string -> private_key option

val fingerprint : public_key -> string
(** SHA-256 of the serialised public key, hex, truncated to 16 chars.
    Used as a stable participant key identifier. *)
