(** MD5 (RFC 1321), 16-byte digests.  Included because the paper lists
    MD5 as an alternative hash; retained for compatibility use only —
    prefer {!Sha256} for new deployments. *)

type ctx

val digest_size : int
(** 16 bytes. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return a context to its initial state for reuse. *)

val update : ctx -> string -> unit
val update_sub : ctx -> string -> int -> int -> unit
val final : ctx -> string
val digest : string -> string
val hex : string -> string
