(** SHA-1 (FIPS 180-1), the paper's hash function ("SHA", 20-byte
    digests).  Incremental and one-shot interfaces. *)

type ctx

val digest_size : int
(** 20 bytes. *)

val init : unit -> ctx

val reset : ctx -> unit
(** Return a context to its initial state so it can be reused for a
    fresh digest without reallocating its buffers. *)

val update : ctx -> string -> unit
val update_sub : ctx -> string -> int -> int -> unit
(** [update_sub ctx s off len] feeds [len] bytes of [s] from [off]. *)

val final : ctx -> string
(** Finalise and return the 20-byte digest.  The context must not be
    used afterwards. *)

val digest : string -> string
(** One-shot hash. *)

val hex : string -> string
(** One-shot hash, lowercase hexadecimal. *)
