(* Client for the provenance service.

   The transport is abstract — raw bytes out, raw bytes in — with
   three implementations: Unix-domain socket, TCP, and an in-process
   loopback that feeds the server's connection state machine directly.
   Everything above the transport (framing, handshake, session
   sealing, codecs) is shared, so a loopback test exercises the same
   protocol path as a socket client.

   Two calling styles share one wire state:

   - Blocking: every typed wrapper ([insert], [verify], ...) is one
     request/response exchange, exactly as before pipelining existed.
   - Pipelined: [request_async] seals and sends a request tagged with
     a fresh correlation id and returns immediately; [collect] later
     blocks for that id's response, stashing any other responses that
     arrive first.  Several requests may be in flight on the one
     connection; the server echoes each cid, so collection order is
     free.

   Failures come back as [Error msg], never exceptions. *)

module Frame = Tep_wire.Frame
module Message = Tep_wire.Message
module Session = Tep_wire.Session
module Participant = Tep_core.Participant

type transport = {
  send : string -> unit;
  recv : unit -> string; (* some bytes; "" means the peer closed *)
  close : unit -> unit;
}

type session = {
  keyed : Session.keyed; (* precomputed HMAC key schedule *)
  mutable send_seq : int;
  mutable recv_seq : int;
  mutable next_cid : int; (* correlation ids; 0 is the server's *)
  stashed : (int, Message.response) Hashtbl.t;
      (* responses that arrived while collecting a different cid *)
}

type t = {
  transport : transport;
  drbg : Tep_crypto.Drbg.t;
  max_payload : int;
  inbox : Buffer.t; (* unconsumed input; compacted once per frame *)
  mutable need : int; (* skip parse attempts below this many bytes *)
  mutable session : session option;
  mutable closed : bool;
}

let make ?(max_payload = Frame.default_max_payload) ?drbg transport =
  let drbg =
    match drbg with Some d -> d | None -> Tep_crypto.Drbg.create_system ()
  in
  {
    transport;
    drbg;
    max_payload;
    inbox = Buffer.create 256;
    need = Frame.header_len;
    session = None;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.transport.close ()
  end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

(* Same codec path, no sockets: bytes handed to [send] go straight
   through the server's [feed]; its response bytes queue for [recv]. *)
let loopback ?max_payload ?drbg server =
  let conn = Tep_server.Server.conn server in
  let pending = Buffer.create 256 in
  make ?max_payload ?drbg
    {
      send =
        (fun bytes ->
          Buffer.add_string pending (Tep_server.Server.feed conn bytes));
      recv =
        (fun () ->
          let s = Buffer.contents pending in
          Buffer.clear pending;
          s);
      close = ignore;
    }

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let fd_transport fd =
  let chunk = Bytes.create 4096 in
  {
    send = (fun s -> write_all fd s);
    recv =
      (fun () ->
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ""
        | n -> Bytes.sub_string chunk 0 n
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            "");
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

(* Exponential backoff with deterministic jitter across connection
   attempts: a daemon that is still binding its socket is reachable a
   few hundred ms later — but a fleet of clients cut off by a restart
   must not retry in lockstep.  Attempt [i] sleeps
   [backoff * 2^i * (0.5 + u)] with [u] in [0,1) drawn from the
   session DRBG, so the schedule is reproducible from the client's
   seed yet decorrelated between clients.  Without a DRBG, [u] pins to
   0.5 and the schedule is exactly the historical [backoff * 2^i]. *)
let jitter_factor = function
  | None -> 1.
  | Some drbg ->
      0.5 +. (float_of_int (Tep_crypto.Drbg.uniform_int drbg 1024) /. 1024.)

let retry_delays ?drbg ?(retries = 5) ?(backoff = 0.05) () =
  List.init retries (fun i ->
      backoff *. (2. ** float_of_int i) *. jitter_factor drbg)

let connect_with_retry ?(retries = 5) ?(backoff = 0.05) ?drbg make_fd =
  let rec go attempt delay =
    match make_fd () with
    | fd -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
        if attempt >= retries then
          Error
            (Printf.sprintf "connect failed after %d attempts: %s" (attempt + 1)
               (Unix.error_message err))
        else begin
          Unix.sleepf (delay *. jitter_factor drbg);
          go (attempt + 1) (delay *. 2.)
        end
  in
  go 0 backoff

let connect_unix ?max_payload ?drbg ?retries ?backoff path =
  let make_fd () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  Result.map
    (fun fd -> make ?max_payload ?drbg (fd_transport fd))
    (connect_with_retry ?retries ?backoff ?drbg make_fd)

let connect_tcp ?max_payload ?drbg ?retries ?backoff ~host ~port () =
  let make_fd () =
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
            raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  Result.map
    (fun fd -> make ?max_payload ?drbg (fd_transport fd))
    (connect_with_retry ?retries ?backoff ?drbg make_fd)

(* ------------------------------------------------------------------ *)
(* Frame exchange                                                      *)
(* ------------------------------------------------------------------ *)

(* Mirrors the server's [feed] buffering: chunks accumulate in a
   Buffer and the parse window is only materialised once the frame
   could be complete, so a large response costs O(n), not O(n^2). *)
let read_frame t =
  let rec fill () =
    if Buffer.length t.inbox >= t.need then parse ()
    else
      match t.transport.recv () with
      | "" -> Error "connection closed by server"
      | chunk ->
          Buffer.add_string t.inbox chunk;
          fill ()
  and parse () =
    let buffered = Buffer.contents t.inbox in
    match Frame.parse ~max_payload:t.max_payload buffered 0 with
    | Frame.Frame { kind; payload; consumed } ->
        Buffer.clear t.inbox;
        Buffer.add_substring t.inbox buffered consumed
          (String.length buffered - consumed);
        t.need <- Frame.header_len;
        Ok (kind, payload)
    | Frame.Need_more n ->
        t.need <- String.length buffered + n;
        fill ()
    | Frame.Oversized n ->
        Error (Printf.sprintf "oversized frame from server (%d bytes)" n)
    | Frame.Corrupt reason -> Error ("corrupt frame from server: " ^ reason)
  in
  fill ()

let decode_response_at payload off =
  match Message.decode_response payload off with
  | resp, consumed when consumed = String.length payload -> Ok resp
  | _ -> Error "trailing bytes in server response"
  | exception (Failure e | Invalid_argument e) ->
      Error ("malformed server response: " ^ e)

let decode_response payload = decode_response_at payload 0

let error_of code message =
  Error (Printf.sprintf "%s: %s" (Message.error_code_name code) message)

let send_clear t req =
  t.transport.send
    (Frame.to_string ~kind:Frame.Clear (Message.request_to_string req))

(* A clear frame after authentication can only be the server's dying
   error report (auth failure, corrupt frame); surface it as the
   call's error. *)
let read_clear_error payload =
  match decode_response payload with
  | Ok (Message.Error_resp { code; message }) -> error_of code message
  | Ok _ -> Error "unexpected clear frame from server"
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Pipelined request/collect                                           *)
(* ------------------------------------------------------------------ *)

let request_async t req =
  if t.closed then Error "client closed"
  else
    match t.session with
    | None -> Error "not authenticated"
    | Some s ->
        let cid = s.next_cid in
        s.next_cid <- cid + 1;
        let msg = Message.with_cid cid (Message.request_to_string req) in
        let sealed =
          Session.seal_keyed s.keyed ~dir:Session.To_server ~seq:s.send_seq msg
        in
        s.send_seq <- s.send_seq + 1;
        t.transport.send (Frame.to_string ~kind:Frame.Sealed sealed);
        Ok cid

(* Block for [cid]'s response.  Responses for other in-flight cids are
   stashed for their own [collect]; a connection-level error (the
   server's reserved cid 0) fails the call. *)
let collect t cid =
  if t.closed then Error "client closed"
  else
    match t.session with
    | None -> Error "not authenticated"
    | Some s -> (
        match Hashtbl.find_opt s.stashed cid with
        | Some resp ->
            Hashtbl.remove s.stashed cid;
            Ok resp
        | None ->
            let rec next () =
              match read_frame t with
              | Error e -> Error e
              | Ok (Frame.Clear, payload) -> read_clear_error payload
              | Ok (Frame.Sealed, payload) -> (
                  match
                    Session.open_keyed s.keyed ~dir:Session.To_client
                      ~seq:s.recv_seq payload
                  with
                  | Error e -> Error ("response rejected: " ^ e)
                  | Ok msg -> (
                      s.recv_seq <- s.recv_seq + 1;
                      match Message.read_cid msg with
                      | None -> Error "response missing correlation id"
                      | Some (rcid, off) -> (
                          match decode_response_at msg off with
                          | Error e -> Error e
                          | Ok resp when rcid = cid -> Ok resp
                          | Ok (Message.Error_resp { code; message })
                            when rcid = Message.conn_cid ->
                              error_of code message
                          | Ok resp ->
                              Hashtbl.replace s.stashed rcid resp;
                              next ())))
            in
            next ())

(* Blocking exchange: exactly a pipeline of depth one. *)
let rpc t req =
  match request_async t req with Error e -> Error e | Ok cid -> collect t cid

(* ------------------------------------------------------------------ *)
(* Authentication                                                      *)
(* ------------------------------------------------------------------ *)

let authenticate t participant =
  if t.closed then Error "client closed"
  else if t.session <> None then Error "already authenticated"
  else begin
    let name = Participant.name participant in
    let client_nonce = Tep_crypto.Drbg.generate t.drbg Session.nonce_len in
    send_clear t (Message.Hello { name; nonce = client_nonce });
    match read_frame t with
    | Error e -> Error e
    | Ok (Frame.Sealed, _) -> Error "unexpected sealed frame during handshake"
    | Ok (Frame.Clear, payload) -> (
        match decode_response payload with
        | Error e -> Error e
        | Ok (Message.Error_resp { code; message }) -> error_of code message
        | Ok (Message.Challenge { nonce = server_nonce }) -> (
            (* Key transport: the session secret travels RSA-encrypted
               to the participant's certificate key, and the transcript
               signature covers the ciphertext — an observer of the
               handshake cannot derive the session key, and only the
               holder of the participant's private key (the daemon's
               workspace copy) can complete it. *)
            let secret =
              Tep_crypto.Drbg.generate t.drbg Session.key_share_len
            in
            let key_share =
              Tep_crypto.Rsa.encrypt t.drbg
                (Participant.public_key participant)
                secret
            in
            let transcript =
              Session.transcript ~name ~client_nonce ~server_nonce ~key_share
            in
            let signature = Participant.sign participant transcript in
            send_clear t (Message.Auth { signature; key_share });
            let key = Session.derive_key ~transcript ~signature ~secret in
            let keyed = Session.keyed ~key in
            match read_frame t with
            | Error e -> Error e
            | Ok (Frame.Clear, payload) -> read_clear_error payload
            | Ok (Frame.Sealed, payload) -> (
                match Session.open_keyed keyed ~dir:Session.To_client ~seq:0 payload with
                | Error e -> Error ("server failed key confirmation: " ^ e)
                | Ok msg -> (
                    (* Auth_ok rides the freshly sealed channel, so it
                       already carries the reserved connection cid. *)
                    match Message.read_cid msg with
                    | None -> Error "auth response missing correlation id"
                    | Some (cid, off) when cid = Message.conn_cid -> (
                        match decode_response_at msg off with
                        | Error e -> Error e
                        | Ok (Message.Auth_ok _) ->
                            t.session <-
                              Some
                                {
                                  keyed;
                                  send_seq = 0;
                                  recv_seq = 1;
                                  next_cid = 1;
                                  stashed = Hashtbl.create 8;
                                };
                            Ok ()
                        | Ok (Message.Error_resp { code; message }) ->
                            error_of code message
                        | Ok _ -> Error "unexpected response to auth")
                    | Some _ -> Error "unexpected correlation id on auth")))
        | Ok _ -> Error "unexpected response to hello")
  end

let authenticated t = t.session <> None

(* ------------------------------------------------------------------ *)
(* Typed wrappers                                                      *)
(* ------------------------------------------------------------------ *)

let unexpected = Error "unexpected response from server"

let unwrap f = function
  | Error e -> Error e
  | Ok (Message.Error_resp { code; message }) -> error_of code message
  | Ok resp -> f resp

let insert t ~table cells =
  rpc t (Message.Submit (Message.Op_insert { table; cells }))
  |> unwrap (function
       | Message.Submitted { row = Some row; records; _ } -> Ok (row, records)
       | _ -> unexpected)

let update t ~table ~row ~col value =
  rpc t (Message.Submit (Message.Op_update { table; row; col; value }))
  |> unwrap (function
       | Message.Submitted { records; _ } -> Ok records
       | _ -> unexpected)

let delete t ~table ~row =
  rpc t (Message.Submit (Message.Op_delete { table; row }))
  |> unwrap (function
       | Message.Submitted { records; _ } -> Ok records
       | _ -> unexpected)

let aggregate t ?(value = Tep_store.Value.Text "aggregate") inputs =
  rpc t (Message.Submit (Message.Op_aggregate { inputs; value }))
  |> unwrap (function
       | Message.Submitted { oid = Some oid; records; _ } -> Ok (oid, records)
       | _ -> unexpected)

let query t ?oid () =
  rpc t (Message.Query oid)
  |> unwrap (function Message.Records rs -> Ok rs | _ -> unexpected)

let verify t ?oid () =
  rpc t (Message.Verify oid)
  |> unwrap (function
       | Message.Verified { report; store_audit } -> Ok (report, store_audit)
       | _ -> unexpected)

let audit t =
  rpc t Message.Audit
  |> unwrap (function
       | Message.Audited { report; examined; objects } ->
           Ok (report, examined, objects)
       | _ -> unexpected)

let checkpoint t =
  rpc t Message.Checkpoint
  |> unwrap (function
       | Message.Checkpointed { generation; lsn } -> Ok (generation, lsn)
       | _ -> unexpected)

let root_hash t =
  rpc t Message.Root_hash
  |> unwrap (function Message.Root { hash } -> Ok hash | _ -> unexpected)

type server_stats = {
  batches : int;  (* group commits the batcher has executed *)
  ops : int;  (* submits carried by those commits *)
  sign_wall_us : int;  (* wall-clock µs inside commit signing stages *)
  sign_cpu_us : int;  (* cumulative per-signature µs across domains *)
}

let stats t =
  rpc t Message.Stats
  |> unwrap (function
       | Message.Stats_resp { batches; ops; sign_wall_us; sign_cpu_us } ->
           Ok { batches; ops; sign_wall_us; sign_cpu_us }
       | _ -> unexpected)

(* ------------------------------------------------------------------ *)
(* Async submit wrappers (pipelining)                                  *)
(* ------------------------------------------------------------------ *)

let submit_async t op = request_async t (Message.Submit op)

let insert_async t ~table cells =
  submit_async t (Message.Op_insert { table; cells })

let update_async t ~table ~row ~col value =
  submit_async t (Message.Op_update { table; row; col; value })

let collect_submitted t cid =
  collect t cid
  |> unwrap (function
       | Message.Submitted { row; oid; records } -> Ok (row, oid, records)
       | _ -> unexpected)
