(* Client for the provenance service.

   The transport is abstract — raw bytes out, raw bytes in — with
   three implementations: Unix-domain socket, TCP, and an in-process
   loopback that feeds the server's connection state machine directly.
   Everything above the transport (framing, handshake, session
   sealing, codecs) is shared, so a loopback test exercises the same
   protocol path as a socket client.

   Two calling styles share one wire state:

   - Blocking: every typed wrapper ([insert], [verify], ...) is one
     request/response exchange, exactly as before pipelining existed.
   - Pipelined: [request_async] seals and sends a request tagged with
     a fresh correlation id and returns immediately; [collect] later
     blocks for that id's response, stashing any other responses that
     arrive first.  Several requests may be in flight on the one
     connection; the server echoes each cid, so collection order is
     free.

   Failures come back as [Error msg], never exceptions. *)

module Frame = Tep_wire.Frame
module Message = Tep_wire.Message
module Session = Tep_wire.Session
module Participant = Tep_core.Participant
module Proof = Tep_tree.Proof
module Verifier = Tep_core.Verifier

type transport = {
  send : string -> unit;
  recv : unit -> string; (* some bytes; "" means the peer closed *)
  close : unit -> unit;
}

type session = {
  keyed : Session.keyed; (* precomputed HMAC key schedule *)
  mutable send_seq : int;
  mutable recv_seq : int;
  mutable next_cid : int; (* correlation ids; 0 is the server's *)
  stashed : (int, Message.response) Hashtbl.t;
      (* responses that arrived while collecting a different cid *)
}

(* Client-side circuit breaker (overload control).  Consecutive
   Overloaded responses (or replay-exhausted connection failures) trip
   it; while open, writes fail fast locally instead of piling onto a
   server that is already shedding.  After [cooldown] seconds one
   probe write is let through (half-open): success closes the breaker,
   another failure re-opens it.  [now] is injectable so tests can march
   time forward deterministically. *)
type breaker_state = B_closed | B_open of float (* reopen deadline *) | B_half_open

type breaker = {
  mutable b_state : breaker_state;
  mutable b_consecutive : int; (* failures since the last success *)
  mutable b_threshold : int;
  mutable b_cooldown : float;
  mutable b_now : unit -> float;
}

type t = {
  mutable transport : transport;
  reconnect : (unit -> (transport, string) result) option;
      (* transport factory: how to redial the same endpoint *)
  mutable participant : Participant.t option;
      (* who we authenticated as, for transparent re-auth *)
  drbg : Tep_crypto.Drbg.t;
  max_payload : int;
  inbox : Buffer.t; (* unconsumed input; compacted once per frame *)
  mutable need : int; (* skip parse attempts below this many bytes *)
  mutable session : session option;
  mutable closed : bool;
  inflight : (int, Message.request) Hashtbl.t;
      (* sent but not yet answered, by cid — the replay set *)
  max_replays : int; (* reconnect-and-replay rounds per collect *)
  breaker : breaker;
}

let make ?(max_payload = Frame.default_max_payload) ?drbg ?reconnect
    ?(max_replays = 3) transport =
  let drbg =
    match drbg with Some d -> d | None -> Tep_crypto.Drbg.create_system ()
  in
  {
    transport;
    reconnect;
    participant = None;
    drbg;
    max_payload;
    inbox = Buffer.create 256;
    need = Frame.header_len;
    session = None;
    closed = false;
    inflight = Hashtbl.create 8;
    max_replays;
    breaker =
      {
        b_state = B_closed;
        b_consecutive = 0;
        b_threshold = 5;
        b_cooldown = 1.0;
        b_now = Unix.gettimeofday;
      };
  }

let set_breaker ?threshold ?cooldown ?now t =
  let b = t.breaker in
  Option.iter (fun v -> b.b_threshold <- v) threshold;
  Option.iter (fun v -> b.b_cooldown <- v) cooldown;
  Option.iter (fun v -> b.b_now <- v) now

let breaker_state t =
  match t.breaker.b_state with
  | B_closed -> `Closed
  | B_open _ -> `Open
  | B_half_open -> `Half_open

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.transport.close ()
  end

(* ------------------------------------------------------------------ *)
(* Transports                                                          *)
(* ------------------------------------------------------------------ *)

(* Same codec path, no sockets: bytes handed to [send] go straight
   through the server's [feed]; its response bytes queue for [recv].
   Reconnecting opens a fresh server-side connection state machine
   against the same server — the loopback analogue of redialing. *)
let loopback ?max_payload ?drbg ?max_replays server =
  let fresh () =
    let conn = Tep_server.Server.conn server in
    let pending = Buffer.create 256 in
    {
      send =
        (fun bytes ->
          Buffer.add_string pending (Tep_server.Server.feed conn bytes));
      recv =
        (fun () ->
          let s = Buffer.contents pending in
          Buffer.clear pending;
          s);
      close = ignore;
    }
  in
  make ?max_payload ?drbg ?max_replays
    ~reconnect:(fun () -> Ok (fresh ()))
    (fresh ())

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let fd_transport fd =
  let chunk = Bytes.create 4096 in
  {
    send =
      (fun s ->
        (* a peer that died mid-write surfaces on the next recv as a
           clean close, same as a peer that died between frames *)
        try write_all fd s
        with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ());
    recv =
      (fun () ->
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ""
        | n -> Bytes.sub_string chunk 0 n
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            "");
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

(* Exponential backoff with deterministic jitter across connection
   attempts: a daemon that is still binding its socket is reachable a
   few hundred ms later — but a fleet of clients cut off by a restart
   must not retry in lockstep.  Attempt [i] sleeps
   [backoff * 2^i * (0.5 + u)] with [u] in [0,1) drawn from the
   session DRBG, so the schedule is reproducible from the client's
   seed yet decorrelated between clients.  Without a DRBG, [u] pins to
   0.5 and the schedule is exactly the historical [backoff * 2^i]. *)
let jitter_factor = function
  | None -> 1.
  | Some drbg ->
      0.5 +. (float_of_int (Tep_crypto.Drbg.uniform_int drbg 1024) /. 1024.)

let retry_delays ?drbg ?(retries = 5) ?(backoff = 0.05) () =
  List.init retries (fun i ->
      backoff *. (2. ** float_of_int i) *. jitter_factor drbg)

(* A server that closes the connection mid-write (drain, cap, crash)
   must surface as EPIPE on the write — which the retry/replay
   machinery already handles — not as a process-killing SIGPIPE. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let connect_with_retry ?(retries = 5) ?(backoff = 0.05) ?drbg make_fd =
  Lazy.force ignore_sigpipe;
  let rec go attempt delay =
    match make_fd () with
    | fd -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
        if attempt >= retries then
          Error
            (Printf.sprintf "connect failed after %d attempts: %s" (attempt + 1)
               (Unix.error_message err))
        else begin
          Unix.sleepf (delay *. jitter_factor drbg);
          go (attempt + 1) (delay *. 2.)
        end
  in
  go 0 backoff

let connect_unix ?max_payload ?drbg ?retries ?backoff ?max_replays path =
  let make_fd () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let dial () =
    Result.map fd_transport (connect_with_retry ?retries ?backoff ?drbg make_fd)
  in
  Result.map
    (fun tr -> make ?max_payload ?drbg ?max_replays ~reconnect:dial tr)
    (dial ())

let connect_tcp ?max_payload ?drbg ?retries ?backoff ?max_replays ~host ~port
    () =
  let make_fd () =
    let addr =
      try Unix.inet_addr_of_string host
      with Failure _ -> (
        match Unix.gethostbyname host with
        | h -> h.Unix.h_addr_list.(0)
        | exception Not_found ->
            raise (Unix.Unix_error (Unix.EHOSTUNREACH, "gethostbyname", host)))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let dial () =
    Result.map fd_transport (connect_with_retry ?retries ?backoff ?drbg make_fd)
  in
  Result.map
    (fun tr -> make ?max_payload ?drbg ?max_replays ~reconnect:dial tr)
    (dial ())

(* ------------------------------------------------------------------ *)
(* Frame exchange                                                      *)
(* ------------------------------------------------------------------ *)

(* Mirrors the server's [feed] buffering: chunks accumulate in a
   Buffer and the parse window is only materialised once the frame
   could be complete, so a large response costs O(n), not O(n^2). *)
let read_frame t =
  let rec fill () =
    if Buffer.length t.inbox >= t.need then parse ()
    else
      match t.transport.recv () with
      | "" -> Error "connection closed by server"
      | chunk ->
          Buffer.add_string t.inbox chunk;
          fill ()
  and parse () =
    let buffered = Buffer.contents t.inbox in
    match Frame.parse ~max_payload:t.max_payload buffered 0 with
    | Frame.Frame { kind; payload; consumed } ->
        Buffer.clear t.inbox;
        Buffer.add_substring t.inbox buffered consumed
          (String.length buffered - consumed);
        t.need <- Frame.header_len;
        Ok (kind, payload)
    | Frame.Need_more n ->
        t.need <- String.length buffered + n;
        fill ()
    | Frame.Oversized n ->
        Error (Printf.sprintf "oversized frame from server (%d bytes)" n)
    | Frame.Corrupt reason -> Error ("corrupt frame from server: " ^ reason)
  in
  fill ()

let decode_response_at payload off =
  match Message.decode_response payload off with
  | resp, consumed when consumed = String.length payload -> Ok resp
  | _ -> Error "trailing bytes in server response"
  | exception (Failure e | Invalid_argument e) ->
      Error ("malformed server response: " ^ e)

let decode_response payload = decode_response_at payload 0

let error_of code message =
  Error (Printf.sprintf "%s: %s" (Message.error_code_name code) message)

let send_clear t req =
  t.transport.send
    (Frame.to_string ~kind:Frame.Clear (Message.request_to_string req))

(* A clear frame after authentication can only be the server's dying
   error report (auth failure, corrupt frame); surface it as the
   call's error. *)
let read_clear_error payload =
  match decode_response payload with
  | Ok (Message.Error_resp { code; message }) -> error_of code message
  | Ok _ -> Error "unexpected clear frame from server"
  | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* Authentication                                                      *)
(* ------------------------------------------------------------------ *)

let authenticate t participant =
  if t.closed then Error "client closed"
  else if t.session <> None then Error "already authenticated"
  else begin
    let name = Participant.name participant in
    let client_nonce = Tep_crypto.Drbg.generate t.drbg Session.nonce_len in
    send_clear t (Message.Hello { name; nonce = client_nonce });
    match read_frame t with
    | Error e -> Error e
    | Ok (Frame.Sealed, _) -> Error "unexpected sealed frame during handshake"
    | Ok (Frame.Clear, payload) -> (
        match decode_response payload with
        | Error e -> Error e
        | Ok (Message.Error_resp { code; message }) -> error_of code message
        | Ok (Message.Challenge { nonce = server_nonce }) -> (
            (* Key transport: the session secret travels RSA-encrypted
               to the participant's certificate key, and the transcript
               signature covers the ciphertext — an observer of the
               handshake cannot derive the session key, and only the
               holder of the participant's private key (the daemon's
               workspace copy) can complete it. *)
            let secret =
              Tep_crypto.Drbg.generate t.drbg Session.key_share_len
            in
            let key_share =
              Tep_crypto.Rsa.encrypt t.drbg
                (Participant.public_key participant)
                secret
            in
            let transcript =
              Session.transcript ~name ~client_nonce ~server_nonce ~key_share
            in
            let signature = Participant.sign participant transcript in
            send_clear t (Message.Auth { signature; key_share });
            let key = Session.derive_key ~transcript ~signature ~secret in
            let keyed = Session.keyed ~key in
            match read_frame t with
            | Error e -> Error e
            | Ok (Frame.Clear, payload) -> read_clear_error payload
            | Ok (Frame.Sealed, payload) -> (
                match Session.open_keyed keyed ~dir:Session.To_client ~seq:0 payload with
                | Error e -> Error ("server failed key confirmation: " ^ e)
                | Ok msg -> (
                    (* Auth_ok rides the freshly sealed channel, so it
                       already carries the reserved connection cid. *)
                    match Message.read_cid msg with
                    | None -> Error "auth response missing correlation id"
                    | Some (cid, off) when cid = Message.conn_cid -> (
                        match decode_response_at msg off with
                        | Error e -> Error e
                        | Ok (Message.Auth_ok _) ->
                            t.session <-
                              Some
                                {
                                  keyed;
                                  send_seq = 0;
                                  recv_seq = 1;
                                  next_cid = 1;
                                  stashed = Hashtbl.create 8;
                                };
                            t.participant <- Some participant;
                            Ok ()
                        | Ok (Message.Error_resp { code; message }) ->
                            error_of code message
                        | Ok _ -> Error "unexpected response to auth")
                    | Some _ -> Error "unexpected correlation id on auth")))
        | Ok _ -> Error "unexpected response to hello")
  end

let authenticated t = t.session <> None

(* ------------------------------------------------------------------ *)
(* Reconnect and replay                                                *)
(* ------------------------------------------------------------------ *)

let seal_request s ~cid req =
  let msg = Message.with_cid cid (Message.request_to_string req) in
  let sealed =
    Session.seal_keyed s.keyed ~dir:Session.To_server ~seq:s.send_seq msg
  in
  s.send_seq <- s.send_seq + 1;
  Frame.to_string ~kind:Frame.Sealed sealed

(* Socket-level send failures become errors; injected faults
   ({!Tep_fault.Fault.Crash}) still propagate so failpoint tests keep
   their semantics. *)
let try_send t bytes =
  match t.transport.send bytes with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) ->
      Error ("connection lost: " ^ Unix.error_message err)
  | exception Sys_error e -> Error ("connection lost: " ^ e)

(* Re-send every request the client never saw an answer for, on the
   fresh session, under the original correlation ids.  Writes carry
   their original request id inside [Submit_idem]/[Checkpoint_idem],
   so a replay the server already executed is answered from its dedup
   table — this is what makes replay safe. *)
let replay_inflight t s =
  let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.inflight [] in
  List.fold_left
    (fun acc cid ->
      match acc with
      | Error _ as e -> e
      | Ok () -> try_send t (seal_request s ~cid (Hashtbl.find t.inflight cid)))
    (Ok ())
    (List.sort compare cids)

(* Redial the endpoint, re-authenticate as the same participant, and
   replay the in-flight window.  Correlation ids keep counting up and
   stashed responses survive the swap, so outstanding [collect]s stay
   valid across the reconnect.  The dial+handshake+replay round itself
   retries a few times — on a faulty network the reconnect attempt is
   as exposed as the connection that just died. *)
let reestablish t =
  match (t.reconnect, t.participant) with
  | None, _ -> Error "no reconnector configured"
  | _, None -> Error "connection lost before authentication"
  | Some dial, Some participant ->
      let old = t.session in
      let rec go attempt last_err =
        if attempt >= 3 then Error last_err
        else begin
          (try t.transport.close ()
           with Unix.Unix_error _ | Sys_error _ -> ());
          match dial () with
          | Error e -> go (attempt + 1) ("reconnect failed: " ^ e)
          | Ok tr -> (
              t.transport <- tr;
              Buffer.clear t.inbox;
              t.need <- Frame.header_len;
              t.session <- None;
              match authenticate t participant with
              | Error e -> go (attempt + 1) ("re-authentication failed: " ^ e)
              | Ok () -> (
                  match t.session with
                  | None -> go (attempt + 1) "re-authentication lost the session"
                  | Some s -> (
                      Option.iter
                        (fun o ->
                          s.next_cid <- o.next_cid;
                          Hashtbl.iter
                            (fun k v -> Hashtbl.replace s.stashed k v)
                            o.stashed)
                        old;
                      match replay_inflight t s with
                      | Ok () -> Ok ()
                      | Error e -> go (attempt + 1) ("replay failed: " ^ e))))
        end
      in
      go 0 "reconnect failed"

(* ------------------------------------------------------------------ *)
(* Circuit breaker transitions                                         *)
(* ------------------------------------------------------------------ *)

let breaker_note_failure b =
  b.b_consecutive <- b.b_consecutive + 1;
  match b.b_state with
  | B_half_open -> b.b_state <- B_open (b.b_now () +. b.b_cooldown)
  | B_open _ -> ()
  | B_closed ->
      if b.b_consecutive >= b.b_threshold then
        b.b_state <- B_open (b.b_now () +. b.b_cooldown)

let breaker_note_success b =
  b.b_consecutive <- 0;
  b.b_state <- B_closed

(* Admission gate for writes.  Open: fail fast locally.  Open past
   the cooldown: become half-open and let this one caller through as
   the probe.  Half-open: the probe is already out; fail fast. *)
let breaker_admit b =
  match b.b_state with
  | B_closed -> Ok ()
  | B_half_open -> Error "circuit breaker open (probe in flight)"
  | B_open until ->
      let now = b.b_now () in
      if now >= until then begin
        b.b_state <- B_half_open;
        Ok ()
      end
      else
        Error
          (Printf.sprintf "circuit breaker open (retry in %.0f ms)"
             ((until -. now) *. 1000.))

let is_write = function
  | Message.Submit _ | Message.Submit_idem _ | Message.Checkpoint
  | Message.Checkpoint_idem _ ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Pipelined request/collect                                           *)
(* ------------------------------------------------------------------ *)

let rec request_async t req =
  if t.closed then Error "client closed"
  else
    match t.session with
    | None -> (
        (* A reconnectable client whose session died (a failed earlier
           recovery round) self-heals on the next request instead of
           staying wedged on "not authenticated". *)
        match (t.reconnect, t.participant) with
        | Some _, Some _ -> (
            match reestablish t with
            | Error e -> Error e
            | Ok () -> request_async t req)
        | _ -> Error "not authenticated")
    | Some s -> (
        match if is_write req then breaker_admit t.breaker else Ok () with
        | Error e -> Error e
        | Ok () -> (
            let cid = s.next_cid in
            s.next_cid <- cid + 1;
            Hashtbl.replace t.inflight cid req;
            match try_send t (seal_request s ~cid req) with
            | Ok () -> Ok cid
            | Error _ -> (
                (* the connection died under the send; the request is
                   already in the replay set, so a successful redial
                   carries it out *)
                match reestablish t with
                | Ok () -> Ok cid
                | Error e ->
                    Hashtbl.remove t.inflight cid;
                    Error e)))

(* Block for [cid]'s response.  Responses for other in-flight cids are
   stashed for their own [collect].  Channel-level failures — the
   transport dying, a corrupt or unverifiable frame, the server's
   reserved-cid error report — trigger up to [max_replays] transparent
   reconnect-and-replay rounds before surfacing the error. *)
let collect t cid =
  if t.closed then Error "client closed"
  else
    match t.session with
    | None -> Error "not authenticated"
    | Some s0 ->
        (* Only write outcomes feed the breaker: a healthy read path
           must neither reset nor trip a breaker that gates writes. *)
        let was_write =
          match Hashtbl.find_opt t.inflight cid with
          | Some req -> is_write req
          | None -> false
        in
        let finish outcome =
          Hashtbl.remove t.inflight cid;
          if was_write then (
            match outcome with
            | Ok (Message.Overloaded_resp _) | Error _ ->
                breaker_note_failure t.breaker
            | Ok _ -> breaker_note_success t.breaker);
          outcome
        in
        let rec attempt s replays =
          match Hashtbl.find_opt s.stashed cid with
          | Some resp ->
              Hashtbl.remove s.stashed cid;
              finish (Ok resp)
          | None -> read_loop s replays
        and read_loop s replays =
          match read_frame t with
          | Error e -> recover s replays e
          | Ok (Frame.Clear, payload) -> (
              match read_clear_error payload with
              | Error e -> recover s replays e
              | Ok _ -> recover s replays "unexpected clear frame from server")
          | Ok (Frame.Sealed, payload) -> (
              match
                Session.open_keyed s.keyed ~dir:Session.To_client
                  ~seq:s.recv_seq payload
              with
              | Error e -> recover s replays ("response rejected: " ^ e)
              | Ok msg -> (
                  s.recv_seq <- s.recv_seq + 1;
                  match Message.read_cid msg with
                  | None -> finish (Error "response missing correlation id")
                  | Some (rcid, off) -> (
                      match decode_response_at msg off with
                      | Error e -> finish (Error e)
                      | Ok resp when rcid = cid -> finish (Ok resp)
                      | Ok (Message.Error_resp { code; message })
                        when rcid = Message.conn_cid ->
                          recover s replays
                            (Printf.sprintf "%s: %s"
                               (Message.error_code_name code)
                               message)
                      | Ok resp ->
                          Hashtbl.replace s.stashed rcid resp;
                          Hashtbl.remove t.inflight rcid;
                          read_loop s replays)))
        and recover _s replays err =
          if replays >= t.max_replays then finish (Error err)
          else
            match reestablish t with
            | Error e -> finish (Error (err ^ "; " ^ e))
            | Ok () -> (
                match t.session with
                | None -> finish (Error err)
                | Some s' -> attempt s' (replays + 1))
        in
        attempt s0 0

(* Blocking exchange: exactly a pipeline of depth one. *)
let rpc t req =
  match request_async t req with Error e -> Error e | Ok cid -> collect t cid

(* Client-generated request ids: DRBG-backed, so deterministic under a
   seeded client yet unique across retries of *different* operations.
   An application-level retry of the *same* operation must reuse the
   rid it drew — that is the idempotency contract. *)
let fresh_rid t =
  let raw = Tep_crypto.Drbg.generate t.drbg 12 in
  let hex = Buffer.create 24 in
  String.iter
    (fun ch -> Buffer.add_string hex (Printf.sprintf "%02x" (Char.code ch)))
    raw;
  Buffer.contents hex

(* ------------------------------------------------------------------ *)
(* Typed wrappers                                                      *)
(* ------------------------------------------------------------------ *)

let unexpected = Error "unexpected response from server"

let unwrap f = function
  | Error e -> Error e
  | Ok (Message.Error_resp { code; message }) -> error_of code message
  | Ok (Message.Overloaded_resp { retry_after_ms; message }) ->
      Error
        (Printf.sprintf "overloaded: %s (retry after %d ms)" message
           retry_after_ms)
  | Ok resp -> f resp

(* Every blocking write travels as [Submit_idem] under a fresh request
   id, so the reconnect-and-replay path (and any server-side
   duplication of the sealed frame) can never double-apply it. *)
let submit_with_rid t ~rid op = rpc t (Message.Submit_idem { rid; op })

let insert t ~table cells =
  submit_with_rid t ~rid:(fresh_rid t) (Message.Op_insert { table; cells })
  |> unwrap (function
       | Message.Submitted { row = Some row; records; _ } -> Ok (row, records)
       | _ -> unexpected)

let update t ~table ~row ~col value =
  submit_with_rid t ~rid:(fresh_rid t)
    (Message.Op_update { table; row; col; value })
  |> unwrap (function
       | Message.Submitted { records; _ } -> Ok records
       | _ -> unexpected)

let delete t ~table ~row =
  submit_with_rid t ~rid:(fresh_rid t) (Message.Op_delete { table; row })
  |> unwrap (function
       | Message.Submitted { records; _ } -> Ok records
       | _ -> unexpected)

let aggregate t ?(value = Tep_store.Value.Text "aggregate") inputs =
  submit_with_rid t ~rid:(fresh_rid t)
    (Message.Op_aggregate { inputs; value })
  |> unwrap (function
       | Message.Submitted { oid = Some oid; records; _ } -> Ok (oid, records)
       | _ -> unexpected)

(* Application-level idempotent retry: the caller owns the rid and
   reuses it when re-issuing an operation it is unsure about. *)
let submit_idem t ~rid op =
  submit_with_rid t ~rid op
  |> unwrap (function
       | Message.Submitted { row; oid; records } -> Ok (row, oid, records)
       | _ -> unexpected)

let query t ?oid () =
  rpc t (Message.Query oid)
  |> unwrap (function Message.Records rs -> Ok rs | _ -> unexpected)

let verify t ?oid () =
  rpc t (Message.Verify oid)
  |> unwrap (function
       | Message.Verified { report; store_audit } -> Ok (report, store_audit)
       | _ -> unexpected)

let audit t =
  rpc t Message.Audit
  |> unwrap (function
       | Message.Audited { report; examined; objects } ->
           Ok (report, examined, objects)
       | _ -> unexpected)

let checkpoint t =
  rpc t (Message.Checkpoint_idem { rid = fresh_rid t })
  |> unwrap (function
       | Message.Checkpointed { generation; lsn } -> Ok (generation, lsn)
       | _ -> unexpected)

let root_hash t =
  rpc t Message.Root_hash
  |> unwrap (function Message.Root { hash } -> Ok hash | _ -> unexpected)

type server_stats = {
  batches : int;  (* group commits the batcher has executed *)
  ops : int;  (* submits carried by those commits *)
  sign_wall_us : int;  (* wall-clock µs inside commit signing stages *)
  sign_cpu_us : int;  (* cumulative per-signature µs across domains *)
}

let stats t =
  rpc t Message.Stats
  |> unwrap (function
       | Message.Stats_resp { batches; ops; sign_wall_us; sign_cpu_us } ->
           Ok ({ batches; ops; sign_wall_us; sign_cpu_us } : server_stats)
       | _ -> unexpected)

(* Per-shard counters of a sharded server (one entry on an unsharded
   one), in shard order: each shard's batcher totals, current queue
   depth, and its server-side root-cache behaviour. *)
let shard_stats t =
  rpc t Message.Shard_stats
  |> unwrap (function
       | Message.Shard_stats_resp shards -> Ok shards
       | _ -> unexpected)

(* Health / readiness snapshot (the Ping RPC).  Reads the batcher
   counters without touching the engine locks, so it answers even
   while a slow commit is in flight. *)
type health = {
  ready : bool;  (* accepting writes (not draining) *)
  draining : bool;
  active : int;  (* concurrent socket connections *)
  queued_ops : int;  (* ops waiting in the group-commit queue *)
  h_batches : int;
  h_ops : int;
  dedup_hits : int;  (* retried writes answered without re-executing *)
  wal_failures : int;  (* group commits voided by WAL errors *)
  shed : int;  (* ops refused by admission control *)
  h_reaped : int;  (* connections closed by the server's idle reaper *)
}

let ping t =
  rpc t Message.Ping
  |> unwrap (function
       | Message.Pong
           {
             ready;
             draining;
             active;
             queued_ops;
             batches;
             ops;
             dedup_hits;
             wal_failures;
             shed;
             reaped;
           } ->
           Ok
             {
               ready;
               draining;
               active;
               queued_ops;
               h_batches = batches;
               h_ops = ops;
               dedup_hits;
               wal_failures;
               shed;
               h_reaped = reaped;
             }
       | _ -> unexpected)

(* ------------------------------------------------------------------ *)
(* Lineage (wire v5)                                                   *)
(* ------------------------------------------------------------------ *)

(* A lineage answer, decoded: the polynomial (when the kind carries
   one), the derivation depth, and the oid list (inputs or impact). *)
type lineage = {
  l_poly : Tep_prov.Polynomial.t option;
  l_depth : int;
  l_oids : Tep_tree.Oid.t list;
}

let lineage t ~kind ~oid =
  rpc t (Message.Lineage { kind; oid })
  |> unwrap (function
       | Message.Lineage_resp { poly; depth; oids } -> (
           match
             if poly = "" then Ok None
             else
               match Tep_prov.Polynomial.decode poly 0 with
               | p, off when off = String.length poly -> Ok (Some p)
               | _ -> Error "lineage: trailing polynomial bytes"
               | exception Failure e -> Error e
           with
           | Error e -> Error e
           | Ok l_poly -> Ok { l_poly; l_depth = depth; l_oids = oids })
       | _ -> unexpected)

(* An annotated result row: its row variable (the forest oid under an
   engine-backed server), its cells, and its provenance polynomial. *)
type annotated_row = {
  ar_var : int;
  ar_cells : Tep_store.Value.t array;
  ar_poly : Tep_prov.Polynomial.t;
}

(* Annotated query: plain select when [agg] is omitted, aggregate
   otherwise.  The returned annotation is decoded but NOT verified —
   callers holding a participant directory check it with
   {!Tep_prov.Annot.verify} (bin/provdb does). *)
let annotated_query t ~table ?(where = "") ?(agg = "") () =
  rpc t (Message.Annotated_query { table; where; agg })
  |> unwrap (function
       | Message.Annotated_resp { arows; avalue; annot } -> (
           match Tep_prov.Annot.of_encoded annot with
           | Error e -> Error ("annotation: " ^ e)
           | Ok a -> (
               let decoded =
                 List.fold_left
                   (fun acc (v, cells, poly) ->
                     match acc with
                     | Error _ as e -> e
                     | Ok rows -> (
                         match Tep_prov.Polynomial.decode poly 0 with
                         | p, off when off = String.length poly ->
                             Ok
                               ({ ar_var = v; ar_cells = cells; ar_poly = p }
                               :: rows)
                         | _ -> Error "row polynomial: trailing bytes"
                         | exception Failure e -> Error e))
                   (Ok []) arows
               in
               match decoded with
               | Error e -> Error e
               | Ok rows -> Ok (List.rev rows, avalue, a)))
       | _ -> unexpected)

(* ------------------------------------------------------------------ *)
(* Membership proofs and sampled audit (wire v6)                       *)
(* ------------------------------------------------------------------ *)

(* One proven leaf: the decoded membership proof, the exact encoded
   bytes it arrived as (size accounting), and the leaf's provenance
   object (its record-DAG closure, for the checksum-chain check). *)
type proof_item = {
  pf_proof : Proof.t;
  pf_encoded : string;
  pf_records : Tep_core.Record.t list;
}

type proofs = {
  pf_shard : int; (* owning shard's index, as claimed by the server *)
  pf_shard_roots : string list; (* per-shard engine roots, shard order *)
  pf_items : proof_item list;
}

(* Fetch membership proofs for one cell ([col]) or a whole row's cells
   (no [col]) under the published root.  Decoded but NOT verified —
   nothing the server sent is trusted until {!check_proofs} rechecks
   it against a root obtained independently. *)
let prove t ~table ~row ?col () =
  rpc t (Message.Prove { table; row; col })
  |> unwrap (function
       | Message.Proof_resp { shard; shard_roots; items } -> (
           let decoded =
             List.fold_left
               (fun acc (bytes, records) ->
                 match acc with
                 | Error _ as e -> e
                 | Ok out -> (
                     match Proof.of_encoded bytes with
                     | Error e -> Error e
                     | Ok p ->
                         Ok
                           ({
                              pf_proof = p;
                              pf_encoded = bytes;
                              pf_records = records;
                            }
                           :: out)))
               (Ok []) items
           in
           match decoded with
           | Error e -> Error e
           | Ok [] -> Error "proof: empty proof set"
           | Ok items ->
               if shard < 0 || shard >= List.length shard_roots then
                 Error "proof: shard index out of range"
               else
                 Ok
                   {
                     pf_shard = shard;
                     pf_shard_roots = shard_roots;
                     pf_items = List.rev items;
                   })
       | _ -> unexpected)

let merge_vreports (a : Verifier.report) (b : Verifier.report) =
  {
    Verifier.violations = a.Verifier.violations @ b.Verifier.violations;
    records_checked = a.Verifier.records_checked + b.Verifier.records_checked;
    objects_checked = a.Verifier.objects_checked + b.Verifier.objects_checked;
    signatures_checked =
      a.Verifier.signatures_checked + b.Verifier.signatures_checked;
  }

(* Recheck everything a proof answer claims against the ONE hash the
   caller already trusts (a [root_hash] fetched and pinned earlier, or
   a published root from out of band).  Nothing the server said is
   believed a priori:

   - the shard roots must recombine — root-of-roots for a sharded
     answer, the single root verbatim otherwise — into exactly
     [trusted_root] (the shard-layer step of the chain);
   - each membership proof must hash-chain its leaf to the owning
     shard's root (the in-shard Merkle step);
   - each leaf's provenance records must pass full recipient-side
     verification (R1–R8) with the proven (oid, value) snapshot as
     the delivered object — binding the proven value to its signed
     checksum chain.

   [Ok report] means every hash chain checked out; the report may
   still carry chain violations (tampered provenance), which callers
   treat exactly like a failed remote verify.  [Error] is a broken or
   forged proof — equally tampering evidence, just detected earlier. *)
let check_proofs ~algo ~directory ~trusted_root (p : proofs) =
  let published =
    match p.pf_shard_roots with
    | [ r ] -> r
    | roots -> Tep_tree.Merkle.root_of_roots algo roots
  in
  if not (String.equal published trusted_root) then
    Error "proof: shard roots do not recombine into the trusted root"
  else
    match List.nth_opt p.pf_shard_roots p.pf_shard with
    | None -> Error "proof: shard index out of range"
    | Some shard_root ->
        let empty =
          {
            Verifier.violations = [];
            records_checked = 0;
            objects_checked = 0;
            signatures_checked = 0;
          }
        in
        let rec go acc = function
          | [] -> Ok acc
          | it :: rest -> (
              match Proof.verify algo ~root_hash:shard_root it.pf_proof with
              | Error e -> Error e
              | Ok () ->
                  let data =
                    Tep_tree.Subtree.atom it.pf_proof.Proof.leaf_oid
                      it.pf_proof.Proof.leaf_value
                  in
                  let r =
                    Verifier.verify ~algo ~directory ~data it.pf_records
                  in
                  go (merge_vreports acc r) rest)
        in
        go empty p.pf_items

(* Seed-reproducible sampled audit: the server verifies a DRBG-chosen
   α-fraction (ppm) of live objects.  Returns (report, sampled,
   population); the caller derives the detection bound
   P(miss k tampered) ≤ (1−α)^k from α alone. *)
let audit_sample t ~seed ~alpha_ppm =
  rpc t (Message.Audit_sample { seed; alpha_ppm })
  |> unwrap (function
       | Message.Audit_sample_resp { report; sampled; population } ->
           Ok (report, sampled, population)
       | _ -> unexpected)

(* ------------------------------------------------------------------ *)
(* Async submit wrappers (pipelining)                                  *)
(* ------------------------------------------------------------------ *)

let submit_async t op =
  request_async t (Message.Submit_idem { rid = fresh_rid t; op })

let submit_idem_async t ~rid op =
  request_async t (Message.Submit_idem { rid; op })

let insert_async t ~table cells =
  submit_async t (Message.Op_insert { table; cells })

let update_async t ~table ~row ~col value =
  submit_async t (Message.Op_update { table; row; col; value })

let collect_submitted t cid =
  collect t cid
  |> unwrap (function
       | Message.Submitted { row; oid; records } -> Ok (row, oid, records)
       | _ -> unexpected)
