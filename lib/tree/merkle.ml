open Tep_store
module Digest_algo = Tep_crypto.Digest_algo

(* Frame layout for a node with children c1..ck (oid-sorted):
     'N' | varint oid | value | varint k | c1.oid .. ck.oid
   followed by the child hashes.  The encoding is injective: every
   field is self-delimiting, so distinct (id, value, children) triples
   produce distinct frames. *)
let node_frame buf oid value (children : Oid.t list) =
  Buffer.add_char buf 'N';
  Value.add_varint buf (Oid.to_int oid);
  Value.encode buf value;
  Value.add_varint buf (List.length children);
  List.iter (fun c -> Value.add_varint buf (Oid.to_int c)) children

let hash_value algo oid value =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'A';
  Value.add_varint buf (Oid.to_int oid);
  Value.encode buf value;
  Digest_algo.digest algo (Buffer.contents buf)

let rec hash_subtree algo (t : Subtree.t) =
  let child_hashes = List.map (hash_subtree algo) t.Subtree.children in
  let buf = Buffer.create 64 in
  node_frame buf t.Subtree.oid t.Subtree.value
    (List.map (fun c -> c.Subtree.oid) t.Subtree.children);
  List.iter (Buffer.add_string buf) child_hashes;
  Digest_algo.digest algo (Buffer.contents buf)

let node_hash algo oid value (children : (Oid.t * string) list) =
  let buf = Buffer.create 64 in
  node_frame buf oid value (List.map fst children);
  List.iter (fun (_, h) -> Buffer.add_string buf h) children;
  Digest_algo.digest algo (Buffer.contents buf)

type stats = { nodes_hashed : int; cache_hits : int; invalidations : int }

type cache = {
  algo : Digest_algo.algo;
  forest : Forest.t;
  tbl : string Oid.Tbl.t;
  mutable nodes_hashed : int;
  mutable cache_hits : int;
  mutable invalidations : int;
}

let invalidate c oid =
  let drop o =
    if Oid.Tbl.mem c.tbl o then begin
      Oid.Tbl.remove c.tbl o;
      c.invalidations <- c.invalidations + 1
    end
  in
  drop oid;
  List.iter drop (Forest.ancestors c.forest oid)

let create_cache algo forest =
  let c =
    {
      algo;
      forest;
      tbl = Oid.Tbl.create 4096;
      nodes_hashed = 0;
      cache_hits = 0;
      invalidations = 0;
    }
  in
  Forest.on_change forest (fun oid -> invalidate c oid);
  c

let algo c = c.algo

let hash_node c oid value children child_hashes =
  let buf = Buffer.create 64 in
  node_frame buf oid value children;
  List.iter (Buffer.add_string buf) child_hashes;
  c.nodes_hashed <- c.nodes_hashed + 1;
  Digest_algo.digest c.algo (Buffer.contents buf)

let hash c oid =
  let rec go oid =
    match Oid.Tbl.find_opt c.tbl oid with
    | Some h ->
        c.cache_hits <- c.cache_hits + 1;
        h
    | None -> (
        match Forest.info c.forest oid with
        | None -> failwith (Printf.sprintf "no object %s" (Oid.to_string oid))
        | Some info ->
            let child_hashes = List.map go info.Forest.children in
            let h =
              hash_node c oid info.Forest.value info.Forest.children child_hashes
            in
            Oid.Tbl.replace c.tbl oid h;
            h)
  in
  match go oid with h -> Ok h | exception Failure e -> Error e

let hash_basic c oid =
  let rec go oid =
    match Forest.info c.forest oid with
    | None -> failwith (Printf.sprintf "no object %s" (Oid.to_string oid))
    | Some info ->
        let child_hashes = List.map go info.Forest.children in
        let h =
          hash_node c oid info.Forest.value info.Forest.children child_hashes
        in
        Oid.Tbl.replace c.tbl oid h;
        h
  in
  match go oid with h -> Ok h | exception Failure e -> Error e

let clear c = Oid.Tbl.reset c.tbl

let stats c =
  {
    nodes_hashed = c.nodes_hashed;
    cache_hits = c.cache_hits;
    invalidations = c.invalidations;
  }

let reset_stats c =
  c.nodes_hashed <- 0;
  c.cache_hits <- 0;
  c.invalidations <- 0
