open Tep_store
module Digest_algo = Tep_crypto.Digest_algo

(* Frame layout for a node with children c1..ck (oid-sorted):
     'N' | varint oid | value | varint k | c1.oid .. ck.oid
   followed by the child hashes.  The encoding is injective: every
   field is self-delimiting, so distinct (id, value, children) triples
   produce distinct frames. *)
let node_frame buf oid value (children : Oid.t list) =
  Buffer.add_char buf 'N';
  Value.add_varint buf (Oid.to_int oid);
  Value.encode buf value;
  Value.add_varint buf (List.length children);
  List.iter (fun c -> Value.add_varint buf (Oid.to_int c)) children

let hash_value algo oid value =
  let buf = Buffer.create 32 in
  Buffer.add_char buf 'A';
  Value.add_varint buf (Oid.to_int oid);
  Value.encode buf value;
  Digest_algo.digest algo (Buffer.contents buf)

(* Digest a frame plus child hashes through the incremental ctx API:
   identical output to hashing the concatenation, without building the
   O(children) intermediate string. *)
let digest_frame algo frame child_hashes =
  let ctx = Digest_algo.init algo in
  Digest_algo.update ctx frame;
  List.iter (Digest_algo.update ctx) child_hashes;
  Digest_algo.final ctx

let rec hash_subtree algo (t : Subtree.t) =
  let child_hashes = List.map (hash_subtree algo) t.Subtree.children in
  let buf = Buffer.create 64 in
  node_frame buf t.Subtree.oid t.Subtree.value
    (List.map (fun c -> c.Subtree.oid) t.Subtree.children);
  digest_frame algo (Buffer.contents buf) child_hashes

let node_hash algo oid value (children : (Oid.t * string) list) =
  let buf = Buffer.create 64 in
  node_frame buf oid value (List.map fst children);
  digest_frame algo (Buffer.contents buf) (List.map snd children)

(* Root-of-roots frame: 'S' | varint n | (varint len | hash)*.  The
   'S' prefix domain-separates it from node ('N') and atomic ('A')
   frames, and the length prefixes keep the encoding injective even if
   shard roots ever had different digest widths. *)
let root_of_roots algo shard_roots =
  let buf = Buffer.create 64 in
  Buffer.add_char buf 'S';
  Value.add_varint buf (List.length shard_roots);
  List.iter (Value.add_string buf) shard_roots;
  Digest_algo.digest algo (Buffer.contents buf)

type stats = { nodes_hashed : int; cache_hits : int; invalidations : int }

type cache = {
  algo : Digest_algo.algo;
  forest : Forest.t;
  tbl : string Oid.Tbl.t;
  mutable nodes_hashed : int;
  mutable cache_hits : int;
  mutable invalidations : int;
}

let invalidate c oid =
  let drop o =
    if Oid.Tbl.mem c.tbl o then begin
      Oid.Tbl.remove c.tbl o;
      c.invalidations <- c.invalidations + 1
    end
  in
  drop oid;
  List.iter drop (Forest.ancestors c.forest oid)

let create_cache algo forest =
  let c =
    {
      algo;
      forest;
      tbl = Oid.Tbl.create 4096;
      nodes_hashed = 0;
      cache_hits = 0;
      invalidations = 0;
    }
  in
  Forest.on_change forest (fun oid -> invalidate c oid);
  c

let algo c = c.algo

let hash_node c oid value children child_hashes =
  let buf = Buffer.create 64 in
  node_frame buf oid value children;
  c.nodes_hashed <- c.nodes_hashed + 1;
  digest_frame c.algo (Buffer.contents buf) child_hashes

(* ------------------------------------------------------------------ *)
(* Domain-parallel subtree hashing                                     *)
(* ------------------------------------------------------------------ *)

(* Below this many forest nodes the frontier bookkeeping costs more
   than it saves; stay sequential. *)
let par_threshold = 256

let missing oid = failwith (Printf.sprintf "no object %s" (Oid.to_string oid))

(* Pure hash of a subtree: touches no cache state (safe across
   domains).  Computed (oid, hash) pairs accumulate in [acc] for a
   later single-domain cache merge; [hashed]/[hits] mirror the stats
   counters.  With [use_cache], warm entries are reused (read-only —
   the cache is never written while tasks run). *)
let rec pure_hash ~use_cache c acc hashed hits oid =
  match if use_cache then Oid.Tbl.find_opt c.tbl oid else None with
  | Some h ->
      incr hits;
      h
  | None -> (
      match Forest.info c.forest oid with
      | None -> missing oid
      | Some info ->
          let child_hashes =
            List.map
              (pure_hash ~use_cache c acc hashed hits)
              info.Forest.children
          in
          let buf = Buffer.create 64 in
          node_frame buf oid info.Forest.value info.Forest.children;
          let h = digest_frame c.algo (Buffer.contents buf) child_hashes in
          incr hashed;
          acc := (oid, h) :: !acc;
          h)

(* Split the subtree under [root] into interior levels (hashed
   sequentially afterwards, deepest level first) and a frontier of
   disjoint subtree roots (hashed in parallel), aiming for [target]
   frontier tasks. *)
let split_frontier c root target =
  let rec go levels frontier cur =
    if cur = [] || List.length frontier + List.length cur >= target then
      (levels, frontier @ cur)
    else begin
      let leaves, internals =
        List.partition (fun o -> Forest.children c.forest o = []) cur
      in
      if internals = [] then (levels, frontier @ leaves)
      else
        go (internals :: levels) (frontier @ leaves)
          (List.concat_map (Forest.children c.forest) internals)
    end
  in
  go [] [] [ root ]

let hash_par ~use_cache pool c root =
  let levels, frontier =
    split_frontier c root (4 * Tep_parallel.Pool.size pool)
  in
  let results =
    Tep_parallel.Pool.map_chunked ~chunk:1 pool
      (fun oid ->
        let acc = ref [] and hashed = ref 0 and hits = ref 0 in
        let (_ : string) = pure_hash ~use_cache c acc hashed hits oid in
        (!acc, !hashed, !hits))
      (Array.of_list frontier)
  in
  (* Merge task results into the cache on the calling domain only. *)
  Array.iter
    (fun (pairs, hashed, hits) ->
      List.iter (fun (o, h) -> Oid.Tbl.replace c.tbl o h) pairs;
      c.nodes_hashed <- c.nodes_hashed + hashed;
      c.cache_hits <- c.cache_hits + hits)
    results;
  (* Interior spine, bottom-up: every child hash is now in the cache. *)
  List.iter
    (List.iter (fun oid ->
         let cached = Oid.Tbl.find_opt c.tbl oid in
         match cached with
         | Some _ when use_cache -> c.cache_hits <- c.cache_hits + 1
         | _ -> (
             match Forest.info c.forest oid with
             | None -> missing oid
             | Some info ->
                 let child_hashes =
                   List.map
                     (fun o ->
                       match Oid.Tbl.find_opt c.tbl o with
                       | Some h -> h
                       | None -> missing o)
                     info.Forest.children
                 in
                 let h =
                   hash_node c oid info.Forest.value info.Forest.children
                     child_hashes
                 in
                 Oid.Tbl.replace c.tbl oid h)))
    levels;
  match Oid.Tbl.find_opt c.tbl root with
  | Some h -> h
  | None -> missing root

let use_pool pool c =
  match pool with
  | Some p
    when Tep_parallel.Pool.size p > 1
         && Forest.node_count c.forest >= par_threshold ->
      Some p
  | _ -> None

let hash ?pool c oid =
  let seq_go () =
    let rec go oid =
      match Oid.Tbl.find_opt c.tbl oid with
      | Some h ->
          c.cache_hits <- c.cache_hits + 1;
          h
      | None -> (
          match Forest.info c.forest oid with
          | None -> missing oid
          | Some info ->
              let child_hashes = List.map go info.Forest.children in
              let h =
                hash_node c oid info.Forest.value info.Forest.children
                  child_hashes
              in
              Oid.Tbl.replace c.tbl oid h;
              h)
    in
    go oid
  in
  let compute =
    match use_pool pool c with
    | Some p when not (Oid.Tbl.mem c.tbl oid) ->
        fun () -> hash_par ~use_cache:true p c oid
    | _ -> seq_go
  in
  match compute () with h -> Ok h | exception Failure e -> Error e

let hash_basic ?pool c oid =
  let seq_go () =
    let rec go oid =
      match Forest.info c.forest oid with
      | None -> missing oid
      | Some info ->
          let child_hashes = List.map go info.Forest.children in
          let h =
            hash_node c oid info.Forest.value info.Forest.children child_hashes
          in
          Oid.Tbl.replace c.tbl oid h;
          h
    in
    go oid
  in
  let compute =
    match use_pool pool c with
    | Some p -> fun () -> hash_par ~use_cache:false p c oid
    | None -> seq_go
  in
  match compute () with h -> Ok h | exception Failure e -> Error e

let clear c = Oid.Tbl.reset c.tbl

let stats c =
  {
    nodes_hashed = c.nodes_hashed;
    cache_hits = c.cache_hits;
    invalidations = c.invalidations;
  }

let reset_stats c =
  c.nodes_hashed <- 0;
  c.cache_hits <- 0;
  c.invalidations <- 0
