(** The depth-4 tree view of a relational database (Section 5.1):
    root → tables → rows → cells.

    [build] materialises the view inside a {!Forest} with a
    deterministic oid layout; {!Streaming} reproduces the same root
    hash without materialising anything.  Internal nodes carry
    descriptive values (database / table names, row ids), leaves carry
    the cell values. *)

type location =
  | Root
  | Table of string
  | Row of string * int  (** table, row id *)
  | Cell of string * int * int  (** table, row id, column index *)

type mapping

val build : Forest.t -> Tep_store.Database.t -> mapping
(** Insert the whole tree view into the forest (which should be
    freshly created).  Oids are assigned root-first, tables in name
    order, rows in id order, cells in column order — the layout
    {!Streaming} assumes. *)

val root : mapping -> Oid.t
val table_oid : mapping -> string -> Oid.t option
val row_oid : mapping -> string -> int -> Oid.t option
val cell_oid : mapping -> string -> int -> int -> Oid.t option
val locate : mapping -> Oid.t -> location option

(** {1 Registration of engine-driven changes}

    When the provenance engine inserts or deletes rows after the
    initial build it must keep the mapping in sync. *)

val register_row : mapping -> string -> int -> Oid.t -> unit
val register_cell : mapping -> string -> int -> int -> Oid.t -> unit
val register_table : mapping -> string -> Oid.t -> unit
val unregister : mapping -> Oid.t -> unit

(** {1 Persistence} *)

val encode : Buffer.t -> mapping -> unit
val decode : string -> int -> mapping * int

val root_value : Tep_store.Database.t -> Tep_store.Value.t
val table_value : string -> Tep_store.Value.t
val row_value : int -> Tep_store.Value.t
