(** Merkle-style recursive hashing of compound objects (Section 4.3).

    The hash of a node is
    [h(frame(oid, value, child oids) | h(child_1) | ... | h(child_k))]
    with children in the global oid order — exactly the recursive
    scheme of the paper's Figure 5, which lets the checksum layer reuse
    a child's hash when an ancestor's inherited record needs hashing.

    Two strategies are provided, matching the paper's comparison in
    Figure 7:

    - {b Basic}: hash every node of the tree from scratch.
    - {b Economical}: keep a per-node hash cache, invalidate only the
      changed node and its root path, and recompute just the dirty
      spine. *)

val hash_subtree : Tep_crypto.Digest_algo.algo -> Subtree.t -> string
(** Pure hash of a snapshot (no cache).  This is the definition the
    cached variants must agree with. *)

val hash_value :
  Tep_crypto.Digest_algo.algo -> Oid.t -> Tep_store.Value.t -> string
(** Hash of an atomic object [(A, val)] — the [h(A, val)] of
    Section 3's checksums. *)

val node_hash :
  Tep_crypto.Digest_algo.algo ->
  Oid.t ->
  Tep_store.Value.t ->
  (Oid.t * string) list ->
  string
(** Hash of a node from its identity and its children's (oid, hash)
    pairs (oid-sorted) — the one-level step of the recursive
    definition, exposed for {!Proof} verification. *)

val root_of_roots : Tep_crypto.Digest_algo.algo -> string list -> string
(** Deterministic combination of per-shard root hashes, in shard
    order, into the single hash published for a sharded database.
    Domain-separated from node and atomic frames and injective in the
    list of roots, so two shard configurations agree iff every shard
    root agrees.  [root_of_roots algo [h]] is {e not} [h]: a 1-shard
    deployment publishes the engine root directly instead. *)

(** {1 Cached (Economical) hashing} *)

type cache

type stats = {
  nodes_hashed : int;  (** frames actually digested since reset *)
  cache_hits : int;
  invalidations : int;
}

val create_cache : Tep_crypto.Digest_algo.algo -> Forest.t -> cache
(** Attach a cache to a forest.  The cache subscribes to the forest's
    change feed and invalidates the changed node plus its ancestor
    path automatically. *)

val algo : cache -> Tep_crypto.Digest_algo.algo

val hash : ?pool:Tep_parallel.Pool.t -> cache -> Oid.t -> (string, string) result
(** Economical hash: recompute only nodes absent from the cache
    (i.e. on invalidated paths), reuse everything else.

    With [?pool] (size > 1) and a cold root on a forest of at least
    {!par_threshold} nodes, sibling subtrees are hashed on separate
    domains (warm cache entries still reused, read-only) and merged
    back on the calling domain; the result is bit-identical to the
    sequential pass.  The forest must not be mutated concurrently. *)

val hash_basic :
  ?pool:Tep_parallel.Pool.t -> cache -> Oid.t -> (string, string) result
(** Basic strategy: ignore and refresh the cache for the whole
    subtree — every node is re-hashed.  (Repopulates the cache so a
    later economical pass starts warm.)  [?pool] parallelises across
    sibling subtrees as in {!hash}. *)

val par_threshold : int
(** Minimum forest node count before [?pool] is honoured (below it the
    fan-out bookkeeping costs more than it saves). *)

val invalidate : cache -> Oid.t -> unit
(** Manual invalidation of a node and its ancestor path. *)

val clear : cache -> unit

val stats : cache -> stats
val reset_stats : cache -> unit
