open Tep_store
module Digest_algo = Tep_crypto.Digest_algo

type step = {
  node_oid : Oid.t;
  node_value : Value.t;
  children : (Oid.t * string) list;
}

type t = { leaf_oid : Oid.t; leaf_value : Value.t; path : step list }

let prove cache forest oid =
  match Forest.info forest oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some info when info.Forest.children <> [] ->
      Error
        (Printf.sprintf "%s is not atomic; deliver its subtree instead"
           (Oid.to_string oid))
  | Some info ->
      let step_of parent_oid =
        match Forest.info forest parent_oid with
        | None -> failwith "Proof.prove: broken parent link"
        | Some p ->
            let children =
              List.map
                (fun c ->
                  match Merkle.hash cache c with
                  | Ok h -> (c, h)
                  | Error e -> failwith e)
                p.Forest.children
            in
            {
              node_oid = p.Forest.oid;
              node_value = p.Forest.value;
              children;
            }
      in
      (match List.map step_of (Forest.ancestors forest oid) with
      | path -> Ok { leaf_oid = oid; leaf_value = info.Forest.value; path }
      | exception Failure e -> Error e)

let root_oid t =
  match List.rev t.path with
  | [] -> t.leaf_oid
  | last :: _ -> last.node_oid

let verify algo ~root_hash t =
  (* Leaf hash: atomic node, no children. *)
  let leaf_hash = Merkle.node_hash algo t.leaf_oid t.leaf_value [] in
  let rec climb current_oid current_hash = function
    | [] ->
        if String.equal current_hash root_hash then Ok ()
        else Error "proof: root hash mismatch"
    | step :: rest -> (
        match List.assoc_opt current_oid step.children with
        | None ->
            Error
              (Printf.sprintf "proof: %s is not a child of %s"
                 (Oid.to_string current_oid)
                 (Oid.to_string step.node_oid))
        | Some listed ->
            if not (String.equal listed current_hash) then
              Error "proof: child hash mismatch"
            else begin
              (* children must be strictly oid-sorted (canonical form,
                 prevents duplicate-child games) *)
              let rec sorted = function
                | (a, _) :: ((b, _) :: _ as rest) ->
                    Oid.compare a b < 0 && sorted rest
                | _ -> true
              in
              if not (sorted step.children) then
                Error "proof: unsorted children"
              else
                let parent_hash =
                  Merkle.node_hash algo step.node_oid step.node_value
                    step.children
                in
                climb step.node_oid parent_hash rest
            end)
  in
  climb t.leaf_oid leaf_hash t.path

let encode buf t =
  Buffer.add_char buf 'P';
  Value.add_varint buf (Oid.to_int t.leaf_oid);
  Value.encode buf t.leaf_value;
  Value.add_varint buf (List.length t.path);
  List.iter
    (fun s ->
      Value.add_varint buf (Oid.to_int s.node_oid);
      Value.encode buf s.node_value;
      Value.add_varint buf (List.length s.children);
      List.iter
        (fun (o, h) ->
          Value.add_varint buf (Oid.to_int o);
          Value.add_string buf h)
        s.children)
    t.path

let decode s off =
  if off >= String.length s || s.[off] <> 'P' then
    failwith "Proof.decode: bad magic";
  let leaf_oid, off = Value.read_varint s (off + 1) in
  let leaf_value, off = Value.decode s off in
  let nsteps, off = Value.read_varint s off in
  (* Each step costs at least one byte, so a count exceeding the bytes
     actually remaining is adversarial — reject before List.init
     allocates a huge list. *)
  if nsteps > String.length s - off then
    failwith "Proof.decode: implausible size";
  let off = ref off in
  let path =
    List.init nsteps (fun _ ->
        let node_oid, o = Value.read_varint s !off in
        let node_value, o = Value.decode s o in
        let nch, o = Value.read_varint s o in
        if nch > String.length s - o then
          failwith "Proof.decode: implausible size";
        let o = ref o in
        let children =
          List.init nch (fun _ ->
              let c, o' = Value.read_varint s !o in
              let h, o' = Value.read_string s o' in
              o := o';
              (Oid.of_int c, h))
        in
        off := !o;
        { node_oid = Oid.of_int node_oid; node_value; children })
  in
  ({ leaf_oid = Oid.of_int leaf_oid; leaf_value; path }, !off)

let size_bytes t =
  let buf = Buffer.create 256 in
  encode buf t;
  Buffer.length buf

let to_string t =
  let buf = Buffer.create 256 in
  encode buf t;
  Buffer.contents buf

let of_encoded s =
  match decode s 0 with
  | t, off when off = String.length s -> Ok t
  | _ -> Error "proof: trailing bytes after proof frame"
  | exception Failure e -> Error e
  | exception Invalid_argument _ -> Error "proof: truncated frame"
