open Tep_store

type node = {
  oid : Oid.t;
  mutable value : Value.t;
  mutable parent : Oid.t option;
  (* Children sorted ascending by oid; oids are allocated
     monotonically, so plain append keeps the order. *)
  mutable children : Oid.t list;
}

type t = {
  nodes : node Oid.Tbl.t;
  mutable roots : Oid.Set.t;
  gen : Oid.gen;
  mutable listeners : (Oid.t -> unit) list;
}

type node_info = {
  oid : Oid.t;
  value : Value.t;
  parent : Oid.t option;
  children : Oid.t list;
}

let create () =
  {
    nodes = Oid.Tbl.create 1024;
    roots = Oid.Set.empty;
    gen = Oid.gen ();
    listeners = [];
  }

let fresh_oid t = Oid.fresh t.gen

let on_change t f = t.listeners <- f :: t.listeners

let notify t oid = List.iter (fun f -> f oid) t.listeners

let mem t oid = Oid.Tbl.mem t.nodes oid

let find t oid = Oid.Tbl.find_opt t.nodes oid

let insert_sorted oid lst =
  let rec go = function
    | [] -> [ oid ]
    | x :: rest when Oid.compare x oid < 0 -> x :: go rest
    | l -> oid :: l
  in
  go lst

let insert ?oid ?parent t v =
  let oid =
    match oid with
    | Some o ->
        Oid.bump_past t.gen o;
        o
    | None -> Oid.fresh t.gen
  in
  if mem t oid then Error (Printf.sprintf "oid %s already in use" (Oid.to_string oid))
  else
    match parent with
    | Some p when not (mem t p) ->
        Error (Printf.sprintf "parent %s not found" (Oid.to_string p))
    | _ ->
        Oid.Tbl.replace t.nodes oid { oid; value = v; parent; children = [] };
        (match parent with
        | None -> t.roots <- Oid.Set.add oid t.roots
        | Some p ->
            let pn = Oid.Tbl.find t.nodes p in
            pn.children <- insert_sorted oid pn.children;
            notify t p);
        notify t oid;
        Ok oid

let delete t oid =
  match find t oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some n when n.children <> [] ->
      Error (Printf.sprintf "%s is not a leaf" (Oid.to_string oid))
  | Some n ->
      (* Notify before unlinking so listeners can still walk the
         ancestor path from the vanishing node. *)
      notify t oid;
      Oid.Tbl.remove t.nodes oid;
      (match n.parent with
      | None -> t.roots <- Oid.Set.remove oid t.roots
      | Some p ->
          let pn = Oid.Tbl.find t.nodes p in
          pn.children <- List.filter (fun c -> not (Oid.equal c oid)) pn.children);
      Ok n.value

let update t oid v =
  match find t oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some n ->
      let prev = n.value in
      n.value <- v;
      notify t oid;
      Ok prev

let value t oid =
  match find t oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some n -> Ok n.value

let parent t oid = match find t oid with None -> None | Some n -> n.parent

let children t oid = match find t oid with None -> [] | Some n -> n.children

let info t oid =
  match find t oid with
  | None -> None
  | Some n ->
      Some { oid = n.oid; value = n.value; parent = n.parent; children = n.children }

let ancestors t oid =
  let rec go acc oid =
    match parent t oid with None -> List.rev acc | Some p -> go (p :: acc) p
  in
  go [] oid

let root_of t oid =
  if not (mem t oid) then raise Not_found;
  match List.rev (ancestors t oid) with [] -> oid | r :: _ -> r

let roots t = Oid.Set.elements t.roots

let node_count t = Oid.Tbl.length t.nodes

let rec subtree_of_node t (n : node) =
  Subtree.make n.oid n.value
    (List.map (fun c -> subtree_of_node t (Oid.Tbl.find t.nodes c)) n.children)

let subtree t oid =
  match find t oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some n -> Ok (subtree_of_node t n)

let is_leaf t oid =
  match find t oid with Some n -> n.children = [] | None -> false

let iter_preorder t oid f =
  let rec go oid =
    match find t oid with
    | None -> ()
    | Some n ->
        f n.oid n.value;
        List.iter go n.children
  in
  go oid

let delete_subtree t oid =
  match find t oid with
  | None -> Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some _ ->
      let order = ref [] in
      iter_preorder t oid (fun o _ -> order := o :: !order);
      (* !order is reverse preorder = valid leaf-first deletion order. *)
      let n = List.length !order in
      List.iter (fun o -> match delete t o with Ok _ -> () | Error e -> failwith e) !order;
      Ok n

let aggregate t v inputs =
  let missing = List.filter (fun o -> not (mem t o)) inputs in
  match missing with
  | o :: _ -> Error (Printf.sprintf "no object %s" (Oid.to_string o))
  | [] ->
      if inputs = [] then Error "aggregate: no inputs"
      else begin
        let b =
          match insert t v with Ok o -> o | Error e -> failwith e
        in
        let mapping = ref Oid.Map.empty in
        let rec copy parent src_oid =
          let n = Oid.Tbl.find t.nodes src_oid in
          let dst =
            match insert ~parent t n.value with
            | Ok o -> o
            | Error e -> failwith e
          in
          mapping := Oid.Map.add src_oid dst !mapping;
          List.iter (copy dst) n.children
        in
        List.iter (copy b) inputs;
        Ok (b, !mapping)
      end

let encode buf t =
  Value.add_varint buf (Oid.next_value t.gen);
  Value.add_varint buf (Oid.Tbl.length t.nodes);
  (* Oids are allocated monotonically and parents precede children, so
     emitting in oid order lets decode insert directly. *)
  let nodes =
    Oid.Tbl.fold (fun _ (n : node) acc -> n :: acc) t.nodes []
    |> List.sort (fun (a : node) (b : node) -> Oid.compare a.oid b.oid)
  in
  List.iter
    (fun (n : node) ->
      Value.add_varint buf (Oid.to_int n.oid);
      (match n.parent with
      | None -> Buffer.add_char buf '\x00'
      | Some p ->
          Buffer.add_char buf '\x01';
          Value.add_varint buf (Oid.to_int p));
      Value.encode buf n.value)
    nodes

let decode s off =
  let watermark, off = Value.read_varint s off in
  let count, off = Value.read_varint s off in
  let t = create () in
  let off = ref off in
  for _ = 1 to count do
    let oid, o = Value.read_varint s !off in
    if o >= String.length s then failwith "Forest.decode: truncated";
    let parent, o =
      match s.[o] with
      | '\x00' -> (None, o + 1)
      | '\x01' ->
          let p, o = Value.read_varint s (o + 1) in
          (Some (Oid.of_int p), o)
      | _ -> failwith "Forest.decode: bad parent tag"
    in
    let v, o = Value.decode s o in
    off := o;
    match insert ~oid:(Oid.of_int oid) ?parent t v with
    | Ok _ -> ()
    | Error e -> failwith ("Forest.decode: " ^ e)
  done;
  Oid.bump_past t.gen (Oid.of_int (max 0 (watermark - 1)));
  (t, !off)
