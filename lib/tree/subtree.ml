open Tep_store

type t = { oid : Oid.t; value : Value.t; children : t list }

let atom oid value = { oid; value; children = [] }

let make oid value children =
  let sorted =
    List.sort (fun a b -> Oid.compare a.oid b.oid) children
  in
  let rec dup_check = function
    | a :: (b :: _ as rest) ->
        if Oid.equal a.oid b.oid then
          invalid_arg "Subtree.make: duplicate child oid"
        else dup_check rest
    | _ -> ()
  in
  dup_check sorted;
  { oid; value; children = sorted }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec find t oid =
  if Oid.equal t.oid oid then Some t
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find c oid)
      None t.children

let rec oids t = t.oid :: List.concat_map oids t.children

let rec compare a b =
  let c = Oid.compare a.oid b.oid in
  if c <> 0 then c
  else
    let c = Value.compare a.value b.value in
    if c <> 0 then c
    else List.compare compare a.children b.children

let equal a b = compare a b = 0

let rec encode buf t =
  Value.add_varint buf (Oid.to_int t.oid);
  Value.encode buf t.value;
  Value.add_varint buf (List.length t.children);
  List.iter (encode buf) t.children

let rec decode s off =
  let oid, off = Value.read_varint s off in
  let value, off = Value.decode s off in
  let n, off = Value.read_varint s off in
  let off = ref off in
  let children =
    List.init n (fun _ ->
        let c, o = decode s !off in
        off := o;
        c)
  in
  (make (Oid.of_int oid) value children, !off)

let encoded t =
  let buf = Buffer.create 64 in
  encode buf t;
  Buffer.contents buf

let rec pp_indent fmt indent t =
  Format.fprintf fmt "%s%a = %a@\n" indent Oid.pp t.oid Value.pp t.value;
  List.iter (pp_indent fmt (indent ^ "  ")) t.children

let pp fmt t = pp_indent fmt "" t

let to_string t = Format.asprintf "%a" pp t
