open Tep_store

type location =
  | Root
  | Table of string
  | Row of string * int
  | Cell of string * int * int

type mapping = {
  root : Oid.t;
  forward : (location, Oid.t) Hashtbl.t;
  reverse : location Oid.Tbl.t;
}

let root m = m.root

let root_value db = Value.Text (Database.name db)
let table_value name = Value.Text name
let row_value id = Value.Int id

let register m loc oid =
  Hashtbl.replace m.forward loc oid;
  Oid.Tbl.replace m.reverse oid loc

let register_table m name oid = register m (Table name) oid
let register_row m tbl id oid = register m (Row (tbl, id)) oid
let register_cell m tbl id col oid = register m (Cell (tbl, id, col)) oid

let unregister m oid =
  match Oid.Tbl.find_opt m.reverse oid with
  | None -> ()
  | Some loc ->
      Oid.Tbl.remove m.reverse oid;
      Hashtbl.remove m.forward loc

let table_oid m name = Hashtbl.find_opt m.forward (Table name)
let row_oid m tbl id = Hashtbl.find_opt m.forward (Row (tbl, id))
let cell_oid m tbl id col = Hashtbl.find_opt m.forward (Cell (tbl, id, col))
let locate m oid = Oid.Tbl.find_opt m.reverse oid

let build forest db =
  let root =
    match Forest.insert forest (root_value db) with
    | Ok o -> o
    | Error e -> failwith e
  in
  let m =
    { root; forward = Hashtbl.create 4096; reverse = Oid.Tbl.create 4096 }
  in
  Oid.Tbl.replace m.reverse root Root;
  Hashtbl.replace m.forward Root root;
  List.iter
    (fun tbl ->
      let tname = Table.name tbl in
      let toid =
        match Forest.insert ~parent:root forest (table_value tname) with
        | Ok o -> o
        | Error e -> failwith e
      in
      register_table m tname toid;
      Table.iter
        (fun r ->
          let roid =
            match Forest.insert ~parent:toid forest (row_value r.Table.id) with
            | Ok o -> o
            | Error e -> failwith e
          in
          register_row m tname r.Table.id roid;
          Array.iteri
            (fun col v ->
              let coid =
                match Forest.insert ~parent:roid forest v with
                | Ok o -> o
                | Error e -> failwith e
              in
              register_cell m tname r.Table.id col coid)
            r.Table.cells)
        tbl)
    (Database.tables db);
  m

let encode buf m =
  Value.add_varint buf (Oid.to_int m.root);
  Value.add_varint buf (Hashtbl.length m.forward);
  Hashtbl.iter
    (fun loc oid ->
      (match loc with
      | Root -> Buffer.add_char buf '\x00'
      | Table t ->
          Buffer.add_char buf '\x01';
          Value.add_string buf t
      | Row (t, r) ->
          Buffer.add_char buf '\x02';
          Value.add_string buf t;
          Value.add_varint buf r
      | Cell (t, r, c) ->
          Buffer.add_char buf '\x03';
          Value.add_string buf t;
          Value.add_varint buf r;
          Value.add_varint buf c);
      Value.add_varint buf (Oid.to_int oid))
    m.forward

let decode s off =
  let root, off = Value.read_varint s off in
  let count, off = Value.read_varint s off in
  (* Each entry is at least 2 bytes; reject counts a hostile input
     cannot possibly back, and never preallocate from untrusted
     sizes. *)
  if count < 0 || count > (String.length s - off) / 2 then
    failwith "Tree_view.decode: implausible entry count";
  let size_hint = min 65_536 (max 16 count) in
  let m =
    {
      root = Oid.of_int root;
      forward = Hashtbl.create size_hint;
      reverse = Oid.Tbl.create size_hint;
    }
  in
  let off = ref off in
  for _ = 1 to count do
    if !off >= String.length s then failwith "Tree_view.decode: truncated";
    let tag = s.[!off] in
    incr off;
    let loc =
      match tag with
      | '\x00' -> Root
      | '\x01' ->
          let t, o = Value.read_string s !off in
          off := o;
          Table t
      | '\x02' ->
          let t, o = Value.read_string s !off in
          let r, o = Value.read_varint s o in
          off := o;
          Row (t, r)
      | '\x03' ->
          let t, o = Value.read_string s !off in
          let r, o = Value.read_varint s o in
          let c, o = Value.read_varint s o in
          off := o;
          Cell (t, r, c)
      | _ -> failwith "Tree_view.decode: bad location tag"
    in
    let oid, o = Value.read_varint s !off in
    off := o;
    register m loc (Oid.of_int oid)
  done;
  (m, !off)
