(** Tree-structured XML documents over the forest model.

    Section 4.1: "This abstraction allows us to express provenance
    information associated with varying levels of data granularity in
    two common data models: relational and tree-structured XML."
    This module provides the XML half: a small XML subset (elements,
    attributes, text; no namespaces, comments, or CDATA) parsed into
    {!Subtree}/{!Forest} compound objects, so the provenance engine
    tracks documents exactly as it tracks tables.

    Mapping: an element becomes a node whose value is
    [Text "<name>"]; each attribute becomes a child node valued
    [Text "@attr=value"]; text content becomes leaf nodes valued
    [Text "..."].  The mapping round-trips modulo whitespace
    normalisation. *)

open Tep_store

type node =
  | Element of string * (string * string) list * node list
      (** name, attributes, children *)
  | Text of string

val parse : string -> (node, string) result
(** Parse one document (a single root element).  Whitespace-only text
    between elements is dropped. *)

val to_string : ?indent:bool -> node -> string
(** Serialise, escaping the five XML special characters. *)

val to_forest : Forest.t -> ?parent:Oid.t -> node -> (Oid.t, string) result
(** Materialise the document as forest nodes; returns the root's oid. *)

val of_forest : Forest.t -> Oid.t -> (node, string) result
(** Rebuild a document from a forest subtree produced by
    {!to_forest}.  Fails on nodes that do not follow the mapping. *)

val of_subtree : Subtree.t -> (node, string) result

val element_value : string -> Value.t
(** The forest value encoding an element node (text of the form [<name>]). *)

val attribute_value : string -> string -> Value.t
val text_value : string -> Value.t
