open Tep_store

type node =
  | Element of string * (string * string) list * node list
  | Text of string

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent over a small XML subset)                 *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

exception Parse_error of string

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let error p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance p
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name p =
  let start = p.pos in
  while (match peek p with Some c when is_name_char c -> true | _ -> false) do
    advance p
  done;
  if p.pos = start then error p "expected a name";
  String.sub p.src start (p.pos - start)

let expect p c =
  match peek p with
  | Some x when x = c -> advance p
  | _ -> error p (Printf.sprintf "expected %c" c)

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let semi =
        match String.index_from_opt s !i ';' with
        | Some j when j - !i <= 6 -> j
        | _ -> raise (Parse_error "bad entity")
      in
      (match String.sub s (!i + 1) (semi - !i - 1) with
      | "amp" -> Buffer.add_char buf '&'
      | "lt" -> Buffer.add_char buf '<'
      | "gt" -> Buffer.add_char buf '>'
      | "quot" -> Buffer.add_char buf '"'
      | "apos" -> Buffer.add_char buf '\''
      | e -> raise (Parse_error ("unknown entity &" ^ e ^ ";")));
      i := semi + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let read_attr_value p =
  let quote =
    match peek p with
    | Some ('"' as q) | Some ('\'' as q) ->
        advance p;
        q
    | _ -> error p "expected quoted attribute value"
  in
  let start = p.pos in
  while (match peek p with Some c when c <> quote -> true | _ -> false) do
    advance p
  done;
  let v = String.sub p.src start (p.pos - start) in
  expect p quote;
  unescape v

let rec read_element p =
  expect p '<';
  let name = read_name p in
  let rec read_attrs acc =
    skip_ws p;
    match peek p with
    | Some '>' ->
        advance p;
        (List.rev acc, `Open)
    | Some '/' ->
        advance p;
        expect p '>';
        (List.rev acc, `SelfClosed)
    | Some c when is_name_char c ->
        let attr = read_name p in
        skip_ws p;
        expect p '=';
        skip_ws p;
        let v = read_attr_value p in
        read_attrs ((attr, v) :: acc)
    | _ -> error p "malformed attribute list"
  in
  let attrs, style = read_attrs [] in
  match style with
  | `SelfClosed -> Element (name, attrs, [])
  | `Open ->
      let children = read_content p [] in
      (* closing tag *)
      let close = read_name p in
      if close <> name then
        error p (Printf.sprintf "mismatched </%s> for <%s>" close name);
      skip_ws p;
      expect p '>';
      Element (name, attrs, children)

and read_content p acc =
  (* read until </ *)
  match peek p with
  | None -> error p "unexpected end of input"
  | Some '<' ->
      if p.pos + 1 < String.length p.src && p.src.[p.pos + 1] = '/' then begin
        advance p;
        advance p;
        List.rev acc
      end
      else read_content p (read_element p :: acc)
  | Some _ ->
      let start = p.pos in
      while (match peek p with Some c when c <> '<' -> true | _ -> false) do
        advance p
      done;
      let raw = String.sub p.src start (p.pos - start) in
      let text = unescape raw in
      if String.trim text = "" then read_content p acc
      else read_content p (Text (String.trim text) :: acc)

let parse s =
  let p = { src = s; pos = 0 } in
  try
    skip_ws p;
    (* optional declaration *)
    if
      p.pos + 1 < String.length s
      && s.[p.pos] = '<'
      && s.[p.pos + 1] = '?'
    then begin
      match String.index_from_opt s p.pos '>' with
      | Some j -> p.pos <- j + 1
      | None -> error p "unterminated declaration"
    end;
    skip_ws p;
    let doc = read_element p in
    skip_ws p;
    if p.pos <> String.length s then error p "trailing content";
    Ok doc
  with Parse_error e -> Error e

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = false) node =
  let buf = Buffer.create 256 in
  let rec go depth node =
    let pad = if indent then String.make (depth * 2) ' ' else "" in
    let nl = if indent then "\n" else "" in
    match node with
    | Text t -> Buffer.add_string buf (pad ^ escape t ^ nl)
    | Element (name, attrs, children) ->
        let attrs_s =
          String.concat ""
            (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
        in
        if children = [] then
          Buffer.add_string buf (Printf.sprintf "%s<%s%s/>%s" pad name attrs_s nl)
        else begin
          Buffer.add_string buf (Printf.sprintf "%s<%s%s>%s" pad name attrs_s nl);
          List.iter (go (depth + 1)) children;
          Buffer.add_string buf (Printf.sprintf "%s</%s>%s" pad name nl)
        end
  in
  go 0 node;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Forest mapping                                                      *)
(* ------------------------------------------------------------------ *)

let element_value name = Value.Text ("<" ^ name ^ ">")
let attribute_value k v = Value.Text (Printf.sprintf "@%s=%s" k v)
let text_value t = Value.Text t

let rec to_forest forest ?parent node =
  match node with
  | Text t -> Forest.insert ?parent forest (text_value t)
  | Element (name, attrs, children) -> (
      match Forest.insert ?parent forest (element_value name) with
      | Error e -> Error e
      | Ok oid ->
          let rec add_all = function
            | [] -> Ok oid
            | `Attr (k, v) :: rest -> (
                match Forest.insert ~parent:oid forest (attribute_value k v) with
                | Ok _ -> add_all rest
                | Error e -> Error e)
            | `Child c :: rest -> (
                match to_forest forest ~parent:oid c with
                | Ok _ -> add_all rest
                | Error e -> Error e)
          in
          add_all
            (List.map (fun (k, v) -> `Attr (k, v)) attrs
            @ List.map (fun c -> `Child c) children))

let classify_value v =
  match v with
  | Value.Text s when String.length s >= 2 && s.[0] = '<' && s.[String.length s - 1] = '>'
    ->
      `Element (String.sub s 1 (String.length s - 2))
  | Value.Text s when String.length s >= 1 && s.[0] = '@' -> (
      match String.index_opt s '=' with
      | Some i ->
          `Attr (String.sub s 1 (i - 1), String.sub s (i + 1) (String.length s - i - 1))
      | None -> `Bad)
  | Value.Text s -> `Text s
  | _ -> `Bad

let rec node_of_subtree (t : Subtree.t) =
  match classify_value t.Subtree.value with
  | `Text s ->
      if t.Subtree.children <> [] then Error "text node with children"
      else Ok (Text s)
  | `Attr _ -> Error "attribute outside an element"
  | `Bad -> Error "not an XML-mapped subtree"
  | `Element name ->
      let rec split attrs children = function
        | [] -> Ok (List.rev attrs, List.rev children)
        | (c : Subtree.t) :: rest -> (
            match classify_value c.Subtree.value with
            | `Attr (k, v) ->
                if c.Subtree.children <> [] then Error "attribute with children"
                else split ((k, v) :: attrs) children rest
            | _ -> (
                match node_of_subtree c with
                | Ok n -> split attrs (n :: children) rest
                | Error e -> Error e))
      in
      (match split [] [] t.Subtree.children with
      | Ok (attrs, children) -> Ok (Element (name, attrs, children))
      | Error e -> Error e)

let of_subtree = node_of_subtree

let of_forest forest oid =
  match Forest.subtree forest oid with
  | Error e -> Error e
  | Ok t -> node_of_subtree t
