(** The mutable forest of compound objects — the paper's abstract
    database |D (Section 4.1).

    Every atomic object is a triple [(id, value, {child_ids})]; any
    node's subtree is a compound object.  Primitive operations mirror
    the paper's: leaf insert, leaf delete, value update, and aggregate.
    Children are kept sorted by oid (the global total order). *)

type t

type node_info = {
  oid : Oid.t;
  value : Tep_store.Value.t;
  parent : Oid.t option;
  children : Oid.t list;  (** sorted ascending *)
}

val create : unit -> t

val fresh_oid : t -> Oid.t
(** Reserve an oid without inserting a node (the engine pre-allocates
    oids for provenance records). *)

(** {1 Primitive operations} *)

val insert :
  ?oid:Oid.t -> ?parent:Oid.t -> t -> Tep_store.Value.t -> (Oid.t, string) result
(** Add a new leaf object.  Without [?parent] the object becomes a
    root.  With [?oid] the caller supplies a pre-reserved identifier.
    Fails if the parent is missing or the oid is already in use. *)

val delete : t -> Oid.t -> (Tep_store.Value.t, string) result
(** Delete a {e leaf}; returns its last value.  Fails on missing nodes
    and on nodes with children (the paper's primitive deletes are
    leaf-only). *)

val delete_subtree : t -> Oid.t -> (int, string) result
(** Convenience: post-order cascade of leaf deletes.  Returns the
    number of nodes removed. *)

val update : t -> Oid.t -> Tep_store.Value.t -> (Tep_store.Value.t, string) result
(** Set a node's value; returns the previous value. *)

val aggregate :
  t -> Tep_store.Value.t -> Oid.t list -> (Oid.t * Oid.t Oid.Map.t, string) result
(** [aggregate f v inputs] deep-copies each input subtree under fresh
    oids and mounts the copies as children of a new root [B] with
    value [v].  Returns [B]'s oid and the old-oid → new-oid mapping.
    The inputs themselves are left untouched, preserving their
    provenance chains. *)

(** {1 Inspection} *)

val mem : t -> Oid.t -> bool
val info : t -> Oid.t -> node_info option
val value : t -> Oid.t -> (Tep_store.Value.t, string) result
val parent : t -> Oid.t -> Oid.t option
val children : t -> Oid.t -> Oid.t list

val ancestors : t -> Oid.t -> Oid.t list
(** Nearest first, root last; empty for roots. *)

val root_of : t -> Oid.t -> Oid.t
(** Topmost ancestor (the node itself if a root). @raise Not_found *)

val roots : t -> Oid.t list
(** Sorted. *)

val node_count : t -> int

val subtree : t -> Oid.t -> (Subtree.t, string) result
(** Immutable snapshot of the compound object rooted here. *)

val is_leaf : t -> Oid.t -> bool

val iter_preorder : t -> Oid.t -> (Oid.t -> Tep_store.Value.t -> unit) -> unit
(** Walk a subtree root-first, children in oid order.  No-op when the
    oid is absent. *)

(** {1 Persistence} *)

val encode : Buffer.t -> t -> unit
(** Serialise all nodes (oids, parents, values) and the oid allocator
    watermark, so oids of deleted objects are never reused after a
    reload. *)

val decode : string -> int -> t * int

(** {1 Change notification}

    The Merkle cache subscribes to mutations so Economical hashing can
    invalidate exactly the changed node and its ancestor path. *)

val on_change : t -> (Oid.t -> unit) -> unit
(** Register a listener called with each structurally-affected oid
    (the mutated node; for inserts/deletes also the parent). *)
