open Tep_store
module Digest_algo = Tep_crypto.Digest_algo

(* Node frames must be byte-identical to Merkle.node_frame. *)
let add_frame buf oid value child_oids =
  Buffer.add_char buf 'N';
  Value.add_varint buf oid;
  Value.encode buf value;
  Value.add_varint buf (List.length child_oids);
  List.iter (Value.add_varint buf) child_oids

let leaf_hash algo oid value =
  let buf = Buffer.create 32 in
  add_frame buf oid value [];
  Digest_algo.digest algo (Buffer.contents buf)

(* Oids per row slot: row oid, then one oid per cell. *)
let row_slot_width arity = 1 + arity

let hash_rows algo ~schema_arity ~table_oid ~table_name ~row_count pull =
  let arity = schema_arity in
  let row_oid j = table_oid + 1 + (j * row_slot_width arity) in
  let ctx = Digest_algo.init algo in
  (* Table frame first: oid, value, count, row oids (all arithmetic). *)
  let frame = Buffer.create 256 in
  add_frame frame table_oid (Tree_view.table_value table_name)
    (List.init row_count row_oid);
  Digest_algo.update ctx (Buffer.contents frame);
  (* Then one row hash at a time. *)
  let nodes = ref 1 in
  let j = ref 0 in
  let rec loop () =
    match pull () with
    | None -> ()
    | Some (id, cells) ->
        if !j >= row_count then
          invalid_arg "Streaming.hash_rows: more rows than row_count";
        if Array.length cells <> arity then
          invalid_arg "Streaming.hash_rows: arity mismatch";
        let roid = row_oid !j in
        let row_buf = Buffer.create 256 in
        add_frame row_buf roid (Tree_view.row_value id)
          (List.init arity (fun c -> roid + 1 + c));
        Array.iteri
          (fun c v -> Buffer.add_string row_buf (leaf_hash algo (roid + 1 + c) v))
          cells;
        Digest_algo.update ctx (Buffer.contents row_buf |> Digest_algo.digest algo);
        nodes := !nodes + 1 + arity;
        incr j;
        loop ()
  in
  loop ();
  if !j <> row_count then
    invalid_arg "Streaming.hash_rows: fewer rows than row_count";
  (Digest_algo.final ctx, !nodes)

let hash_database_with_counts algo db =
  let tables = Database.tables db in
  (* Root is oid 0; table oids depend on the sizes of earlier tables. *)
  let table_oids =
    let next = ref 1 in
    List.map
      (fun tbl ->
        let toid = !next in
        next :=
          toid + 1
          + (Table.row_count tbl * row_slot_width (Schema.arity (Table.schema tbl)));
        (tbl, toid))
      tables
  in
  let ctx = Digest_algo.init algo in
  let frame = Buffer.create 64 in
  add_frame frame 0 (Tree_view.root_value db) (List.map snd table_oids);
  Digest_algo.update ctx (Buffer.contents frame);
  let nodes = ref 1 in
  List.iter
    (fun (tbl, toid) ->
      let rows = ref (Table.rows tbl) in
      let pull () =
        match !rows with
        | [] -> None
        | r :: rest ->
            rows := rest;
            Some (r.Table.id, r.Table.cells)
      in
      let h, n =
        hash_rows algo
          ~schema_arity:(Schema.arity (Table.schema tbl))
          ~table_oid:toid ~table_name:(Table.name tbl)
          ~row_count:(Table.row_count tbl) pull
      in
      Digest_algo.update ctx h;
      nodes := !nodes + n)
    table_oids;
  (Digest_algo.final ctx, !nodes)

let hash_database algo db = fst (hash_database_with_counts algo db)
