(** Immutable snapshots of compound objects.

    Provenance records capture [subtree(A)] before and after each
    operation (Section 4.2 of the paper); this is that snapshot type.
    Children are kept sorted by oid — the globally-defined total order
    the checksum scheme requires. *)

type t = {
  oid : Oid.t;
  value : Tep_store.Value.t;
  children : t list;  (** sorted by oid, strictly increasing *)
}

val atom : Oid.t -> Tep_store.Value.t -> t

val make : Oid.t -> Tep_store.Value.t -> t list -> t
(** Sorts the children. @raise Invalid_argument on duplicate child
    oids. *)

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** 1 for a leaf. *)

val find : t -> Oid.t -> t option
(** Find a descendant (or the root itself) by oid. *)

val oids : t -> Oid.t list
(** Preorder. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val encode : Buffer.t -> t -> unit
(** Deterministic binary encoding (injective), used both for
    persistence and as hashing input framing. *)

val decode : string -> int -> t * int
val encoded : t -> string

val pp : Format.formatter -> t -> unit
(** Multi-line indented rendering. *)

val to_string : t -> string
