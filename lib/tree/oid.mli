(** Object identifiers for atomic objects.

    The paper's checksums need a "pre-defined total order over atomic
    objects"; oids provide it.  They are allocated densely by a
    per-forest generator and never reused. *)

type t = private int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_int : t -> int
val of_int : int -> t
(** @raise Invalid_argument if negative. *)

val to_string : t -> string

(** Dense allocator. *)
type gen

val gen : unit -> gen
val fresh : gen -> t
val next_value : gen -> int
val bump_past : gen -> t -> unit
(** Make sure the generator will never emit [oid] again (used when
    loading persisted forests). *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
