(** Merkle membership proofs.

    A recipient who trusts a compound object's root hash (because the
    latest signed provenance record binds it) can be convinced that
    one atomic object deep inside has a particular value {e without}
    receiving the whole tree: the proof carries, for each step from
    the leaf to the root, the node's frame data and the sibling
    hashes — O(depth × fanout) instead of O(size).

    This is the authenticated-data-structure connection the paper's
    related work points at (Merkle 1989; outsourced-database
    verification), applied to the provenance tree. *)

open Tep_store

(** One step of the path: the parent node's identity and the child
    hashes it commits to, with the proven child's position left
    implicit by [child_oid]. *)
type step = {
  node_oid : Oid.t;
  node_value : Value.t;
  children : (Oid.t * string) list;  (** (child oid, child hash), oid-sorted *)
}

type t = {
  leaf_oid : Oid.t;
  leaf_value : Value.t;
  path : step list;  (** leaf's parent first, root last *)
}

val prove : Merkle.cache -> Forest.t -> Oid.t -> (t, string) result
(** Build a membership proof for an atomic object (uses the cache for
    sibling hashes; cost O(dirty path) on a warm cache). *)

val root_oid : t -> Oid.t
(** The root the proof chains to (the leaf itself for a root leaf). *)

val verify :
  Tep_crypto.Digest_algo.algo -> root_hash:string -> t -> (unit, string) result
(** Recompute the hash chain from the leaf up and compare with the
    trusted root hash.  Also checks structural sanity (each step's
    parent actually lists the previous node as a child). *)

val size_bytes : t -> int
(** Serialised size — what a slice delivery ships instead of the
    whole subtree. *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int

val to_string : t -> string
(** [encode] into a fresh standalone byte string (the opaque form
    proofs travel in over the wire). *)

val of_encoded : string -> (t, string) result
(** Total decoder for adversarial input: a standalone encoded proof
    must parse exactly (no trailing bytes) or a typed error is
    returned — no exception ever escapes. *)
