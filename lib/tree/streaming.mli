(** Bounded-memory hashing of a database's tree view.

    Implements the scale-out strategy of Section 5.2: "read one row at
    a time, hashing the row and the cells in it, and updating the
    table's hash value with the row's hash value" — without ever
    materialising the tree.  Produces bit-identical root hashes to
    {!Merkle.hash_subtree} over {!Tree_view.build}'s forest. *)

val hash_database :
  Tep_crypto.Digest_algo.algo -> Tep_store.Database.t -> string
(** Root hash of the depth-4 tree view.  Memory use is O(one row). *)

val hash_database_with_counts :
  Tep_crypto.Digest_algo.algo -> Tep_store.Database.t -> string * int
(** Also returns the number of tree nodes hashed (for per-node timing
    reports, as in the paper's 18.9M-row experiment). *)

val hash_rows :
  Tep_crypto.Digest_algo.algo ->
  schema_arity:int ->
  table_oid:int ->
  table_name:string ->
  row_count:int ->
  (unit -> (int * Tep_store.Value.t array) option) ->
  string * int
(** Lower-level row-pull interface: hash a single table from a row
    iterator (id, cells) so callers can feed rows from disk or a
    network cursor.  [row_count] must equal the number of rows the
    iterator yields (the node frame is emitted before the rows are
    pulled, which is what keeps memory O(1)).  Returns the table hash
    and the node count.  Oids are assigned by the {!Tree_view} layout
    rule starting just past [table_oid].
    @raise Invalid_argument if the iterator length differs from
    [row_count]. *)
