type t = int

let compare = Stdlib.compare
let equal (a : t) b = a = b
let hash (a : t) = Hashtbl.hash a
let to_int t = t

let of_int i =
  if i < 0 then invalid_arg "Oid.of_int: negative";
  i

let to_string t = "#" ^ string_of_int t
let pp fmt t = Format.pp_print_string fmt (to_string t)

type gen = { mutable next : int }

let gen () = { next = 0 }

let fresh g =
  let v = g.next in
  g.next <- v + 1;
  v

let next_value g = g.next
let bump_past g oid = if oid >= g.next then g.next <- oid + 1

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
