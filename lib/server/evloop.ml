(* Readiness-driven service reactor.

   One reactor thread owns every client fd in non-blocking mode and a
   small worker pool runs the protocol state machine ([h_feed], which
   may block on the engine, group commit, signing...).  The reactor
   itself never blocks on anything but the pollset:

     - accept: non-blocking listen fd, burst-accepts up to a per-tick
       cap; the embedder decides per connection whether to admit
       (handler closures) or reject (advisory bytes written
       best-effort, no slot held).
     - read: level-triggered; bytes append to a per-connection input
       queue and the connection is handed to a worker.  Reads pause
       while the input backlog or the write buffer exceed their caps
       (backpressure) and resume on drain — level-triggered polling
       makes re-arming free.
     - feed: a worker concatenates the queued chunks, calls [h_feed]
       outside the reactor lock, then queues the response bytes and
       wakes the reactor through the wakeup pipe.  A connection is
       owned by at most one worker at a time, so per-connection
       ordering is preserved while distinct connections proceed in
       parallel.
     - write: [Unix.single_write] until EAGAIN; partial writes keep
       their offset and the fd stays in the write interest set
       (POLLOUT re-arming).  The [evloop.conn.write] failpoint shapes
       attempts (partial write / EAGAIN storm) for tests.
     - timers: a coarse wheel (1 s granularity) holds one entry per
       connection.  Entries are hints: on expiry the true deadline is
       recomputed — request timeout while a frame is partially read or
       output is pending, idle timeout otherwise — and the entry is
       either re-armed or the connection reaped.

   Portability note: this is the C-free fallback tier.  [Unix.select]
   on this platform rejects fds >= FD_SETSIZE (1024); such "overflow"
   fds are simply treated as ready every capped tick (<= 25 ms) and
   the non-blocking syscalls sort out the truth via EAGAIN.  That
   degrades high-fd connections from event-driven to fine polling
   without a cliff, and keeps the module free of C stubs. *)

module Fault = Tep_fault.Fault

type handler = {
  h_feed : string -> string;
      (** run protocol input, return response bytes (may block) *)
  h_alive : unit -> bool;  (** false once the protocol killed the conn *)
  h_pending : unit -> bool;
      (** true while a partial frame / unbatched ops are buffered *)
}

type accept_decision =
  | Accept of handler
  | Reject of string  (** advisory bytes, written best-effort, then close *)

type config = {
  workers : int;
  read_chunk : int;  (** bytes per read(2) attempt *)
  read_burst : int;  (** per-connection bytes per tick (fairness) *)
  in_cap : int;  (** pause reads above this much unfed input *)
  write_cap : int;  (** pause reads above this much unsent output *)
  accept_burst : int;  (** accepts per tick *)
  request_timeout : float;  (** midframe / undrained-output deadline *)
  idle_timeout : float;  (** quiet-connection deadline *)
  drain_grace : float;  (** max wait for in-flight work after stop *)
  on_accept : Unix.file_descr -> accept_decision;
  on_close : unit -> unit;  (** once per accepted connection *)
  on_reap : unit -> unit;  (** subset of closes: idle-timeout reaps *)
}

let default_config ~on_accept =
  {
    workers = 4;
    read_chunk = 16384;
    read_burst = 65536;
    in_cap = 256 * 1024;
    write_cap = 1024 * 1024;
    accept_burst = 64;
    request_timeout = 30.;
    idle_timeout = 300.;
    drain_grace = 5.;
    on_accept;
    on_close = (fun () -> ());
    on_reap = (fun () -> ());
  }

let write_site = "evloop.conn.write"
let read_site = "evloop.conn.read"

let () =
  Fault.register write_site;
  Fault.register read_site

(* On Unix a file_descr is the integer fd; this is the standard
   C-free way to index connections by fd number. *)
let fd_int : Unix.file_descr -> int = Obj.magic

(* select(2) refuses fds >= FD_SETSIZE; those poll at a capped tick. *)
let fd_setsize = 1024
let overflow_tick = 0.025

type cstate = {
  fd : Unix.file_descr;
  id : int;  (* fd number at accept time; key in the conn table *)
  handler : handler;
  mutable inq : string list;  (* unfed chunks, newest first *)
  mutable in_bytes : int;
  mutable busy : bool;  (* a worker currently owns this conn *)
  outq : string Queue.t;
  mutable out_off : int;  (* sent bytes of the queue head *)
  mutable out_bytes : int;
  mutable midframe : bool;  (* h_pending at last worker completion *)
  mutable rx_eof : bool;
  mutable want_close : bool;  (* close once output drains *)
  mutable killed : bool;  (* close asap, discard output *)
  mutable closed : bool;
  mutable last_progress : float;  (* last byte moved / feed finished *)
}

type t = {
  cfg : config;
  lock : Mutex.t;
  work_cond : Condition.t;
  conns : (int, cstate) Hashtbl.t;
  workq : cstate Queue.t;
  mutable workers_done : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable wake_dead : bool;  (* wake pipe closed; no more nudges *)
  wheel : cstate list array;  (* 1 s slots, entries are hints *)
  mutable wheel_last : int;  (* last integral second advanced to *)
}

let wheel_slots = 512

let create cfg =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    cfg;
    lock = Mutex.create ();
    work_cond = Condition.create ();
    conns = Hashtbl.create 64;
    workq = Queue.create ();
    workers_done = false;
    wake_r;
    wake_w;
    wake_dead = false;
    wheel = Array.make wheel_slots [];
    wheel_last = 0;
  }

(* Safe from any thread, any time between create and after run has
   returned: nudges the reactor out of its pollset wait.  A full pipe
   means a wakeup is already pending — exactly what we want.  The
   [wake_dead] flag is set under [t.lock] before [run] closes the
   pipe, so a late waker (e.g. a server-level waker not yet
   unregistered) can never write into a reused fd number. *)
let wake t =
  Mutex.lock t.lock;
  if not t.wake_dead then begin
    try ignore (Unix.single_write_substring t.wake_w "!" 0 1)
    with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock t.lock

let now () = Unix.gettimeofday ()

(* ---- timer wheel ------------------------------------------------ *)

let deadline_of cfg c =
  if c.busy then infinity (* the engine is working; no I/O clock runs *)
  else if c.midframe || c.out_bytes > 0 || c.inq <> [] then
    c.last_progress +. cfg.request_timeout
  else c.last_progress +. cfg.idle_timeout

let wheel_add t ~at c =
  let sec = int_of_float at in
  (* never park an entry in a slot the advance cursor already passed
     this rotation — it would wait a full turn of the wheel *)
  let sec = if sec <= t.wheel_last then t.wheel_last + 1 else sec in
  let slot = sec mod wheel_slots in
  let slot = if slot < 0 then 0 else slot in
  t.wheel.(slot) <- c :: t.wheel.(slot)

(* ---- connection lifecycle (reactor lock held) -------------------

   Client fds are closed ONLY by the reactor thread.  The reactor
   snapshots its interest sets under the lock, releases it, and sits
   in the pollset wait; a worker closing an fd in that window would
   make select fail with EBADF (or, worse, have the snapshot alias a
   reused fd number).  Workers therefore only set [killed] /
   [want_close] and wake the reactor, which carries out the close
   between pollset rebuilds — the same thread that builds the sets. *)

let close_now t c =
  if not c.closed then begin
    c.closed <- true;
    Hashtbl.remove t.conns c.id;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.cfg.on_close ()
  end

(* A connection still owned by a worker must not have its fd closed
   (the number could be reused by a fresh accept and collide in the
   table): mark it killed and let worker completion finish the job. *)
let close_conn t c = if c.busy then c.killed <- true else close_now t c

let finished c =
  (not c.busy) && c.inq = [] && (c.out_bytes = 0 || c.killed)

let maybe_close t c =
  if c.killed then close_conn t c
  else if (c.want_close || c.rx_eof) && finished c then close_now t c

let enqueue_work t c =
  if (not c.busy) && (not c.killed) && c.inq <> [] then begin
    c.busy <- true;
    Queue.push c t.workq;
    Condition.signal t.work_cond
  end

(* ---- write path (lock held; worker or reactor) ------------------
   Never closes: a failed flush only marks [killed], and the reactor
   follows up with [maybe_close] on its own thread. *)

let flush_conn c =
  let more = ref true in
  while !more && not (Queue.is_empty c.outq) && not c.killed do
    let head = Queue.peek c.outq in
    let len = String.length head - c.out_off in
    let allowed = Fault.allow write_site len in
    if allowed = 0 then more := false (* injected EAGAIN: POLLOUT re-arms *)
    else begin
      let n =
        match Unix.single_write_substring c.fd head c.out_off allowed with
        | n -> n
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            more := false;
            0
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
        | exception Unix.Unix_error _ ->
            (* peer gone (EPIPE, ECONNRESET...): discard and close *)
            c.killed <- true;
            more := false;
            0
      in
      if n > 0 then begin
        c.out_off <- c.out_off + n;
        c.out_bytes <- c.out_bytes - n;
        c.last_progress <- now ();
        if c.out_off = String.length head then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0
        end;
        (* short count = kernel buffer full or injected partial write:
           keep the rest queued, stay in the write interest set *)
        if n < len then more := false
      end
    end
  done

(* ---- worker pool ------------------------------------------------ *)

let worker_loop t =
  let rec next () =
    Mutex.lock t.lock;
    while Queue.is_empty t.workq && not t.workers_done do
      Condition.wait t.work_cond t.lock
    done;
    if Queue.is_empty t.workq then Mutex.unlock t.lock (* shutdown *)
    else begin
      let c = Queue.pop t.workq in
      let chunks = List.rev c.inq in
      c.inq <- [];
      c.in_bytes <- 0;
      Mutex.unlock t.lock;
      let data = String.concat "" chunks in
      (* Protocol exceptions (including injected Fault.Crash) kill the
         connection, never the worker — parity with the legacy
         per-connection handler thread. *)
      let out, crashed =
        match c.handler.h_feed data with
        | out -> (out, false)
        | exception _ -> ("", true)
      in
      let midframe = (try c.handler.h_pending () with _ -> false) in
      let alive = (try c.handler.h_alive () with _ -> false) in
      Mutex.lock t.lock;
      if out <> "" && not c.killed then begin
        Queue.push out c.outq;
        c.out_bytes <- c.out_bytes + String.length out
      end;
      c.midframe <- midframe;
      c.last_progress <- now ();
      if crashed || not alive then c.want_close <- true;
      (* opportunistic flush from the completing worker: the socket is
         almost always writable, so the common case sends the response
         here instead of paying a wake + poll round-trip for the
         reactor to do it.  Same lock, same flush_conn — the reactor
         can never be writing this fd concurrently. *)
      if c.out_bytes > 0 && not c.killed then flush_conn c;
      if c.inq <> [] && not c.killed then
        (* the reactor read more while we fed: keep ownership *)
        Queue.push c t.workq
      else c.busy <- false;
      (* the reactor only needs a nudge if there is still reactor work:
         leftover output to arm POLLOUT for, or a close to carry out
         (never closed here — see the lifecycle note above) *)
      let need_reactor =
        (not c.closed)
        && (c.out_bytes > 0 || c.killed || c.want_close || c.rx_eof)
      in
      Mutex.unlock t.lock;
      if need_reactor then wake t;
      next ()
    end
  in
  next ()

(* ---- pollset ---------------------------------------------------- *)

(* Level-triggered wait.  Overflow fds (>= FD_SETSIZE) cannot go in a
   select set: report them ready every tick and clamp the timeout so
   "every tick" is soon; their non-blocking syscalls return EAGAIN
   when there is nothing to do. *)
let poll_wait ~read ~write ~timeout =
  let fits fd = fd_int fd < fd_setsize in
  let sel_r, ovf_r = List.partition fits read in
  let sel_w, ovf_w = List.partition fits write in
  let timeout =
    if ovf_r = [] && ovf_w = [] then timeout else Float.min timeout overflow_tick
  in
  match Unix.select sel_r sel_w [] timeout with
  | r, w, _ -> (r @ ovf_r, w @ ovf_w)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> (ovf_r, ovf_w)
  | exception Unix.Unix_error (Unix.EBADF, _, _) ->
      (* Closes are confined to the reactor thread, so a stale fd in
         the sets should be impossible — but an embedder closing a fd
         behind our back must degrade to a skipped tick (the next
         rebuild drops the dead fd), not kill the service path. *)
      ([], [])

(* ---- reactor I/O (lock held; all fds non-blocking) -------------- *)

let drain_wake_pipe t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r buf 0 64 with
    | n when n = 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let accept_one t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED | Unix.EINTR), _, _)
    ->
      false
  | exception Unix.Unix_error _ -> false
  | cfd, _ -> (
      Unix.set_nonblock cfd;
      match t.cfg.on_accept cfd with
      | Reject advisory ->
          (* Advisory over-capacity frame: best effort into an empty
             socket buffer, never blocks, never holds a slot. *)
          (try
             ignore
               (Unix.single_write_substring cfd advisory 0
                  (String.length advisory))
           with Unix.Unix_error _ -> ());
          (try Unix.close cfd with Unix.Unix_error _ -> ());
          true
      | Accept handler ->
          let c =
            {
              fd = cfd;
              id = fd_int cfd;
              handler;
              inq = [];
              in_bytes = 0;
              busy = false;
              outq = Queue.create ();
              out_off = 0;
              out_bytes = 0;
              midframe = false;
              rx_eof = false;
              want_close = false;
              killed = false;
              closed = false;
              last_progress = now ();
            }
          in
          Hashtbl.replace t.conns c.id c;
          wheel_add t ~at:(deadline_of t.cfg c) c;
          true)

let accept_burst t lfd =
  let rec go n = if n > 0 && accept_one t lfd then go (n - 1) in
  go t.cfg.accept_burst

let read_conn t c buf =
  let budget = ref t.cfg.read_burst in
  let more = ref true in
  while !more && !budget > 0 && not c.killed do
    let want = min (Bytes.length buf) !budget in
    let want = Fault.allow read_site want in
    if want = 0 then more := false
    else
      match Unix.read c.fd buf 0 want with
      | 0 ->
          c.rx_eof <- true;
          more := false
      | n ->
          c.inq <- Bytes.sub_string buf 0 n :: c.inq;
          c.in_bytes <- c.in_bytes + n;
          c.last_progress <- now ();
          budget := !budget - n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          more := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ ->
          c.rx_eof <- true;
          c.killed <- true;
          more := false
  done;
  enqueue_work t c;
  maybe_close t c

(* Advance the wheel to [t_now]; expired entries are re-checked
   against their true deadline and either re-armed or reaped. *)
let wheel_advance t t_now =
  let nsec = int_of_float t_now in
  if t.wheel_last = 0 then t.wheel_last <- nsec - 1;
  if nsec > t.wheel_last then begin
    (* visiting more than the whole wheel once is pointless *)
    let from = max (t.wheel_last + 1) (nsec - wheel_slots + 1) in
    for s = from to nsec do
      (* move the cursor first: a re-arm during this slot's scan must
         land strictly ahead of it (wheel_add clamps against the
         cursor), never back into the slot being emptied *)
      t.wheel_last <- s;
      let slot = s mod wheel_slots in
      let entries = t.wheel.(slot) in
      t.wheel.(slot) <- [];
      List.iter
        (fun c ->
          if not c.closed then begin
            let dl = deadline_of t.cfg c in
            if dl > t_now then
              (* hint was stale (progress happened, or conn is busy):
                 re-arm; busy conns re-check a request-timeout later *)
              wheel_add t
                ~at:
                  (if dl = infinity then t_now +. t.cfg.request_timeout else dl)
                c
            else begin
              t.cfg.on_reap ();
              close_conn t c
            end
          end)
        entries
    done
  end

(* ---- main loop -------------------------------------------------- *)

let run t ~listen ~stop =
  Unix.set_nonblock listen;
  Unix.listen listen 128;
  let workers =
    List.init t.cfg.workers (fun _ -> Thread.create worker_loop t)
  in
  let buf = Bytes.create t.cfg.read_chunk in
  let stopping = ref false in
  let drain_deadline = ref infinity in
  let running = ref true in
  while !running do
    (* interest sets *)
    Mutex.lock t.lock;
    let rs = ref [ t.wake_r ] in
    if not !stopping then rs := listen :: !rs;
    let ws = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if not c.closed then begin
          if
            (not c.rx_eof) && (not c.killed) && (not c.want_close)
            && c.in_bytes < t.cfg.in_cap
            && c.out_bytes <= t.cfg.write_cap
          then rs := c.fd :: !rs;
          if c.out_bytes > 0 && not c.killed then ws := c.fd :: !ws
        end)
      t.conns;
    Mutex.unlock t.lock;
    (* 1 s cap = the wheel tick; also bounds stop-flag latency when a
       caller forgets to wake *)
    let r, w = poll_wait ~read:!rs ~write:!ws ~timeout:1.0 in
    Mutex.lock t.lock;
    let t_now = now () in
    List.iter
      (fun fd ->
        if fd = t.wake_r then drain_wake_pipe t
        else if fd = listen then (if not !stopping then accept_burst t listen)
        else
          match Hashtbl.find_opt t.conns (fd_int fd) with
          | Some c when not c.closed -> read_conn t c buf
          | _ -> ())
      r;
    ignore w;
    (* eager flush + deferred closes — covers every fd the poll
       reported writable, plus output a worker queued right before
       this tick's wakeup, which would otherwise wait one more poll
       round for POLLOUT.  Sockets are almost always writable; EAGAIN
       just leaves the fd in the write interest set for the slow
       path.  This sweep is also where worker-requested closes
       ([killed] / [want_close] / EOF) are carried out: only this
       thread ever closes a client fd, so the pollset can never see a
       stale one.  Collected first because a close mutates the table
       mid-iteration. *)
    let sweep =
      Hashtbl.fold
        (fun _ c acc ->
          if
            (not c.closed)
            && (c.out_bytes > 0 || c.killed || c.want_close || c.rx_eof)
          then c :: acc
          else acc)
        t.conns []
    in
    List.iter
      (fun c ->
        if not c.closed then begin
          if (not c.killed) && c.out_bytes > 0 then flush_conn c;
          maybe_close t c
        end)
      sweep;
    wheel_advance t t_now;
    if (not !stopping) && Atomic.get stop then begin
      stopping := true;
      drain_deadline := t_now +. t.cfg.drain_grace
    end;
    if !stopping then begin
      let pending =
        Hashtbl.fold
          (fun _ c acc -> acc || c.busy || c.inq <> [] || c.out_bytes > 0)
          t.conns false
      in
      if (not pending) || t_now >= !drain_deadline then begin
        let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        List.iter (close_conn t) remaining;
        running := false
      end
    end;
    Mutex.unlock t.lock
  done;
  Mutex.lock t.lock;
  t.workers_done <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  List.iter Thread.join workers;
  Mutex.lock t.lock;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter
    (fun c ->
      c.busy <- false;
      close_now t c)
    remaining;
  (* Retire the wake pipe under the lock: a concurrent [wake] either
     completed its write before we acquired the lock or will observe
     [wake_dead] — it can never hit a closed (or reused) fd. *)
  t.wake_dead <- true;
  Mutex.unlock t.lock;
  (try Unix.close listen with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
