(* provdbd — the networked provenance service.

   The protocol logic lives entirely in a [conn] state machine whose
   single entry point is {!feed}: bytes in, response bytes out.  The
   Unix-domain and TCP accept loops pump sockets through it; the
   client library's loopback transport calls it directly — so the
   in-process test path exercises exactly the frames, codecs and
   session sealing that cross a real socket.

   Authentication is the {!Tep_wire.Session} challenge–response: the
   client names a PKI-registered participant and signs the handshake
   transcript with that participant's key; the server checks the
   signature against the certificate in the engine's directory.  The
   workspace keeps participant credentials server-side, so after
   authentication the server signs submitted operations with the same
   participant identity the client proved it holds.

   The engine is not thread-safe; one request executes at a time
   (per-server mutex), while framing, MAC checks and socket I/O run
   concurrently per connection. *)

module Frame = Tep_wire.Frame
module Message = Tep_wire.Message
module Session = Tep_wire.Session
module Engine = Tep_core.Engine
module Participant = Tep_core.Participant
module Verifier = Tep_core.Verifier
module Audit = Tep_core.Audit
module Provstore = Tep_core.Provstore
module Recovery = Tep_core.Recovery
module Fault = Tep_fault.Fault

(* Everything a connection reads passes through this failpoint, so
   tests can inject torn reads and bit flips into the byte stream
   without a real flaky network. *)
let read_site = "wire.server.read"
let () = Fault.register read_site

type t = {
  engine : Engine.t;
  participants : (string * Participant.t) list;
  pool : Tep_parallel.Pool.t option;
  drbg : Tep_crypto.Drbg.t;
  drbg_lock : Mutex.t;
      (** handshakes run on per-connection threads; DRBG state is not
          thread-safe, and interleaved generates could repeat nonces *)
  max_payload : int;
  request_timeout : float;
  max_connections : int;
  active : int Atomic.t; (* concurrent socket connections *)
  checkpoint : (string * Tep_store.Wal.t) option;
      (** checkpoint directory + WAL, when the daemon owns durability *)
  audit_cp : Audit.checkpoint ref;
  lock : Mutex.t;
}

let create ?(max_payload = Frame.default_max_payload) ?(request_timeout = 30.)
    ?(max_connections = 64) ?drbg ?pool ?checkpoint ~participants engine =
  let drbg =
    match drbg with Some d -> d | None -> Tep_crypto.Drbg.create_system ()
  in
  {
    engine;
    participants;
    pool;
    drbg;
    drbg_lock = Mutex.create ();
    max_payload;
    request_timeout;
    max_connections;
    active = Atomic.make 0;
    checkpoint;
    audit_cp = ref Audit.empty;
    lock = Mutex.create ();
  }

let engine t = t.engine

let gen_nonce t =
  Mutex.lock t.drbg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drbg_lock)
    (fun () -> Tep_crypto.Drbg.generate t.drbg Session.nonce_len)

(* ------------------------------------------------------------------ *)
(* Connection state machine                                            *)
(* ------------------------------------------------------------------ *)

type established = {
  participant : Participant.t;
  key : string;
  mutable recv_seq : int;
  mutable send_seq : int;
}

type phase =
  | Expect_hello
  | Expect_auth of {
      participant : Participant.t;
      name : string;
      client_nonce : string;
      server_nonce : string;
          (* the transcript also covers the key share, which only
             arrives with the Auth frame — so the nonces wait here *)
    }
  | Established of established
  | Dead

type conn = {
  server : t;
  inbox : Buffer.t; (* unconsumed input; compacted once per frame *)
  mutable need : int; (* skip parse attempts below this many bytes *)
  mutable phase : phase;
}

let conn server =
  {
    server;
    inbox = Buffer.create 256;
    need = Frame.header_len;
    phase = Expect_hello;
  }

let alive c = c.phase <> Dead

let error_resp code message = Message.Error_resp { code; message }

(* Frame a response in whatever protection the connection has reached:
   clear during the handshake, sealed (tagged, sequenced) once the
   session key exists.  A response too large for the peer's frame
   limit degrades to a Too_large error rather than an oversized frame
   the peer must reject as abusive. *)
let frame_response c resp =
  let limit =
    c.server.max_payload
    - (match c.phase with Established _ -> Session.tag_len | _ -> 0)
  in
  let msg = Message.response_to_string resp in
  let msg =
    if String.length msg <= limit then msg
    else
      Message.response_to_string
        (error_resp Message.Too_large
           (Printf.sprintf "response of %d bytes exceeds the %d-byte frame limit"
              (String.length msg) c.server.max_payload))
  in
  match c.phase with
  | Established s ->
      let sealed =
        Session.seal ~key:s.key ~dir:Session.To_client ~seq:s.send_seq msg
      in
      s.send_seq <- s.send_seq + 1;
      Frame.to_string ~kind:Frame.Sealed sealed
  | _ -> Frame.to_string ~kind:Frame.Clear msg

let kill c resp =
  let out = frame_response c resp in
  c.phase <- Dead;
  Buffer.clear c.inbox;
  out

(* ------------------------------------------------------------------ *)
(* Request dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let report = Message.report_of_verifier

let submitted t row oid =
  Message.Submitted
    { row; oid; records = (Engine.last_metrics t.engine).Engine.records_emitted }

let dispatch_op t participant (op : Message.op) =
  match op with
  | Message.Op_insert { table; cells } -> (
      match Engine.insert_row t.engine participant ~table cells with
      | Ok row -> submitted t (Some row) None
      | Error e -> error_resp Message.Bad_request e)
  | Message.Op_update { table; row; col; value } -> (
      match Engine.update_cell t.engine participant ~table ~row ~col value with
      | Ok () -> submitted t None None
      | Error e -> error_resp Message.Bad_request e)
  | Message.Op_delete { table; row } -> (
      match Engine.delete_row t.engine participant ~table row with
      | Ok () -> submitted t None None
      | Error e -> error_resp Message.Bad_request e)
  | Message.Op_aggregate { inputs; value } -> (
      match Engine.aggregate_objects t.engine participant ~value inputs with
      | Ok oid -> submitted t None (Some oid)
      | Error e -> error_resp Message.Bad_request e)

let dispatch t participant (req : Message.request) =
  let algo = Engine.algo t.engine in
  let directory = Engine.directory t.engine in
  match req with
  | Message.Hello _ | Message.Auth _ ->
      error_resp Message.Bad_request "already authenticated"
  | Message.Submit op -> dispatch_op t participant op
  | Message.Query oid -> (
      let oid = match oid with Some o -> o | None -> Engine.root_oid t.engine in
      match Engine.deliver t.engine oid with
      | Ok (_, records) -> Message.Records records
      | Error e -> error_resp Message.Not_found e)
  | Message.Verify (Some oid) -> (
      match Engine.verify_object t.engine oid with
      | Ok r -> Message.Verified { report = report r; store_audit = None }
      | Error e -> error_resp Message.Not_found e)
  | Message.Verify None -> (
      match Engine.verify_object t.engine (Engine.root_oid t.engine) with
      | Ok r ->
          let store =
            Verifier.verify_records ?pool:t.pool ~algo ~directory
              (Provstore.all (Engine.provstore t.engine))
          in
          Message.Verified { report = report r; store_audit = Some (report store) }
      | Error e -> error_resp Message.Failed e)
  | Message.Audit ->
      let r, cp, examined =
        Audit.incremental_audit ?pool:t.pool ~algo ~directory !(t.audit_cp)
          (Engine.provstore t.engine)
      in
      t.audit_cp := cp;
      Message.Audited { report = report r; examined; objects = Audit.objects cp }
  | Message.Checkpoint -> (
      match t.checkpoint with
      | None -> error_resp Message.Failed "checkpointing not configured"
      | Some (dir, wal) -> (
          match Recovery.checkpoint ~dir ~wal t.engine with
          | Ok generation ->
              Message.Checkpointed { generation; lsn = Tep_store.Wal.last_seq wal }
          | Error e -> error_resp Message.Failed e))
  | Message.Root_hash -> Message.Root { hash = Engine.root_hash t.engine }

let dispatch_locked t participant req =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      try dispatch t participant req
      with e -> error_resp Message.Failed (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let handle_hello c ~name ~client_nonce =
  let t = c.server in
  match List.assoc_opt name t.participants with
  | None -> kill c (error_resp Message.Auth_failed ("unknown participant " ^ name))
  | Some participant -> (
      match
        Participant.Directory.lookup_verified (Engine.directory t.engine) name
      with
      | `Unknown | `Bad_certificate ->
          kill c
            (error_resp Message.Auth_failed
               ("no verified certificate for " ^ name))
      | `Verified _ ->
          let server_nonce = gen_nonce t in
          c.phase <- Expect_auth { participant; name; client_nonce; server_nonce };
          frame_response c (Message.Challenge { nonce = server_nonce }))

(* Order matters: the signature (which covers the encrypted key
   share) is verified before the share is decrypted, so decryption
   only ever runs on ciphertexts the participant's key holder
   produced — never on attacker-chosen ones. *)
let handle_auth c ~participant ~name ~client_nonce ~server_nonce ~signature
    ~key_share =
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let cert = Participant.certificate participant in
  if
    not
      (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256
         cert.Tep_crypto.Pki.subject_key ~msg:transcript ~signature)
  then kill c (error_resp Message.Auth_failed "transcript signature invalid")
  else
    match Participant.decrypt participant key_share with
    | Some secret when String.length secret = Session.key_share_len ->
        let key = Session.derive_key ~transcript ~signature ~secret in
        c.phase <- Established { participant; key; recv_seq = 0; send_seq = 0 };
        frame_response c (Message.Auth_ok { server = "provdbd" })
    | Some _ | None ->
        kill c (error_resp Message.Auth_failed "key share rejected")

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let decode_request payload =
  match Message.decode_request payload 0 with
  | req, consumed when consumed = String.length payload -> Some req
  | _ -> None
  | exception (Failure _ | Invalid_argument _) -> None

let handle_frame c (kind : Frame.kind) payload =
  match (c.phase, kind) with
  | Dead, _ -> ""
  | (Expect_hello | Expect_auth _), Sealed ->
      kill c (error_resp Message.Auth_required "handshake not complete")
  | Established _, Clear ->
      kill c (error_resp Message.Bad_request "clear frame on sealed session")
  | Expect_hello, Clear -> (
      match decode_request payload with
      | Some (Message.Hello { name; nonce }) ->
          handle_hello c ~name ~client_nonce:nonce
      | Some _ -> kill c (error_resp Message.Auth_required "hello expected")
      | None -> kill c (error_resp Message.Bad_request "malformed request"))
  | Expect_auth { participant; name; client_nonce; server_nonce }, Clear -> (
      match decode_request payload with
      | Some (Message.Auth { signature; key_share }) ->
          handle_auth c ~participant ~name ~client_nonce ~server_nonce
            ~signature ~key_share
      | Some _ -> kill c (error_resp Message.Auth_required "auth expected")
      | None -> kill c (error_resp Message.Bad_request "malformed request"))
  | Established s, Sealed -> (
      match
        Session.open_ ~key:s.key ~dir:Session.To_server ~seq:s.recv_seq payload
      with
      | Error e -> kill c (error_resp Message.Auth_failed e)
      | Ok msg -> (
          s.recv_seq <- s.recv_seq + 1;
          match decode_request msg with
          | None -> kill c (error_resp Message.Bad_request "malformed request")
          | Some req ->
              frame_response c (dispatch_locked c.server s.participant req)))

(* Bytes in, response bytes out.  This is the single protocol entry
   point shared by the socket loops and the loopback transport.

   Input accumulates in a Buffer (amortised O(1) per chunk); the
   parser only materialises the buffered bytes once a frame could be
   complete ([need], maintained from the parser's Need_more), so a
   maximum-size frame arriving in 4 KiB chunks costs O(n), not the
   O(n^2) of re-concatenating a string per chunk — an unauthenticated
   peer cannot buy gigabytes of memcpy with one 16 MiB frame. *)
let feed c data =
  if c.phase = Dead then ""
  else begin
    let data = Fault.input read_site data in
    Buffer.add_string c.inbox data;
    let out = Buffer.create 256 in
    let continue = ref true in
    while !continue && alive c do
      if Buffer.length c.inbox < c.need then continue := false
      else begin
        let buffered = Buffer.contents c.inbox in
        match Frame.parse ~max_payload:c.server.max_payload buffered 0 with
        | Frame.Need_more n ->
            c.need <- String.length buffered + n;
            continue := false
        | Frame.Frame { kind; payload; consumed } ->
            Buffer.clear c.inbox;
            Buffer.add_substring c.inbox buffered consumed
              (String.length buffered - consumed);
            c.need <- Frame.header_len;
            Buffer.add_string out (handle_frame c kind payload)
        | Frame.Oversized n ->
            Buffer.add_string out
              (kill c
                 (error_resp Message.Too_large
                    (Printf.sprintf
                       "declared payload of %d bytes exceeds limit" n)))
        | Frame.Corrupt reason ->
            Buffer.add_string out
              (kill c (error_resp Message.Bad_request reason))
      end
    done;
    Buffer.contents out
  end

(* ------------------------------------------------------------------ *)
(* Socket loops                                                        *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let handle_client t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  let c = conn t in
  let chunk = Bytes.create 4096 in
  (try
     let eof = ref false in
     while (not !eof) && alive c do
       let n = Unix.read fd chunk 0 (Bytes.length chunk) in
       if n = 0 then eof := true
       else begin
         let out = feed c (Bytes.sub_string chunk 0 n) in
         if out <> "" then write_all fd out
       end
     done
   with Unix.Unix_error _ | Sys_error _ | Fault.Crash _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A connection flood must not translate into unbounded threads: past
   [max_connections] concurrent connections, new accepts get a
   best-effort advisory error frame and are dropped. *)
let try_acquire t =
  if Atomic.fetch_and_add t.active 1 < t.max_connections then true
  else begin
    Atomic.decr t.active;
    false
  end

let reject_over_capacity cfd =
  (try
     Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 1.0;
     write_all cfd
       (Frame.to_string ~kind:Frame.Clear
          (Message.response_to_string
             (error_resp Message.Failed "server at connection limit")))
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

(* Accept loop: polls [stop] every 200ms so a daemon can shut down
   cleanly (and save its workspace) on signal. *)
let serve_fd t ~stop fd =
  Unix.listen fd 16;
  while not (Atomic.get stop) do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | cfd, _ ->
            if try_acquire t then
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () -> Atomic.decr t.active)
                       (fun () -> handle_client t cfd))
                   ())
            else reject_over_capacity cfd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_unix t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd

let serve_tcp t ~port ~stop =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd
