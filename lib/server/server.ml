(* provdbd — the networked provenance service.

   The protocol logic lives entirely in a [conn] state machine whose
   single entry point is {!feed}: bytes in, response bytes out.  The
   Unix-domain and TCP accept loops pump sockets through it; the
   client library's loopback transport calls it directly — so the
   in-process test path exercises exactly the frames, codecs and
   session sealing that cross a real socket.

   Authentication is the {!Tep_wire.Session} challenge–response: the
   client names a PKI-registered participant and signs the handshake
   transcript with that participant's key; the server checks the
   signature against the certificate in the engine's directory.  The
   workspace keeps participant credentials server-side, so after
   authentication the server signs submitted operations with the same
   participant identity the client proved it holds.

   Dispatch concurrency (the high-throughput path):

   - Read-only requests — Query, Verify, Audit, Root-hash — run
     concurrently across connections under the shared side of a
     writer-preferring {!Rwlock}.  The engine itself is never mutated
     by these paths; the two stateful read-side resources (the Merkle
     root cache and the incremental-audit checkpoint) each sit behind
     a small dedicated mutex.
   - Submits from any number of connections funnel into a group-commit
     batcher: the first arrival becomes the leader, drains the queue,
     and executes everything queued as one {!Engine.complex_op} per
     participant under the exclusive write lock — one signing pass,
     one Merkle dirty-path rehash, one WAL append+flush per batch
     instead of per op.  Every client still receives its own per-op
     response; a WAL failure mid-batch fails that whole batch
     atomically (recovery replays to the last commit marker).
   - Checkpoint takes the write lock directly.

   Once a session is established, sealed messages carry a varint
   correlation id (see {!Message.with_cid}), echoed in responses, so a
   connection may pipeline several requests; consecutive pipelined
   Submits parsed from one input chunk join the batcher as a single
   job. *)

module Frame = Tep_wire.Frame
module Message = Tep_wire.Message
module Session = Tep_wire.Session
module Engine = Tep_core.Engine
module Participant = Tep_core.Participant
module Verifier = Tep_core.Verifier
module Audit = Tep_core.Audit
module Provstore = Tep_core.Provstore
module Recovery = Tep_core.Recovery
module Oid = Tep_tree.Oid
module Fault = Tep_fault.Fault

(* Everything a connection reads passes through this failpoint, so
   tests can inject torn reads and bit flips into the byte stream
   without a real flaky network. *)
let read_site = "wire.server.read"
let () = Fault.register read_site

(* Hit on the read-side dispatch of every Verify request; arming it
   with [Fault.Delay] holds a verification in flight, which is how the
   tests observe that readers are not serialised. *)
let verify_site = "server.dispatch.verify"
let () = Fault.register verify_site

(* ------------------------------------------------------------------ *)
(* Group-commit batcher                                                *)
(* ------------------------------------------------------------------ *)

type submit_result =
  | R_pending
  | R_row of int (* insert: fresh row id *)
  | R_oid of Oid.t (* aggregate: fresh object *)
  | R_unit (* update / delete *)
  | R_err of string (* per-op rejection (batch still commits) *)

(* One enqueued unit of submit work: all ops of one job come from one
   connection (hence one participant) and are answered positionally. *)
type submit_job = {
  j_participant : Participant.t;
  j_ops : Message.op array;
  j_results : submit_result array;
  mutable j_records : int; (* the batch commit's records_emitted *)
  mutable j_failed : string option; (* commit-level failure: atomic *)
  mutable j_done : bool;
}

type batcher = {
  b_mutex : Mutex.t;
  b_cond : Condition.t; (* job completion; leader handoff *)
  mutable b_queue : submit_job list; (* newest first *)
  mutable b_leader : bool; (* a leader is currently draining *)
  mutable b_batches : int; (* group commits executed (observability) *)
  mutable b_ops : int; (* ops carried by those commits *)
  mutable b_sign_wall_s : float; (* wall-clock across commit signing stages *)
  mutable b_sign_cpu_s : float; (* cumulative per-signature time *)
}

type batch_stats = {
  batches : int;
  ops : int;
  sign_wall_s : float;
  sign_cpu_s : float;
}

type t = {
  engine : Engine.t;
  participants : (string * Participant.t) list;
  pool : Tep_parallel.Pool.t option;
  drbg : Tep_crypto.Drbg.t;
  drbg_lock : Mutex.t;
      (** handshakes run on per-connection threads; DRBG state is not
          thread-safe, and interleaved generates could repeat nonces *)
  max_payload : int;
  request_timeout : float;
  max_connections : int;
  active : int Atomic.t; (* concurrent socket connections *)
  checkpoint : (string * Tep_store.Wal.t) option;
      (** checkpoint directory + WAL, when the daemon owns durability *)
  audit_cp : Audit.checkpoint ref;
  rwlock : Rwlock.t; (* readers share; submits/checkpoints exclude *)
  audit_lock : Mutex.t; (* audit checkpoint ref, among readers *)
  root_lock : Mutex.t; (* Merkle root cache, among readers *)
  batcher : batcher;
}

let create ?(max_payload = Frame.default_max_payload) ?(request_timeout = 30.)
    ?(max_connections = 64) ?drbg ?pool ?checkpoint ~participants engine =
  let drbg =
    match drbg with Some d -> d | None -> Tep_crypto.Drbg.create_system ()
  in
  {
    engine;
    participants;
    pool;
    drbg;
    drbg_lock = Mutex.create ();
    max_payload;
    request_timeout;
    max_connections;
    active = Atomic.make 0;
    checkpoint;
    audit_cp = ref Audit.empty;
    rwlock = Rwlock.create ();
    audit_lock = Mutex.create ();
    root_lock = Mutex.create ();
    batcher =
      {
        b_mutex = Mutex.create ();
        b_cond = Condition.create ();
        b_queue = [];
        b_leader = false;
        b_batches = 0;
        b_ops = 0;
        b_sign_wall_s = 0.;
        b_sign_cpu_s = 0.;
      };
  }

let engine t = t.engine

let batch_stats t =
  let b = t.batcher in
  Mutex.lock b.b_mutex;
  let r =
    {
      batches = b.b_batches;
      ops = b.b_ops;
      sign_wall_s = b.b_sign_wall_s;
      sign_cpu_s = b.b_sign_cpu_s;
    }
  in
  Mutex.unlock b.b_mutex;
  r

let gen_nonce t =
  Mutex.lock t.drbg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drbg_lock)
    (fun () -> Tep_crypto.Drbg.generate t.drbg Session.nonce_len)

(* ------------------------------------------------------------------ *)
(* Connection state machine                                            *)
(* ------------------------------------------------------------------ *)

type established = {
  participant : Participant.t;
  keyed : Session.keyed; (* precomputed HMAC key schedule *)
  mutable recv_seq : int;
  mutable send_seq : int;
}

type phase =
  | Expect_hello
  | Expect_auth of {
      participant : Participant.t;
      name : string;
      client_nonce : string;
      server_nonce : string;
          (* the transcript also covers the key share, which only
             arrives with the Auth frame — so the nonces wait here *)
    }
  | Established of established
  | Dead

type conn = {
  server : t;
  inbox : Buffer.t; (* unconsumed input; compacted once per frame *)
  mutable need : int; (* skip parse attempts below this many bytes *)
  mutable phase : phase;
  mutable pending : (int * Message.op) list;
      (* consecutive pipelined Submits (cid, op), newest first,
         awaiting a flush into the batcher as one job *)
}

let conn server =
  {
    server;
    inbox = Buffer.create 256;
    need = Frame.header_len;
    phase = Expect_hello;
    pending = [];
  }

let alive c = c.phase <> Dead

let error_resp code message = Message.Error_resp { code; message }

(* Frame a response in whatever protection the connection has reached:
   clear during the handshake, sealed (tagged, sequenced, correlation-
   id-prefixed) once the session key exists.  A response too large for
   the peer's frame limit degrades to a Too_large error rather than an
   oversized frame the peer must reject as abusive. *)
let frame_response ?(cid = Message.conn_cid) c resp =
  let limit =
    c.server.max_payload
    - (match c.phase with Established _ -> Session.tag_len | _ -> 0)
  in
  let encode resp =
    let body = Message.response_to_string resp in
    match c.phase with
    | Established _ -> Message.with_cid cid body
    | _ -> body
  in
  let msg = encode resp in
  let msg =
    if String.length msg <= limit then msg
    else
      encode
        (error_resp Message.Too_large
           (Printf.sprintf "response of %d bytes exceeds the %d-byte frame limit"
              (String.length msg) c.server.max_payload))
  in
  match c.phase with
  | Established s ->
      let sealed =
        Session.seal_keyed s.keyed ~dir:Session.To_client ~seq:s.send_seq msg
      in
      s.send_seq <- s.send_seq + 1;
      Frame.to_string ~kind:Frame.Sealed sealed
  | _ -> Frame.to_string ~kind:Frame.Clear msg

let kill ?cid c resp =
  let out = frame_response ?cid c resp in
  c.phase <- Dead;
  c.pending <- [];
  Buffer.clear c.inbox;
  out

(* ------------------------------------------------------------------ *)
(* Submit execution (the write side)                                   *)
(* ------------------------------------------------------------------ *)

let apply_op t participant (op : Message.op) : submit_result =
  match op with
  | Message.Op_insert { table; cells } -> (
      match Engine.insert_row t.engine participant ~table cells with
      | Ok row -> R_row row
      | Error e -> R_err e)
  | Message.Op_update { table; row; col; value } -> (
      match Engine.update_cell t.engine participant ~table ~row ~col value with
      | Ok () -> R_unit
      | Error e -> R_err e)
  | Message.Op_delete { table; row } -> (
      match Engine.delete_row t.engine participant ~table row with
      | Ok () -> R_unit
      | Error e -> R_err e)
  | Message.Op_aggregate { inputs; value } -> (
      match Engine.aggregate_objects t.engine participant ~value inputs with
      | Ok oid -> R_oid oid
      | Error e -> R_err e)

(* Execute one drained queue under the write lock.  Jobs are grouped
   by participant ({!Engine.complex_op} signs a batch as one identity);
   within a group, ops run in arrival order inside a single complex
   operation, so the whole group costs one signing pass over the
   touched set, one root rehash, and one WAL append+flush.

   Failure semantics: an op the engine rejects (bad table, missing
   row) gets its own error response while the rest of the batch
   commits — same per-op outcome a singleton submit would see.  If the
   commit itself fails (WAL error, simulated crash), every op of the
   group fails atomically: nothing was durably recorded, and recovery
   rolls the store back to the last commit marker. *)
let run_batch t (jobs : submit_job list) =
  Rwlock.with_write t.rwlock (fun () ->
      (* Group by participant, preserving arrival order of both the
         groups and the ops within each. *)
      let order : string list ref = ref [] in
      let groups : (string, (submit_job * int) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun job ->
          let name = Participant.name job.j_participant in
          let bucket =
            match Hashtbl.find_opt groups name with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace groups name b;
                order := name :: !order;
                b
          in
          Array.iteri (fun i _ -> bucket := (job, i) :: !bucket) job.j_ops)
        jobs;
      List.iter
        (fun name ->
          let entries = List.rev !(Hashtbl.find groups name) in
          let participant = (fst (List.hd entries)).j_participant in
          let outcome =
            try
              Engine.complex_op t.engine participant (fun () ->
                  let any_ok = ref false in
                  List.iter
                    (fun (job, i) ->
                      let r = apply_op t participant job.j_ops.(i) in
                      (match r with R_err _ -> () | _ -> any_ok := true);
                      job.j_results.(i) <- r)
                    entries;
                  (* If nothing survived there is nothing to commit:
                     erroring out of the body skips the (empty) commit,
                     exactly like a failed singleton submit did. *)
                  if !any_ok then Ok ()
                  else Error "no operation in the batch succeeded")
            with e -> Error ("commit failed: " ^ Printexc.to_string e)
          in
          match outcome with
          | Ok ((), m) ->
              (* Signing-time counters: taken under b_mutex while this
                 leader still holds the write lock; the only lock order
                 anywhere is rwlock → b_mutex, so no cycle. *)
              let b = t.batcher in
              Mutex.lock b.b_mutex;
              b.b_sign_wall_s <- b.b_sign_wall_s +. m.Engine.sign_s;
              b.b_sign_cpu_s <- b.b_sign_cpu_s +. m.Engine.sign_cpu_s;
              Mutex.unlock b.b_mutex;
              List.iter
                (fun (job, _) -> job.j_records <- m.Engine.records_emitted)
                entries
          | Error msg ->
              (* Distinguish per-op rejections (results already carry
                 their own errors; the batch just had nothing to
                 commit) from a commit-level failure, which voids every
                 op of the group atomically. *)
              let all_rejected =
                List.for_all
                  (fun (job, i) ->
                    match job.j_results.(i) with R_err _ -> true | _ -> false)
                  entries
              in
              if not all_rejected then
                List.iter (fun (job, _) -> job.j_failed <- Some msg) entries)
        (List.rev !order))

(* Enqueue a job and wait for its responses.  The first submitter to
   find no leader becomes one: it drains and executes the queue
   (including everything that accumulates while it runs) and wakes the
   waiting followers, who only block on the condition variable. *)
let submit_ops t participant (ops : Message.op array) : Message.response array
    =
  let job =
    {
      j_participant = participant;
      j_ops = ops;
      j_results = Array.make (Array.length ops) R_pending;
      j_records = 0;
      j_failed = None;
      j_done = false;
    }
  in
  let b = t.batcher in
  Mutex.lock b.b_mutex;
  b.b_queue <- job :: b.b_queue;
  if b.b_leader then
    while not job.j_done do
      Condition.wait b.b_cond b.b_mutex
    done
  else begin
    b.b_leader <- true;
    while b.b_queue <> [] do
      let jobs = List.rev b.b_queue in
      b.b_queue <- [];
      b.b_batches <- b.b_batches + 1;
      b.b_ops <-
        b.b_ops
        + List.fold_left (fun n j -> n + Array.length j.j_ops) 0 jobs;
      Mutex.unlock b.b_mutex;
      (try run_batch t jobs
       with e ->
         (* run_batch catches per-group failures; anything escaping is
            a harness-level surprise — fail the drained jobs rather
            than deadlock their waiters. *)
         let msg = Printexc.to_string e in
         List.iter (fun j -> j.j_failed <- Some msg) jobs);
      Mutex.lock b.b_mutex;
      List.iter (fun j -> j.j_done <- true) jobs;
      Condition.broadcast b.b_cond
    done;
    b.b_leader <- false
  end;
  Mutex.unlock b.b_mutex;
  Array.init (Array.length ops) (fun i ->
      match job.j_failed with
      | Some e -> error_resp Message.Failed e
      | None -> (
          match job.j_results.(i) with
          | R_err e -> error_resp Message.Bad_request e
          | R_row row ->
              Message.Submitted
                { row = Some row; oid = None; records = job.j_records }
          | R_oid oid ->
              Message.Submitted
                { row = None; oid = Some oid; records = job.j_records }
          | R_unit ->
              Message.Submitted
                { row = None; oid = None; records = job.j_records }
          | R_pending ->
              (* unreachable: the leader fills every slot before
                 marking the job done *)
              error_resp Message.Failed "batch left the operation pending"))

(* ------------------------------------------------------------------ *)
(* Read-side dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let report = Message.report_of_verifier

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Runs under the shared read lock, concurrently with other readers:
   nothing here may mutate the engine.  The audit checkpoint and the
   Merkle root cache are the two read-side mutables; each has its own
   mutex. *)
let dispatch_read t (req : Message.request) =
  let algo = Engine.algo t.engine in
  let directory = Engine.directory t.engine in
  match req with
  | Message.Hello _ | Message.Auth _ ->
      error_resp Message.Bad_request "already authenticated"
  | Message.Submit _ | Message.Checkpoint ->
      (* routed to the write side by [dispatch_locked] *)
      error_resp Message.Failed "write request on the read path"
  | Message.Query oid -> (
      let oid = match oid with Some o -> o | None -> Engine.root_oid t.engine in
      match Engine.deliver t.engine oid with
      | Ok (_, records) -> Message.Records records
      | Error e -> error_resp Message.Not_found e)
  | Message.Verify (Some oid) -> (
      Fault.hit verify_site;
      match Engine.verify_object t.engine oid with
      | Ok r -> Message.Verified { report = report r; store_audit = None }
      | Error e -> error_resp Message.Not_found e)
  | Message.Verify None -> (
      Fault.hit verify_site;
      match Engine.verify_object t.engine (Engine.root_oid t.engine) with
      | Ok r ->
          let store =
            Verifier.verify_records ?pool:t.pool ~algo ~directory
              (Provstore.all (Engine.provstore t.engine))
          in
          Message.Verified { report = report r; store_audit = Some (report store) }
      | Error e -> error_resp Message.Failed e)
  | Message.Audit ->
      locked t.audit_lock (fun () ->
          let r, cp, examined =
            Audit.incremental_audit ?pool:t.pool ~algo ~directory !(t.audit_cp)
              (Engine.provstore t.engine)
          in
          t.audit_cp := cp;
          Message.Audited
            { report = report r; examined; objects = Audit.objects cp })
  | Message.Root_hash ->
      locked t.root_lock (fun () ->
          Message.Root { hash = Engine.root_hash t.engine })
  | Message.Stats ->
      let s = batch_stats t in
      Message.Stats_resp
        {
          batches = s.batches;
          ops = s.ops;
          sign_wall_us = int_of_float (s.sign_wall_s *. 1e6);
          sign_cpu_us = int_of_float (s.sign_cpu_s *. 1e6);
        }

let dispatch_checkpoint t =
  match t.checkpoint with
  | None -> error_resp Message.Failed "checkpointing not configured"
  | Some (dir, wal) -> (
      match Recovery.checkpoint ~dir ~wal t.engine with
      | Ok generation ->
          Message.Checkpointed { generation; lsn = Tep_store.Wal.last_seq wal }
      | Error e -> error_resp Message.Failed e)

let dispatch_locked t participant (req : Message.request) =
  match req with
  | Message.Submit op -> (submit_ops t participant [| op |]).(0)
  | Message.Checkpoint ->
      Rwlock.with_write t.rwlock (fun () ->
          try dispatch_checkpoint t
          with e -> error_resp Message.Failed (Printexc.to_string e))
  | _ ->
      Rwlock.with_read t.rwlock (fun () ->
          try dispatch_read t req
          with e -> error_resp Message.Failed (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let handle_hello c ~name ~client_nonce =
  let t = c.server in
  match List.assoc_opt name t.participants with
  | None -> kill c (error_resp Message.Auth_failed ("unknown participant " ^ name))
  | Some participant -> (
      match
        Participant.Directory.lookup_verified (Engine.directory t.engine) name
      with
      | `Unknown | `Bad_certificate ->
          kill c
            (error_resp Message.Auth_failed
               ("no verified certificate for " ^ name))
      | `Verified _ ->
          let server_nonce = gen_nonce t in
          c.phase <- Expect_auth { participant; name; client_nonce; server_nonce };
          frame_response c (Message.Challenge { nonce = server_nonce }))

(* Order matters: the signature (which covers the encrypted key
   share) is verified before the share is decrypted, so decryption
   only ever runs on ciphertexts the participant's key holder
   produced — never on attacker-chosen ones. *)
let handle_auth c ~participant ~name ~client_nonce ~server_nonce ~signature
    ~key_share =
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let cert = Participant.certificate participant in
  if
    not
      (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256
         cert.Tep_crypto.Pki.subject_key ~msg:transcript ~signature)
  then kill c (error_resp Message.Auth_failed "transcript signature invalid")
  else
    match Participant.decrypt participant key_share with
    | Some secret when String.length secret = Session.key_share_len ->
        let key = Session.derive_key ~transcript ~signature ~secret in
        c.phase <-
          Established
            {
              participant;
              keyed = Session.keyed ~key;
              recv_seq = 0;
              send_seq = 0;
            };
        frame_response c (Message.Auth_ok { server = "provdbd" })
    | Some _ | None ->
        kill c (error_resp Message.Auth_failed "key share rejected")

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let decode_request_at payload off =
  match Message.decode_request payload off with
  | req, consumed when consumed = String.length payload -> Some req
  | _ -> None
  | exception (Failure _ | Invalid_argument _) -> None

let decode_request payload = decode_request_at payload 0

(* Consecutive pipelined Submits buffered on the connection join the
   batcher as one job; their responses are framed in request order,
   each echoing its own correlation id. *)
let flush_pending c out =
  match (c.phase, c.pending) with
  | _, [] -> ()
  | Established s, pending ->
      c.pending <- [];
      let ps = List.rev pending in
      let ops = Array.of_list (List.map snd ps) in
      let resps = submit_ops c.server s.participant ops in
      List.iteri
        (fun i (cid, _) ->
          Buffer.add_string out (frame_response ~cid c resps.(i)))
        ps
  | _, _ -> c.pending <- []

(* Established-phase sealed traffic: open the seal, split off the
   correlation id, then either defer (Submit — grouped with adjacent
   pipelined submits) or flush-and-dispatch. *)
let handle_sealed c out s payload =
  match
    Session.open_keyed s.keyed ~dir:Session.To_server ~seq:s.recv_seq payload
  with
  | Error e ->
      flush_pending c out;
      Buffer.add_string out (kill c (error_resp Message.Auth_failed e))
  | Ok msg -> (
      s.recv_seq <- s.recv_seq + 1;
      match Message.read_cid msg with
      | None ->
          flush_pending c out;
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request"))
      | Some (cid, off) -> (
          match decode_request_at msg off with
          | None ->
              flush_pending c out;
              Buffer.add_string out
                (kill ~cid c (error_resp Message.Bad_request "malformed request"))
          | Some (Message.Submit op) -> c.pending <- (cid, op) :: c.pending
          | Some req ->
              flush_pending c out;
              let resp = dispatch_locked c.server s.participant req in
              Buffer.add_string out (frame_response ~cid c resp)))

let handle_frame c out (kind : Frame.kind) payload =
  match (c.phase, kind) with
  | Dead, _ -> ()
  | (Expect_hello | Expect_auth _), Sealed ->
      Buffer.add_string out
        (kill c (error_resp Message.Auth_required "handshake not complete"))
  | Established _, Clear ->
      flush_pending c out;
      Buffer.add_string out
        (kill c (error_resp Message.Bad_request "clear frame on sealed session"))
  | Expect_hello, Clear -> (
      match decode_request payload with
      | Some (Message.Hello { name; nonce }) ->
          Buffer.add_string out (handle_hello c ~name ~client_nonce:nonce)
      | Some _ ->
          Buffer.add_string out
            (kill c (error_resp Message.Auth_required "hello expected"))
      | None ->
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request")))
  | Expect_auth { participant; name; client_nonce; server_nonce }, Clear -> (
      match decode_request payload with
      | Some (Message.Auth { signature; key_share }) ->
          Buffer.add_string out
            (handle_auth c ~participant ~name ~client_nonce ~server_nonce
               ~signature ~key_share)
      | Some _ ->
          Buffer.add_string out
            (kill c (error_resp Message.Auth_required "auth expected"))
      | None ->
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request")))
  | Established s, Sealed -> handle_sealed c out s payload

(* Bytes in, response bytes out.  This is the single protocol entry
   point shared by the socket loops and the loopback transport.

   Input accumulates in a Buffer (amortised O(1) per chunk); the
   parser only materialises the buffered bytes once a frame could be
   complete ([need], maintained from the parser's Need_more), so a
   maximum-size frame arriving in 4 KiB chunks costs O(n), not the
   O(n^2) of re-concatenating a string per chunk — an unauthenticated
   peer cannot buy gigabytes of memcpy with one 16 MiB frame.

   Submits parsed in this pass are deferred on [c.pending] and flushed
   as one batcher job — either when a non-submit request interleaves
   (responses stay in request order) or when the parsed input runs
   out.  A blocking client (one request per chunk) therefore behaves
   exactly as before: its single submit flushes immediately. *)
let feed c data =
  if c.phase = Dead then ""
  else begin
    let data = Fault.input read_site data in
    Buffer.add_string c.inbox data;
    let out = Buffer.create 256 in
    let continue = ref true in
    while !continue && alive c do
      if Buffer.length c.inbox < c.need then continue := false
      else begin
        let buffered = Buffer.contents c.inbox in
        match Frame.parse ~max_payload:c.server.max_payload buffered 0 with
        | Frame.Need_more n ->
            c.need <- String.length buffered + n;
            continue := false
        | Frame.Frame { kind; payload; consumed } ->
            Buffer.clear c.inbox;
            Buffer.add_substring c.inbox buffered consumed
              (String.length buffered - consumed);
            c.need <- Frame.header_len;
            handle_frame c out kind payload
        | Frame.Oversized n ->
            flush_pending c out;
            Buffer.add_string out
              (kill c
                 (error_resp Message.Too_large
                    (Printf.sprintf
                       "declared payload of %d bytes exceeds limit" n)))
        | Frame.Corrupt reason ->
            flush_pending c out;
            Buffer.add_string out
              (kill c (error_resp Message.Bad_request reason))
      end
    done;
    flush_pending c out;
    Buffer.contents out
  end

(* ------------------------------------------------------------------ *)
(* Socket loops                                                        *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let handle_client t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  let c = conn t in
  let chunk = Bytes.create 4096 in
  (try
     let eof = ref false in
     while (not !eof) && alive c do
       let n = Unix.read fd chunk 0 (Bytes.length chunk) in
       if n = 0 then eof := true
       else begin
         let out = feed c (Bytes.sub_string chunk 0 n) in
         if out <> "" then write_all fd out
       end
     done
   with Unix.Unix_error _ | Sys_error _ | Fault.Crash _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A connection flood must not translate into unbounded threads: past
   [max_connections] concurrent connections, new accepts get a
   best-effort advisory error frame and are dropped. *)
let try_acquire t =
  if Atomic.fetch_and_add t.active 1 < t.max_connections then true
  else begin
    Atomic.decr t.active;
    false
  end

let reject_over_capacity cfd =
  (try
     Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 1.0;
     write_all cfd
       (Frame.to_string ~kind:Frame.Clear
          (Message.response_to_string
             (error_resp Message.Failed "server at connection limit")))
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

(* Accept loop: polls [stop] every 200ms so a daemon can shut down
   cleanly (and save its workspace) on signal. *)
let serve_fd t ~stop fd =
  Unix.listen fd 16;
  while not (Atomic.get stop) do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept fd with
        | cfd, _ ->
            if try_acquire t then
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () -> Atomic.decr t.active)
                       (fun () -> handle_client t cfd))
                   ())
            else reject_over_capacity cfd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve_unix t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd

let serve_tcp t ~port ~stop =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd
