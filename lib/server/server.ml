(* provdbd — the networked provenance service.

   The protocol logic lives entirely in a [conn] state machine whose
   single entry point is {!feed}: bytes in, response bytes out.  The
   Unix-domain and TCP accept loops pump sockets through it; the
   client library's loopback transport calls it directly — so the
   in-process test path exercises exactly the frames, codecs and
   session sealing that cross a real socket.

   Authentication is the {!Tep_wire.Session} challenge–response: the
   client names a PKI-registered participant and signs the handshake
   transcript with that participant's key; the server checks the
   signature against the certificate in the engine's directory.  The
   workspace keeps participant credentials server-side, so after
   authentication the server signs submitted operations with the same
   participant identity the client proved it holds.

   Dispatch concurrency (the high-throughput path):

   - Read-only requests — Query, Verify, Audit, Root-hash — run
     concurrently across connections under the shared side of a
     writer-preferring {!Rwlock}.  The engine itself is never mutated
     by these paths; the two stateful read-side resources (the Merkle
     root cache and the incremental-audit checkpoint) each sit behind
     a small dedicated mutex.
   - Submits from any number of connections funnel into a group-commit
     batcher: the first arrival becomes the leader, drains the queue,
     and executes everything queued as one {!Engine.complex_op} per
     participant under the exclusive write lock — one signing pass,
     one Merkle dirty-path rehash, one WAL append+flush per batch
     instead of per op.  Every client still receives its own per-op
     response; a WAL failure mid-batch fails that whole batch
     atomically (recovery replays to the last commit marker).
   - Checkpoint takes the write lock directly.

   Sharding: the service can own several engines, each a shard of the
   provenance forest with its own WAL, checkpoint directory, rwlock
   and group-commit batcher.  Tables route to shards by a stable hash
   of the table name ({!Tep_core.Shards.shard_of_table}); the
   published root is the Merkle root-of-roots over the per-shard
   engine roots.  Reads fan out under per-shard read locks;
   single-shard writes commit fully concurrently through their own
   shard's batcher; only jobs that span shards serialise on the
   coordinator, which commits them under the two-phase marker
   protocol ({!Tep_core.Shards.commit_cross}) against its own
   decision log.  Every multi-lock path acquires shard locks in
   ascending index order, so the lock graph stays acyclic.  A
   single-shard server ([?shards] omitted) behaves byte-for-byte like
   the unsharded service, including its root hash.

   Once a session is established, sealed messages carry a varint
   correlation id (see {!Message.with_cid}), echoed in responses, so a
   connection may pipeline several requests; consecutive pipelined
   Submits parsed from one input chunk join the batcher as a single
   job. *)

module Frame = Tep_wire.Frame
module Message = Tep_wire.Message
module Session = Tep_wire.Session
module Engine = Tep_core.Engine
module Participant = Tep_core.Participant
module Verifier = Tep_core.Verifier
module Audit = Tep_core.Audit
module Provstore = Tep_core.Provstore
module Recovery = Tep_core.Recovery
module Shards = Tep_core.Shards
module Prov_index = Tep_core.Prov_index
module Lineage = Tep_prov.Lineage
module Polynomial = Tep_prov.Polynomial
module Annotate = Tep_prov.Annotate
module Annot = Tep_prov.Annot
module Query = Tep_store.Query
module Oid = Tep_tree.Oid
module Forest = Tep_tree.Forest
module Merkle = Tep_tree.Merkle
module Proof = Tep_tree.Proof
module Tree_view = Tep_tree.Tree_view
module Fault = Tep_fault.Fault

(* Everything a connection reads passes through this failpoint, so
   tests can inject torn reads and bit flips into the byte stream
   without a real flaky network. *)
let read_site = "wire.server.read"
let () = Fault.register read_site

(* Hit on the read-side dispatch of every Verify request; arming it
   with [Fault.Delay] holds a verification in flight, which is how the
   tests observe that readers are not serialised. *)
let verify_site = "server.dispatch.verify"
let () = Fault.register verify_site

(* ------------------------------------------------------------------ *)
(* Group-commit batcher                                                *)
(* ------------------------------------------------------------------ *)

type submit_result =
  | R_pending
  | R_row of int (* insert: fresh row id *)
  | R_oid of Oid.t (* aggregate: fresh object *)
  | R_unit (* update / delete *)
  | R_err of string (* per-op rejection (batch still commits) *)

(* Commit-level failure classification: WAL trouble gets its own wire
   code (and counter) so operators can tell a sick disk from a logic
   bug, and so clients know a retry with the same rid will re-execute
   (nothing was committed). *)
type batch_fail = F_wal of string | F_failed of string

(* One enqueued unit of submit work: all ops of one job come from one
   connection (hence one participant) and are answered positionally. *)
type submit_job = {
  j_participant : Participant.t;
  j_ops : Message.op array;
  j_results : submit_result array;
  mutable j_records : int; (* the batch commit's records_emitted *)
  mutable j_failed : batch_fail option; (* commit-level failure: atomic *)
  mutable j_done : bool;
}

type batcher = {
  b_mutex : Mutex.t;
  b_cond : Condition.t; (* job completion; leader handoff *)
  mutable b_queue : submit_job list; (* newest first *)
  mutable b_leader : bool; (* a leader is currently draining *)
  mutable b_batches : int; (* group commits executed (observability) *)
  mutable b_ops : int; (* ops carried by those commits *)
  mutable b_sign_wall_s : float; (* wall-clock across commit signing stages *)
  mutable b_sign_cpu_s : float; (* cumulative per-signature time *)
  mutable b_dedup_hits : int; (* retried writes answered from the dedup table *)
  mutable b_wal_failures : int; (* group commits voided by WAL errors *)
  mutable b_shed : int; (* ops refused by admission control *)
}

type batch_stats = {
  batches : int;
  ops : int;
  sign_wall_s : float;
  sign_cpu_s : float;
  dedup_hits : int;
  wal_failures : int;
  shed : int;
}

(* ------------------------------------------------------------------ *)
(* Idempotency: the request-id dedup table                             *)
(* ------------------------------------------------------------------ *)

(* A client retrying a write it never saw an answer for (dropped
   connection, lost response) re-sends it under the same request id.
   The table remembers the outcome of every recently completed write
   keyed by rid, so the retry returns the original result instead of
   executing twice.  [D_pending] marks a rid whose original is still
   in flight: a duplicate arriving meanwhile (the retry raced the
   original) waits for that outcome rather than re-executing. *)
type dedup_state = D_pending | D_done of Message.response

type dedup = {
  d_mutex : Mutex.t;
  d_cond : Condition.t; (* D_pending -> D_done transitions *)
  d_tbl : (string, dedup_state) Hashtbl.t;
  d_order : string Queue.t; (* completed rids, oldest first (eviction) *)
  d_cap : int; (* completed entries kept; pendings are never evicted *)
}

(* Admission-control knobs, mutable so tests and the overload bench
   can reconfigure a live server. *)
type admission = {
  mutable max_queue_ops : int;
      (* shed a job when a leader is active and the queued-op backlog
         would exceed this; < 0 sheds every write (admission closed) *)
  mutable max_session_inflight : int;
      (* cap on one connection's buffered pipelined submits *)
  mutable retry_after_ms : int; (* backoff hint carried by the shed *)
}

(* One shard: an engine plus every per-shard piece of server state.
   The rwlock, the batcher, the audit checkpoint and the cached root
   are all shard-local, so a write to shard k contends with — and
   invalidates — shard k only. *)
type shard = {
  s_index : int;
  s_engine : Engine.t;
  s_rwlock : Rwlock.t; (* readers share; this shard's commits exclude *)
  s_batcher : batcher;
  s_checkpoint : (string * Tep_store.Wal.t) option;
      (* checkpoint directory + WAL, when the daemon owns durability *)
  s_audit_cp : Audit.checkpoint ref;
  s_audit_lock : Mutex.t; (* audit checkpoint ref, among readers *)
  s_root_lock : Mutex.t; (* root cache, among readers *)
  s_root_cache : string option ref; (* last published root of this shard *)
  s_root_dirty : bool Atomic.t;
      (* set by every commit on this shard (and only this shard), under
         its write lock; the next root read recomputes.  An atomic, not
         the root_lock, so writers never wait on readers — taking
         s_root_lock under the write lock would deadlock against a
         reader holding s_root_lock while waiting for a read lock. *)
  s_root_recomputes : int Atomic.t; (* cache misses (observability) *)
  s_root_hits : int Atomic.t;
  (* Hot leaf→root membership proofs (encoded), keyed by leaf oid.  A
     bounded LRU: a proof built at epoch e is replayable verbatim
     until the next commit on THIS shard bumps the epoch — writes to
     other shards leave it warm.  Mutated only under s_root_lock (the
     Prove path holds it for the whole root+proof critical section),
     so no lock of its own. *)
  s_proof_cache : (Oid.t, proof_entry) Hashtbl.t;
  s_proof_tick : int ref; (* LRU clock, under s_root_lock *)
  s_proof_epoch : int Atomic.t;
      (* bumped by every commit on this shard, next to s_root_dirty:
         cached proofs from earlier epochs can never be served again *)
  s_proofs_served : int Atomic.t;
  s_proof_hits : int Atomic.t; (* answered from the LRU *)
  s_proof_misses : int Atomic.t; (* rebuilt off the Merkle cache *)
  s_proof_bytes : int Atomic.t; (* cumulative encoded bytes served *)
}

and proof_entry = {
  pe_epoch : int;
  pe_bytes : string; (* Proof.to_string form, ready for the wire *)
  mutable pe_last : int; (* s_proof_tick at last use *)
}

(* How the socket loops run: [Event] (default) is the readiness-driven
   reactor in {!Evloop} — one I/O thread plus a small worker pool per
   serve loop, connections held in non-blocking mode; [Threaded] is
   the legacy thread-per-connection fallback, kept until parity is
   proven everywhere.  [TEP_EVLOOP=0] flips the default to [Threaded];
   [TEP_EVLOOP_WORKERS] sizes the default pool. *)
type io_mode = Threaded | Event of { workers : int }

let default_io_workers () =
  match Sys.getenv_opt "TEP_EVLOOP_WORKERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
  | None -> 4

let default_io_mode () =
  match Sys.getenv_opt "TEP_EVLOOP" with
  | Some ("0" | "off" | "no" | "false") -> Threaded
  | _ -> Event { workers = default_io_workers () }

type t = {
  shards : shard array; (* at least one; index = shard id *)
  coord : Tep_store.Wal.t option;
      (** the 2PC decision log; required for cross-shard commits *)
  coord_lock : Mutex.t; (* serialises cross-shard transactions *)
  cross_busy : bool Atomic.t; (* a 2PC commit is in flight (quiesce) *)
  txid_seq : int Atomic.t; (* per-process suffix for fresh txids *)
  txid_epoch : string; (* random per-boot prefix: txids never recur *)
  participants : (string * Participant.t) list;
  pool : Tep_parallel.Pool.t option;
  drbg : Tep_crypto.Drbg.t;
  drbg_lock : Mutex.t;
      (** handshakes run on per-connection threads; DRBG state is not
          thread-safe, and interleaved generates could repeat nonces *)
  max_payload : int;
  request_timeout : float;
  max_connections : int;
  active : int Atomic.t; (* concurrent socket connections *)
  dedup : dedup;
  admission : admission;
  draining : bool Atomic.t; (* drain begun: shed all new writes *)
  io_mode : io_mode;
  idle_timeout : float; (* reap quiet connections after this long *)
  reaped : int Atomic.t; (* idle-timeout reaps, reported in Ping *)
  idle_mutex : Mutex.t;
  idle_cond : Condition.t;
      (** signalled whenever a shard leader finishes its drain or a
          cross-shard commit completes — the only transitions that can
          make an already-draining server idle.  Lock order:
          [idle_mutex] may be held while taking a batcher's [b_mutex]
          (quiesce probing idleness); never the reverse — signallers
          release [b_mutex]/[coord_lock] first. *)
  wakers : (int * (unit -> unit)) list ref;
  wakers_lock : Mutex.t;
      (** one registered waker per live serve loop; {!wake} nudges
          them all so a flipped stop flag is seen now, not at the next
          housekeeping tick *)
  waker_seq : int Atomic.t;
}

let make_batcher () =
  {
    b_mutex = Mutex.create ();
    b_cond = Condition.create ();
    b_queue = [];
    b_leader = false;
    b_batches = 0;
    b_ops = 0;
    b_sign_wall_s = 0.;
    b_sign_cpu_s = 0.;
    b_dedup_hits = 0;
    b_wal_failures = 0;
    b_shed = 0;
  }

let make_shard i (engine, checkpoint) =
  {
    s_index = i;
    s_engine = engine;
    s_rwlock = Rwlock.create ();
    s_batcher = make_batcher ();
    s_checkpoint = checkpoint;
    s_audit_cp = ref Audit.empty;
    s_audit_lock = Mutex.create ();
    s_root_lock = Mutex.create ();
    s_root_cache = ref None;
    s_root_dirty = Atomic.make true;
    s_root_recomputes = Atomic.make 0;
    s_root_hits = Atomic.make 0;
    s_proof_cache = Hashtbl.create 64;
    s_proof_tick = ref 0;
    s_proof_epoch = Atomic.make 0;
    s_proofs_served = Atomic.make 0;
    s_proof_hits = Atomic.make 0;
    s_proof_misses = Atomic.make 0;
    s_proof_bytes = Atomic.make 0;
  }

let create ?(max_payload = Frame.default_max_payload) ?(request_timeout = 30.)
    ?(max_connections = 64) ?(max_queue_ops = 512)
    ?(max_session_inflight = 64) ?(retry_after_ms = 25)
    ?(dedup_capacity = 1024) ?drbg ?pool ?checkpoint ?(shards = []) ?coord
    ?io_mode ?(idle_timeout = 300.) ~participants engine =
  let io_mode =
    match io_mode with Some m -> m | None -> default_io_mode ()
  in
  let drbg =
    match drbg with Some d -> d | None -> Tep_crypto.Drbg.create_system ()
  in
  let txid_epoch =
    let raw = Tep_crypto.Drbg.generate drbg 8 in
    let buf = Buffer.create 16 in
    String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
    Buffer.contents buf
  in
  {
    shards =
      Array.of_list (List.mapi make_shard ((engine, checkpoint) :: shards));
    coord;
    coord_lock = Mutex.create ();
    cross_busy = Atomic.make false;
    txid_seq = Atomic.make 0;
    txid_epoch;
    participants;
    pool;
    drbg;
    drbg_lock = Mutex.create ();
    max_payload;
    request_timeout;
    max_connections;
    active = Atomic.make 0;
    dedup =
      {
        d_mutex = Mutex.create ();
        d_cond = Condition.create ();
        d_tbl = Hashtbl.create 64;
        d_order = Queue.create ();
        d_cap = max 1 dedup_capacity;
      };
    admission = { max_queue_ops; max_session_inflight; retry_after_ms };
    draining = Atomic.make false;
    io_mode;
    idle_timeout;
    reaped = Atomic.make 0;
    idle_mutex = Mutex.create ();
    idle_cond = Condition.create ();
    wakers = ref [];
    wakers_lock = Mutex.create ();
    waker_seq = Atomic.make 0;
  }

let engine t = t.shards.(0).s_engine
let shard_count t = Array.length t.shards
let directory t = Engine.directory (engine t)

(* Fresh coordinator transaction id.  The per-boot random epoch keeps
   txids from different daemon lifetimes distinct even though the
   coordinator log survives restarts — a replayed Prepare from a dead
   process must never match a fresh Decide. *)
let fresh_txid t =
  Printf.sprintf "%s-%d" t.txid_epoch (Atomic.fetch_and_add t.txid_seq 1)

let batch_stats t =
  Array.fold_left
    (fun acc s ->
      let b = s.s_batcher in
      Mutex.lock b.b_mutex;
      let acc =
        {
          batches = acc.batches + b.b_batches;
          ops = acc.ops + b.b_ops;
          sign_wall_s = acc.sign_wall_s +. b.b_sign_wall_s;
          sign_cpu_s = acc.sign_cpu_s +. b.b_sign_cpu_s;
          dedup_hits = acc.dedup_hits + b.b_dedup_hits;
          wal_failures = acc.wal_failures + b.b_wal_failures;
          shed = acc.shed + b.b_shed;
        }
      in
      Mutex.unlock b.b_mutex;
      acc)
    {
      batches = 0;
      ops = 0;
      sign_wall_s = 0.;
      sign_cpu_s = 0.;
      dedup_hits = 0;
      wal_failures = 0;
      shed = 0;
    }
    t.shards

let set_admission ?max_queue_ops ?max_session_inflight ?retry_after_ms t =
  let a = t.admission in
  Option.iter (fun v -> a.max_queue_ops <- v) max_queue_ops;
  Option.iter (fun v -> a.max_session_inflight <- v) max_session_inflight;
  Option.iter (fun v -> a.retry_after_ms <- v) retry_after_ms

let active_connections t = Atomic.get t.active
let reaped_connections t = Atomic.get t.reaped

(* ------------------------------------------------------------------ *)
(* Serve-loop wakeups                                                  *)
(* ------------------------------------------------------------------ *)

(* Each running serve loop registers a waker (a wakeup-pipe write or a
   ctl-pipe write); [wake] nudges them all.  Callers flip their stop
   atomic (or [begin_drain]) first, then wake — the loops re-check the
   flag on every wakeup, so shutdown latency is a syscall, not a poll
   interval. *)
let register_waker t f =
  let id = Atomic.fetch_and_add t.waker_seq 1 in
  Mutex.lock t.wakers_lock;
  t.wakers := (id, f) :: !(t.wakers);
  Mutex.unlock t.wakers_lock;
  id

let unregister_waker t id =
  Mutex.lock t.wakers_lock;
  t.wakers := List.filter (fun (i, _) -> i <> id) !(t.wakers);
  Mutex.unlock t.wakers_lock

let wake t =
  Mutex.lock t.wakers_lock;
  let ws = !(t.wakers) in
  Mutex.unlock t.wakers_lock;
  List.iter (fun (_, f) -> try f () with _ -> ()) ws

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

let begin_drain t = Atomic.set t.draining true
let draining t = Atomic.get t.draining

(* Called (with no batcher/coordinator lock held) after every
   transition that can complete a drain: a leader handing back an
   empty queue, a 2PC commit finishing. *)
let signal_idle t =
  Mutex.lock t.idle_mutex;
  Condition.broadcast t.idle_cond;
  Mutex.unlock t.idle_mutex

(* Wait (bounded) until no batch leader is running on any shard, no
   job is queued anywhere, and no cross-shard commit is in flight.
   With [begin_drain] already in effect nothing new can join any
   queue, so an idle observation is stable — the daemon may then flush
   the WALs and checkpoint without racing a commit.

   Event-driven: leaders and cross-shard commits broadcast
   [idle_cond] as they finish, so the wait here is a condition wait,
   not a fixed-interval poll.  OCaml's [Condition] has no timed wait;
   the deadline is enforced by a one-shot watchdog thread, spawned
   (outside [idle_mutex]) only when the server is actually busy at
   entry.  The watchdog naps in short slices and exits as soon as
   quiesce returns, so repeated drain/quiesce cycles never accumulate
   sleeping threads. *)
let quiesce ?(timeout = 10.) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let shard_idle s =
    let b = s.s_batcher in
    Mutex.lock b.b_mutex;
    let idle = b.b_queue = [] && not b.b_leader in
    Mutex.unlock b.b_mutex;
    idle
  in
  let idle () =
    (not (Atomic.get t.cross_busy)) && Array.for_all shard_idle t.shards
  in
  if idle () then true
  else begin
    let finished = Atomic.make false in
    ignore
      (Thread.create
         (fun () ->
           let rec nap () =
             if not (Atomic.get finished) then begin
               let left = deadline -. Unix.gettimeofday () in
               if left > 0. then begin
                 Thread.delay (Float.min left 0.05);
                 nap ()
               end
               else signal_idle t
             end
           in
           nap ())
         ());
    Mutex.lock t.idle_mutex;
    let result = ref (idle ()) in
    while (not !result) && Unix.gettimeofday () < deadline do
      Condition.wait t.idle_cond t.idle_mutex;
      result := idle ()
    done;
    Mutex.unlock t.idle_mutex;
    Atomic.set finished true;
    !result
  end

(* ------------------------------------------------------------------ *)
(* Dedup table operations                                              *)
(* ------------------------------------------------------------------ *)

(* Dedup hits and session-level sheds are process-wide events, not
   tied to any particular shard's batcher; they are accounted on shard
   0 (batch_stats and Pong sum across shards, so the totals are what
   an operator sees either way). *)
let note_dedup_hit t =
  let b = t.shards.(0).s_batcher in
  Mutex.lock b.b_mutex;
  b.b_dedup_hits <- b.b_dedup_hits + 1;
  Mutex.unlock b.b_mutex

let note_shed ?(n = 1) t =
  let b = t.shards.(0).s_batcher in
  Mutex.lock b.b_mutex;
  b.b_shed <- b.b_shed + n;
  Mutex.unlock b.b_mutex

(* Claim a rid for execution.  [`Run]: this caller owns the rid and
   must later call {!dedup_resolve}.  [`Hit resp]: the rid already
   completed; answer with the original response.  A pending rid makes
   the duplicate wait for the original's outcome — two executions of
   one rid can never overlap. *)
let dedup_claim t rid =
  let d = t.dedup in
  Mutex.lock d.d_mutex;
  let rec go () =
    match Hashtbl.find_opt d.d_tbl rid with
    | Some (D_done resp) ->
        Mutex.unlock d.d_mutex;
        note_dedup_hit t;
        `Hit resp
    | Some D_pending ->
        Condition.wait d.d_cond d.d_mutex;
        go ()
    | None ->
        Hashtbl.replace d.d_tbl rid D_pending;
        Mutex.unlock d.d_mutex;
        `Run
  in
  go ()

(* Publish a claimed rid's outcome.  [Some resp] caches it (bounded
   FIFO eviction of completed entries); [None] forgets the rid so a
   client retry re-executes — used for commit-level failures, where
   nothing was applied and re-running is the correct recovery. *)
let dedup_resolve t rid outcome =
  let d = t.dedup in
  Mutex.lock d.d_mutex;
  (match outcome with
  | Some resp ->
      Hashtbl.replace d.d_tbl rid (D_done resp);
      Queue.push rid d.d_order;
      while Queue.length d.d_order > d.d_cap do
        Hashtbl.remove d.d_tbl (Queue.pop d.d_order)
      done
  | None -> Hashtbl.remove d.d_tbl rid);
  Condition.broadcast d.d_cond;
  Mutex.unlock d.d_mutex

(* Only deterministic outcomes are worth caching: a Submitted (the op
   committed) or a Bad_request (the engine rejected it without
   touching state; a blind retry gets the same answer).  Commit-level
   failures and sheds are transient — the retry should re-execute. *)
let dedup_cacheable (resp : Message.response) =
  match resp with
  | Message.Submitted _ | Message.Checkpointed _ -> true
  | Message.Error_resp { code = Message.Bad_request; _ } -> true
  | _ -> false

let gen_nonce t =
  Mutex.lock t.drbg_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.drbg_lock)
    (fun () -> Tep_crypto.Drbg.generate t.drbg Session.nonce_len)

(* ------------------------------------------------------------------ *)
(* Connection state machine                                            *)
(* ------------------------------------------------------------------ *)

type established = {
  participant : Participant.t;
  keyed : Session.keyed; (* precomputed HMAC key schedule *)
  mutable recv_seq : int;
  mutable send_seq : int;
}

type phase =
  | Expect_hello
  | Expect_auth of {
      participant : Participant.t;
      name : string;
      client_nonce : string;
      server_nonce : string;
          (* the transcript also covers the key share, which only
             arrives with the Auth frame — so the nonces wait here *)
    }
  | Established of established
  | Dead

type conn = {
  server : t;
  inbox : Buffer.t; (* unconsumed input; compacted once per frame *)
  mutable need : int; (* skip parse attempts below this many bytes *)
  mutable phase : phase;
  mutable pending : (int * string option * Message.op) list;
      (* consecutive pipelined Submits (cid, rid, op), newest first,
         awaiting a flush into the batcher as one job *)
}

let conn server =
  {
    server;
    inbox = Buffer.create 256;
    need = Frame.header_len;
    phase = Expect_hello;
    pending = [];
  }

let alive c = c.phase <> Dead

let error_resp code message = Message.Error_resp { code; message }

(* Frame a response in whatever protection the connection has reached:
   clear during the handshake, sealed (tagged, sequenced, correlation-
   id-prefixed) once the session key exists.  A response too large for
   the peer's frame limit degrades to a Too_large error rather than an
   oversized frame the peer must reject as abusive. *)
let frame_response ?(cid = Message.conn_cid) c resp =
  let limit =
    c.server.max_payload
    - (match c.phase with Established _ -> Session.tag_len | _ -> 0)
  in
  let encode resp =
    let body = Message.response_to_string resp in
    match c.phase with
    | Established _ -> Message.with_cid cid body
    | _ -> body
  in
  let msg = encode resp in
  let msg =
    if String.length msg <= limit then msg
    else
      encode
        (error_resp Message.Too_large
           (Printf.sprintf "response of %d bytes exceeds the %d-byte frame limit"
              (String.length msg) c.server.max_payload))
  in
  match c.phase with
  | Established s ->
      let sealed =
        Session.seal_keyed s.keyed ~dir:Session.To_client ~seq:s.send_seq msg
      in
      s.send_seq <- s.send_seq + 1;
      Frame.to_string ~kind:Frame.Sealed sealed
  | _ -> Frame.to_string ~kind:Frame.Clear msg

let kill ?cid c resp =
  let out = frame_response ?cid c resp in
  c.phase <- Dead;
  c.pending <- [];
  Buffer.clear c.inbox;
  out

(* ------------------------------------------------------------------ *)
(* Submit execution (the write side)                                   *)
(* ------------------------------------------------------------------ *)

let apply_op engine participant (op : Message.op) : submit_result =
  match op with
  | Message.Op_insert { table; cells } -> (
      match Engine.insert_row engine participant ~table cells with
      | Ok row -> R_row row
      | Error e -> R_err e)
  | Message.Op_update { table; row; col; value } -> (
      match Engine.update_cell engine participant ~table ~row ~col value with
      | Ok () -> R_unit
      | Error e -> R_err e)
  | Message.Op_delete { table; row } -> (
      match Engine.delete_row engine participant ~table row with
      | Ok () -> R_unit
      | Error e -> R_err e)
  | Message.Op_aggregate { inputs; value } -> (
      match Engine.aggregate_objects engine participant ~value inputs with
      | Ok oid -> R_oid oid
      | Error e -> R_err e)

(* Execute one drained queue under the write lock.  Jobs are grouped
   by participant ({!Engine.complex_op} signs a batch as one identity);
   within a group, ops run in arrival order inside a single complex
   operation, so the whole group costs one signing pass over the
   touched set, one root rehash, and one WAL append+flush.

   Failure semantics: an op the engine rejects (bad table, missing
   row) gets its own error response while the rest of the batch
   commits — same per-op outcome a singleton submit would see.  If the
   commit itself fails (WAL error, simulated crash), every op of the
   group fails atomically: nothing was durably recorded, and recovery
   rolls the store back to the last commit marker. *)
let run_batch (shard : shard) (jobs : submit_job list) =
  Rwlock.with_write shard.s_rwlock (fun () ->
      (* Group by participant, preserving arrival order of both the
         groups and the ops within each. *)
      let order : string list ref = ref [] in
      let groups : (string, (submit_job * int) list ref) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun job ->
          let name = Participant.name job.j_participant in
          let bucket =
            match Hashtbl.find_opt groups name with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace groups name b;
                order := name :: !order;
                b
          in
          Array.iteri (fun i _ -> bucket := (job, i) :: !bucket) job.j_ops)
        jobs;
      List.iter
        (fun name ->
          let entries = List.rev !(Hashtbl.find groups name) in
          let participant = (fst (List.hd entries)).j_participant in
          let outcome =
            match
              Engine.complex_op shard.s_engine participant (fun () ->
                  let any_ok = ref false in
                  List.iter
                    (fun (job, i) ->
                      let r = apply_op shard.s_engine participant job.j_ops.(i) in
                      (match r with R_err _ -> () | _ -> any_ok := true);
                      job.j_results.(i) <- r)
                    entries;
                  (* If nothing survived there is nothing to commit:
                     erroring out of the body skips the (empty) commit,
                     exactly like a failed singleton submit did. *)
                  if !any_ok then Ok ()
                  else Error "no operation in the batch succeeded")
            with
            | Ok v -> Ok v
            | Error e -> Error (F_failed e)
            | exception Engine.Wal_failure e ->
                let b = shard.s_batcher in
                Mutex.lock b.b_mutex;
                b.b_wal_failures <- b.b_wal_failures + 1;
                Mutex.unlock b.b_mutex;
                Error (F_wal ("wal: " ^ e))
            | exception e ->
                Error (F_failed ("commit failed: " ^ Printexc.to_string e))
          in
          match outcome with
          | Ok ((), m) ->
              (* The commit changed this shard's tree: only this
                 shard's cached root goes stale (cheap atomic; see
                 s_root_dirty for why not the root lock). *)
              Atomic.set shard.s_root_dirty true;
              Atomic.incr shard.s_proof_epoch;
              (* Signing-time counters: taken under b_mutex while this
                 leader still holds the write lock; the only lock order
                 anywhere is rwlock → b_mutex, so no cycle. *)
              let b = shard.s_batcher in
              Mutex.lock b.b_mutex;
              b.b_sign_wall_s <- b.b_sign_wall_s +. m.Engine.sign_s;
              b.b_sign_cpu_s <- b.b_sign_cpu_s +. m.Engine.sign_cpu_s;
              Mutex.unlock b.b_mutex;
              List.iter
                (fun (job, _) -> job.j_records <- m.Engine.records_emitted)
                entries
          | Error msg ->
              (* Distinguish per-op rejections (results already carry
                 their own errors; the batch just had nothing to
                 commit) from a commit-level failure, which voids every
                 op of the group atomically. *)
              let all_rejected =
                List.for_all
                  (fun (job, i) ->
                    match job.j_results.(i) with R_err _ -> true | _ -> false)
                  entries
              in
              if not all_rejected then
                List.iter (fun (job, _) -> job.j_failed <- Some msg) entries)
        (List.rev !order))

let overloaded t queued =
  Message.Overloaded_resp
    {
      retry_after_ms = t.admission.retry_after_ms;
      message =
        Printf.sprintf "admission limit reached (%d op(s) queued)" queued;
    }

(* Enqueue a job and wait for its responses.  The first submitter to
   find no leader becomes one: it drains and executes the queue
   (including everything that accumulates while it runs) and wakes the
   waiting followers, who only block on the condition variable.

   Admission control happens here, before the enqueue: a draining
   server refuses all writes (Shutting_down), and when a leader is
   already busy and the queued-op backlog would exceed
   [admission.max_queue_ops], the whole job is shed with a typed
   Overloaded response carrying a retry-after hint — bounding both the
   backlog memory and the worst-case latency a queued op can see. *)
let submit_to_shard t (shard : shard) participant (ops : Message.op array) :
    Message.response array =
  let n = Array.length ops in
  if Atomic.get t.draining then
    Array.make n (error_resp Message.Shutting_down "server is draining")
  else begin
    let b = shard.s_batcher in
    Mutex.lock b.b_mutex;
    let max_q = t.admission.max_queue_ops in
    let queued =
      List.fold_left (fun acc j -> acc + Array.length j.j_ops) 0 b.b_queue
    in
    if max_q < 0 || (b.b_leader && queued + n > max_q) then begin
      b.b_shed <- b.b_shed + n;
      Mutex.unlock b.b_mutex;
      Array.make n (overloaded t queued)
    end
    else begin
      let job =
        {
          j_participant = participant;
          j_ops = ops;
          j_results = Array.make n R_pending;
          j_records = 0;
          j_failed = None;
          j_done = false;
        }
      in
      b.b_queue <- job :: b.b_queue;
      if b.b_leader then begin
        while not job.j_done do
          Condition.wait b.b_cond b.b_mutex
        done;
        Mutex.unlock b.b_mutex
      end
      else begin
        b.b_leader <- true;
        while b.b_queue <> [] do
          let jobs = List.rev b.b_queue in
          b.b_queue <- [];
          b.b_batches <- b.b_batches + 1;
          b.b_ops <-
            b.b_ops
            + List.fold_left (fun n j -> n + Array.length j.j_ops) 0 jobs;
          Mutex.unlock b.b_mutex;
          (try run_batch shard jobs
           with e ->
             (* run_batch catches per-group failures; anything escaping
                is a harness-level surprise — fail the drained jobs
                rather than deadlock their waiters. *)
             let msg = F_failed (Printexc.to_string e) in
             List.iter (fun j -> j.j_failed <- Some msg) jobs);
          Mutex.lock b.b_mutex;
          List.iter (fun j -> j.j_done <- true) jobs;
          Condition.broadcast b.b_cond
        done;
        b.b_leader <- false;
        Mutex.unlock b.b_mutex;
        (* quiesce may be waiting for exactly this: the shard went
           leaderless with an empty queue (signalled lock-free) *)
        signal_idle t
      end;
      Array.init n (fun i ->
          match job.j_failed with
          | Some (F_wal e) -> error_resp Message.Wal_failed e
          | Some (F_failed e) -> error_resp Message.Failed e
          | None -> (
          match job.j_results.(i) with
          | R_err e -> error_resp Message.Bad_request e
          | R_row row ->
              Message.Submitted
                { row = Some row; oid = None; records = job.j_records }
          | R_oid oid ->
              Message.Submitted
                { row = None; oid = Some oid; records = job.j_records }
          | R_unit ->
              Message.Submitted
                { row = None; oid = None; records = job.j_records }
              | R_pending ->
                  (* unreachable: the leader fills every slot before
                     marking the job done *)
                  error_resp Message.Failed
                    "batch left the operation pending"))
    end
  end

(* ------------------------------------------------------------------ *)
(* Shard routing                                                       *)
(* ------------------------------------------------------------------ *)

(* Which shard holds [oid]?  Each shard's oid space is independent, so
   the probe scans shards in index order under their read locks; the
   first hit wins.  Objects never migrate between shards, so a hit is
   stable for as long as the object exists. *)
let owning_shard t oid =
  let n = Array.length t.shards in
  let rec go k =
    if k >= n then None
    else
      let s = t.shards.(k) in
      if
        Rwlock.with_read s.s_rwlock (fun () ->
            Forest.mem (Engine.forest s.s_engine) oid)
      then Some k
      else go (k + 1)
  in
  go 0

(* Table-addressed ops route by the stable table hash; aggregates
   route to the single shard owning every input (per-shard oid spaces
   make a cross-shard aggregate meaningless — the copied subtrees and
   their provenance must land in one forest). *)
let shard_of_op t (op : Message.op) : (int, string) result =
  let nshards = Array.length t.shards in
  match op with
  | Message.Op_insert { table; _ }
  | Message.Op_update { table; _ }
  | Message.Op_delete { table; _ } ->
      Ok (Shards.shard_of_table ~shards:nshards table)
  | Message.Op_aggregate { inputs; _ } -> (
      match inputs with
      | [] -> Ok 0 (* nothing to route on; shard 0's engine rejects it *)
      | first :: rest -> (
          match owning_shard t first with
          | None ->
              Error
                (Printf.sprintf "aggregate input oid %d not found"
                   (Oid.to_int first))
          | Some k ->
              if List.for_all (fun oid -> owning_shard t oid = Some k) rest
              then Ok k
              else
                Error
                  "aggregate inputs span shards: all inputs must live on \
                   one shard"))

(* ------------------------------------------------------------------ *)
(* Cross-shard submits (two-phase commit)                              *)
(* ------------------------------------------------------------------ *)

(* A job whose ops span shards commits atomically under the 2PC marker
   protocol: the coordinator lock serialises these transactions, the
   participating shards' write locks are taken in ascending index
   order (the same order every other multi-lock path uses), and
   {!Shards.commit_cross} runs prepare → decide → phase 2.  Abort —
   any WAL trouble before the Decide is durable — voids every op of
   the job atomically, exactly like a single-shard commit failure. *)
let submit_cross t participant (ops : Message.op array)
    (groups : (int * int array) list) (responses : Message.response option array)
    =
  let fill_all resp =
    List.iter
      (fun (_, slots) ->
        Array.iter (fun i -> responses.(i) <- Some resp) slots)
      groups
  in
  match t.coord with
  | None ->
      fill_all
        (error_resp Message.Failed
           "no coordinator log: cross-shard writes unavailable")
  | Some coord ->
      Mutex.lock t.coord_lock;
      Atomic.set t.cross_busy true;
      Fun.protect
        ~finally:(fun () ->
          Atomic.set t.cross_busy false;
          Mutex.unlock t.coord_lock;
          signal_idle t)
        (fun () ->
          let results = Array.make (Array.length ops) R_pending in
          let parts =
            List.map
              (fun (k, slots) ->
                let engine = t.shards.(k).s_engine in
                {
                  Shards.p_shard = k;
                  p_engine = engine;
                  p_by = participant;
                  p_body =
                    (fun () ->
                      let any_ok = ref false in
                      Array.iter
                        (fun i ->
                          let r = apply_op engine participant ops.(i) in
                          (match r with R_err _ -> () | _ -> any_ok := true);
                          results.(i) <- r)
                        slots;
                      if !any_ok then Ok ()
                      else Error "no operation in the batch succeeded");
                })
              groups
          in
          (* Arrival accounting, like the shard leaders do at drain. *)
          List.iter
            (fun (k, slots) ->
              let b = t.shards.(k).s_batcher in
              Mutex.lock b.b_mutex;
              b.b_batches <- b.b_batches + 1;
              b.b_ops <- b.b_ops + Array.length slots;
              Mutex.unlock b.b_mutex)
            groups;
          let rec with_writes gs f =
            match gs with
            | [] -> f ()
            | (k, _) :: rest ->
                Rwlock.with_write t.shards.(k).s_rwlock (fun () ->
                    with_writes rest f)
          in
          let txid = fresh_txid t in
          let records = Array.make (Array.length t.shards) 0 in
          match
            with_writes groups (fun () ->
                Shards.commit_cross ~coord ~txid parts)
          with
          | Ok (committed, warnings) ->
              List.iter
                (fun (k, m) ->
                  let s = t.shards.(k) in
                  Atomic.set s.s_root_dirty true;
                  Atomic.incr s.s_proof_epoch;
                  records.(k) <- m.Engine.records_emitted;
                  let b = s.s_batcher in
                  Mutex.lock b.b_mutex;
                  b.b_sign_wall_s <- b.b_sign_wall_s +. m.Engine.sign_s;
                  b.b_sign_cpu_s <- b.b_sign_cpu_s +. m.Engine.sign_cpu_s;
                  Mutex.unlock b.b_mutex)
                committed;
              if warnings <> [] then begin
                let b = t.shards.(0).s_batcher in
                Mutex.lock b.b_mutex;
                b.b_wal_failures <- b.b_wal_failures + List.length warnings;
                Mutex.unlock b.b_mutex
              end;
              List.iter
                (fun (k, slots) ->
                  Array.iter
                    (fun i ->
                      responses.(i) <-
                        Some
                          (match results.(i) with
                          | R_err e -> error_resp Message.Bad_request e
                          | R_row row ->
                              Message.Submitted
                                {
                                  row = Some row;
                                  oid = None;
                                  records = records.(k);
                                }
                          | R_oid oid ->
                              Message.Submitted
                                {
                                  row = None;
                                  oid = Some oid;
                                  records = records.(k);
                                }
                          | R_unit ->
                              Message.Submitted
                                { row = None; oid = None; records = records.(k) }
                          | R_pending ->
                              error_resp Message.Failed
                                "transaction left the operation pending"))
                    slots)
                groups
          | Error e ->
              let b = t.shards.(0).s_batcher in
              Mutex.lock b.b_mutex;
              b.b_wal_failures <- b.b_wal_failures + 1;
              Mutex.unlock b.b_mutex;
              fill_all (error_resp Message.Wal_failed e)
          | exception e ->
              (* [Fault.Crash] must escape (simulated crash); anything
                 else fails the whole job without deadlocking it. *)
              (match e with Fault.Crash _ -> raise e | _ -> ());
              fill_all
                (error_resp Message.Failed
                   ("cross-shard commit failed: " ^ Printexc.to_string e)))

(* The submit entry point: route, then commit.  Single-shard servers
   (and jobs whose surviving ops all land on one shard) take the
   concurrent per-shard batcher path untouched; only genuinely
   cross-shard jobs pay the coordinator. *)
let submit_ops t participant (ops : Message.op array) : Message.response array
    =
  let n = Array.length ops in
  if Array.length t.shards = 1 then submit_to_shard t t.shards.(0) participant ops
  else if Atomic.get t.draining then
    Array.make n (error_resp Message.Shutting_down "server is draining")
  else begin
    let nshards = Array.length t.shards in
    let responses : Message.response option array = Array.make n None in
    let by_shard = Array.make nshards [] in
    Array.iteri
      (fun i op ->
        match shard_of_op t op with
        | Ok k -> by_shard.(k) <- i :: by_shard.(k)
        | Error e -> responses.(i) <- Some (error_resp Message.Bad_request e))
      ops;
    let groups =
      List.filter_map
        (fun k ->
          match by_shard.(k) with
          | [] -> None
          | slots -> Some (k, Array.of_list (List.rev slots)))
        (List.init nshards Fun.id)
    in
    (match groups with
    | [] -> ()
    | [ (k, slots) ] ->
        let sub = Array.map (fun i -> ops.(i)) slots in
        let resps = submit_to_shard t t.shards.(k) participant sub in
        Array.iteri (fun j slot -> responses.(slot) <- Some resps.(j)) slots
    | groups -> submit_cross t participant ops groups responses);
    Array.map
      (function
        | Some r -> r
        | None -> error_resp Message.Failed "operation was never routed")
      responses
  end

(* ------------------------------------------------------------------ *)
(* Read-side dispatch                                                  *)
(* ------------------------------------------------------------------ *)

let report = Message.report_of_verifier

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Health snapshot.  Deliberately lock-light (batcher mutex + atomics
   only, never the rwlock): a Ping must answer even while a slow
   commit holds the write lock — that is precisely when an operator
   wants to see the queue depth. *)
let shard_queued (s : shard) =
  let b = s.s_batcher in
  Mutex.lock b.b_mutex;
  let q =
    List.fold_left (fun acc j -> acc + Array.length j.j_ops) 0 b.b_queue
  in
  Mutex.unlock b.b_mutex;
  q

let pong t =
  let queued_ops =
    Array.fold_left (fun acc s -> acc + shard_queued s) 0 t.shards
  in
  let s = batch_stats t in
  let batches = s.batches
  and ops = s.ops
  and dedup_hits = s.dedup_hits
  and wal_failures = s.wal_failures
  and shed = s.shed in
  let draining = Atomic.get t.draining in
  Message.Pong
    {
      ready = not draining;
      draining;
      active = Atomic.get t.active;
      queued_ops;
      batches;
      ops;
      dedup_hits;
      wal_failures;
      shed;
      reaped = Atomic.get t.reaped;
    }

(* One shard's published root, through the per-shard cache.  A commit
   on the shard marks the cache dirty (atomically, under the write
   lock); the recompute here re-reads the engine root under the read
   lock, so it always observes a committed state.  The exchange-then-
   recompute order is what makes the race benign: a writer that lands
   after the exchange but before the read lock is acquired simply
   re-marks the cache dirty, costing one redundant recompute, never a
   stale answer to a client that already saw its commit complete. *)
let shard_root_cached (s : shard) read_root =
  (* Core of the cache: requires s_root_lock held; [read_root] supplies
     the engine root under whatever read-lock discipline the caller
     already has (the plain path takes the read lock here; the Prove
     path is already inside it). *)
  let dirty = Atomic.exchange s.s_root_dirty false in
  match !(s.s_root_cache) with
  | Some h when not dirty ->
      Atomic.incr s.s_root_hits;
      h
  | _ ->
      let h = read_root () in
      s.s_root_cache := Some h;
      Atomic.incr s.s_root_recomputes;
      h

let shard_root (s : shard) =
  locked s.s_root_lock (fun () ->
      shard_root_cached s (fun () ->
          Rwlock.with_read s.s_rwlock (fun () -> Engine.root_hash s.s_engine)))

(* The hash the service publishes: the engine root itself for a
   single-shard server (byte-compatible with the unsharded service),
   the Merkle root-of-roots over the per-shard roots in shard order
   otherwise. *)
let published_root t =
  if Array.length t.shards = 1 then shard_root t.shards.(0)
  else
    Merkle.root_of_roots
      (Engine.algo (engine t))
      (Array.to_list (Array.map shard_root t.shards))

let merge_reports (a : Message.report) (b : Message.report) =
  {
    Message.rp_records = a.Message.rp_records + b.Message.rp_records;
    rp_objects = a.Message.rp_objects + b.Message.rp_objects;
    rp_signatures = a.Message.rp_signatures + b.Message.rp_signatures;
    rp_violations = a.Message.rp_violations @ b.Message.rp_violations;
  }

(* Fold [f shard] over every shard in index order, each under its own
   read lock, merging with [merge].  Sequential, not nested: no read
   lock is held while another shard's is awaited, so a fan-out read
   can never participate in a lock cycle. *)
let fold_shards t f merge =
  let acc = ref None in
  Array.iter
    (fun s ->
      let r = Rwlock.with_read s.s_rwlock (fun () -> f s) in
      acc := Some (match !acc with None -> r | Some a -> merge a r))
    t.shards;
  Option.get !acc

(* Oid-addressed reads resolve against the owning shard and run under
   its read lock in one step (so a concurrent delete cannot strand the
   probe's answer). *)
let with_owning_shard t oid f =
  let n = Array.length t.shards in
  let rec go k =
    if k >= n then error_resp Message.Not_found "object not found in any shard"
    else
      let s = t.shards.(k) in
      match
        Rwlock.with_read s.s_rwlock (fun () ->
            if Forest.mem (Engine.forest s.s_engine) oid then Some (f s)
            else None)
      with
      | Some resp -> resp
      | None -> go (k + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Membership proofs (wire v6)                                         *)
(* ------------------------------------------------------------------ *)

let proof_cache_cap = 256

let empty_report =
  {
    Message.rp_records = 0;
    rp_objects = 0;
    rp_signatures = 0;
    rp_violations = [];
  }

(* Serve one leaf's encoded membership proof through the shard's LRU.
   Requires BOTH s_root_lock and the shard read lock held (the Prove
   critical section): no commit can bump the epoch underneath us, and
   the cache/tick are mutated under s_root_lock only.  A hit replays
   the encoded bytes verbatim; a miss rebuilds off the warm Merkle
   cache — O(dirty path), never a tree rebuild, never the write
   lock. *)
let serve_proof (s : shard) ~epoch oid =
  incr s.s_proof_tick;
  let tick = !(s.s_proof_tick) in
  let deliver bytes =
    Atomic.incr s.s_proofs_served;
    ignore (Atomic.fetch_and_add s.s_proof_bytes (String.length bytes));
    Ok bytes
  in
  let cached = Hashtbl.find_opt s.s_proof_cache oid in
  match cached with
  | Some entry when entry.pe_epoch = epoch ->
      entry.pe_last <- tick;
      Atomic.incr s.s_proof_hits;
      deliver entry.pe_bytes
  | _ -> (
      match Engine.prove s.s_engine oid with
      | Error e -> Error e
      | Ok p ->
          let bytes = Proof.to_string p in
          Atomic.incr s.s_proof_misses;
          if
            Option.is_none cached
            && Hashtbl.length s.s_proof_cache >= proof_cache_cap
          then begin
            (* evict the least recently used entry — O(cap) scan, only
               when full, with cap small and bounded *)
            let victim = ref None in
            Hashtbl.iter
              (fun o e ->
                match !victim with
                | Some (_, last) when last <= e.pe_last -> ()
                | _ -> victim := Some (o, e.pe_last))
              s.s_proof_cache;
            match !victim with
            | Some (o, _) -> Hashtbl.remove s.s_proof_cache o
            | None -> ()
          end;
          Hashtbl.replace s.s_proof_cache oid
            { pe_epoch = epoch; pe_bytes = bytes; pe_last = tick };
          deliver bytes)

(* Read-side requests run concurrently with each other: nothing here
   may mutate any engine.  Each shard's audit checkpoint and root
   cache are the read-side mutables; each sits behind its own
   per-shard mutex. *)
let dispatch_read t participant (req : Message.request) =
  let algo = Engine.algo (engine t) in
  let directory = directory t in
  match req with
  | Message.Hello _ | Message.Auth _ ->
      error_resp Message.Bad_request "already authenticated"
  | Message.Submit _ | Message.Submit_idem _ | Message.Checkpoint
  | Message.Checkpoint_idem _ ->
      (* routed to the write side by [dispatch_locked] *)
      error_resp Message.Failed "write request on the read path"
  | Message.Ping ->
      (* normally answered before dispatch (see [handle_sealed]); kept
         here so the direct API path answers it too *)
      pong t
  | Message.Query (Some oid) ->
      with_owning_shard t oid (fun s ->
          match Engine.deliver s.s_engine oid with
          | Ok (_, records) -> Message.Records records
          | Error e -> error_resp Message.Not_found e)
  | Message.Query None ->
      (* the whole database: every shard's root provenance, in shard
         order *)
      fold_shards t
        (fun s ->
          match Engine.deliver s.s_engine (Engine.root_oid s.s_engine) with
          | Ok (_, records) -> Message.Records records
          | Error e -> error_resp Message.Not_found e)
        (fun a b ->
          match (a, b) with
          | Message.Records xs, Message.Records ys -> Message.Records (xs @ ys)
          | (Message.Error_resp _ as e), _ | _, (Message.Error_resp _ as e) ->
              e
          | other, _ -> other)
  | Message.Verify (Some oid) ->
      Fault.hit verify_site;
      with_owning_shard t oid (fun s ->
          match Engine.verify_object s.s_engine oid with
          | Ok r -> Message.Verified { report = report r; store_audit = None }
          | Error e -> error_resp Message.Not_found e)
  | Message.Verify None -> (
      Fault.hit verify_site;
      (* per-shard root verification + store audit, merged: violation
         lists concatenate in shard order, counters sum — R1-R8 cover
         the union of the shards, which is the whole database *)
      let verify_one (s : shard) =
        if
          shard_count t > 1
          && Provstore.record_count (Engine.provstore s.s_engine) = 0
          && Tep_store.Database.total_rows (Engine.backend s.s_engine) = 0
        then
          (* the shard never received a write: nothing is signed, so
             there is nothing to verify — the same objects simply
             would not exist in a serial run *)
          let empty =
            {
              Verifier.violations = [];
              records_checked = 0;
              objects_checked = 0;
              signatures_checked = 0;
            }
          in
          Ok (report empty, report empty)
        else
          match
            Engine.verify_object s.s_engine (Engine.root_oid s.s_engine)
          with
          | Ok r ->
              let store =
                Verifier.verify_records ?pool:t.pool ~algo ~directory
                  (Provstore.all (Engine.provstore s.s_engine))
              in
              Ok (report r, report store)
          | Error e -> Error e
      in
      match
        fold_shards t verify_one (fun a b ->
            match (a, b) with
            | Ok (r1, s1), Ok (r2, s2) ->
                Ok (merge_reports r1 r2, merge_reports s1 s2)
            | (Error _ as e), _ | _, (Error _ as e) -> e)
      with
      | Ok (r, store) ->
          Message.Verified { report = r; store_audit = Some store }
      | Error e -> error_resp Message.Failed e)
  | Message.Audit ->
      let audit_one (s : shard) =
        locked s.s_audit_lock (fun () ->
            let r, cp, examined =
              Audit.incremental_audit ?pool:t.pool ~algo ~directory
                !(s.s_audit_cp)
                (Engine.provstore s.s_engine)
            in
            s.s_audit_cp := cp;
            (report r, examined, Audit.objects cp))
      in
      let r, examined, objects =
        fold_shards t audit_one (fun (r1, e1, o1) (r2, e2, o2) ->
            (merge_reports r1 r2, e1 + e2, o1 + o2))
      in
      Message.Audited { report = r; examined; objects }
  | Message.Root_hash -> Message.Root { hash = published_root t }
  | Message.Stats ->
      let s = batch_stats t in
      Message.Stats_resp
        {
          batches = s.batches;
          ops = s.ops;
          sign_wall_us = int_of_float (s.sign_wall_s *. 1e6);
          sign_cpu_us = int_of_float (s.sign_cpu_s *. 1e6);
        }
  | Message.Shard_stats ->
      Message.Shard_stats_resp
        (Array.to_list
           (Array.map
              (fun s ->
                let b = s.s_batcher in
                Mutex.lock b.b_mutex;
                let batches = b.b_batches and ops = b.b_ops in
                let queued =
                  List.fold_left
                    (fun acc j -> acc + Array.length j.j_ops)
                    0 b.b_queue
                in
                Mutex.unlock b.b_mutex;
                {
                  Message.ss_batches = batches;
                  ss_ops = ops;
                  ss_queued = queued;
                  ss_root_recomputes = Atomic.get s.s_root_recomputes;
                  ss_root_hits = Atomic.get s.s_root_hits;
                  ss_proofs_served = Atomic.get s.s_proofs_served;
                  ss_proof_cache_hits = Atomic.get s.s_proof_hits;
                  ss_proof_cache_misses = Atomic.get s.s_proof_misses;
                  ss_proof_bytes = Atomic.get s.s_proof_bytes;
                })
              t.shards))
  | Message.Lineage { kind; oid } ->
      with_owning_shard t oid (fun s ->
          let idx = Prov_index.of_store (Engine.provstore s.s_engine) in
          match kind with
          | Message.L_why ->
              let p = Lineage.why idx oid in
              Message.Lineage_resp
                {
                  poly = Polynomial.encoded p;
                  depth = Lineage.depth idx oid;
                  oids = List.map Oid.of_int (Polynomial.vars p);
                }
          | Message.L_inputs ->
              Message.Lineage_resp
                { poly = ""; depth = 0; oids = Lineage.which_inputs idx oid }
          | Message.L_depth ->
              Message.Lineage_resp
                { poly = ""; depth = Lineage.depth idx oid; oids = [] }
          | Message.L_impact ->
              Message.Lineage_resp
                { poly = ""; depth = 0; oids = Lineage.impact idx oid })
  | Message.Annotated_query { table; where; agg } -> (
      (* The annotation binds the published root, so compute it BEFORE
         taking the shard read lock: [shard_root] re-enters this
         shard's rwlock, and the writer-preferring lock is not
         reentrant — root-then-lock keeps the path deadlock-free.  A
         write landing between the two makes the annotation cite the
         root preceding it, which is still a root the result rows are
         consistent with under the shard read lock's snapshot. *)
      let root = published_root t in
      let k = Shards.shard_of_table ~shards:(shard_count t) table in
      let s = t.shards.(k) in
      Rwlock.with_read s.s_rwlock (fun () ->
          match Tep_store.Database.get_table (Engine.backend s.s_engine) table with
          | None -> error_resp Message.Not_found ("no such table " ^ table)
          | Some tbl -> (
              match Query.pred_of_string where with
              | Error e -> error_resp Message.Bad_request e
              | Ok pred -> (
                  let pred =
                    Query.coerce_pred (Tep_store.Table.schema tbl) pred
                  in
                  let mapping = Engine.mapping s.s_engine in
                  let rvar r = Annotate.row_var mapping table r in
                  let var r = Polynomial.var (rvar r) in
                  let respond rows value =
                    let annot =
                      Annot.make ~id:"" ~table
                        ~pred:(Query.pred_to_string pred) ~agg
                        ~rows:(List.map (fun (r, p) -> (rvar r, p)) rows)
                        ~value ~root participant
                    in
                    Message.Annotated_resp
                      {
                        arows =
                          List.map
                            (fun ((r : Tep_store.Table.row), p) ->
                              (rvar r, r.Tep_store.Table.cells,
                               Polynomial.encoded p))
                            rows;
                        avalue = value;
                        annot = Annot.encoded annot;
                      }
                  in
                  match Annotate.select ~var tbl pred with
                  | Error e -> error_resp Message.Bad_request e
                  | Ok rows ->
                      if agg = "" then respond rows None
                      else (
                        match Query.agg_of_string agg with
                        | Error e -> error_resp Message.Bad_request e
                        | Ok a -> (
                            match
                              Query.aggregate_rows
                                (Tep_store.Table.schema tbl)
                                (List.map fst rows) a
                            with
                            | Error e -> error_resp Message.Bad_request e
                            | Ok v -> respond rows (Some v)))))))
  | Message.Prove { table; row; col } -> (
      (* Everything the client will recheck must come from ONE
         committed state of the owning shard: shard k's root and the
         proofs are taken inside a single root_lock → read-lock
         critical section — the same acquisition order [shard_root]
         uses; the reverse would deadlock against writer preference.
         The OTHER shards' roots come first, each through its own
         cache and locks, so no two shards' locks are ever held
         together.  A commit elsewhere in the gap only means the
         root-of-roots the client recomputes no longer matches a
         trusted root fetched earlier still — the client re-fetches
         Root_hash and retries, like any stale read. *)
      let n = shard_count t in
      let k = Shards.shard_of_table ~shards:n table in
      let s = t.shards.(k) in
      let roots =
        Array.init n (fun i -> if i = k then "" else shard_root t.shards.(i))
      in
      locked s.s_root_lock (fun () ->
          Rwlock.with_read s.s_rwlock (fun () ->
              roots.(k) <-
                shard_root_cached s (fun () -> Engine.root_hash s.s_engine);
              let forest = Engine.forest s.s_engine in
              let mapping = Engine.mapping s.s_engine in
              let leaves =
                match col with
                | Some c -> (
                    match Tree_view.cell_oid mapping table row c with
                    | Some oid -> Ok [ oid ]
                    | None ->
                        Error (Printf.sprintf "no cell %s[%d].%d" table row c))
                | None -> (
                    match Tree_view.row_oid mapping table row with
                    | None -> Error (Printf.sprintf "no row %s[%d]" table row)
                    | Some oid -> (
                        (* every cell of the row; a cell-less row is
                           itself atomic and proves directly *)
                        match Forest.children forest oid with
                        | [] -> Ok [ oid ]
                        | cells -> Ok cells))
              in
              match leaves with
              | Error e -> error_resp Message.Not_found e
              | Ok leaves -> (
                  let epoch = Atomic.get s.s_proof_epoch in
                  let rec build acc = function
                    | [] -> Ok (List.rev acc)
                    | oid :: rest -> (
                        match serve_proof s ~epoch oid with
                        | Error e -> Error e
                        | Ok bytes ->
                            let records =
                              Provstore.provenance_object
                                (Engine.provstore s.s_engine)
                                oid
                            in
                            build ((bytes, records) :: acc) rest)
                  in
                  match build [] leaves with
                  | Ok items ->
                      Message.Proof_resp
                        { shard = k; shard_roots = Array.to_list roots; items }
                  | Error e -> error_resp Message.Failed e))))
  | Message.Audit_sample { seed; alpha_ppm } ->
      if alpha_ppm <= 0 || alpha_ppm > 1_000_000 then
        error_resp Message.Bad_request
          "sample fraction must be in (0, 1] (1..1000000 ppm)"
      else begin
        (* One DRBG, drawn in shard-then-oid order over the sorted live
           object lists, makes the sweep reproducible from the seed
           alone: any auditor can replay it and obtain the same sample,
           so a server cannot steer the sweep away from tampered
           objects.  [fold_shards] visits shards sequentially in index
           order, so the draw order is deterministic.  Each sampled
           object gets the full recipient-side check of its provenance
           closure (R1–R8 over the DAG), giving the standard detection
           bound P(miss k tampered objects) ≤ (1−α)^k per sweep. *)
        let drbg = Tep_crypto.Drbg.create ~seed in
        let sample_one (sh : shard) =
          let store = Engine.provstore sh.s_engine in
          let forest = Engine.forest sh.s_engine in
          let live = List.filter (Forest.mem forest) (Provstore.objects store) in
          List.fold_left
            (fun (rep, sampled, population) oid ->
              let draw = Tep_crypto.Drbg.uniform_int drbg 1_000_000 in
              if draw >= alpha_ppm then (rep, sampled, population + 1)
              else
                match Engine.verify_object sh.s_engine oid with
                | Ok r ->
                    (merge_reports rep (report r), sampled + 1, population + 1)
                | Error e ->
                    ( {
                        rep with
                        Message.rp_violations =
                          rep.Message.rp_violations
                          @ [ Printf.sprintf "%s: %s" (Oid.to_string oid) e ];
                      },
                      sampled + 1,
                      population + 1 ))
            (empty_report, 0, 0) live
        in
        let rep, sampled, population =
          fold_shards t sample_one (fun (r1, s1, p1) (r2, s2, p2) ->
              (merge_reports r1 r2, s1 + s2, p1 + p2))
        in
        Message.Audit_sample_resp { report = rep; sampled; population }
      end

(* Checkpoint every shard under all write locks (taken in ascending
   index order, the global multi-lock order).  With every shard
   write-locked no 2PC can be mid-flight, so once each shard's WAL is
   checkpointed — prepared transactions upgraded to Commit markers or
   rolled into the snapshot — the coordinator's decision log carries
   no live information and is truncated too. *)
let dispatch_checkpoint t =
  let checkpoint_one (s : shard) =
    match s.s_checkpoint with
    | None -> Error "checkpointing not configured"
    | Some (dir, wal) -> (
        match Recovery.checkpoint ~dir ~wal s.s_engine with
        | Ok generation -> Ok (generation, Tep_store.Wal.last_seq wal)
        | Error e -> Error e)
  in
  let rec go k acc =
    if k >= Array.length t.shards then Ok (List.rev acc)
    else
      match checkpoint_one t.shards.(k) with
      | Ok r -> go (k + 1) (r :: acc)
      | Error e ->
          Error (Printf.sprintf "shard %d: %s" k e)
  in
  match go 0 [] with
  | Error e -> error_resp Message.Failed e
  | Ok results -> (
      (match t.coord with
      | Some coord ->
          ignore
            (Tep_store.Wal.truncate coord
               ~upto:(Tep_store.Wal.last_seq coord))
      | None -> ());
      match results with
      | (generation, lsn) :: _ -> Message.Checkpointed { generation; lsn }
      | [] -> error_resp Message.Failed "no shards")

let rec with_all_writes t k f =
  if k >= Array.length t.shards then f ()
  else
    Rwlock.with_write t.shards.(k).s_rwlock (fun () ->
        with_all_writes t (k + 1) f)

let dispatch_locked t participant (req : Message.request) =
  match req with
  | Message.Submit op | Message.Submit_idem { op; _ } ->
      (submit_ops t participant [| op |]).(0)
  | Message.Checkpoint | Message.Checkpoint_idem _ ->
      if Atomic.get t.draining then
        error_resp Message.Shutting_down "server is draining"
      else
        with_all_writes t 0 (fun () ->
            try dispatch_checkpoint t
            with e -> error_resp Message.Failed (Printexc.to_string e))
  | _ -> (
      (* per-shard read locks are taken inside [dispatch_read], as
         close to each shard access as possible *)
      try dispatch_read t participant req
      with e -> error_resp Message.Failed (Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

let handle_hello c ~name ~client_nonce =
  let t = c.server in
  match List.assoc_opt name t.participants with
  | None -> kill c (error_resp Message.Auth_failed ("unknown participant " ^ name))
  | Some participant -> (
      match
        Participant.Directory.lookup_verified (directory t) name
      with
      | `Unknown | `Bad_certificate ->
          kill c
            (error_resp Message.Auth_failed
               ("no verified certificate for " ^ name))
      | `Verified _ ->
          let server_nonce = gen_nonce t in
          c.phase <- Expect_auth { participant; name; client_nonce; server_nonce };
          frame_response c (Message.Challenge { nonce = server_nonce }))

(* Order matters: the signature (which covers the encrypted key
   share) is verified before the share is decrypted, so decryption
   only ever runs on ciphertexts the participant's key holder
   produced — never on attacker-chosen ones. *)
let handle_auth c ~participant ~name ~client_nonce ~server_nonce ~signature
    ~key_share =
  let transcript =
    Session.transcript ~name ~client_nonce ~server_nonce ~key_share
  in
  let cert = Participant.certificate participant in
  if
    not
      (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256
         cert.Tep_crypto.Pki.subject_key ~msg:transcript ~signature)
  then kill c (error_resp Message.Auth_failed "transcript signature invalid")
  else
    match Participant.decrypt participant key_share with
    | Some secret when String.length secret = Session.key_share_len ->
        let key = Session.derive_key ~transcript ~signature ~secret in
        c.phase <-
          Established
            {
              participant;
              keyed = Session.keyed ~key;
              recv_seq = 0;
              send_seq = 0;
            };
        frame_response c (Message.Auth_ok { server = "provdbd" })
    | Some _ | None ->
        kill c (error_resp Message.Auth_failed "key share rejected")

(* ------------------------------------------------------------------ *)
(* Frame handling                                                      *)
(* ------------------------------------------------------------------ *)

let decode_request_at payload off =
  match Message.decode_request payload off with
  | req, consumed when consumed = String.length payload -> Some req
  | _ -> None
  | exception (Failure _ | Invalid_argument _) -> None

let decode_request payload = decode_request_at payload 0

(* Consecutive pipelined Submits buffered on the connection join the
   batcher as one job; their responses are framed in request order,
   each echoing its own correlation id.

   Idempotency happens at this boundary.  Each buffered slot resolves
   to one of: [`Run] (execute in this batch), [`Hit] (already
   completed under this rid — answer from the dedup table), or
   [`Alias j] (same rid as an earlier slot of this very flush; aliased
   locally so a duplicate inside one batch never deadlocks on its own
   pending entry).  Only `Run slots reach the batcher. *)
let flush_pending c out =
  match (c.phase, c.pending) with
  | _, [] -> ()
  | Established s, pending ->
      c.pending <- [];
      let t = c.server in
      let ps = Array.of_list (List.rev pending) in
      let local : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let fresh_rev = ref [] in
      let plan =
        Array.mapi
          (fun i (_, rid, _) ->
            match rid with
            | None ->
                fresh_rev := i :: !fresh_rev;
                `Run
            | Some r -> (
                match Hashtbl.find_opt local r with
                | Some j ->
                    note_dedup_hit t;
                    `Alias j
                | None -> (
                    match dedup_claim t r with
                    | `Hit resp -> `Hit resp
                    | `Run ->
                        Hashtbl.replace local r i;
                        fresh_rev := i :: !fresh_rev;
                        `Run)))
          ps
      in
      let fresh = Array.of_list (List.rev !fresh_rev) in
      let ops =
        Array.map
          (fun i ->
            let _, _, op = ps.(i) in
            op)
          fresh
      in
      let resps =
        if Array.length ops = 0 then [||]
        else submit_ops t s.participant ops
      in
      (* Publish executed rids before framing: by the time a response
         leaves this connection, a retry arriving on another one
         already sees the cached outcome. *)
      let resp_of_slot : (int, Message.response) Hashtbl.t =
        Hashtbl.create 8
      in
      Array.iteri
        (fun k slot ->
          Hashtbl.replace resp_of_slot slot resps.(k);
          let _, rid, _ = ps.(slot) in
          Option.iter
            (fun r ->
              dedup_resolve t r
                (if dedup_cacheable resps.(k) then Some resps.(k) else None))
            rid)
        fresh;
      Array.iteri
        (fun i (cid, _, _) ->
          let resp =
            match plan.(i) with
            | `Run -> Hashtbl.find resp_of_slot i
            | `Alias j -> Hashtbl.find resp_of_slot j
            | `Hit resp -> resp
          in
          Buffer.add_string out (frame_response ~cid c resp))
        ps
  | _, _ -> c.pending <- []

(* Buffer one pipelined submit, enforcing the per-session in-flight
   cap: past [admission.max_session_inflight] buffered ops the submit
   is shed immediately with a typed Overloaded response (its own cid),
   leaving the already-buffered ops untouched. *)
let buffer_submit c out ~cid ~rid op =
  let t = c.server in
  if List.length c.pending >= t.admission.max_session_inflight then begin
    note_shed t;
    Buffer.add_string out
      (frame_response ~cid c (overloaded t (List.length c.pending)))
  end
  else c.pending <- (cid, rid, op) :: c.pending

(* Established-phase sealed traffic: open the seal, split off the
   correlation id, then either defer (Submit — grouped with adjacent
   pipelined submits) or flush-and-dispatch. *)
let handle_sealed c out s payload =
  match
    Session.open_keyed s.keyed ~dir:Session.To_server ~seq:s.recv_seq payload
  with
  | Error e ->
      flush_pending c out;
      Buffer.add_string out (kill c (error_resp Message.Auth_failed e))
  | Ok msg -> (
      s.recv_seq <- s.recv_seq + 1;
      match Message.read_cid msg with
      | None ->
          flush_pending c out;
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request"))
      | Some (cid, off) -> (
          match decode_request_at msg off with
          | None ->
              flush_pending c out;
              Buffer.add_string out
                (kill ~cid c (error_resp Message.Bad_request "malformed request"))
          | Some (Message.Submit op) -> buffer_submit c out ~cid ~rid:None op
          | Some (Message.Submit_idem { rid; op }) ->
              buffer_submit c out ~cid ~rid:(Some rid) op
          | Some Message.Ping ->
              flush_pending c out;
              Buffer.add_string out (frame_response ~cid c (pong c.server))
          | Some (Message.Checkpoint_idem { rid }) ->
              flush_pending c out;
              let resp =
                match dedup_claim c.server rid with
                | `Hit resp -> resp
                | `Run ->
                    let resp =
                      dispatch_locked c.server s.participant Message.Checkpoint
                    in
                    dedup_resolve c.server rid
                      (if dedup_cacheable resp then Some resp else None);
                    resp
              in
              Buffer.add_string out (frame_response ~cid c resp)
          | Some req ->
              flush_pending c out;
              let resp = dispatch_locked c.server s.participant req in
              Buffer.add_string out (frame_response ~cid c resp)))

let handle_frame c out (kind : Frame.kind) payload =
  match (c.phase, kind) with
  | Dead, _ -> ()
  | (Expect_hello | Expect_auth _), Sealed ->
      Buffer.add_string out
        (kill c (error_resp Message.Auth_required "handshake not complete"))
  | Established _, Clear ->
      flush_pending c out;
      Buffer.add_string out
        (kill c (error_resp Message.Bad_request "clear frame on sealed session"))
  | Expect_hello, Clear -> (
      match decode_request payload with
      | Some (Message.Hello { name; nonce }) ->
          Buffer.add_string out (handle_hello c ~name ~client_nonce:nonce)
      | Some _ ->
          Buffer.add_string out
            (kill c (error_resp Message.Auth_required "hello expected"))
      | None ->
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request")))
  | Expect_auth { participant; name; client_nonce; server_nonce }, Clear -> (
      match decode_request payload with
      | Some (Message.Auth { signature; key_share }) ->
          Buffer.add_string out
            (handle_auth c ~participant ~name ~client_nonce ~server_nonce
               ~signature ~key_share)
      | Some _ ->
          Buffer.add_string out
            (kill c (error_resp Message.Auth_required "auth expected"))
      | None ->
          Buffer.add_string out
            (kill c (error_resp Message.Bad_request "malformed request")))
  | Established s, Sealed -> handle_sealed c out s payload

(* Bytes in, response bytes out.  This is the single protocol entry
   point shared by the socket loops and the loopback transport.

   Input accumulates in a Buffer (amortised O(1) per chunk); the
   parser only materialises the buffered bytes once a frame could be
   complete ([need], maintained from the parser's Need_more), so a
   maximum-size frame arriving in 4 KiB chunks costs O(n), not the
   O(n^2) of re-concatenating a string per chunk — an unauthenticated
   peer cannot buy gigabytes of memcpy with one 16 MiB frame.

   Submits parsed in this pass are deferred on [c.pending] and flushed
   as one batcher job — either when a non-submit request interleaves
   (responses stay in request order) or when the parsed input runs
   out.  A blocking client (one request per chunk) therefore behaves
   exactly as before: its single submit flushes immediately. *)
let feed c data =
  if c.phase = Dead then ""
  else begin
    let data = Fault.input read_site data in
    Buffer.add_string c.inbox data;
    let out = Buffer.create 256 in
    let continue = ref true in
    while !continue && alive c do
      if Buffer.length c.inbox < c.need then continue := false
      else begin
        let buffered = Buffer.contents c.inbox in
        match Frame.parse ~max_payload:c.server.max_payload buffered 0 with
        | Frame.Need_more n ->
            c.need <- String.length buffered + n;
            continue := false
        | Frame.Frame { kind; payload; consumed } ->
            Buffer.clear c.inbox;
            Buffer.add_substring c.inbox buffered consumed
              (String.length buffered - consumed);
            c.need <- Frame.header_len;
            handle_frame c out kind payload
        | Frame.Oversized n ->
            flush_pending c out;
            Buffer.add_string out
              (kill c
                 (error_resp Message.Too_large
                    (Printf.sprintf
                       "declared payload of %d bytes exceeds limit" n)))
        | Frame.Corrupt reason ->
            flush_pending c out;
            Buffer.add_string out
              (kill c (error_resp Message.Bad_request reason))
      end
    done;
    flush_pending c out;
    Buffer.contents out
  end

(* ------------------------------------------------------------------ *)
(* Socket loops                                                        *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let handle_client t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.request_timeout
   with Unix.Unix_error _ -> ());
  let c = conn t in
  let chunk = Bytes.create 4096 in
  (try
     let eof = ref false in
     while (not !eof) && alive c do
       let n = Unix.read fd chunk 0 (Bytes.length chunk) in
       if n = 0 then eof := true
       else begin
         let out = feed c (Bytes.sub_string chunk 0 n) in
         if out <> "" then write_all fd out
       end
     done
   with Unix.Unix_error _ | Sys_error _ | Fault.Crash _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* A connection flood must not translate into unbounded threads: past
   [max_connections] concurrent connections, new accepts get a
   best-effort advisory error frame and are dropped. *)
let release t = Atomic.decr t.active

let try_acquire t =
  if Atomic.fetch_and_add t.active 1 < t.max_connections then true
  else begin
    release t;
    false
  end

let reject_over_capacity cfd =
  (try
     Unix.setsockopt_float cfd Unix.SO_SNDTIMEO 1.0;
     write_all cfd
       (Frame.to_string ~kind:Frame.Clear
          (Message.response_to_string
             (error_resp Message.Failed "server at connection limit")))
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close cfd with Unix.Unix_error _ -> ()

(* A peer that disappears mid-write must surface as EPIPE on the
   write (handled like every other socket error), not as a
   process-killing SIGPIPE — OCaml does not mask the signal by
   default. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

(* Legacy thread-per-connection accept loop.  Event-driven stop: the
   select blocks on the listen fd AND a ctl pipe; {!wake} (called by
   whoever flips [stop]) writes the pipe, so shutdown latency is one
   syscall.  The 1 s select cap is only a backstop for callers that
   set [stop] without waking. *)
let serve_threaded t ~stop fd =
  let ctl_r, ctl_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock ctl_r;
  Unix.set_nonblock ctl_w;
  let waker_id =
    register_waker t (fun () ->
        try ignore (Unix.single_write_substring ctl_w "!" 0 1) with
        | Unix.Unix_error _ -> ())
  in
  let drain_ctl () =
    let b = Bytes.create 64 in
    let rec go () =
      match Unix.read ctl_r b 0 64 with
      | 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  Unix.listen fd 16;
  while not (Atomic.get stop) do
    match Unix.select [ fd; ctl_r ] [] [] 1.0 with
    | rs, _, _ ->
        if List.mem ctl_r rs then drain_ctl ();
        if List.mem fd rs then begin
          match Unix.accept fd with
          | cfd, _ ->
              if try_acquire t then begin
                (* the acquired slot is owned by the handler thread; if
                   the thread cannot even be created (fd/memory
                   exhaustion) the slot and the socket must both be
                   returned here, or the cap leaks permanently *)
                match
                  Thread.create
                    (fun () ->
                      Fun.protect
                        ~finally:(fun () -> release t)
                        (fun () -> handle_client t cfd))
                    ()
                with
                | (_ : Thread.t) -> ()
                | exception _ ->
                    release t;
                    (try Unix.close cfd with Unix.Unix_error _ -> ())
              end
              else reject_over_capacity cfd
          | exception Unix.Unix_error _ -> ()
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  unregister_waker t waker_id;
  (try Unix.close ctl_r with Unix.Unix_error _ -> ());
  (try Unix.close ctl_w with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Event-loop service path: the {!Evloop} reactor owns every client fd
   non-blocking; its worker pool runs {!feed}.  Admission (connection
   cap + advisory reject), drain and dedup semantics are exactly the
   threaded path's: the same [try_acquire]/[release] accounting and
   the same advisory frame bytes. *)
let serve_event t ~stop ~workers fd =
  let advisory =
    Frame.to_string ~kind:Frame.Clear
      (Message.response_to_string
         (error_resp Message.Failed "server at connection limit"))
  in
  let on_accept _cfd =
    if try_acquire t then begin
      let c = conn t in
      Evloop.Accept
        {
          Evloop.h_feed = feed c;
          h_alive = (fun () -> alive c);
          h_pending =
            (fun () -> Buffer.length c.inbox > 0 || c.pending <> []);
        }
    end
    else Evloop.Reject advisory
  in
  let cfg =
    {
      (Evloop.default_config ~on_accept) with
      Evloop.workers;
      request_timeout = t.request_timeout;
      idle_timeout = t.idle_timeout;
      on_close = (fun () -> release t);
      on_reap = (fun () -> Atomic.incr t.reaped);
    }
  in
  let loop = Evloop.create cfg in
  let waker_id = register_waker t (fun () -> Evloop.wake loop) in
  Fun.protect
    ~finally:(fun () -> unregister_waker t waker_id)
    (fun () -> Evloop.run loop ~listen:fd ~stop)

let serve_fd t ~stop fd =
  Lazy.force ignore_sigpipe;
  match t.io_mode with
  | Event { workers } -> serve_event t ~stop ~workers fd
  | Threaded -> serve_threaded t ~stop fd

let serve_unix t ~path ~stop =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd

let serve_tcp t ~port ~stop =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  serve_fd t ~stop fd
