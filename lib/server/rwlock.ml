(* Classic mutex + two-condition reader–writer lock, writer-preferring:
   a queued writer gates new readers, so group-commit batches cannot be
   starved by a continuous stream of verifies. *)

type t = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable active_readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create () =
  {
    mutex = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    active_readers = 0;
    writer = false;
    waiting_writers = 0;
  }

let read_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.waiting_writers > 0 do
    Condition.wait t.can_read t.mutex
  done;
  t.active_readers <- t.active_readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.active_readers <- t.active_readers - 1;
  if t.active_readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.active_readers > 0 do
    Condition.wait t.can_write t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  (* Wake both sides: whichever class is waiting gets through under
     the preference rule re-checked in its wait loop. *)
  Condition.broadcast t.can_read;
  Condition.signal t.can_write;
  Mutex.unlock t.mutex

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

let readers t = t.active_readers
