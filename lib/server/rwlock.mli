(** Writer-preferring reader–writer lock for the service dispatch
    path.

    Read-only requests (verify, audit, query, root-hash) share the
    lock so they run concurrently across connections; submits and
    checkpoints take the exclusive writer side.  A waiting writer
    blocks {e new} readers — under a steady read load the group-commit
    leader would otherwise starve — while readers already inside
    finish undisturbed.

    Not reentrant: a thread holding either side must not re-acquire
    the lock. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a
(** Runs the thunk holding a shared read lock; exceptions release the
    lock and propagate. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Runs the thunk holding the exclusive write lock; exceptions
    release the lock and propagate. *)

val readers : t -> int
(** Number of threads currently inside {!with_read} (diagnostic —
    racy by nature, used by tests observing concurrency). *)
