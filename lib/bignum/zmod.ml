let limb_bits = Nat.limb_bits
let base = 1 lsl limb_bits
let limb_mask = base - 1

let rec gcd a b = if Nat.is_zero b then a else gcd b (Nat.rem a b)

(* Extended Euclid, tracking only the coefficient of [a] and carrying
   its sign separately (Nat has no negatives). *)
let modinv a m =
  if Nat.compare m Nat.one <= 0 then invalid_arg "Zmod.modinv: modulus <= 1";
  let a = Nat.rem a m in
  (* Invariants: r_i = s_i * a (mod m), with sign_i the sign of s_i. *)
  let rec go r0 s0 sign0 r1 s1 sign1 =
    if Nat.is_zero r1 then
      if Nat.is_one r0 then
        Some (if sign0 >= 0 then Nat.rem s0 m else Nat.sub m (Nat.rem s0 m))
      else None
    else begin
      let q, r2 = Nat.divmod r0 r1 in
      (* s2 = s0 - q*s1, with signs. *)
      let qs1 = Nat.mul q s1 in
      let s2, sign2 =
        if sign0 = sign1 || Nat.is_zero qs1 then
          if Nat.compare s0 qs1 >= 0 then (Nat.sub s0 qs1, sign0)
          else (Nat.sub qs1 s0, -sign0)
        else (Nat.add s0 qs1, sign0)
      in
      go r1 s1 sign1 r2 s2 sign2
    end
  in
  if Nat.is_zero a then None
  else go m Nat.zero 1 a Nat.one 1

let mod_mul a b m = Nat.rem (Nat.mul a b) m

module Montgomery = struct
  type ctx = {
    m : Nat.t;
    n : int; (* limb count of m *)
    m_limbs : int array;
    m' : int; (* -m^{-1} mod base *)
    r2 : Nat.t; (* R^2 mod m, R = base^n *)
  }

  let modulus ctx = ctx.m

  (* Inverse of x modulo base by Newton iteration (x odd). *)
  let inv_limb x =
    let y = ref x in
    (* y *= 2 - x*y doubles correct bits each step; the seed is good to
       3 bits (x*x = 1 mod 8 for odd x), so 5 steps reach 96 > 31. *)
    for _ = 1 to 5 do
      y := (!y * (2 - (x * !y))) land limb_mask
    done;
    !y land limb_mask

  let create m =
    if Nat.is_even m || Nat.compare m Nat.one <= 0 then
      invalid_arg "Montgomery.create: modulus must be odd and > 1";
    let n = Nat.num_limbs m in
    let m_limbs = Array.init n (Nat.get_limb m) in
    let m' = (base - inv_limb m_limbs.(0)) land limb_mask in
    let r = Nat.shift_left Nat.one (n * limb_bits) in
    let r2 = Nat.rem (Nat.mul r r) m in
    { m; n; m_limbs; m'; r2 }

  (* CIOS Montgomery multiplication: dst <- a*b*R^{-1} mod m.  Inputs
     are limb arrays of length n (zero-padded); [t] is caller scratch
     of length n+2 (contents ignored).  [dst] may alias [a] or [b] —
     both are fully consumed before the first store to [dst] — so a
     whole exponentiation runs in two fixed buffers with no allocation
     per multiply.

     The interleaved reduction stores slot j at index j-1, folding the
     end-of-iteration one-limb shift of the textbook formulation into
     the loop itself.  Each accumulation step is at most
     limb + limb*limb + limb = 2^62 - 1, exactly max_int: the unsafe
     accesses below are bounds-safe because every index is governed by
     [n = ctx.n] and all four arrays have length >= n (t: n+2). *)
  let mont_mul_into ctx (t : int array) (dst : int array) (a : int array)
      (b : int array) : unit =
    let n = ctx.n in
    let m = ctx.m_limbs and m' = ctx.m' in
    Array.fill t 0 (n + 2) 0;
    for i = 0 to n - 1 do
      let ai = Array.unsafe_get a i in
      (* t += ai * b *)
      let carry = ref 0 in
      for j = 0 to n - 1 do
        let p =
          Array.unsafe_get t j + (ai * Array.unsafe_get b j) + !carry
        in
        Array.unsafe_set t j (p land limb_mask);
        carry := p lsr limb_bits
      done;
      let s = Array.unsafe_get t n + !carry in
      Array.unsafe_set t n (s land limb_mask);
      Array.unsafe_set t (n + 1)
        (Array.unsafe_get t (n + 1) + (s lsr limb_bits));
      (* u = t[0] * m' mod base; t := (t + u*m) / base, the division
         folded into the store index: slot j lands at j-1, and slot 0
         (zero by construction of u) is simply never stored. *)
      let u = (Array.unsafe_get t 0 * m') land limb_mask in
      let p0 = Array.unsafe_get t 0 + (u * Array.unsafe_get m 0) in
      let carry = ref (p0 lsr limb_bits) in
      for j = 1 to n - 1 do
        let p =
          Array.unsafe_get t j + (u * Array.unsafe_get m j) + !carry
        in
        Array.unsafe_set t (j - 1) (p land limb_mask);
        carry := p lsr limb_bits
      done;
      let s = Array.unsafe_get t n + !carry in
      Array.unsafe_set t (n - 1) (s land limb_mask);
      Array.unsafe_set t n (Array.unsafe_get t (n + 1) + (s lsr limb_bits));
      Array.unsafe_set t (n + 1) 0
    done;
    (* Result in t[0..n]; subtract m if >= m, writing into dst. *)
    let ge =
      if Array.unsafe_get t n <> 0 then true
      else begin
        let rec cmp i =
          if i < 0 then true (* equal *)
          else
            let ti = Array.unsafe_get t i and mi = Array.unsafe_get m i in
            if ti <> mi then ti > mi else cmp (i - 1)
        in
        cmp (n - 1)
      end
    in
    if ge then begin
      let borrow = ref 0 in
      for i = 0 to n - 1 do
        let d = Array.unsafe_get t i - Array.unsafe_get m i - !borrow in
        if d < 0 then begin
          Array.unsafe_set dst i (d + base);
          borrow := 1
        end
        else begin
          Array.unsafe_set dst i d;
          borrow := 0
        end
      done
    end
    else Array.blit t 0 dst 0 n

  (* Allocating wrapper, used by the reference ladder. *)
  let mont_mul_scratch ctx (t : int array) (a : int array) (b : int array) :
      int array =
    let res = Array.make ctx.n 0 in
    mont_mul_into ctx t res a b;
    res

  let to_limbs ctx x =
    let x = Nat.rem x ctx.m in
    Array.init ctx.n (Nat.get_limb x)

  (* Reference left-to-right binary ladder, kept as the oracle the
     windowed ladder is property-tested (and benchmarked) against. *)
  let pow_binary ctx b e =
    if Nat.is_zero e then Nat.rem Nat.one ctx.m
    else begin
      let t = Array.make (ctx.n + 2) 0 in
      let mul = mont_mul_scratch ctx t in
      let b_mont = mul (to_limbs ctx b) (to_limbs ctx ctx.r2) in
      let acc = ref (mul (to_limbs ctx Nat.one) (to_limbs ctx ctx.r2)) in
      for i = Nat.num_bits e - 1 downto 0 do
        acc := mul !acc !acc;
        if Nat.testbit e i then acc := mul !acc b_mont
      done;
      (* Convert out of Montgomery form: multiply by 1. *)
      let one_limbs = Array.make ctx.n 0 in
      one_limbs.(0) <- 1;
      Nat.of_limbs (mul !acc one_limbs)
    end

  (* Fixed-window size: chosen so the 2^k-1 table multiplies amortise
     over e's bits (k=5 saves ~19% of the multiplies of the binary
     ladder on a 2048-bit exponent). *)
  let window_bits ebits =
    if ebits <= 24 then 1
    else if ebits <= 80 then 2
    else if ebits <= 240 then 3
    else if ebits <= 768 then 4
    else 5

  (* 2^k-ary fixed-window ladder: precompute b^0..b^(2^k - 1) in
     Montgomery form, then per k-bit window do k squarings and at most
     one table multiply.  The accumulator squares in place via
     {!mont_mul_into} (dst aliasing is safe there), so the whole
     ladder allocates only the table and two scratch buffers. *)
  let pow ctx b e =
    if Nat.is_zero e then Nat.rem Nat.one ctx.m
    else begin
      let ebits = Nat.num_bits e in
      let k = window_bits ebits in
      let n = ctx.n in
      let t = Array.make (n + 2) 0 in
      let one_mont = mont_mul_scratch ctx t (to_limbs ctx Nat.one)
          (to_limbs ctx ctx.r2)
      in
      let b_mont = mont_mul_scratch ctx t (to_limbs ctx b)
          (to_limbs ctx ctx.r2)
      in
      let table = Array.init (1 lsl k) (fun _ -> Array.make n 0) in
      Array.blit one_mont 0 table.(0) 0 n;
      for i = 1 to (1 lsl k) - 1 do
        mont_mul_into ctx t table.(i) table.(i - 1) b_mont
      done;
      let window j =
        (* bits [j*k .. j*k + k - 1] of e, top bit first *)
        let w = ref 0 in
        for bit = k - 1 downto 0 do
          w := (!w lsl 1) lor (if Nat.testbit e ((j * k) + bit) then 1 else 0)
        done;
        !w
      in
      let nwin = (ebits + k - 1) / k in
      let acc = Array.make n 0 in
      Array.blit table.(window (nwin - 1)) 0 acc 0 n;
      for j = nwin - 2 downto 0 do
        for _ = 1 to k do
          mont_mul_into ctx t acc acc acc
        done;
        let w = window j in
        if w <> 0 then mont_mul_into ctx t acc acc table.(w)
      done;
      let one_limbs = Array.make n 0 in
      one_limbs.(0) <- 1;
      mont_mul_into ctx t acc acc one_limbs;
      Nat.of_limbs acc
    end
end

(* Division-based square-and-multiply, for even moduli. *)
let modpow_naive b e m =
  let b = ref (Nat.rem b m) in
  let acc = ref (Nat.rem Nat.one m) in
  for i = 0 to Nat.num_bits e - 1 do
    if Nat.testbit e i then acc := mod_mul !acc !b m;
    b := mod_mul !b !b m
  done;
  !acc

let modpow b e m =
  if Nat.is_zero m then invalid_arg "Zmod.modpow: zero modulus";
  if Nat.is_one m then Nat.zero
  else if Nat.is_even m then modpow_naive b e m
  else Montgomery.pow (Montgomery.create m) b e
