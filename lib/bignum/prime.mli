(** Primality testing and random prime generation.

    Randomness is supplied by the caller as a byte source
    (in practice {!Tep_crypto.Drbg}), keeping this library free of any
    dependency on the crypto layer above it. *)

type byte_source = int -> string
(** [src n] must return [n] fresh pseudo-random bytes. *)

val is_probably_prime : ?rounds:int -> byte_source -> Nat.t -> bool
(** Miller–Rabin with [rounds] random bases (default 20), preceded by
    trial division by small primes.  Deterministically correct for
    inputs below 3317044064679887385961981 when given enough rounds;
    probabilistic above. *)

val random_bits : byte_source -> int -> Nat.t
(** [random_bits src k] draws a uniform natural in [[0, 2^k)]. *)

val random_below : byte_source -> Nat.t -> Nat.t
(** [random_below src n] draws a uniform natural in [[0, n)] by
    rejection sampling. @raise Invalid_argument if [n] is zero. *)

val generate : byte_source -> bits:int -> Nat.t
(** [generate src ~bits] returns a random probable prime of exactly
    [bits] bits with the top two bits set (so that the product of two
    such primes has exactly [2*bits] bits, as RSA key generation
    requires). @raise Invalid_argument if [bits < 8]. *)

val small_primes : int array
(** The primes below 1000, used for trial division. *)
