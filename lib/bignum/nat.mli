(** Arbitrary-precision natural numbers.

    Values are immutable.  The representation uses base-[2^limb_bits] limbs
    stored little-endian in an [int array], which keeps every
    intermediate product of two limbs, plus carries, inside OCaml's
    63-bit native integers.

    This module is the foundation of the from-scratch RSA
    implementation in {!Tep_crypto.Rsa}; see DESIGN.md (system
    inventory #1). *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t

(** {1 Construction and conversion} *)

val of_int : int -> t
(** [of_int n] converts a non-negative [int].
    @raise Invalid_argument if [n < 0]. *)

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option

val of_bytes_be : string -> t
(** Interpret a big-endian byte string as a natural number.  The empty
    string maps to {!zero}. *)

val to_bytes_be : t -> string
(** Minimal big-endian byte encoding; [to_bytes_be zero = ""]. *)

val to_bytes_be_padded : int -> t -> string
(** [to_bytes_be_padded len n] is the big-endian encoding left-padded
    with zero bytes to exactly [len] bytes.
    @raise Invalid_argument if [n] needs more than [len] bytes. *)

val of_hex : string -> t
(** Parse a hexadecimal string (no ["0x"] prefix, case-insensitive).
    @raise Invalid_argument on non-hex characters. *)

val to_hex : t -> string
(** Lowercase minimal hexadecimal encoding; [to_hex zero = "0"]. *)

val of_decimal : string -> t
(** Parse a decimal string. @raise Invalid_argument on bad input. *)

val to_decimal : t -> string

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool
val is_one : t -> bool
val is_even : t -> bool

(** {1 Arithmetic} *)

val add : t -> t -> t

val sub : t -> t -> t
(** Truncated subtraction. @raise Invalid_argument if the result would
    be negative. *)

val mul : t -> t -> t
(** Schoolbook multiplication below {!karatsuba_threshold} limbs,
    Karatsuba above. *)

val mul_int : t -> int -> t
(** [mul_int a k] with [0 <= k < 2^26]. *)

val divmod : t -> t -> t * t
(** [divmod a b = (q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth Algorithm D). @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val num_bits : t -> int
(** Position of the highest set bit plus one; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
(** [testbit n i] is bit [i] (little-endian bit order) of [n]. *)

(** {1 Internals exposed for sibling modules} *)

val limb_bits : int
(** Bits per limb (26). *)

val karatsuba_threshold : int

val num_limbs : t -> int
val get_limb : t -> int -> int
(** [get_limb n i] is limb [i], or [0] when [i >= num_limbs n]. *)

val of_limbs : int array -> t
(** Build from little-endian limbs (each in [[0, 2^26)]); trailing
    zero limbs are normalised away.  The array is copied. *)

val pp : Format.formatter -> t -> unit
(** Prints the decimal representation. *)
