(* Arbitrary-precision naturals, base 2^31 little-endian limbs.

   Invariant: a value is either [||] (zero) or has a non-zero most
   significant limb.  All limbs lie in [0, base).

   31 is the widest limb a 63-bit OCaml int supports: every kernel
   below accumulates at most one limb product plus two limb-sized
   addends per step, and (2^31-1)^2 + 2*(2^31-1) = 2^62 - 1 = max_int
   exactly.  Wider limbs overflow; narrower ones (the old 26) pay
   ~40% more multiply work for the same modulus. *)

let limb_bits = 31
let base = 1 lsl limb_bits
let limb_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let num_limbs (a : t) = Array.length a

let get_limb (a : t) i = if i < Array.length a then a.(i) else 0

(* Drop leading (most-significant) zero limbs to restore the invariant. *)
let normalize (a : int array) : t =
  let n = Array.length a in
  let top = ref n in
  while !top > 0 && a.(!top - 1) = 0 do
    decr top
  done;
  if !top = n then a else Array.sub a 0 !top

let of_limbs limbs =
  Array.iter
    (fun l ->
      if l < 0 || l >= base then invalid_arg "Nat.of_limbs: limb out of range")
    limbs;
  normalize (Array.copy limbs)

let is_zero (a : t) = Array.length a = 0
let is_one (a : t) = Array.length a = 1 && a.(0) = 1
let is_even (a : t) = Array.length a = 0 || a.(0) land 1 = 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let equal a b = compare a b = 0

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else begin
    let rec count acc n = if n = 0 then acc else count (acc + 1) (n lsr limb_bits) in
    let len = count 0 n in
    let a = Array.make len 0 in
    let rec fill i n =
      if n <> 0 then begin
        a.(i) <- n land limb_mask;
        fill (i + 1) (n lsr limb_bits)
      end
    in
    fill 0 n;
    a
  end

let to_int_opt (a : t) =
  (* max_int is 2^62 - 1: at most 3 limbs (78 bits) could overflow. *)
  let rec go i acc =
    if i < 0 then Some acc
    else if acc > (max_int - a.(i)) lsr limb_bits then None
    else go (i - 1) ((acc lsl limb_bits) lor a.(i))
  in
  go (Array.length a - 1) 0

let to_int a =
  match to_int_opt a with
  | Some n -> n
  | None -> failwith "Nat.to_int: overflow"

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = (if la > lb then la else lb) + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let s = get_limb a i + get_limb b i + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  r.(lr - 1) <- !carry;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Nat.sub: negative result";
  let la = Array.length a in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - get_limb b i - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  normalize r

let mul_int (a : t) (k : int) : t =
  if k < 0 || k >= base then invalid_arg "Nat.mul_int: multiplier out of range";
  if k = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * k) + !carry in
      r.(i) <- p land limb_mask;
      carry := p lsr limb_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

(* Schoolbook product of limb arrays; result length la+lb, unnormalised.
   Every slot of [r] read by the inner loop must already be masked to
   [limb_bits]: ai*b.(j) + r + carry then peaks at exactly 2^62-1.  The
   carry written past the inner loop therefore cannot be left unmasked
   (as it could at narrower limb widths) — its overflow bit goes one
   slot higher, which is virgin (zero) until the next outer iteration. *)
let mul_school (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let ai = Array.unsafe_get a i in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let p =
          (ai * Array.unsafe_get b j) + Array.unsafe_get r (i + j) + !carry
        in
        Array.unsafe_set r (i + j) (p land limb_mask);
        carry := p lsr limb_bits
      done;
      let s = Array.unsafe_get r (i + lb) + !carry in
      Array.unsafe_set r (i + lb) (s land limb_mask);
      if s lsr limb_bits <> 0 then
        (* Only reachable when i < la-1: the full product fits la+lb
           limbs, so the top slot's carry-out is always zero. *)
        Array.unsafe_set r (i + lb + 1)
          (Array.unsafe_get r (i + lb + 1) + (s lsr limb_bits))
    end
  done;
  r

let karatsuba_threshold = 32

let rec mul_limbs (a : int array) (b : int array) : int array =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_school a b
  else begin
    (* Karatsuba split at half of the longer operand. *)
    let m = (if la > lb then la else lb) / 2 in
    let lo x = if Array.length x <= m then Array.copy x else Array.sub x 0 m in
    let hi x =
      if Array.length x <= m then [||] else Array.sub x m (Array.length x - m)
    in
    let a0 = normalize (lo a) and a1 = normalize (hi a) in
    let b0 = normalize (lo b) and b1 = normalize (hi b) in
    let z0 = normalize (mul_limbs a0 b0) in
    let z2 = normalize (mul_limbs a1 b1) in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2 *)
      let s = mul_limbs (add a0 a1) (add b0 b1) in
      sub (sub (normalize s) z0) z2
    in
    let r = Array.make (la + lb + 1) 0 in
    let add_at (x : t) off =
      let carry = ref 0 in
      let lx = Array.length x in
      let i = ref 0 in
      while !i < lx || !carry <> 0 do
        let s = r.(off + !i) + (if !i < lx then x.(!i) else 0) + !carry in
        r.(off + !i) <- s land limb_mask;
        carry := s lsr limb_bits;
        incr i
      done
    in
    add_at z0 0;
    add_at z1 m;
    add_at z2 (2 * m);
    r
  end

let mul (a : t) (b : t) : t =
  if is_zero a || is_zero b then zero else normalize (mul_limbs a b)

let shift_left (a : t) bits : t =
  if bits < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land limb_mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right (a : t) bits : t =
  if bits < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || bits = 0 then a
  else begin
    let limb_shift = bits / limb_bits and bit_shift = bits mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land limb_mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let num_bits (a : t) =
  let la = Array.length a in
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let rec width w v = if v = 0 then w else width (w + 1) (v lsr 1) in
    ((la - 1) * limb_bits) + width 0 top
  end

let testbit (a : t) i =
  if i < 0 then invalid_arg "Nat.testbit";
  let limb = i / limb_bits and bit = i mod limb_bits in
  (get_limb a limb lsr bit) land 1 = 1

(* Knuth Algorithm D.  Normalises so the divisor's top limb >= base/2,
   then estimates each quotient limb from the top two/three limbs. *)
let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    (* Single-limb divisor: simple left-to-right division. *)
    let d = b.(0) in
    let la = Array.length a in
    let q = Array.make la 0 in
    let r = ref 0 in
    for i = la - 1 downto 0 do
      let cur = (!r lsl limb_bits) lor a.(i) in
      q.(i) <- cur / d;
      r := cur mod d
    done;
    (normalize q, of_int !r)
  end
  else begin
    (* Normalise: shift so divisor's msb limb has its top bit set. *)
    let shift =
      let top = b.(Array.length b - 1) in
      let rec go s v = if v land (base lsr 1) <> 0 then s else go (s + 1) (v lsl 1) in
      go 0 top
    in
    let u = shift_left a shift and v = shift_left b shift in
    let n = Array.length v in
    let m = Array.length u - n in
    (* Working copy of u with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let vn1 = v.(n - 1) in
    let vn2 = v.(n - 2) in
    let q = Array.make (m + 1) 0 in
    for j = m downto 0 do
      let top2 = (w.(j + n) lsl limb_bits) lor w.(j + n - 1) in
      let qhat = ref (top2 / vn1) in
      let rhat = ref (top2 mod vn1) in
      let adjust () =
        (* While qhat*vn2 > rhat*base + w[j+n-2], decrement qhat. *)
        while
          !qhat >= base
          || !qhat * vn2 > (!rhat lsl limb_bits) lor w.(j + n - 2)
        do
          decr qhat;
          rhat := !rhat + vn1;
          if !rhat >= base then begin
            (* rhat*base would overflow further comparisons only when
               rhat >= base, at which point qhat is certainly small
               enough. *)
            rhat := max_int lsr limb_bits (* force loop exit *)
          end
        done
      in
      adjust ();
      (* Multiply-subtract qhat*v from w[j .. j+n]. *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr limb_bits;
        let d = w.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          w.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          w.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add v back and decrement qhat. *)
        w.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = w.(i + j) + v.(i) + !c in
          w.(i + j) <- s land limb_mask;
          c := s lsr limb_bits
        done;
        w.(j + n) <- (w.(j + n) + !c) land limb_mask
      end
      else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r shift)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let of_bytes_be (s : string) : t =
  let len = String.length s in
  if len = 0 then zero
  else begin
    let nbits = len * 8 in
    let nlimbs = ((nbits + limb_bits - 1) / limb_bits) in
    let r = Array.make nlimbs 0 in
    (* Bit position of byte i (from the end) is (len-1-i)*8. *)
    for i = 0 to len - 1 do
      let byte = Char.code s.[i] in
      let bitpos = (len - 1 - i) * 8 in
      let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
      r.(limb) <- r.(limb) lor ((byte lsl off) land limb_mask);
      if off > limb_bits - 8 && limb + 1 < nlimbs then
        r.(limb + 1) <- r.(limb + 1) lor (byte lsr (limb_bits - off))
    done;
    normalize r
  end

let to_bytes_be (a : t) : string =
  let nbits = num_bits a in
  if nbits = 0 then ""
  else begin
    let len = (nbits + 7) / 8 in
    let buf = Bytes.make len '\000' in
    for i = 0 to len - 1 do
      let bitpos = (len - 1 - i) * 8 in
      let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
      let v =
        (get_limb a limb lsr off)
        lor
        (if off > limb_bits - 8 then get_limb a (limb + 1) lsl (limb_bits - off)
         else 0)
      in
      Bytes.set buf i (Char.chr (v land 0xff))
    done;
    Bytes.unsafe_to_string buf
  end

let to_bytes_be_padded len a =
  let s = to_bytes_be a in
  let sl = String.length s in
  if sl > len then invalid_arg "Nat.to_bytes_be_padded: too short";
  String.make (len - sl) '\000' ^ s

let of_hex (s : string) : t =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Nat.of_hex: bad digit"
  in
  let r = ref zero in
  String.iter (fun c -> r := add (shift_left !r 4) (of_int (digit c))) s;
  !r

let to_hex (a : t) : string =
  if is_zero a then "0"
  else begin
    let nbits = num_bits a in
    let ndigits = (nbits + 3) / 4 in
    let buf = Bytes.create ndigits in
    for i = 0 to ndigits - 1 do
      let bitpos = (ndigits - 1 - i) * 4 in
      let limb = bitpos / limb_bits and off = bitpos mod limb_bits in
      let v =
        (get_limb a limb lsr off)
        lor
        (if off > limb_bits - 4 then get_limb a (limb + 1) lsl (limb_bits - off)
         else 0)
      in
      Bytes.set buf i "0123456789abcdef".[v land 0xf]
    done;
    Bytes.unsafe_to_string buf
  end

let of_decimal (s : string) : t =
  if s = "" then invalid_arg "Nat.of_decimal: empty";
  let r = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          r := add (mul_int !r 10) (of_int (Char.code c - Char.code '0'))
      | _ -> invalid_arg "Nat.of_decimal: bad digit")
    s;
  !r

let to_decimal (a : t) : string =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let ten = of_int 10 in
    let rec go n =
      if not (is_zero n) then begin
        let q, r = divmod n ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int r))
      end
    in
    go a;
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_decimal a)
