type byte_source = int -> string

let small_primes =
  (* Sieve of Eratosthenes below 1000. *)
  let limit = 1000 in
  let sieve = Array.make (limit + 1) true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  let i = ref 2 in
  while !i * !i <= limit do
    if sieve.(!i) then begin
      let j = ref (!i * !i) in
      while !j <= limit do
        sieve.(!j) <- false;
        j := !j + !i
      done
    end;
    incr i
  done;
  let out = ref [] in
  for k = limit downto 2 do
    if sieve.(k) then out := k :: !out
  done;
  Array.of_list !out

let random_bits src k =
  if k <= 0 then Nat.zero
  else begin
    let nbytes = (k + 7) / 8 in
    let s = Bytes.of_string (src nbytes) in
    let extra = (nbytes * 8) - k in
    if extra > 0 then begin
      let b = Char.code (Bytes.get s 0) in
      Bytes.set s 0 (Char.chr (b land (0xff lsr extra)))
    end;
    Nat.of_bytes_be (Bytes.unsafe_to_string s)
  end

let random_below src n =
  if Nat.is_zero n then invalid_arg "Prime.random_below: zero bound";
  let k = Nat.num_bits n in
  let rec draw () =
    let x = random_bits src k in
    if Nat.compare x n < 0 then x else draw ()
  in
  draw ()

(* One Miller-Rabin round with base [a] on odd [n] = d * 2^s + 1. *)
let mr_round mont n_minus_1 d s a =
  let x = ref (Zmod.Montgomery.pow mont a d) in
  if Nat.is_one !x || Nat.equal !x n_minus_1 then true
  else begin
    let witness = ref true in
    (let r = ref 1 in
     while !witness && !r < s do
       x := Zmod.Montgomery.pow mont !x Nat.two;
       if Nat.equal !x n_minus_1 then witness := false;
       incr r
     done);
    not !witness
  end

let is_probably_prime ?(rounds = 20) src n =
  if Nat.compare n Nat.two < 0 then false
  else if Nat.equal n Nat.two then true
  else if Nat.is_even n then false
  else begin
    match Nat.to_int_opt n with
    | Some v when v < 1_000_000 ->
        (* Exact trial division for small inputs. *)
        let rec go i =
          if i >= Array.length small_primes then
            (* all small primes tried; for v < 10^6 sqrt(v) < 1000 *)
            true
          else
            let p = small_primes.(i) in
            if p * p > v then true
            else if v mod p = 0 then v = p
            else go (i + 1)
        in
        go 0
    | _ ->
        let divisible =
          Array.exists
            (fun p -> Nat.is_zero (Nat.rem n (Nat.of_int p)))
            small_primes
        in
        if divisible then false
        else begin
          let n_minus_1 = Nat.sub n Nat.one in
          (* n-1 = d * 2^s with d odd *)
          let rec split d s =
            if Nat.is_even d then split (Nat.shift_right d 1) (s + 1)
            else (d, s)
          in
          let d, s = split n_minus_1 0 in
          let mont = Zmod.Montgomery.create n in
          let n_minus_3 = Nat.sub n (Nat.of_int 3) in
          let rec rounds_ok i =
            if i >= rounds then true
            else begin
              (* base in [2, n-2] *)
              let a = Nat.add (random_below src n_minus_3) Nat.two in
              if mr_round mont n_minus_1 d s a then rounds_ok (i + 1)
              else false
            end
          in
          rounds_ok 0
        end
  end

let generate src ~bits =
  if bits < 8 then invalid_arg "Prime.generate: need at least 8 bits";
  let top_two =
    Nat.add
      (Nat.shift_left Nat.one (bits - 1))
      (Nat.shift_left Nat.one (bits - 2))
  in
  let rec attempt () =
    let candidate =
      let r = random_bits src (bits - 2) in
      let c = Nat.add top_two r in
      if Nat.is_even c then Nat.add c Nat.one else c
    in
    (* March forward in steps of 2 for a while before redrawing, to
       amortise the random draw. *)
    let rec march c tries =
      if tries = 0 then attempt ()
      else if Nat.num_bits c <> bits then attempt ()
      else if is_probably_prime src c then c
      else march (Nat.add c Nat.two) (tries - 1)
    in
    march candidate 64
  in
  attempt ()
