(** Modular arithmetic over {!Nat.t}.

    Provides the number-theoretic operations RSA needs: GCD, modular
    inverse, and modular exponentiation.  Exponentiation over odd
    moduli uses Montgomery multiplication (CIOS); even moduli fall
    back to division-based reduction. *)

val gcd : Nat.t -> Nat.t -> Nat.t
(** Greatest common divisor; [gcd 0 b = b]. *)

val modinv : Nat.t -> Nat.t -> Nat.t option
(** [modinv a m] is [Some x] with [a*x = 1 (mod m)] when
    [gcd a m = 1], and [None] otherwise.
    @raise Invalid_argument if [m <= 1]. *)

val modpow : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [modpow b e m] is [b^e mod m].  Odd moduli use the windowed
    Montgomery ladder ({!Montgomery.pow}); even moduli fall back to
    {!modpow_naive}.
    @raise Invalid_argument if [m] is zero. *)

val modpow_naive : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** Division-based right-to-left square-and-multiply.  Works for any
    modulus (including even); slow — kept as the property-test oracle
    for the Montgomery ladders and as the even-modulus fallback.
    [modpow_naive b e 0] loops on [Nat.rem _ 0]; callers guard [m]. *)

val mod_mul : Nat.t -> Nat.t -> Nat.t -> Nat.t
(** [mod_mul a b m = (a*b) mod m]. *)

(** Reusable Montgomery context for repeated exponentiation modulo the
    same odd modulus (used by RSA-CRT signing on hot paths). *)
module Montgomery : sig
  type ctx

  val create : Nat.t -> ctx
  (** @raise Invalid_argument if the modulus is even or [<= 1]. *)

  val modulus : ctx -> Nat.t

  val pow : ctx -> Nat.t -> Nat.t -> Nat.t
  (** [pow ctx b e = b^e mod (modulus ctx)] via a 2^k-ary
      fixed-window ladder (k picked from [e]'s bit length, up to 5:
      [2^k - 1] precomputed multiples, then k squarings and at most
      one multiply per window). *)

  val pow_binary : ctx -> Nat.t -> Nat.t -> Nat.t
  (** Reference left-to-right binary square-and-multiply.  Same
      results as {!pow}; kept as oracle and benchmark baseline. *)
end
