(* Per-connection authenticated sessions.

   The handshake is a challenge–response bootstrapped from the PKI:

     client -> Hello { name; client_nonce }          (clear)
     server -> Challenge { server_nonce }            (clear)
     client -> Auth { signature }                    (clear)
     server -> Auth_ok                               (sealed)

   where [signature] is the client's RSA signature (the same key its
   PKI certificate binds) over the handshake transcript.  Both sides
   then derive a symmetric HMAC-SHA256 session key from the transcript
   and the signature; every subsequent frame in either direction is
   sealed: tag · message, with the tag covering direction, a
   per-direction sequence number, and the message bytes — so frames
   cannot be forged, replayed, reordered, or reflected back.

   The server proves knowledge of the key implicitly: its Auth_ok (and
   every later response) carries a valid tag, which only a party that
   verified the signature against the registered certificate can
   compute. *)

open Tep_crypto

let nonce_len = 16
let tag_len = 32 (* HMAC-SHA256 *)

(* Length-prefixed so no field boundary ambiguity exists between
   distinct (name, nonce, nonce) triples. *)
let transcript ~name ~client_nonce ~server_nonce =
  let buf = Buffer.create 80 in
  Buffer.add_string buf "tep-wire-auth-v1";
  Tep_store.Value.add_string buf name;
  Tep_store.Value.add_string buf client_nonce;
  Tep_store.Value.add_string buf server_nonce;
  Buffer.contents buf

let derive_key ~transcript ~signature =
  let ctx = Sha256.init () in
  Sha256.update ctx "tep-wire-key-v1";
  Sha256.update ctx transcript;
  Sha256.update ctx signature;
  Sha256.final ctx

type direction = To_server | To_client

let dir_byte = function To_server -> '>' | To_client -> '<'

let tag ~key ~dir ~seq msg =
  let buf = Buffer.create (String.length msg + 12) in
  Buffer.add_char buf (dir_byte dir);
  Tep_store.Value.add_varint buf seq;
  Buffer.add_string buf msg;
  Hmac.mac ~algo:Digest_algo.SHA256 ~key (Buffer.contents buf)

let seal ~key ~dir ~seq msg = tag ~key ~dir ~seq msg ^ msg

let open_ ~key ~dir ~seq payload =
  if String.length payload < tag_len then Error "sealed frame too short"
  else begin
    let received = String.sub payload 0 tag_len in
    let msg = String.sub payload tag_len (String.length payload - tag_len) in
    if Hmac.equal_constant_time received (tag ~key ~dir ~seq msg) then Ok msg
    else Error "authentication tag mismatch"
  end
