(* Per-connection authenticated sessions.

   The handshake combines a PKI challenge–response with RSA key
   transport, so the session key is never computable from bytes that
   cross the wire:

     client -> Hello { name; client_nonce }            (clear)
     server -> Challenge { server_nonce }              (clear)
     client -> Auth { signature; key_share }           (clear)
     server -> Auth_ok                                 (sealed)

   The client draws a random secret, encrypts it to the participant's
   certificate key ([key_share], RSAES-PKCS1-v1_5) and signs the
   transcript — which includes the ciphertext — with the same RSA key
   its PKI certificate binds.  Both sides derive a symmetric
   HMAC-SHA256 session key from the transcript, the signature and the
   *plaintext* secret; every subsequent frame in either direction is
   sealed: tag · message, with the tag covering direction, a
   per-direction sequence number, and the message bytes — so frames
   cannot be forged, replayed, reordered, or reflected back.

   Why this resists an on-path attacker, not just a blind one:

   - An eavesdropper sees name, nonces, signature and ciphertext, but
     the key also hashes in the decrypted secret, which only holders
     of the participant's private key can recover.
   - The server authenticates the client by verifying the transcript
     signature against the registered certificate — and it does so
     *before* decrypting, so the decryptor never runs on a ciphertext
     the key holder did not sign (no padding oracle, no malleability).
   - The client authenticates the server by the sealed Auth_ok (and
     every later response): a valid tag proves the peer decrypted the
     key share, i.e. holds the workspace copy of the participant's
     private key.  A man in the middle can neither sign (to the
     server) nor decrypt (to the client).

   Freshness comes from both nonces being bound into the transcript:
   a replayed Auth fails against a fresh server nonce. *)

open Tep_crypto

let nonce_len = 16
let key_share_len = 32 (* the transported session-key secret *)
let tag_len = 32 (* HMAC-SHA256 *)

(* Length-prefixed so no field boundary ambiguity exists between
   distinct (name, nonce, nonce, share) tuples. *)
let transcript ~name ~client_nonce ~server_nonce ~key_share =
  let buf = Buffer.create 160 in
  Buffer.add_string buf "tep-wire-auth-v2";
  Tep_store.Value.add_string buf name;
  Tep_store.Value.add_string buf client_nonce;
  Tep_store.Value.add_string buf server_nonce;
  Tep_store.Value.add_string buf key_share;
  Buffer.contents buf

let derive_key ~transcript ~signature ~secret =
  let ctx = Sha256.init () in
  Sha256.update ctx "tep-wire-key-v2";
  Sha256.update ctx transcript;
  Sha256.update ctx signature;
  Sha256.update ctx secret;
  Sha256.final ctx

type direction = To_server | To_client

let dir_byte = function To_server -> '>' | To_client -> '<'

(* A session seals every frame under one key; precomputing the HMAC
   key schedule once (per {!Hmac.context}) removes the per-frame
   pad-and-xor.  The direction byte is part of the MACed content, so
   one keyed context serves both directions. *)
type keyed = Hmac.ctx

let keyed ~key = Hmac.context ~algo:Digest_algo.SHA256 ~key

let tag_input ~dir ~seq msg =
  let buf = Buffer.create (String.length msg + 12) in
  Buffer.add_char buf (dir_byte dir);
  Tep_store.Value.add_varint buf seq;
  Buffer.add_string buf msg;
  Buffer.contents buf

let tag_keyed ctx ~dir ~seq msg = Hmac.mac_with ctx (tag_input ~dir ~seq msg)

let tag ~key ~dir ~seq msg = tag_keyed (keyed ~key) ~dir ~seq msg

let seal_keyed ctx ~dir ~seq msg = tag_keyed ctx ~dir ~seq msg ^ msg

let seal ~key ~dir ~seq msg = seal_keyed (keyed ~key) ~dir ~seq msg

let open_keyed ctx ~dir ~seq payload =
  if String.length payload < tag_len then Error "sealed frame too short"
  else begin
    let received = String.sub payload 0 tag_len in
    let msg = String.sub payload tag_len (String.length payload - tag_len) in
    if Hmac.equal_constant_time received (tag_keyed ctx ~dir ~seq msg) then
      Ok msg
    else Error "authentication tag mismatch"
  end

let open_ ~key ~dir ~seq payload = open_keyed (keyed ~key) ~dir ~seq payload
