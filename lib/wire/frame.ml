(* Versioned, length-prefixed binary framing for the provenance
   service.  Reuses the WAL v2 idioms (explicit length, CRC32 trailer,
   reject-don't-trust parsing) but with a fixed-size header so a
   socket reader always knows how many bytes it still needs:

     frame := magic "TW1" (3B) · kind (1B) · len (4B BE)
              · payload (len B) · crc32 (4B BE)

   The CRC covers header · payload (streamed, via the Crc32 ctx
   interface).  [parse] never raises: it reports how many more bytes
   it needs, a complete frame, an oversized declaration, or
   corruption.  A corrupt frame poisons the connection — unlike the
   WAL there is no re-synchronisation scan; the peer is live and can
   simply reconnect. *)

let magic = "TW1"
let header_len = 8 (* magic + kind + len *)
let trailer_len = 4
let overhead = header_len + trailer_len

(* Anything larger than this is a corrupt length or an abusive peer,
   not a frame worth buffering. *)
let default_max_payload = 1 lsl 24

type kind =
  | Clear (* handshake: hello / challenge / auth *)
  | Sealed (* authenticated: HMAC tag · message *)

let kind_byte = function Clear -> 'C' | Sealed -> 'S'
let kind_of_byte = function 'C' -> Some Clear | 'S' -> Some Sealed | _ -> None

let add_be32 buf n =
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (n land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode buf ~kind payload =
  let start = Buffer.length buf in
  Buffer.add_string buf magic;
  Buffer.add_char buf (kind_byte kind);
  add_be32 buf (String.length payload);
  Buffer.add_string buf payload;
  let crc = Tep_crypto.Crc32.init () in
  (* header and payload are fed separately: the streaming interface
     means no header·payload concatenation is ever materialised *)
  Tep_crypto.Crc32.feed_sub crc (Buffer.contents buf) start header_len;
  Tep_crypto.Crc32.feed crc payload;
  add_be32 buf (Tep_crypto.Crc32.finalize crc)

let to_string ~kind payload =
  let buf = Buffer.create (String.length payload + overhead) in
  encode buf ~kind payload;
  Buffer.contents buf

type parse =
  | Need_more of int (* at least this many further bytes *)
  | Frame of { kind : kind; payload : string; consumed : int }
  | Oversized of int (* declared payload length *)
  | Corrupt of string

let parse ?(max_payload = default_max_payload) s off =
  let avail = String.length s - off in
  if avail < header_len then Need_more (header_len - avail)
  else if String.sub s off 3 <> magic then Corrupt "bad magic"
  else
    match kind_of_byte s.[off + 3] with
    | None -> Corrupt (Printf.sprintf "bad frame kind %#x" (Char.code s.[off + 3]))
    | Some kind ->
        let len = read_be32 s (off + 4) in
        if len > max_payload then Oversized len
        else if avail < overhead + len then Need_more (overhead + len - avail)
        else begin
          let stored = read_be32 s (off + header_len + len) in
          let crc = Tep_crypto.Crc32.init () in
          Tep_crypto.Crc32.feed_sub crc s off (header_len + len);
          if Tep_crypto.Crc32.finalize crc <> stored then
            Corrupt "frame checksum mismatch"
          else
            Frame
              {
                kind;
                payload = String.sub s (off + header_len) len;
                consumed = overhead + len;
              }
        end
