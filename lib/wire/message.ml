(* Request/response codecs for the provenance service.

   Same codec discipline as the rest of the tree: a tag byte, then
   varint/length-prefixed fields via {!Tep_store.Value}; decoders
   raise [Failure]/[Invalid_argument] on malformed input and are
   fuzzed alongside every other decoder (test/test_fuzz.ml,
   test/test_wire.ml). *)

open Tep_store
open Tep_tree
open Tep_core

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_insert of { table : string; cells : Value.t array }
  | Op_update of { table : string; row : int; col : int; value : Value.t }
  | Op_delete of { table : string; row : int }
  | Op_aggregate of { inputs : Oid.t list; value : Value.t }

type request =
  | Hello of { name : string; nonce : string }
  | Auth of { signature : string; key_share : string }
      (* key_share: the session-key secret, RSA-encrypted to the
         participant's certificate key; covered by [signature] *)
  | Submit of op
  | Query of Oid.t option (* None: the database root *)
  | Verify of Oid.t option (* None: root object + whole-store audit *)
  | Audit
  | Checkpoint
  | Root_hash
  | Stats (* group-commit batcher counters *)
  (* -- v3 additions.  A v3 encoder only emits the new tags when the
     new fields are actually used, so a stream produced by a v2 peer
     decodes unchanged and a v3 peer talking to itself is free to use
     them.  [rid] is a client-generated request id: the server keeps a
     bounded dedup table of completed writes, so a retried submit or
     checkpoint (same rid, e.g. after a dropped connection) returns
     the original cached result instead of executing twice. *)
  | Submit_idem of { rid : string; op : op }
  | Checkpoint_idem of { rid : string }
  | Ping (* readiness/health probe; never shed, never queued *)
  (* -- v4 addition, same new-tags-only discipline as v3: per-shard
     observability for sharded deployments.  A single-shard server
     answers with one entry, so v3 clients simply never ask. *)
  | Shard_stats
  (* -- v5 additions: the lineage engine.  Polynomials and annotations
     travel as opaque canonical byte strings (Tep_prov encodes and
     decodes them), so the wire layer stays independent of the
     provenance-polynomial library. *)
  | Lineage of { kind : lineage_kind; oid : Oid.t }
  | Annotated_query of { table : string; where : string; agg : string }
      (* [where]: predicate text (Query.pred_of_string syntax; "" =
         all rows).  [agg]: aggregate text (Query.agg_of_string; "" =
         plain select). *)
  (* -- v6 additions: sub-linear remote verification.  [Prove] asks
     for Merkle membership proofs of one cell (or, with [col = None],
     every cell of a row) under the published root; the proofs
     themselves travel as opaque encoded byte strings (Tep_tree.Proof
     encodes and decodes them) so this layer stays independent of
     proof verification.  [Audit_sample] runs a seed-reproducible
     DRBG-sampled α-fraction audit server-side; α travels in parts
     per million so the wire needs no floats. *)
  | Prove of { table : string; row : int; col : int option }
  | Audit_sample of { seed : string; alpha_ppm : int }

and lineage_kind = L_why | L_inputs | L_depth | L_impact

(* One shard's counters: its group-commit batcher plus the server-side
   root-cache behaviour (a write to shard k must invalidate only shard
   k's cached root — recomputes/hits make that observable). *)
type shard_stat = {
  ss_batches : int;
  ss_ops : int;
  ss_queued : int; (* submit ops sitting in this shard's batcher queue *)
  ss_root_recomputes : int; (* root-cache misses: engine root rehashed *)
  ss_root_hits : int; (* root served from the per-shard cache *)
  (* -- v6: proof-path observability.  A write to shard k must
     invalidate only shard k's hot leaf→root proof cache — the
     hit/miss split makes that observable remotely. *)
  ss_proofs_served : int; (* membership proofs built or replayed *)
  ss_proof_cache_hits : int; (* proofs answered from the LRU path cache *)
  ss_proof_cache_misses : int; (* proofs rebuilt off the Merkle cache *)
  ss_proof_bytes : int; (* cumulative encoded proof bytes served *)
}

(* A verifier report flattened for the wire: violations travel as
   their rendered strings, so the client can reproduce the server's
   report rendering byte-for-byte (see {!render_report}). *)
type report = {
  rp_records : int;
  rp_objects : int;
  rp_signatures : int;
  rp_violations : string list;
}

type error_code =
  | Auth_required
  | Auth_failed
  | Bad_request
  | Not_found
  | Too_large
  | Failed
  | Wal_failed
      (* the group-commit batcher could not make the batch durable
         (WAL append/flush error); nothing was committed — retrying
         the same rid re-executes *)
  | Shutting_down
      (* the server is draining: it will not accept new writes, and
         unlike Overloaded there is no point retrying this endpoint *)

type response =
  | Challenge of { nonce : string }
  | Auth_ok of { server : string }
  | Submitted of { row : int option; oid : Oid.t option; records : int }
  | Records of Record.t list
  | Verified of { report : report; store_audit : report option }
  | Audited of { report : report; examined : int; objects : int }
  | Checkpointed of { generation : int; lsn : int }
  | Root of { hash : string }
  | Stats_resp of {
      batches : int;
      ops : int;
      sign_wall_us : int; (* wall-clock µs inside commit signing stages *)
      sign_cpu_us : int; (* cumulative per-signature µs across domains *)
    }
  | Pong of {
      ready : bool; (* accepting writes (false once draining) *)
      draining : bool;
      active : int; (* concurrent socket connections *)
      queued_ops : int; (* submit ops sitting in the batcher queue *)
      batches : int;
      ops : int;
      dedup_hits : int; (* retried writes answered from the dedup table *)
      wal_failures : int; (* batches voided by WAL append/flush errors *)
      shed : int; (* ops refused by admission control *)
      reaped : int; (* v7: connections closed by the idle reaper *)
    }
  | Overloaded_resp of { retry_after_ms : int; message : string }
      (* typed overload shed: admission control refused the request
         before any execution; the client should back off at least
         [retry_after_ms] before retrying (same rid is safe) *)
  | Shard_stats_resp of shard_stat list (* one entry per shard, in shard order *)
  (* -- v5: lineage answers.  [poly] is a canonically-encoded
     provenance polynomial; [annot] a canonically-encoded signed
     annotation (both opaque here). *)
  | Lineage_resp of { poly : string; depth : int; oids : Oid.t list }
  | Annotated_resp of {
      arows : (int * Value.t array * string) list;
          (* (row variable, cells, encoded polynomial) per result row *)
      avalue : Value.t option; (* aggregate value, when one was asked *)
      annot : string; (* the server-signed annotation over the result *)
    }
  (* -- v6: proof answers.  [shard] is the owning shard's index and
     [shard_roots] every shard's engine root in shard order, so the
     client can chain each membership proof through the shard layer
     (engine root → root-of-roots) to the one hash it already trusts.
     Each item is (opaque encoded Proof.t, that leaf's provenance
     records) — the client recomputes everything locally and believes
     none of it a priori. *)
  | Proof_resp of {
      shard : int;
      shard_roots : string list;
      items : (string * Record.t list) list;
    }
  | Audit_sample_resp of { report : report; sampled : int; population : int }
  | Error_resp of { code : error_code; message : string }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let report_of_verifier (r : Verifier.report) =
  {
    rp_records = r.Verifier.records_checked;
    rp_objects = r.Verifier.objects_checked;
    rp_signatures = r.Verifier.signatures_checked;
    rp_violations = List.map Verifier.violation_to_string r.Verifier.violations;
  }

let report_ok r = r.rp_violations = []

(* Byte-identical to [Format.asprintf "%a" Verifier.pp_report] on the
   report this was built from — the acceptance bar for remote
   verification. *)
let render_report r =
  if report_ok r then
    Printf.sprintf "VERIFIED: %d records, %d objects, %d signatures checked"
      r.rp_records r.rp_objects r.rp_signatures
  else begin
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "TAMPERING DETECTED (%d violations):\n"
         (List.length r.rp_violations));
    List.iter
      (fun v -> Buffer.add_string buf ("  - " ^ v ^ "\n"))
      r.rp_violations;
    Buffer.contents buf
  end

let error_code_name = function
  | Auth_required -> "auth-required"
  | Auth_failed -> "auth-failed"
  | Bad_request -> "bad-request"
  | Not_found -> "not-found"
  | Too_large -> "too-large"
  | Failed -> "failed"
  | Wal_failed -> "wal-failed"
  | Shutting_down -> "shutting-down"

(* ------------------------------------------------------------------ *)
(* Codec helpers                                                       *)
(* ------------------------------------------------------------------ *)

let add_oid buf oid = Value.add_varint buf (Oid.to_int oid)

let read_oid s off =
  let n, off = Value.read_varint s off in
  (Oid.of_int n, off)

let add_oid_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some oid ->
      Buffer.add_char buf '\x01';
      add_oid buf oid

let read_oid_opt s off =
  if off >= String.length s then failwith "Message: truncated option"
  else
    match s.[off] with
    | '\x00' -> (None, off + 1)
    | '\x01' ->
        let oid, off = read_oid s (off + 1) in
        (Some oid, off)
    | _ -> failwith "Message: bad option tag"

let add_report buf r =
  Value.add_varint buf r.rp_records;
  Value.add_varint buf r.rp_objects;
  Value.add_varint buf r.rp_signatures;
  Value.add_varint buf (List.length r.rp_violations);
  List.iter (Value.add_string buf) r.rp_violations

let read_report s off =
  let rp_records, off = Value.read_varint s off in
  let rp_objects, off = Value.read_varint s off in
  let rp_signatures, off = Value.read_varint s off in
  let n, off = Value.read_varint s off in
  let off = ref off in
  let rp_violations =
    List.init n (fun _ ->
        let v, o = Value.read_string s !off in
        off := o;
        v)
  in
  ({ rp_records; rp_objects; rp_signatures; rp_violations }, !off)

let add_cells buf cells =
  Value.add_varint buf (Array.length cells);
  Array.iter (Value.encode buf) cells

let read_cells s off =
  let n, off = Value.read_varint s off in
  let off = ref off in
  let cells =
    Array.init n (fun _ ->
        let v, o = Value.decode s !off in
        off := o;
        v)
  in
  (cells, !off)

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

let lineage_kind_tag = function
  | L_why -> '\x01'
  | L_inputs -> '\x02'
  | L_depth -> '\x03'
  | L_impact -> '\x04'

let lineage_kind_of_tag = function
  | '\x01' -> L_why
  | '\x02' -> L_inputs
  | '\x03' -> L_depth
  | '\x04' -> L_impact
  | c -> failwith (Printf.sprintf "Message: bad lineage kind %#x" (Char.code c))

let lineage_kind_name = function
  | L_why -> "why"
  | L_inputs -> "inputs"
  | L_depth -> "depth"
  | L_impact -> "impact"

let lineage_kind_of_name s =
  match String.lowercase_ascii s with
  | "why" -> Some L_why
  | "inputs" | "which-inputs" -> Some L_inputs
  | "depth" -> Some L_depth
  | "impact" -> Some L_impact
  | _ -> None

let encode_op buf = function
  | Op_insert { table; cells } ->
      Buffer.add_char buf '\x01';
      Value.add_string buf table;
      add_cells buf cells
  | Op_update { table; row; col; value } ->
      Buffer.add_char buf '\x02';
      Value.add_string buf table;
      Value.add_varint buf row;
      Value.add_varint buf col;
      Value.encode buf value
  | Op_delete { table; row } ->
      Buffer.add_char buf '\x03';
      Value.add_string buf table;
      Value.add_varint buf row
  | Op_aggregate { inputs; value } ->
      Buffer.add_char buf '\x04';
      Value.add_varint buf (List.length inputs);
      List.iter (add_oid buf) inputs;
      Value.encode buf value

let decode_op s off =
  if off >= String.length s then failwith "Message: truncated op";
  match s.[off] with
  | '\x01' ->
      let table, off = Value.read_string s (off + 1) in
      let cells, off = read_cells s off in
      (Op_insert { table; cells }, off)
  | '\x02' ->
      let table, off = Value.read_string s (off + 1) in
      let row, off = Value.read_varint s off in
      let col, off = Value.read_varint s off in
      let value, off = Value.decode s off in
      (Op_update { table; row; col; value }, off)
  | '\x03' ->
      let table, off = Value.read_string s (off + 1) in
      let row, off = Value.read_varint s off in
      (Op_delete { table; row }, off)
  | '\x04' ->
      let n, off = Value.read_varint s (off + 1) in
      let off = ref off in
      let inputs =
        List.init n (fun _ ->
            let oid, o = read_oid s !off in
            off := o;
            oid)
      in
      let value, o = Value.decode s !off in
      (Op_aggregate { inputs; value }, o)
  | c -> failwith (Printf.sprintf "Message: bad op tag %#x" (Char.code c))

let encode_request buf = function
  | Hello { name; nonce } ->
      Buffer.add_char buf '\x01';
      Value.add_string buf name;
      Value.add_string buf nonce
  | Auth { signature; key_share } ->
      Buffer.add_char buf '\x02';
      Value.add_string buf signature;
      Value.add_string buf key_share
  | Submit op ->
      Buffer.add_char buf '\x03';
      encode_op buf op
  | Query oid ->
      Buffer.add_char buf '\x04';
      add_oid_opt buf oid
  | Verify oid ->
      Buffer.add_char buf '\x05';
      add_oid_opt buf oid
  | Audit -> Buffer.add_char buf '\x06'
  | Checkpoint -> Buffer.add_char buf '\x07'
  | Root_hash -> Buffer.add_char buf '\x08'
  | Stats -> Buffer.add_char buf '\x09'
  | Submit_idem { rid; op } ->
      Buffer.add_char buf '\x0a';
      Value.add_string buf rid;
      encode_op buf op
  | Checkpoint_idem { rid } ->
      Buffer.add_char buf '\x0b';
      Value.add_string buf rid
  | Ping -> Buffer.add_char buf '\x0c'
  | Shard_stats -> Buffer.add_char buf '\x0d'
  | Lineage { kind; oid } ->
      Buffer.add_char buf '\x0e';
      Buffer.add_char buf (lineage_kind_tag kind);
      add_oid buf oid
  | Annotated_query { table; where; agg } ->
      Buffer.add_char buf '\x0f';
      Value.add_string buf table;
      Value.add_string buf where;
      Value.add_string buf agg
  | Prove { table; row; col } ->
      Buffer.add_char buf '\x10';
      Value.add_string buf table;
      Value.add_varint buf row;
      (match col with
      | None -> Buffer.add_char buf '\x00'
      | Some c ->
          Buffer.add_char buf '\x01';
          Value.add_varint buf c)
  | Audit_sample { seed; alpha_ppm } ->
      Buffer.add_char buf '\x11';
      Value.add_string buf seed;
      Value.add_varint buf alpha_ppm

let decode_request s off =
  if off >= String.length s then failwith "Message: empty request";
  match s.[off] with
  | '\x01' ->
      let name, off = Value.read_string s (off + 1) in
      let nonce, off = Value.read_string s off in
      (Hello { name; nonce }, off)
  | '\x02' ->
      let signature, off = Value.read_string s (off + 1) in
      let key_share, off = Value.read_string s off in
      (Auth { signature; key_share }, off)
  | '\x03' ->
      let op, off = decode_op s (off + 1) in
      (Submit op, off)
  | '\x04' ->
      let oid, off = read_oid_opt s (off + 1) in
      (Query oid, off)
  | '\x05' ->
      let oid, off = read_oid_opt s (off + 1) in
      (Verify oid, off)
  | '\x06' -> (Audit, off + 1)
  | '\x07' -> (Checkpoint, off + 1)
  | '\x08' -> (Root_hash, off + 1)
  | '\x09' -> (Stats, off + 1)
  | '\x0a' ->
      let rid, off = Value.read_string s (off + 1) in
      let op, off = decode_op s off in
      (Submit_idem { rid; op }, off)
  | '\x0b' ->
      let rid, off = Value.read_string s (off + 1) in
      (Checkpoint_idem { rid }, off)
  | '\x0c' -> (Ping, off + 1)
  | '\x0d' -> (Shard_stats, off + 1)
  | '\x0e' ->
      if off + 1 >= String.length s then failwith "Message: truncated lineage";
      let kind = lineage_kind_of_tag s.[off + 1] in
      let oid, off = read_oid s (off + 2) in
      (Lineage { kind; oid }, off)
  | '\x0f' ->
      let table, off = Value.read_string s (off + 1) in
      let where, off = Value.read_string s off in
      let agg, off = Value.read_string s off in
      (Annotated_query { table; where; agg }, off)
  | '\x10' ->
      let table, off = Value.read_string s (off + 1) in
      let row, off = Value.read_varint s off in
      if off >= String.length s then failwith "Message: truncated option";
      let col, off =
        match s.[off] with
        | '\x00' -> (None, off + 1)
        | '\x01' ->
            let c, o = Value.read_varint s (off + 1) in
            (Some c, o)
        | _ -> failwith "Message: bad option tag"
      in
      (Prove { table; row; col }, off)
  | '\x11' ->
      let seed, off = Value.read_string s (off + 1) in
      let alpha_ppm, off = Value.read_varint s off in
      (Audit_sample { seed; alpha_ppm }, off)
  | c -> failwith (Printf.sprintf "Message: bad request tag %#x" (Char.code c))

let request_to_string r =
  let buf = Buffer.create 64 in
  encode_request buf r;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

let error_code_tag = function
  | Auth_required -> 0
  | Auth_failed -> 1
  | Bad_request -> 2
  | Not_found -> 3
  | Too_large -> 4
  | Failed -> 5
  | Wal_failed -> 6
  | Shutting_down -> 7

let error_code_of_tag = function
  | 0 -> Auth_required
  | 1 -> Auth_failed
  | 2 -> Bad_request
  | 3 -> Not_found
  | 4 -> Too_large
  | 5 -> Failed
  | 6 -> Wal_failed
  | 7 -> Shutting_down
  | n -> failwith (Printf.sprintf "Message: bad error code %d" n)

let encode_response buf = function
  | Challenge { nonce } ->
      Buffer.add_char buf '\x81';
      Value.add_string buf nonce
  | Auth_ok { server } ->
      Buffer.add_char buf '\x82';
      Value.add_string buf server
  | Submitted { row; oid; records } ->
      Buffer.add_char buf '\x83';
      (match row with
      | None -> Buffer.add_char buf '\x00'
      | Some r ->
          Buffer.add_char buf '\x01';
          Value.add_varint buf r);
      add_oid_opt buf oid;
      Value.add_varint buf records
  | Records records ->
      Buffer.add_char buf '\x84';
      Value.add_varint buf (List.length records);
      List.iter (Record.encode buf) records
  | Verified { report; store_audit } ->
      Buffer.add_char buf '\x85';
      add_report buf report;
      (match store_audit with
      | None -> Buffer.add_char buf '\x00'
      | Some a ->
          Buffer.add_char buf '\x01';
          add_report buf a)
  | Audited { report; examined; objects } ->
      Buffer.add_char buf '\x86';
      add_report buf report;
      Value.add_varint buf examined;
      Value.add_varint buf objects
  | Checkpointed { generation; lsn } ->
      Buffer.add_char buf '\x87';
      Value.add_varint buf generation;
      Value.add_varint buf (lsn + 1) (* lsn >= -1 *)
  | Root { hash } ->
      Buffer.add_char buf '\x88';
      Value.add_string buf hash
  | Stats_resp { batches; ops; sign_wall_us; sign_cpu_us } ->
      Buffer.add_char buf '\x89';
      Value.add_varint buf batches;
      Value.add_varint buf ops;
      Value.add_varint buf sign_wall_us;
      Value.add_varint buf sign_cpu_us
  | Pong
      {
        ready;
        draining;
        active;
        queued_ops;
        batches;
        ops;
        dedup_hits;
        wal_failures;
        shed;
        reaped;
      } ->
      Buffer.add_char buf '\x8a';
      Buffer.add_char buf (if ready then '\x01' else '\x00');
      Buffer.add_char buf (if draining then '\x01' else '\x00');
      Value.add_varint buf active;
      Value.add_varint buf queued_ops;
      Value.add_varint buf batches;
      Value.add_varint buf ops;
      Value.add_varint buf dedup_hits;
      Value.add_varint buf wal_failures;
      Value.add_varint buf shed;
      Value.add_varint buf reaped
  | Overloaded_resp { retry_after_ms; message } ->
      Buffer.add_char buf '\x8b';
      Value.add_varint buf retry_after_ms;
      Value.add_string buf message
  | Shard_stats_resp shards ->
      Buffer.add_char buf '\x8c';
      Value.add_varint buf (List.length shards);
      List.iter
        (fun s ->
          Value.add_varint buf s.ss_batches;
          Value.add_varint buf s.ss_ops;
          Value.add_varint buf s.ss_queued;
          Value.add_varint buf s.ss_root_recomputes;
          Value.add_varint buf s.ss_root_hits;
          Value.add_varint buf s.ss_proofs_served;
          Value.add_varint buf s.ss_proof_cache_hits;
          Value.add_varint buf s.ss_proof_cache_misses;
          Value.add_varint buf s.ss_proof_bytes)
        shards
  | Lineage_resp { poly; depth; oids } ->
      Buffer.add_char buf '\x8d';
      Value.add_string buf poly;
      Value.add_varint buf depth;
      Value.add_varint buf (List.length oids);
      List.iter (add_oid buf) oids
  | Annotated_resp { arows; avalue; annot } ->
      Buffer.add_char buf '\x8e';
      Value.add_varint buf (List.length arows);
      List.iter
        (fun (v, cells, poly) ->
          Value.add_varint buf v;
          add_cells buf cells;
          Value.add_string buf poly)
        arows;
      (match avalue with
      | None -> Buffer.add_char buf '\x00'
      | Some v ->
          Buffer.add_char buf '\x01';
          Value.encode buf v);
      Value.add_string buf annot
  | Proof_resp { shard; shard_roots; items } ->
      Buffer.add_char buf '\x8f';
      Value.add_varint buf shard;
      Value.add_varint buf (List.length shard_roots);
      List.iter (Value.add_string buf) shard_roots;
      Value.add_varint buf (List.length items);
      List.iter
        (fun (proof, records) ->
          Value.add_string buf proof;
          Value.add_varint buf (List.length records);
          List.iter (Record.encode buf) records)
        items
  | Audit_sample_resp { report; sampled; population } ->
      Buffer.add_char buf '\x90';
      add_report buf report;
      Value.add_varint buf sampled;
      Value.add_varint buf population
  | Error_resp { code; message } ->
      Buffer.add_char buf '\xff';
      Value.add_varint buf (error_code_tag code);
      Value.add_string buf message

let decode_response s off =
  if off >= String.length s then failwith "Message: empty response";
  match s.[off] with
  | '\x81' ->
      let nonce, off = Value.read_string s (off + 1) in
      (Challenge { nonce }, off)
  | '\x82' ->
      let server, off = Value.read_string s (off + 1) in
      (Auth_ok { server }, off)
  | '\x83' ->
      let row, off =
        if off + 1 >= String.length s then failwith "Message: truncated"
        else
          match s.[off + 1] with
          | '\x00' -> (None, off + 2)
          | '\x01' ->
              let r, o = Value.read_varint s (off + 2) in
              (Some r, o)
          | _ -> failwith "Message: bad option tag"
      in
      let oid, off = read_oid_opt s off in
      let records, off = Value.read_varint s off in
      (Submitted { row; oid; records }, off)
  | '\x84' ->
      let n, off = Value.read_varint s (off + 1) in
      let off = ref off in
      let records =
        List.init n (fun _ ->
            let r, o = Record.decode s !off in
            off := o;
            r)
      in
      (Records records, !off)
  | '\x85' ->
      let report, off = read_report s (off + 1) in
      if off >= String.length s then failwith "Message: truncated"
      else
        let store_audit, off =
          match s.[off] with
          | '\x00' -> (None, off + 1)
          | '\x01' ->
              let a, o = read_report s (off + 1) in
              (Some a, o)
          | _ -> failwith "Message: bad option tag"
        in
        (Verified { report; store_audit }, off)
  | '\x86' ->
      let report, off = read_report s (off + 1) in
      let examined, off = Value.read_varint s off in
      let objects, off = Value.read_varint s off in
      (Audited { report; examined; objects }, off)
  | '\x87' ->
      let generation, off = Value.read_varint s (off + 1) in
      let lsn1, off = Value.read_varint s off in
      (Checkpointed { generation; lsn = lsn1 - 1 }, off)
  | '\x88' ->
      let hash, off = Value.read_string s (off + 1) in
      (Root { hash }, off)
  | '\x89' ->
      let batches, off = Value.read_varint s (off + 1) in
      let ops, off = Value.read_varint s off in
      let sign_wall_us, off = Value.read_varint s off in
      let sign_cpu_us, off = Value.read_varint s off in
      (Stats_resp { batches; ops; sign_wall_us; sign_cpu_us }, off)
  | '\x8a' ->
      let flag off =
        if off >= String.length s then failwith "Message: truncated flag"
        else
          match s.[off] with
          | '\x00' -> false
          | '\x01' -> true
          | _ -> failwith "Message: bad flag byte"
      in
      let ready = flag (off + 1) in
      let draining = flag (off + 2) in
      let active, off = Value.read_varint s (off + 3) in
      let queued_ops, off = Value.read_varint s off in
      let batches, off = Value.read_varint s off in
      let ops, off = Value.read_varint s off in
      let dedup_hits, off = Value.read_varint s off in
      let wal_failures, off = Value.read_varint s off in
      let shed, off = Value.read_varint s off in
      (* [reaped] was appended in v7 with no version negotiation in
         Hello; a v6 server's Pong ends here.  Decode it as optional
         (default 0 on an exhausted payload) so a v7 client keeps
         interoperating with a v6 server instead of failing the whole
         Ping on a truncated varint. *)
      let reaped, off =
        if off >= String.length s then (0, off) else Value.read_varint s off
      in
      ( Pong
          {
            ready;
            draining;
            active;
            queued_ops;
            batches;
            ops;
            dedup_hits;
            wal_failures;
            shed;
            reaped;
          },
        off )
  | '\x8b' ->
      let retry_after_ms, off = Value.read_varint s (off + 1) in
      let message, off = Value.read_string s off in
      (Overloaded_resp { retry_after_ms; message }, off)
  | '\x8c' ->
      let n, off = Value.read_varint s (off + 1) in
      let off = ref off in
      let shards =
        List.init n (fun _ ->
            let ss_batches, o = Value.read_varint s !off in
            let ss_ops, o = Value.read_varint s o in
            let ss_queued, o = Value.read_varint s o in
            let ss_root_recomputes, o = Value.read_varint s o in
            let ss_root_hits, o = Value.read_varint s o in
            let ss_proofs_served, o = Value.read_varint s o in
            let ss_proof_cache_hits, o = Value.read_varint s o in
            let ss_proof_cache_misses, o = Value.read_varint s o in
            let ss_proof_bytes, o = Value.read_varint s o in
            off := o;
            {
              ss_batches;
              ss_ops;
              ss_queued;
              ss_root_recomputes;
              ss_root_hits;
              ss_proofs_served;
              ss_proof_cache_hits;
              ss_proof_cache_misses;
              ss_proof_bytes;
            })
      in
      (Shard_stats_resp shards, !off)
  | '\x8d' ->
      let poly, off = Value.read_string s (off + 1) in
      let depth, off = Value.read_varint s off in
      let n, off = Value.read_varint s off in
      let off = ref off in
      let oids =
        List.init n (fun _ ->
            let oid, o = read_oid s !off in
            off := o;
            oid)
      in
      (Lineage_resp { poly; depth; oids }, !off)
  | '\x8e' ->
      let n, off = Value.read_varint s (off + 1) in
      if n > String.length s then failwith "Message: bad row count";
      let off = ref off in
      let arows =
        List.init n (fun _ ->
            let v, o = Value.read_varint s !off in
            let cells, o = read_cells s o in
            let poly, o = Value.read_string s o in
            off := o;
            (v, cells, poly))
      in
      let avalue =
        if !off >= String.length s then failwith "Message: truncated"
        else
          match s.[!off] with
          | '\x00' ->
              incr off;
              None
          | '\x01' ->
              let v, o = Value.decode s (!off + 1) in
              off := o;
              Some v
          | _ -> failwith "Message: bad option tag"
      in
      let annot, o = Value.read_string s !off in
      (Annotated_resp { arows; avalue; annot }, o)
  | '\x8f' ->
      let shard, off = Value.read_varint s (off + 1) in
      let nroots, off = Value.read_varint s off in
      if nroots > String.length s - off then failwith "Message: bad root count";
      let off = ref off in
      let shard_roots =
        List.init nroots (fun _ ->
            let r, o = Value.read_string s !off in
            off := o;
            r)
      in
      let nitems, o = Value.read_varint s !off in
      if nitems > String.length s - o then failwith "Message: bad item count";
      let off = ref o in
      let items =
        List.init nitems (fun _ ->
            let proof, o = Value.read_string s !off in
            let nrec, o = Value.read_varint s o in
            if nrec > String.length s - o then
              failwith "Message: bad record count";
            let o = ref o in
            let records =
              List.init nrec (fun _ ->
                  let r, o' = Record.decode s !o in
                  o := o';
                  r)
            in
            off := !o;
            (proof, records))
      in
      (Proof_resp { shard; shard_roots; items }, !off)
  | '\x90' ->
      let report, off = read_report s (off + 1) in
      let sampled, off = Value.read_varint s off in
      let population, off = Value.read_varint s off in
      (Audit_sample_resp { report; sampled; population }, off)
  | '\xff' ->
      let tag, off = Value.read_varint s (off + 1) in
      let message, off = Value.read_string s off in
      (Error_resp { code = error_code_of_tag tag; message }, off)
  | c -> failwith (Printf.sprintf "Message: bad response tag %#x" (Char.code c))

let response_to_string r =
  let buf = Buffer.create 256 in
  encode_response buf r;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Correlation ids (sealed-channel framing v2)                         *)
(* ------------------------------------------------------------------ *)

(* Once a session is established, every sealed message in either
   direction is [varint cid · encoded message]: the server echoes a
   request's cid in its response, so a connection may keep several
   requests in flight and still match responses robustly.  The cid
   travels inside the sealed payload — the MAC covers it — and the
   clear handshake frames are unchanged.  Cid 0 is reserved for
   connection-level failures the server emits outside any particular
   request (e.g. a MAC rejection that kills the session); clients
   allocate cids from 1. *)

let conn_cid = 0

let with_cid cid s =
  if cid < 0 then invalid_arg "Message.with_cid: negative cid";
  let buf = Buffer.create (String.length s + 5) in
  Value.add_varint buf cid;
  Buffer.add_string buf s;
  Buffer.contents buf

let read_cid s =
  match Value.read_varint s 0 with
  | cid, off when cid >= 0 -> Some (cid, off)
  | _ -> None
  | exception (Failure _ | Invalid_argument _) -> None
