open Tep_tree
open Tep_core

let why idx oid =
  let store = Prov_index.store idx in
  let memo = Oid.Tbl.create 64 in
  let visiting = Oid.Tbl.create 16 in
  let rec go oid =
    match Oid.Tbl.find_opt memo oid with
    | Some p -> p
    | None ->
        if Oid.Tbl.mem visiting oid then
          (* a cycle means a corrupt store; cut it at a base variable
             rather than diverging — the verifier reports the damage *)
          Polynomial.var (Oid.to_int oid)
        else begin
          Oid.Tbl.replace visiting oid ();
          let aggs =
            List.filter
              (fun (r : Record.t) -> r.Record.kind = Record.Aggregate)
              (Provstore.records_for store oid)
          in
          let p =
            if aggs = [] then Polynomial.var (Oid.to_int oid)
            else
              Polynomial.sum
                (List.map
                   (fun (r : Record.t) ->
                     Polynomial.product (List.map go r.Record.input_oids))
                   aggs)
          in
          Oid.Tbl.remove visiting oid;
          Oid.Tbl.replace memo oid p;
          p
        end
  in
  go oid

let which_inputs idx oid = List.map Oid.of_int (Polynomial.vars (why idx oid))
let depth = Prov_index.depth
let impact = Prov_index.descendants
let min_support idx oid = Polynomial.min_support (why idx oid)
let oid_name v = "o" ^ string_of_int v
let poly_to_string p = Polynomial.to_string ~name:oid_name p
