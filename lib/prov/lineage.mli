(** Lineage queries over the provenance DAG, answered as polynomials.

    Where {!Tep_core.Prov_query} returns lists of participants and
    oids, these return the {e structure} of a derivation: {!why} is
    the provenance polynomial of an object over its base objects
    (inserted or imported roots of the DAG), from which the membership
    ({!which_inputs}), cost ({!min_support}) and trust questions all
    fall out by semiring evaluation.

    All functions take a {!Tep_core.Prov_index.t} so repeated
    questions over one store share closures. *)

open Tep_tree
open Tep_core

val why : Prov_index.t -> Oid.t -> Polynomial.t
(** The provenance polynomial of an object: base objects (no
    aggregate record of their own — inserts, imports, or dangling
    references) map to their variable; an aggregated object is the
    product of its inputs' polynomials, summed over its aggregate
    records when it has several (alternative derivations).  Updates
    refine an object in place and do not change its derivation. *)

val which_inputs : Prov_index.t -> Oid.t -> Oid.t list
(** The base objects appearing in {!why} — the witness set, sorted. *)

val depth : Prov_index.t -> Oid.t -> int
(** Aggregation hops from the deepest base object (0 for bases). *)

val impact : Prov_index.t -> Oid.t -> Oid.t list
(** Forward closure: every object transitively derived from this one. *)

val min_support : Prov_index.t -> Oid.t -> int
(** Tropical evaluation of {!why} with every base at cost 1: how many
    base-object uses the cheapest derivation needs. *)

val oid_name : int -> string
(** [o<n>] — the variable renderer lineage output uses. *)

val poly_to_string : Polynomial.t -> string
(** {!Polynomial.to_string} with {!oid_name} naming, e.g.
    [o2*o5 + o7^2]. *)
