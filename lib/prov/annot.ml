open Tep_crypto
open Tep_store
open Tep_core

type t = {
  a_id : string;
  a_table : string;
  a_pred : string;
  a_agg : string;
  a_rows : (int * Polynomial.t) list;
  a_value : Value.t option;
  a_root : string;
  a_participant : string;
  a_digest : string;
  a_signature : string;
}

(* Everything except digest and signature, canonically framed.  The
   magic domain-separates annotation signatures from record checksums
   (which frame under "TEPCK1"). *)
let payload t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "TEPANN1";
  let field s =
    Value.add_varint buf (String.length s);
    Buffer.add_string buf s
  in
  field t.a_id;
  field t.a_table;
  field t.a_pred;
  field t.a_agg;
  field t.a_root;
  field t.a_participant;
  Value.add_varint buf (List.length t.a_rows);
  List.iter
    (fun (v, p) ->
      Value.add_varint buf v;
      Polynomial.encode buf p)
    t.a_rows;
  (match t.a_value with
  | None -> Buffer.add_char buf '\x00'
  | Some v ->
      Buffer.add_char buf '\x01';
      Value.encode buf v);
  Buffer.contents buf

let make ~id ~table ~pred ~agg ~rows ~value ~root participant =
  let t =
    {
      a_id = id;
      a_table = table;
      a_pred = pred;
      a_agg = agg;
      a_rows = rows;
      a_value = value;
      a_root = root;
      a_participant = Participant.name participant;
      a_digest = "";
      a_signature = "";
    }
  in
  let p = payload t in
  {
    t with
    a_digest = Digest_algo.digest Digest_algo.SHA256 p;
    a_signature = Participant.sign participant p;
  }

let verify dir t =
  let p = payload t in
  if not (String.equal (Digest_algo.digest Digest_algo.SHA256 p) t.a_digest)
  then Error (Printf.sprintf "annotation %s: digest mismatch" t.a_id)
  else
    match Participant.Directory.lookup_verified dir t.a_participant with
    | `Unknown ->
        Error
          (Printf.sprintf "annotation %s: unknown participant %s" t.a_id
             t.a_participant)
    | `Bad_certificate ->
        Error
          (Printf.sprintf "annotation %s: certificate for %s does not verify"
             t.a_id t.a_participant)
    | `Verified cert ->
        if
          Rsa.verify ~algo:Digest_algo.SHA256 cert.Pki.subject_key ~msg:p
            ~signature:t.a_signature
        then Ok ()
        else
          Error
            (Printf.sprintf "annotation %s: signature does not verify" t.a_id)

let encode buf t =
  Value.add_string buf (payload t);
  Value.add_string buf t.a_digest;
  Value.add_string buf t.a_signature

let decode_payload s =
  if String.length s < 7 || String.sub s 0 7 <> "TEPANN1" then
    failwith "annotation: bad magic";
  let off = ref 7 in
  let field () =
    let v, o = Value.read_string s !off in
    off := o;
    v
  in
  let a_id = field () in
  let a_table = field () in
  let a_pred = field () in
  let a_agg = field () in
  let a_root = field () in
  let a_participant = field () in
  let nrows, o = Value.read_varint s !off in
  if nrows > String.length s then failwith "annotation: bad row count";
  off := o;
  let a_rows =
    List.init nrows (fun _ ->
        let v, o = Value.read_varint s !off in
        let p, o = Polynomial.decode s o in
        off := o;
        (v, p))
  in
  if !off >= String.length s then failwith "annotation: truncated value";
  let a_value =
    match s.[!off] with
    | '\x00' ->
        incr off;
        None
    | '\x01' ->
        let v, o = Value.decode s (!off + 1) in
        off := o;
        Some v
    | _ -> failwith "annotation: bad value tag"
  in
  if !off <> String.length s then failwith "annotation: trailing payload bytes";
  {
    a_id;
    a_table;
    a_pred;
    a_agg;
    a_rows;
    a_value;
    a_root;
    a_participant;
    a_digest = "";
    a_signature = "";
  }

let decode s off =
  let p, off = Value.read_string s off in
  let a_digest, off = Value.read_string s off in
  let a_signature, off = Value.read_string s off in
  ({ (decode_payload p) with a_digest; a_signature }, off)

let encoded t =
  let buf = Buffer.create 256 in
  encode buf t;
  Buffer.contents buf

let of_encoded s =
  match decode s 0 with
  | t, off when off = String.length s -> Ok t
  | _ -> Error "annotation: trailing bytes"
  | exception Failure e -> Error e

let magic = "TEPANNOTS1"

let list_to_string ts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Value.add_varint buf (List.length ts);
  List.iter (encode buf) ts;
  Buffer.contents buf

let list_of_string s =
  try
    if String.length s < String.length magic || String.sub s 0 (String.length magic) <> magic
    then Error "annotations: bad magic"
    else begin
      let count, off = Value.read_varint s (String.length magic) in
      if count > String.length s then failwith "annotations: bad count";
      let off = ref off in
      let ts =
        List.init count (fun _ ->
            let t, o = decode s !off in
            off := o;
            t)
      in
      if !off <> String.length s then Error "annotations: trailing bytes"
      else Ok ts
    end
  with Failure e -> Error e

let pp fmt t =
  Format.fprintf fmt "@[<v>annotation %s: %s %s%s@,%d row(s), signed by %s, digest %s@]"
    t.a_id
    (if t.a_agg = "" then "select from" else t.a_agg ^ " over")
    t.a_table
    (if t.a_pred = "" then "" else " where " ^ t.a_pred)
    (List.length t.a_rows) t.a_participant
    (Digest_algo.to_hex (String.sub t.a_digest 0 6))
