(** Provenance polynomials: the free commutative semiring ℕ[X] over
    integer-named variables (record / row / object identifiers).

    A polynomial is kept in a canonical sorted normal form, so
    structural equality is semiring equality and the byte encoding of
    equal polynomials is identical — that canonical encoding is what
    {!Annot} digests and signs to make query lineage tamper-evident.

    Being the {e free} semiring, a polynomial evaluates into any other
    commutative semiring by substituting values for variables
    ({!eval}); specialised evaluations for the three stock instances
    are provided. *)

type t

val zero : t
val one : t

val var : int -> t
(** The polynomial [x_v].  @raise Invalid_argument on a negative id. *)

val of_const : int -> t
(** [n] as a polynomial (n-fold [one]).
    @raise Invalid_argument on a negative constant. *)

val plus : t -> t -> t
val times : t -> t -> t
val sum : t list -> t
val product : t list -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val is_zero : t -> bool
val is_one : t -> bool

val vars : t -> int list
(** Every variable appearing in the polynomial, sorted, de-duplicated. *)

val degree : t -> int
(** Total degree (0 for constants; -1 for {!zero} by convention). *)

val term_count : t -> int

(** {1 Evaluation} *)

val eval : (module Semiring.S with type t = 'a) -> (int -> 'a) -> t -> 'a
(** [eval (module S) f p] is the image of [p] under the unique
    semiring homomorphism extending [f] — coefficients become n-fold
    sums, exponents n-fold products. *)

val count : (int -> int) -> t -> int
(** {!Semiring.Counting} evaluation: the number of derivations when
    [f] gives each base variable its multiplicity. *)

val holds : (int -> bool) -> t -> bool
(** {!Semiring.Boolean} evaluation: does some derivation use only
    variables that [f] trusts?  (Why-provenance membership.) *)

val min_support : t -> int
(** {!Semiring.Tropical} evaluation with every variable at cost 1: the
    size (with multiplicity) of the smallest monomial — the cheapest
    derivation.  [Semiring.Tropical.inf] for {!zero}. *)

(** {1 Canonical serialization} *)

val encode : Buffer.t -> t -> unit
(** Deterministic bytes: equal polynomials encode identically (the
    normal form is sorted), which is what makes digests over encoded
    annotations well-defined. *)

val decode : string -> int -> t * int
(** [decode s off] returns the polynomial and the offset just past
    it, re-normalising on the way in so a decoded value is always
    canonical.  @raise Failure on malformed input. *)

val encoded : t -> string

val pp : ?name:(int -> string) -> Format.formatter -> t -> unit
(** Renders e.g. [x2*x5 + 2*x7^2]; [name] overrides the default
    [x<id>] variable rendering (lineage uses [o<oid>]). *)

val to_string : ?name:(int -> string) -> t -> string
