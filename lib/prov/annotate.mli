(** Annotation-carrying query evaluation.

    The same plans {!Tep_store.Query} runs — select, count, the
    aggregate functions — evaluated so every result additionally
    carries a provenance polynomial over row variables: each matching
    row contributes its variable, a count sums them (each row is an
    alternative derivation of the tally), and a value aggregate
    multiplies them (the result uses all its inputs jointly).

    Row variables default to table row ids; inside an engine pass
    {!row_var} so variables are forest oids and lineage queries can
    chase them through the provenance DAG.

    Result rows are exactly what the plain evaluator returns — the
    annotated path reuses {!Tep_store.Query.aggregate_rows} and the
    plain scan, so the two cannot disagree on values, only add
    polynomials. *)

open Tep_store

(** {1 Predicate pruning}

    Niu/Glavic-style static pruning: branches that cannot contribute
    are rewritten away before the scan, and a contradictory predicate
    skips the scan (and all annotation work) entirely. *)

val simplify : Query.pred -> Query.pred
(** Constant-fold [and]/[or]/[not] and collapse contradictory
    conjunctions (two different equalities on one column, an equality
    its sibling comparison rejects, [is null] alongside any comparison
    on the same column — SQL comparisons never match [NULL]).  An
    unsatisfiable predicate simplifies to [Not True].

    Best-effort and sound for well-formed predicates: a pruned branch
    can only have matched nothing.  (Unknown-column errors inside a
    branch pruned by contradiction are elided — the scan that would
    have reported them never runs.) *)

val never_matches : Query.pred -> bool
(** [simplify p = Not True]: no row can satisfy [p]. *)

val pruned_scans : unit -> int
(** How many scans pruning skipped outright since start (or the last
    {!reset_pruned_scans}) — observability for tests and the bench. *)

val reset_pruned_scans : unit -> unit

(** {1 Annotated evaluation} *)

val row_var : Tep_tree.Tree_view.mapping -> string -> Table.row -> int
(** The forest row oid of a row of the named table, falling back to
    the table-local row id when the mapping has no entry (tables not
    under provenance tracking). *)

val select :
  ?var:(Table.row -> Polynomial.t) ->
  Table.t ->
  Query.pred ->
  ((Table.row * Polynomial.t) list, string) result
(** Matching rows in row-id order, each annotated with [var row]
    (default: the polynomial variable of the row's table-local id). *)

val count :
  ?var:(Table.row -> Polynomial.t) ->
  Table.t ->
  Query.pred ->
  (int * Polynomial.t, string) result
(** The count and the sum of the matching rows' annotations. *)

val aggregate :
  ?var:(Table.row -> Polynomial.t) ->
  Table.t ->
  Query.pred ->
  Query.agg ->
  (Value.t * Polynomial.t, string) result
(** The aggregate value and its annotation: the sum of row annotations
    for [Count], their product for the value aggregates. *)
