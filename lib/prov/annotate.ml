open Tep_store

(* ------------------------------------------------------------------ *)
(* Pruning                                                             *)
(* ------------------------------------------------------------------ *)

(* [Not True] is the canonical "matches nothing" predicate — the
   grammar has no dedicated False constructor. *)
let pfalse = Query.Not Query.True
let is_false p = p = pfalse

(* Would a row whose [col] equals [v] fail comparison [(op, w)]?
   Mirrors [Query.cmp_ok] over [Value.compare], so a conjunction
   [col = v and col op w] is contradictory exactly when the plain
   evaluator would reject every row the equality admits. *)
let eq_rejects (op : Query.cmp) v w =
  let c = Value.compare v w in
  match op with
  | Query.Eq -> c <> 0
  | Query.Ne -> c = 0
  | Query.Lt -> c >= 0
  | Query.Le -> c > 0
  | Query.Gt -> c <= 0
  | Query.Ge -> c < 0

(* Conjuncts of a conjunction, atoms only (nested or/not stay opaque). *)
let rec conjuncts p =
  match p with
  | Query.And (a, b) -> conjuncts a @ conjuncts b
  | _ -> [ p ]

let contradictory atoms =
  let pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) atoms) atoms in
  List.exists
    (fun (a, b) ->
      match (a, b) with
      | Query.Cmp (ca, Query.Eq, v), Query.Cmp (cb, op, w) when ca = cb ->
          eq_rejects op v w
      | Query.IsNull ca, Query.Cmp (cb, _, _) when ca = cb ->
          (* SQL: a NULL cell satisfies no comparison *)
          true
      | _ -> false)
    pairs

let rec simplify p =
  match p with
  | Query.True | Query.Cmp _ | Query.IsNull _ -> p
  | Query.Not a -> (
      match simplify a with
      | Query.True -> pfalse
      | Query.Not b -> b (* double negation; also turns [not false] into true *)
      | b -> Query.Not b)
  | Query.Or (a, b) -> (
      match (simplify a, b |> simplify) with
      | Query.True, _ | _, Query.True -> Query.True
      | a', b' when is_false a' -> b'
      | a', b' when is_false b' -> a'
      | a', b' -> Query.Or (a', b'))
  | Query.And (a, b) -> (
      match (simplify a, simplify b) with
      | a', b' when is_false a' || is_false b' -> pfalse
      | Query.True, b' -> b'
      | a', Query.True -> a'
      | a', b' ->
          let conj = Query.And (a', b') in
          if contradictory (conjuncts conj) then pfalse else conj)

let never_matches p = is_false (simplify p)

let pruned = Atomic.make 0
let pruned_scans () = Atomic.get pruned
let reset_pruned_scans () = Atomic.set pruned 0

(* ------------------------------------------------------------------ *)
(* Annotated evaluation                                                *)
(* ------------------------------------------------------------------ *)

let row_var mapping table (row : Table.row) =
  match Tep_tree.Tree_view.row_oid mapping table row.Table.id with
  | Some oid -> Tep_tree.Oid.to_int oid
  | None -> row.Table.id

let default_var (row : Table.row) = Polynomial.var row.Table.id

let select ?(var = default_var) table pred =
  let pred = simplify pred in
  if is_false pred then begin
    Atomic.incr pruned;
    Ok []
  end
  else
    Result.map (List.map (fun r -> (r, var r))) (Query.select table pred)

let count ?var table pred =
  Result.map
    (fun rows ->
      (List.length rows, Polynomial.sum (List.map snd rows)))
    (select ?var table pred)

let aggregate ?var table pred agg =
  match select ?var table pred with
  | Error e -> Error e
  | Ok rows -> (
      let polys = List.map snd rows in
      let annot =
        match agg with
        | Query.Count -> Polynomial.sum polys
        | _ -> Polynomial.product polys
      in
      match Query.aggregate_rows (Table.schema table) (List.map fst rows) agg with
      | Error e -> Error e
      | Ok v -> Ok (v, annot))
