(* Commutative semirings for provenance annotation (see the .mli). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val plus : t -> t -> t
  val times : t -> t -> t
  val equal : t -> t -> bool
  val to_string : t -> string
end

module Counting = struct
  type t = int

  let zero = 0
  let one = 1
  let plus = ( + )
  let times = ( * )
  let equal = Int.equal
  let to_string = string_of_int
end

module Boolean = struct
  type t = bool

  let zero = false
  let one = true
  let plus = ( || )
  let times = ( && )
  let equal = Bool.equal
  let to_string = string_of_bool
end

module Tropical = struct
  type t = int

  let inf = max_int
  let zero = inf
  let one = 0
  let plus = min

  (* saturating: +∞ absorbs *)
  let times a b = if a = inf || b = inf then inf else a + b
  let equal = Int.equal
  let to_string n = if n = inf then "inf" else string_of_int n
end
