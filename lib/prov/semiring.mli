(** Commutative semirings for provenance annotation.

    Following the provenance-semiring framework (Green et al., made
    practical by ProvSQL — see PAPERS.md), a query evaluated over
    annotated rows produces result annotations in {e any} commutative
    semiring by evaluating the provenance polynomial of
    {!Polynomial}.  The three instances here answer the lineage
    questions ROADMAP item 3 names:

    - {!Counting}: how many derivations produce this result
      (bag/multiplicity semantics);
    - {!Boolean}: why-provenance — does the result survive under a
      given set of trusted base rows;
    - {!Tropical}: min-plus cost, used for hop-count / smallest
      derivation-support queries. *)

module type S = sig
  type t

  val zero : t
  (** Neutral for {!plus}; annihilates {!times} — "no derivation". *)

  val one : t
  (** Neutral for {!times} — "the empty joint use". *)

  val plus : t -> t -> t
  (** Alternative derivations (union / disjunction). *)

  val times : t -> t -> t
  (** Joint use of inputs (join / conjunction). *)

  val equal : t -> t -> bool
  val to_string : t -> string
end

module Counting : S with type t = int
(** The natural numbers (ℕ, +, ×, 0, 1): counts derivations. *)

module Boolean : S with type t = bool
(** ({true,false}, ∨, ∧): why-provenance / trust propagation. *)

module Tropical : sig
  include S with type t = int

  val inf : t
  (** The additive zero [+∞] (encoded as [max_int]). *)
end
(** The tropical min-plus semiring (ℕ ∪ {∞}, min, +, ∞, 0): evaluating
    a polynomial with every variable at cost 1 yields the size of the
    smallest derivation support (see {!Polynomial.min_support}). *)
