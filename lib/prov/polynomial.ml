(* Provenance polynomials in canonical normal form.

   Representation: a sorted association list of monomials to positive
   coefficients.  A monomial is a sorted association list of variable
   ids to positive exponents.  [zero] is the empty sum, [one] the
   empty product with coefficient 1.  Every constructor and operation
   preserves the invariants, so [Stdlib.compare]-style structural
   comparison is semantic comparison and the byte encoding is
   canonical. *)

open Tep_store

type mono = (int * int) list (* (var, exponent>0), vars strictly increasing *)
type t = (mono * int) list (* (monomial, coeff>0), monomials strictly increasing *)

let zero : t = []
let one : t = [ ([], 1) ]

let var v : t =
  if v < 0 then invalid_arg "Polynomial.var: negative id";
  [ ([ (v, 1) ], 1) ]

let of_const n : t =
  if n < 0 then invalid_arg "Polynomial.of_const: negative"
  else if n = 0 then zero
  else [ ([], n) ]

(* monomials compare by total degree first, then lexicographically on
   the factor list — a graded order, so [min_support] is just the
   first term's degree under no weighting *)
let mono_degree (m : mono) = List.fold_left (fun a (_, e) -> a + e) 0 m

let compare_mono (a : mono) (b : mono) =
  let c = compare (mono_degree a) (mono_degree b) in
  if c <> 0 then c else compare a b

(* merge two sorted term lists, summing coefficients *)
let rec plus (a : t) (b : t) : t =
  match (a, b) with
  | [], p | p, [] -> p
  | (ma, ca) :: ra, (mb, cb) :: rb -> (
      match compare_mono ma mb with
      | 0 -> (ma, ca + cb) :: plus ra rb
      | c when c < 0 -> (ma, ca) :: plus ra b
      | _ -> (mb, cb) :: plus a rb)

let rec mono_times (a : mono) (b : mono) : mono =
  match (a, b) with
  | [], m | m, [] -> m
  | (va, ea) :: ra, (vb, eb) :: rb ->
      if va = vb then (va, ea + eb) :: mono_times ra rb
      else if va < vb then (va, ea) :: mono_times ra b
      else (vb, eb) :: mono_times a rb

let times (a : t) (b : t) : t =
  List.fold_left
    (fun acc (ma, ca) ->
      plus acc (List.map (fun (mb, cb) -> (mono_times ma mb, ca * cb)) b
                |> List.sort (fun (x, _) (y, _) -> compare_mono x y)))
    zero a

let sum ps = List.fold_left plus zero ps
let product ps = List.fold_left times one ps

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let is_zero p = p = zero
let is_one p = p = one

let vars (p : t) =
  List.concat_map (fun (m, _) -> List.map fst m) p |> List.sort_uniq Stdlib.compare

let degree (p : t) =
  List.fold_left (fun acc (m, _) -> max acc (mono_degree m)) (-1) p

let term_count (p : t) = List.length p

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval (type a) (module S : Semiring.S with type t = a) (f : int -> a)
    (p : t) : a =
  let rec npow acc base n =
    if n = 0 then acc else npow (S.times acc base) base (n - 1)
  in
  let rec nsum acc v n = if n = 0 then acc else nsum (S.plus acc v) v (n - 1) in
  List.fold_left
    (fun acc (m, c) ->
      let mv = List.fold_left (fun a (v, e) -> npow a (f v) e) S.one m in
      S.plus acc (nsum S.zero mv c))
    S.zero p

let count f p = eval (module Semiring.Counting) f p
let holds f p = eval (module Semiring.Boolean) f p
let min_support p = eval (module Semiring.Tropical) (fun _ -> 1) p

(* ------------------------------------------------------------------ *)
(* Canonical serialization                                             *)
(* ------------------------------------------------------------------ *)

let encode buf (p : t) =
  Value.add_varint buf (List.length p);
  List.iter
    (fun (m, c) ->
      Value.add_varint buf c;
      Value.add_varint buf (List.length m);
      List.iter
        (fun (v, e) ->
          Value.add_varint buf v;
          Value.add_varint buf e)
        m)
    p

let decode s off =
  let nterms, off = Value.read_varint s off in
  if nterms > String.length s then failwith "Polynomial.decode: bad term count";
  let off = ref off in
  let terms =
    List.init nterms (fun _ ->
        let c, o = Value.read_varint s !off in
        let nf, o = Value.read_varint s o in
        if nf > String.length s then
          failwith "Polynomial.decode: bad factor count";
        off := o;
        let factors =
          List.init nf (fun _ ->
              let v, o = Value.read_varint s !off in
              let e, o = Value.read_varint s o in
              if e = 0 then failwith "Polynomial.decode: zero exponent";
              off := o;
              (v, e))
        in
        if c = 0 then failwith "Polynomial.decode: zero coefficient";
        (factors, c))
  in
  (* re-normalise: fold each decoded term through the semiring ops so
     a non-canonical (or adversarial) byte string still yields a
     canonical value *)
  let p =
    sum
      (List.map
         (fun (factors, c) ->
           times (of_const c)
             (product (List.map (fun (v, e) ->
                  if v < 0 then failwith "Polynomial.decode: negative var";
                  product (List.init e (fun _ -> var v)))
                 factors)))
         terms)
  in
  (p, !off)

let encoded p =
  let buf = Buffer.create 64 in
  encode buf p;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let default_name v = "x" ^ string_of_int v

let pp ?(name = default_name) fmt (p : t) =
  match p with
  | [] -> Format.pp_print_string fmt "0"
  | terms ->
      let term (m, c) =
        let factors =
          List.map
            (fun (v, e) ->
              if e = 1 then name v else Printf.sprintf "%s^%d" (name v) e)
            m
        in
        match (factors, c) with
        | [], c -> string_of_int c
        | fs, 1 -> String.concat "*" fs
        | fs, c -> string_of_int c ^ "*" ^ String.concat "*" fs
      in
      Format.pp_print_string fmt (String.concat " + " (List.map term terms))

let to_string ?name p = Format.asprintf "%a" (pp ?name) p
