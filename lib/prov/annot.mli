(** Signed query annotations — tamper-evident lineage for results.

    An annotation binds a query (table, predicate, optional
    aggregate), its result rows with their provenance polynomials, the
    database's published Merkle root at evaluation time, and the
    signing participant into one canonically-encoded payload; the
    payload is digested and RSA-signed exactly like a provenance
    checksum.  A recipient holding the participant directory can
    check, offline, that neither the polynomials nor the result were
    altered after signing — flipping one byte of a stored annotation
    makes {!verify} fail, which [provdb verify] surfaces as exit 3,
    the same class as record tampering. *)

open Tep_store
open Tep_core

type t = {
  a_id : string;  (** caller-chosen name for the saved annotation *)
  a_table : string;
  a_pred : string;  (** {!Tep_store.Query.pred_to_string} form *)
  a_agg : string;  (** {!Tep_store.Query.agg_to_string} form; [""] = select *)
  a_rows : (int * Polynomial.t) list;
      (** (row variable, polynomial) per result row, row order *)
  a_value : Value.t option;  (** the aggregate value, when [a_agg <> ""] *)
  a_root : string;  (** published Merkle root at evaluation time *)
  a_participant : string;
  a_digest : string;  (** SHA-256 of {!payload}, stored for display *)
  a_signature : string;  (** participant's signature over {!payload} *)
}

val make :
  id:string ->
  table:string ->
  pred:string ->
  agg:string ->
  rows:(int * Polynomial.t) list ->
  value:Value.t option ->
  root:string ->
  Participant.t ->
  t
(** Build, digest and sign an annotation as the given participant. *)

val payload : t -> string
(** The canonical signing payload (domain-separated, length-framed;
    polynomials in their canonical encoding).  Recomputed from the
    annotation's fields — which is what makes verification detect any
    field edit. *)

val verify : Participant.Directory.t -> t -> (unit, string) result
(** Recompute the payload; check the stored digest and the signature
    against the participant's directory certificate. *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
(** @raise Failure on malformed input. *)

val encoded : t -> string
val of_encoded : string -> (t, string) result

val list_to_string : t list -> string
(** The [annot.dat] file format: magic, count, annotations. *)

val list_of_string : string -> (t list, string) result

val pp : Format.formatter -> t -> unit
