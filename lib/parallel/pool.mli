(** Fixed-size domain pool for the verification & signing pipeline.

    The provenance hot paths — per-record RSA signature checks,
    Basic-mode subtree hashing, audit sweeps — are embarrassingly
    parallel: every work item is pure (or touches only mutex-protected
    caches), so they can fan out across OCaml 5 domains.  This module
    provides the one pool the rest of the system shares.

    Design points:

    - {b Deterministic results.}  [map_chunked] writes result [i] of
      input [i] into slot [i]; callers observe exactly the sequential
      order no matter how chunks interleave across domains.
    - {b Caller participation.}  The submitting domain executes chunks
      itself while it waits, so a pool of [n] domains means [n-1]
      spawned workers plus the caller — and a 1-domain pool degrades
      to plain sequential execution with no synchronisation overhead.
      This also makes nested [map_chunked] calls deadlock-free: a
      worker that fans out again just helps drain the queue.
    - {b Exception re-raising.}  If any item raises, the exception of
      the {e lowest-indexed} failing chunk is re-raised in the caller
      (with its backtrace), again independent of scheduling. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains:n ()] builds a pool of [n] total domains: [n-1]
    spawned workers plus the calling domain.  [n] defaults to
    {!default_domains}.  [n] is clamped to [[1, 64]].
    @raise Invalid_argument if [domains < 1]. *)

val default_domains : unit -> int
(** The [TEP_DOMAINS] environment variable if set (clamped to
    [[1, 64]]), otherwise [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** A lazily-created process-wide pool of {!default_domains} domains.
    Never shut down explicitly; workers die with the process. *)

val sequential : t
(** A shared 1-domain pool (no spawned workers): forces the
    sequential path, e.g. for determinism baselines. *)

val size : t -> int
(** Total domains (workers + caller). *)

val map_chunked :
  ?serial_below:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_chunked pool f arr] is observationally [Array.map f arr],
    with items partitioned into chunks of [?chunk] elements (default:
    input size / 4×domains) executed across the pool.  [f] must be
    safe to run concurrently with itself.

    [?serial_below] is the adaptive work-size gate: when the input has
    fewer than that many items the whole call runs on the calling
    domain, even on a multi-domain pool — below a per-workload
    threshold the cross-domain wakeup/handoff costs more than the
    parallelism recovers (the 1-core pooled write path was measurably
    {e slower} than serial before this gate existed).  Results are
    identical either way; only the scheduling changes.  Defaults to 0
    (never gate). *)

val map_list :
  ?serial_below:int -> ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map] counterpart of {!map_chunked} (order preserved). *)

val parallel_for :
  ?serial_below:int -> ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) ->
  unit
(** [parallel_for pool ~lo ~hi f] runs [f i] for every [i] in
    [lo..hi] inclusive (like [for i = lo to hi]), partitioned across
    the pool.  [f] communicates through its own (disjoint or
    synchronised) state.  [?serial_below] as in {!map_chunked}. *)

val shutdown : t -> unit
(** Join the pool's workers.  Idempotent.  Pending queued work is
    drained first; calls issued after shutdown run entirely in the
    caller (still correct, just sequential). *)
