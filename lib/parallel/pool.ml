type task = unit -> unit

type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  queue : task Queue.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
  domains : int; (* total, including the submitting caller *)
}

let clamp_domains n = max 1 (min 64 n)

let default_domains () =
  match Sys.getenv_opt "TEP_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> clamp_domains n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Workers drain the queue even when closing, so shutdown never strands
   submitted work.  Tasks are exception-proofed at submission time (the
   chunk runners below catch everything), but a stray raise must not
   kill a worker either. *)
let worker_loop pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    let rec next () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.work_available pool.lock;
        next ()
      end
    in
    let task = next () in
    Mutex.unlock pool.lock;
    match task with
    | None -> ()
    | Some t ->
        (try t () with _ -> ());
        loop ()
  in
  loop ()

let create ?domains () =
  let domains =
    match domains with
    | None -> default_domains ()
    | Some n when n < 1 -> invalid_arg "Pool.create: domains < 1"
    | Some n -> clamp_domains n
  in
  let pool =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      workers = [];
      closed = false;
      domains;
    }
  in
  pool.workers <-
    List.init (domains - 1) (fun _ -> Domain.spawn (worker_loop pool));
  pool

let sequential = create ~domains:1 ()

let default_pool = ref None
let default_lock = Mutex.create ()

let default () =
  Mutex.lock default_lock;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  p

let size pool = pool.domains

let shutdown pool =
  Mutex.lock pool.lock;
  pool.closed <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.lock;
  let ws = pool.workers in
  pool.workers <- [];
  List.iter Domain.join ws

(* ------------------------------------------------------------------ *)
(* Chunked execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Run [run_range lo hi] (inclusive bounds) over [0..n-1] in chunks.
   The caller enqueues all chunks but the first, runs the first
   itself, then helps drain the queue until its own chunks are done.
   Determinism: errors are recorded per chunk and the lowest-indexed
   one is re-raised. *)
let chunked_exec ?(serial_below = 0) pool ~n ~chunk
    (run_range : int -> int -> unit) =
  if n > 0 then begin
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None ->
          let parts = pool.domains * 4 in
          max 1 ((n + parts - 1) / parts)
    in
    let nchunks = (n + chunk - 1) / chunk in
    let sequential_only =
      pool.domains <= 1 || nchunks <= 1 || n < serial_below
    in
    if sequential_only then run_range 0 (n - 1)
    else begin
      let errors :
          (exn * Printexc.raw_backtrace) option array =
        Array.make nchunks None
      in
      let remaining = Atomic.make nchunks in
      let done_lock = Mutex.create () in
      let done_cond = Condition.create () in
      let run_chunk ci =
        let lo = ci * chunk in
        let hi = min (n - 1) (lo + chunk - 1) in
        (try run_range lo hi
         with e ->
           errors.(ci) <- Some (e, Printexc.get_raw_backtrace ()));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_lock;
          Condition.broadcast done_cond;
          Mutex.unlock done_lock
        end
      in
      (* Enqueue chunks 1..nchunks-1 unless the pool is closed (then
         the caller runs everything). *)
      Mutex.lock pool.lock;
      let enqueued = not pool.closed in
      if enqueued then begin
        for ci = 1 to nchunks - 1 do
          Queue.push (fun () -> run_chunk ci) pool.queue
        done;
        Condition.broadcast pool.work_available
      end;
      Mutex.unlock pool.lock;
      run_chunk 0;
      if not enqueued then
        for ci = 1 to nchunks - 1 do
          run_chunk ci
        done;
      (* Help until every chunk of this call has completed.  Tasks we
         pop may belong to a concurrent call on the same pool; running
         them here is correct and keeps the pool busy. *)
      let rec help () =
        if Atomic.get remaining > 0 then begin
          Mutex.lock pool.lock;
          let task =
            if Queue.is_empty pool.queue then None
            else Some (Queue.pop pool.queue)
          in
          Mutex.unlock pool.lock;
          match task with
          | Some t ->
              t ();
              help ()
          | None ->
              (* Our outstanding chunks are running in workers; wait
                 for the completion signal. *)
              Mutex.lock done_lock;
              while Atomic.get remaining > 0 do
                Condition.wait done_cond done_lock
              done;
              Mutex.unlock done_lock
        end
      in
      help ();
      Array.iter
        (function
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        errors
    end
  end

let map_chunked ?serial_below ?chunk pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    chunked_exec ?serial_below pool ~n ~chunk (fun lo hi ->
        for i = lo to hi do
          results.(i) <- Some (f arr.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* all chunks ran *))
      results
  end

let map_list ?serial_below ?chunk pool f l =
  Array.to_list (map_chunked ?serial_below ?chunk pool f (Array.of_list l))

let parallel_for ?serial_below ?chunk pool ~lo ~hi f =
  let n = hi - lo + 1 in
  if n > 0 then
    chunked_exec ?serial_below pool ~n ~chunk (fun clo chi ->
        for i = clo to chi do
          f (lo + i)
        done)
