(** Whole-database snapshots with an integrity trailer.

    Format: magic, database encoding, SHA-256 of the body.  A snapshot
    whose trailer does not match is rejected — the storage layer's own
    (non-cryptographic-keyed) tamper check, independent of the
    provenance checksums built on top. *)

val to_string : Database.t -> string
val of_string : string -> (Database.t, string) result

val write_atomic : string -> string -> (unit, string) result
(** [write_atomic path data] durably replaces [path] with [data]:
    temp file, fsync, rename.  On any failure (including between open
    and rename) the channel is closed and the temp file removed, and
    transient I/O errors are retried a bounded number of times.  Used
    by {!save} and by checkpoint generations. *)

val save : Database.t -> string -> (unit, string) result
(** Write atomically (temp file + fsync + rename). *)

val load : string -> (Database.t, string) result
