(** Whole-database snapshots with an integrity trailer.

    Format: magic, database encoding, SHA-256 of the body.  A snapshot
    whose trailer does not match is rejected — the storage layer's own
    (non-cryptographic-keyed) tamper check, independent of the
    provenance checksums built on top. *)

val to_string : Database.t -> string
val of_string : string -> (Database.t, string) result

val save : Database.t -> string -> (unit, string) result
(** Write atomically (temp file + rename). *)

val load : string -> (Database.t, string) result
