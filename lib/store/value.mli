(** Typed cell values for the relational engine. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Blob of string

type ty = TBool | TInt | TFloat | TText | TBlob

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string

val conforms : ty -> t -> bool
(** [Null] conforms to every type (nullability is checked by
    {!Schema}). *)

val compare : t -> t -> int
(** Total order: [Null] sorts first, then by type, then by value. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : Buffer.t -> t -> unit
(** Deterministic tagged binary encoding (also the hashing input — two
    values encode equal iff they are equal). *)

val decode : string -> int -> t * int
(** [decode s off] returns the value and the offset just past it.
    @raise Failure on malformed input. *)

val encoded : t -> string

(** {1 Wire-format helpers, shared by sibling codecs} *)

val add_varint : Buffer.t -> int -> unit
(** Unsigned LEB128. *)

val add_string : Buffer.t -> string -> unit
(** Length-prefixed bytes. *)

val read_varint : string -> int -> int * int
val read_string : string -> int -> string * int
