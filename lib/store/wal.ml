type entry =
  | Create_table of string * Schema.t
  | Drop_table of string
  | Insert_row of string * int * Value.t array
  | Delete_row of string * int
  | Update_cell of string * int * int * Value.t
  | Update_row of string * int * Value.t array
  | Commit of string
  | Blob of string
  | Prepare of string * string
  | Decide of string * int list

let is_relational = function
  | Create_table _ | Drop_table _ | Insert_row _ | Delete_row _
  | Update_cell _ | Update_row _ ->
      true
  | Commit _ | Blob _ | Prepare _ | Decide _ -> false

type salvage = {
  entries : (int * entry) list;
  skipped_frames : int;
  torn_tail : bool;
  bytes_salvaged : int;
}

let magic = "TEPWAL2\n"
let magic_len = String.length magic

(* Failpoint sites, declared up front so the crash harness can
   enumerate them before any I/O happens. *)
let site_open = "wal.open"
let site_append = "wal.append.frame"
let site_flush = "wal.flush"
let site_sync = "wal.sync"
let site_trunc_write = "wal.truncate.write"
let site_trunc_rename = "wal.truncate.rename"

let () =
  List.iter Tep_fault.Fault.register
    [
      site_open;
      site_append;
      site_flush;
      site_sync;
      site_trunc_write;
      site_trunc_rename;
    ]

type version = V1 | V2

type file_state = {
  path : string;
  mutable oc : out_channel;
  mutable version : version;
  sync_every_append : bool;
}

type sink = Memory of (int * entry) list ref | File of file_state

type t = { sink : sink; mutable count : int; mutable next_seq : int }

(* ------------------------------------------------------------------ *)
(* Entry codec                                                         *)
(* ------------------------------------------------------------------ *)

let encode_cells buf cells =
  Value.add_varint buf (Array.length cells);
  Array.iter (Value.encode buf) cells

let decode_cells s off =
  let n, off = Value.read_varint s off in
  (* every cell costs at least one byte, so a count beyond the
     remaining input is corrupt — reject it before Array.init commits
     to the allocation *)
  if n < 0 || n > String.length s - off then
    failwith "Wal.decode_cells: bad cell count";
  let off = ref off in
  let cells =
    Array.init n (fun _ ->
        let v, o = Value.decode s !off in
        off := o;
        v)
  in
  (cells, !off)

let encode_entry buf = function
  | Create_table (name, schema) ->
      Buffer.add_char buf '\x01';
      Value.add_string buf name;
      Schema.encode buf schema
  | Drop_table name ->
      Buffer.add_char buf '\x02';
      Value.add_string buf name
  | Insert_row (tbl, id, cells) ->
      Buffer.add_char buf '\x03';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      encode_cells buf cells
  | Delete_row (tbl, id) ->
      Buffer.add_char buf '\x04';
      Value.add_string buf tbl;
      Value.add_varint buf id
  | Update_cell (tbl, id, col, v) ->
      Buffer.add_char buf '\x05';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      Value.add_varint buf col;
      Value.encode buf v
  | Update_row (tbl, id, cells) ->
      Buffer.add_char buf '\x06';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      encode_cells buf cells
  | Commit root_hash ->
      Buffer.add_char buf '\x07';
      Value.add_string buf root_hash
  | Blob payload ->
      Buffer.add_char buf '\x08';
      Value.add_string buf payload
  | Prepare (txid, root_hash) ->
      Buffer.add_char buf '\x09';
      Value.add_string buf txid;
      Value.add_string buf root_hash
  | Decide (txid, shards) ->
      Buffer.add_char buf '\x0a';
      Value.add_string buf txid;
      Value.add_varint buf (List.length shards);
      List.iter (Value.add_varint buf) shards

let decode_entry s off =
  if off >= String.length s then failwith "Wal.decode_entry: empty";
  match s.[off] with
  | '\x01' ->
      let name, off = Value.read_string s (off + 1) in
      let schema, off = Schema.decode s off in
      (Create_table (name, schema), off)
  | '\x02' ->
      let name, off = Value.read_string s (off + 1) in
      (Drop_table name, off)
  | '\x03' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let cells, off = decode_cells s off in
      (Insert_row (tbl, id, cells), off)
  | '\x04' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      (Delete_row (tbl, id), off)
  | '\x05' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let col, off = Value.read_varint s off in
      let v, off = Value.decode s off in
      (Update_cell (tbl, id, col, v), off)
  | '\x06' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let cells, off = decode_cells s off in
      (Update_row (tbl, id, cells), off)
  | '\x07' ->
      let h, off = Value.read_string s (off + 1) in
      (Commit h, off)
  | '\x08' ->
      let p, off = Value.read_string s (off + 1) in
      (Blob p, off)
  | '\x09' ->
      let txid, off = Value.read_string s (off + 1) in
      let h, off = Value.read_string s off in
      (Prepare (txid, h), off)
  | '\x0a' ->
      let txid, off = Value.read_string s (off + 1) in
      let n, off = Value.read_varint s off in
      if n < 0 || n > String.length s - off then
        failwith "Wal.decode_entry: bad shard count";
      let off = ref off in
      let shards =
        List.init n (fun _ ->
            let v, o = Value.read_varint s !off in
            off := o;
            v)
      in
      (Decide (txid, shards), !off)
  | c -> failwith (Printf.sprintf "Wal.decode_entry: bad tag %#x" (Char.code c))

(* ------------------------------------------------------------------ *)
(* v2 framing                                                          *)
(* ------------------------------------------------------------------ *)

(* frame := varint(body_len) · body
   body  := varint(seq) · entry · crc32(varint(seq) · entry), 4B BE *)
let encode_frame buf ~seq entry =
  let seqb = Buffer.create 8 in
  Value.add_varint seqb seq;
  let body = Buffer.create 64 in
  encode_entry body entry;
  Value.add_varint buf (Buffer.length seqb + Buffer.length body + 4);
  Buffer.add_buffer buf seqb;
  Buffer.add_buffer buf body;
  (* the checksum is streamed over the two pieces — no concatenated
     payload string is materialised *)
  let crc = Tep_crypto.Crc32.init () in
  Tep_crypto.Crc32.feed crc (Buffer.contents seqb);
  Tep_crypto.Crc32.feed crc (Buffer.contents body);
  Tep_crypto.Crc32.add_be buf (Tep_crypto.Crc32.finalize crc)

(* An upper bound on plausible frame sizes: anything larger is treated
   as a corrupt length, not a torn tail. *)
let max_frame_len = 1 lsl 28

type parse_result =
  | Frame of int * entry * int  (* seq, entry, next offset *)
  | Past_eof  (* frame extends beyond the file: torn-tail candidate *)
  | Bad  (* unparseable or checksum mismatch: corruption *)

let try_frame s off ~min_seq =
  let len = String.length s in
  match Value.read_varint s off with
  | exception Failure msg ->
      (* a varint cut off by EOF is torn; an overlong one is corrupt *)
      if msg = "Value.decode: truncated varint" then Past_eof else Bad
  | flen, o ->
      if flen < 6 || flen > max_frame_len then Bad
      else if o + flen > len then Past_eof
      else begin
        let stored_crc = Tep_crypto.Crc32.read_be s (o + flen - 4) in
        if Tep_crypto.Crc32.compute s o (flen - 4) <> stored_crc then Bad
        else
          match
            let seq, p = Value.read_varint s o in
            let e, p' = decode_entry s p in
            (seq, e, p')
          with
          | exception (Failure _ | Invalid_argument _) -> Bad
          | seq, e, p' ->
              if p' <> o + flen - 4 then Bad
              else if seq < min_seq then Bad
              else Frame (seq, e, o + flen)
      end

(* v2 header: magic · varint(base_seq).  [base_seq] is the sequence
   number the log's first frame is expected to carry; {!truncate}
   rewrites it so a log truncated to empty still remembers where
   numbering resumes (otherwise a reopen would restart at 0 and
   recovery would discard the new frames as already-checkpointed). *)
let salvage_v2_frames s ~len ~base ~start =
  let entries = ref [] in
  let skipped = ref 0 in
  let torn = ref false in
  let salvaged = ref 0 in
  let last_seq = ref (base - 1) in
  let off = ref start in
  (* [skip_cause]: None = at a clean frame boundary; Some c = scanning
     a damaged region whose first failure was [c]. *)
  let skip_cause = ref None in
  while !off < len do
    match try_frame s !off ~min_seq:(!last_seq + 1) with
    | Frame (seq, e, off') ->
        if !skip_cause <> None then begin
          incr skipped;
          skip_cause := None
        end;
        entries := (seq, e) :: !entries;
        last_seq := seq;
        salvaged := !salvaged + (off' - !off);
        off := off'
    | (Past_eof | Bad) as c ->
        if !skip_cause = None then skip_cause := Some c;
        incr off
  done;
  (match !skip_cause with
  | None -> ()
  | Some Past_eof -> torn := true (* the trailing damage is a torn frame *)
  | Some _ -> incr skipped);
  {
    entries = List.rev !entries;
    skipped_frames = !skipped;
    torn_tail = !torn;
    bytes_salvaged = !salvaged;
  }

(* Returns (base_seq, salvage). *)
let salvage_v2 s =
  let len = String.length s in
  match Value.read_varint s magic_len with
  | exception Failure msg ->
      (* header base unreadable: nothing salvageable *)
      ( 0,
        {
          entries = [];
          skipped_frames =
            (if msg = "Value.decode: truncated varint" then 0 else 1);
          torn_tail = msg = "Value.decode: truncated varint";
          bytes_salvaged = 0;
        } )
  | base, header_end -> (base, salvage_v2_frames s ~len ~base ~start:header_end)

(* v1 has no checksums, so there is no reliable way to re-synchronise
   after damage: salvage everything up to the first bad frame. *)
let salvage_v1 s =
  let len = String.length s in
  let entries = ref [] in
  let skipped = ref 0 in
  let torn = ref false in
  let salvaged = ref 0 in
  let seq = ref 0 in
  let off = ref 0 in
  let stop = ref false in
  while (not !stop) && !off < len do
    match Value.read_varint s !off with
    | exception Failure msg ->
        if msg = "Value.decode: truncated varint" then torn := true
        else incr skipped;
        stop := true
    | flen, o ->
        if flen <= 0 || flen > max_frame_len then begin
          incr skipped;
          stop := true
        end
        else if o + flen > len then begin
          torn := true;
          stop := true
        end
        else begin
          match decode_entry s o with
          | exception (Failure _ | Invalid_argument _) ->
              incr skipped;
              stop := true
          | e, o' ->
              if o' <> o + flen then begin
                incr skipped;
                stop := true
              end
              else begin
                entries := (!seq, e) :: !entries;
                incr seq;
                salvaged := !salvaged + (o + flen - !off);
                off := o + flen
              end
        end
  done;
  {
    entries = List.rev !entries;
    skipped_frames = !skipped;
    torn_tail = !torn;
    bytes_salvaged = !salvaged;
  }

let is_v2 s = String.length s >= magic_len && String.sub s 0 magic_len = magic

(* (next expected sequence number, salvage) *)
let salvage_with_base s =
  if s = "" then
    (0, { entries = []; skipped_frames = 0; torn_tail = false; bytes_salvaged = 0 })
  else if is_v2 s then begin
    let base, sv = salvage_v2 s in
    let next =
      match List.rev sv.entries with (seq, _) :: _ -> seq + 1 | [] -> base
    in
    (next, sv)
  end
  else begin
    let sv = salvage_v1 s in
    (List.length sv.entries, sv)
  end

let salvage_string s = snd (salvage_with_base s)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let salvage_file path =
  match read_whole path with
  | s -> Ok (salvage_string s)
  | exception Sys_error e -> Error e

let read_file path = List.map snd (salvage_string (read_whole path)).entries

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let in_memory () = { sink = Memory (ref []); count = 0; next_seq = 0 }

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error (e, _, _) -> raise (Sys_error (Unix.error_message e))

let open_append path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

let open_file ?(sync = false) path =
  Tep_fault.Fault.hit site_open;
  let existing = try read_whole path with Sys_error _ -> "" in
  if existing = "" then begin
    (* Fresh log: stamp the v2 header (magic + base seq 0) first. *)
    let oc = open_append path in
    output_string oc magic;
    let hdr = Buffer.create 2 in
    Value.add_varint hdr 0;
    Buffer.output_buffer oc hdr;
    Stdlib.flush oc;
    {
      sink = File { path; oc; version = V2; sync_every_append = sync };
      count = 0;
      next_seq = 0;
    }
  end
  else begin
    let version = if is_v2 existing then V2 else V1 in
    let next_seq, _sv = salvage_with_base existing in
    let oc = open_append path in
    {
      sink = File { path; oc; version; sync_every_append = sync };
      count = 0;
      next_seq;
    }
  end

let last_seq t = t.next_seq - 1

let append t entry =
  match t.sink with
  | Memory r ->
      let seq = t.next_seq in
      r := (seq, entry) :: !r;
      t.next_seq <- seq + 1;
      t.count <- t.count + 1;
      Ok ()
  | File fs -> (
      let seq = t.next_seq in
      let frame = Buffer.create 96 in
      (match fs.version with
      | V2 -> encode_frame frame ~seq entry
      | V1 ->
          let body = Buffer.create 64 in
          encode_entry body entry;
          Value.add_varint frame (Buffer.length body);
          Buffer.add_buffer frame body);
      let bytes = Buffer.contents frame in
      match
        Tep_fault.Fault.with_retry (fun () ->
            Tep_fault.Fault.output site_append fs.oc bytes;
            if fs.sync_every_append then begin
              Tep_fault.Fault.hit site_flush;
              Stdlib.flush fs.oc;
              Tep_fault.Fault.hit site_sync;
              fsync_oc fs.oc
            end)
      with
      | Ok () ->
          t.next_seq <- seq + 1;
          t.count <- t.count + 1;
          Ok ()
      | Error e -> Error ("Wal.append: " ^ e))

let flush t =
  match t.sink with
  | Memory _ -> Ok ()
  | File fs ->
      Tep_fault.Fault.with_retry (fun () ->
          Tep_fault.Fault.hit site_flush;
          Stdlib.flush fs.oc)

let sync t =
  match t.sink with
  | Memory _ -> Ok ()
  | File fs ->
      Tep_fault.Fault.with_retry (fun () ->
          Tep_fault.Fault.hit site_flush;
          Stdlib.flush fs.oc;
          Tep_fault.Fault.hit site_sync;
          fsync_oc fs.oc)

let close t = match t.sink with Memory _ -> () | File fs -> close_out fs.oc

let checkpoint t =
  match sync t with Ok () -> Ok (last_seq t) | Error e -> Error e

let truncate t ~upto =
  match t.sink with
  | Memory r ->
      r := List.filter (fun (s, _) -> s > upto) !r;
      Ok ()
  | File fs -> (
      match flush t with
      | Error e -> Error ("Wal.truncate: " ^ e)
      | Ok () -> (
          match salvage_file fs.path with
          | Error e -> Error ("Wal.truncate: " ^ e)
          | Ok sv -> (
              let keep = List.filter (fun (s, _) -> s > upto) sv.entries in
              let buf = Buffer.create 4096 in
              Buffer.add_string buf magic;
              (* base seq: where numbering resumes if no frame survives *)
              Value.add_varint buf (upto + 1);
              List.iter (fun (seq, e) -> encode_frame buf ~seq e) keep;
              let data = Buffer.contents buf in
              let tmp = fs.path ^ ".tmp" in
              let write_tmp () =
                let oc = open_out_bin tmp in
                let ok = ref false in
                Fun.protect
                  ~finally:(fun () ->
                    if not !ok then begin
                      close_out_noerr oc;
                      try Sys.remove tmp with Sys_error _ -> ()
                    end)
                  (fun () ->
                    Tep_fault.Fault.output site_trunc_write oc data;
                    Stdlib.flush oc;
                    fsync_oc oc;
                    close_out oc;
                    ok := true)
              in
              match Tep_fault.Fault.with_retry write_tmp with
              | Error e -> Error ("Wal.truncate: " ^ e)
              | Ok () -> (
                  close_out_noerr fs.oc;
                  let rename () =
                    Tep_fault.Fault.hit site_trunc_rename;
                    Sys.rename tmp fs.path
                  in
                  match rename () with
                  | () ->
                      fs.oc <- open_append fs.path;
                      fs.version <- V2;
                      Ok ()
                  | exception Sys_error e ->
                      (try Sys.remove tmp with Sys_error _ -> ());
                      fs.oc <- open_append fs.path;
                      Error ("Wal.truncate: rename: " ^ e)))))

let entries t =
  match t.sink with
  | Memory r -> List.rev_map snd !r
  | File fs ->
      Stdlib.flush fs.oc;
      read_file fs.path

let entry_count t = t.count

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let replay entries db =
  let apply = function
    | Create_table (name, schema) -> (
        match Database.create_table db ~name schema with
        | Ok _ -> Ok ()
        | Error e -> Error e)
    | Drop_table name ->
        if Database.drop_table db name then Ok ()
        else Error (Printf.sprintf "drop: no table %s" name)
    | Insert_row (tbl, id, cells) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "insert: no table %s" tbl)
        | Some t -> Table.insert_with_id t id cells)
    | Delete_row (tbl, id) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "delete: no table %s" tbl)
        | Some t ->
            if Table.delete t id then Ok ()
            else Error (Printf.sprintf "delete: no row %d in %s" id tbl))
    | Update_cell (tbl, id, col, v) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "update: no table %s" tbl)
        | Some t -> (
            match Table.update_cell t id col v with
            | Ok _ -> Ok ()
            | Error e -> Error e))
    | Update_row (tbl, id, cells) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "update: no table %s" tbl)
        | Some t -> (
            match Table.update_row t id cells with
            | Ok _ -> Ok ()
            | Error e -> Error e))
    | Commit _ | Blob _ | Prepare _ | Decide _ -> Ok ()
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> apply e)
    (Ok ()) entries

let load_and_replay path db =
  match salvage_file path with
  | Error e -> Error e
  | Ok sv ->
      let entries = List.map snd sv.entries in
      (match replay entries db with
      | Ok () -> Ok (List.length entries)
      | Error e -> Error e)
