type entry =
  | Create_table of string * Schema.t
  | Drop_table of string
  | Insert_row of string * int * Value.t array
  | Delete_row of string * int
  | Update_cell of string * int * int * Value.t
  | Update_row of string * int * Value.t array

type sink = Memory of entry list ref | File of string * out_channel

type t = { sink : sink; mutable count : int }

let in_memory () = { sink = Memory (ref []); count = 0 }

let open_file path =
  let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
  { sink = File (path, oc); count = 0 }

let encode_cells buf cells =
  Value.add_varint buf (Array.length cells);
  Array.iter (Value.encode buf) cells

let decode_cells s off =
  let n, off = Value.read_varint s off in
  let off = ref off in
  let cells =
    Array.init n (fun _ ->
        let v, o = Value.decode s !off in
        off := o;
        v)
  in
  (cells, !off)

let encode_entry buf = function
  | Create_table (name, schema) ->
      Buffer.add_char buf '\x01';
      Value.add_string buf name;
      Schema.encode buf schema
  | Drop_table name ->
      Buffer.add_char buf '\x02';
      Value.add_string buf name
  | Insert_row (tbl, id, cells) ->
      Buffer.add_char buf '\x03';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      encode_cells buf cells
  | Delete_row (tbl, id) ->
      Buffer.add_char buf '\x04';
      Value.add_string buf tbl;
      Value.add_varint buf id
  | Update_cell (tbl, id, col, v) ->
      Buffer.add_char buf '\x05';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      Value.add_varint buf col;
      Value.encode buf v
  | Update_row (tbl, id, cells) ->
      Buffer.add_char buf '\x06';
      Value.add_string buf tbl;
      Value.add_varint buf id;
      encode_cells buf cells

let decode_entry s off =
  if off >= String.length s then failwith "Wal.decode_entry: empty";
  match s.[off] with
  | '\x01' ->
      let name, off = Value.read_string s (off + 1) in
      let schema, off = Schema.decode s off in
      (Create_table (name, schema), off)
  | '\x02' ->
      let name, off = Value.read_string s (off + 1) in
      (Drop_table name, off)
  | '\x03' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let cells, off = decode_cells s off in
      (Insert_row (tbl, id, cells), off)
  | '\x04' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      (Delete_row (tbl, id), off)
  | '\x05' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let col, off = Value.read_varint s off in
      let v, off = Value.decode s off in
      (Update_cell (tbl, id, col, v), off)
  | '\x06' ->
      let tbl, off = Value.read_string s (off + 1) in
      let id, off = Value.read_varint s off in
      let cells, off = decode_cells s off in
      (Update_row (tbl, id, cells), off)
  | c -> failwith (Printf.sprintf "Wal.decode_entry: bad tag %#x" (Char.code c))

(* On-disk framing: varint length + entry bytes, so a torn final write
   is detectable as a truncated frame. *)
let append t entry =
  t.count <- t.count + 1;
  match t.sink with
  | Memory r -> r := entry :: !r
  | File (_, oc) ->
      let body = Buffer.create 64 in
      encode_entry body entry;
      let frame = Buffer.create 72 in
      Value.add_varint frame (Buffer.length body);
      Buffer.add_buffer frame body;
      output_string oc (Buffer.contents frame)

let flush t = match t.sink with Memory _ -> () | File (_, oc) -> Stdlib.flush oc

let close t = match t.sink with Memory _ -> () | File (_, oc) -> close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let entries = ref [] in
  let off = ref 0 in
  (try
     while !off < len do
       let flen, o = Value.read_varint s !off in
       if o + flen > len then raise Exit (* torn tail frame: stop *)
       else begin
         let e, o' = decode_entry s o in
         if o' <> o + flen then failwith "Wal: frame length mismatch";
         entries := e :: !entries;
         off := o + flen
       end
     done
   with Exit -> ());
  List.rev !entries

let entries t =
  match t.sink with
  | Memory r -> List.rev !r
  | File (path, oc) ->
      Stdlib.flush oc;
      read_file path

let entry_count t = t.count

let replay entries db =
  let apply = function
    | Create_table (name, schema) -> (
        match Database.create_table db ~name schema with
        | Ok _ -> Ok ()
        | Error e -> Error e)
    | Drop_table name ->
        if Database.drop_table db name then Ok ()
        else Error (Printf.sprintf "drop: no table %s" name)
    | Insert_row (tbl, id, cells) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "insert: no table %s" tbl)
        | Some t -> Table.insert_with_id t id cells)
    | Delete_row (tbl, id) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "delete: no table %s" tbl)
        | Some t ->
            if Table.delete t id then Ok ()
            else Error (Printf.sprintf "delete: no row %d in %s" id tbl))
    | Update_cell (tbl, id, col, v) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "update: no table %s" tbl)
        | Some t -> (
            match Table.update_cell t id col v with
            | Ok _ -> Ok ()
            | Error e -> Error e))
    | Update_row (tbl, id, cells) -> (
        match Database.get_table db tbl with
        | None -> Error (Printf.sprintf "update: no table %s" tbl)
        | Some t -> (
            match Table.update_row t id cells with
            | Ok _ -> Ok ()
            | Error e -> Error e))
  in
  List.fold_left
    (fun acc e -> match acc with Error _ -> acc | Ok () -> apply e)
    (Ok ()) entries

let load_and_replay path db =
  let entries = read_file path in
  match replay entries db with
  | Ok () -> Ok (List.length entries)
  | Error e -> Error e
