type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t
  | IsNull of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let cmp_ok op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec matches schema pred (row : Table.row) =
  match pred with
  | True -> Ok true
  | Cmp (col, op, v) -> (
      match Schema.column_index schema col with
      | None -> Error (Printf.sprintf "unknown column %s" col)
      | Some i ->
          let cell = row.Table.cells.(i) in
          if cell = Value.Null then Ok false (* SQL: NULL compares unknown *)
          else Ok (cmp_ok op (Value.compare cell v)))
  | IsNull col -> (
      match Schema.column_index schema col with
      | None -> Error (Printf.sprintf "unknown column %s" col)
      | Some i -> Ok (row.Table.cells.(i) = Value.Null))
  | And (a, b) -> (
      match matches schema a row with
      | Ok true -> matches schema b row
      | r -> r)
  | Or (a, b) -> (
      match matches schema a row with
      | Ok false -> matches schema b row
      | r -> r)
  | Not a -> (
      match matches schema a row with Ok b -> Ok (not b) | Error e -> Error e)

let scan table pred f =
  let schema = Table.schema table in
  let err = ref None in
  Table.iter
    (fun row ->
      if !err = None then
        match matches schema pred row with
        | Ok true -> f row
        | Ok false -> ()
        | Error e -> err := Some e)
    table;
  match !err with None -> Ok () | Some e -> Error e

let select table pred =
  let acc = ref [] in
  match scan table pred (fun r -> acc := r :: !acc) with
  | Ok () -> Ok (List.rev !acc)
  | Error e -> Error e

let count table pred =
  let n = ref 0 in
  match scan table pred (fun _ -> incr n) with
  | Ok () -> Ok !n
  | Error e -> Error e

let delete_where table pred =
  match select table pred with
  | Error e -> Error e
  | Ok rows ->
      let ids = List.map (fun r -> r.Table.id) rows in
      List.iter (fun id -> ignore (Table.delete table id)) ids;
      Ok ids

let update_where table pred assignments =
  let schema = Table.schema table in
  let resolved =
    List.map
      (fun (col, v) ->
        match Schema.column_index schema col with
        | None -> Error (Printf.sprintf "unknown column %s" col)
        | Some i -> Ok (i, v))
      assignments
  in
  match
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Error e, _ -> Error e
        | Ok l, Ok x -> Ok (x :: l)
        | Ok _, Error e -> Error e)
      (Ok []) resolved
  with
  | Error e -> Error e
  | Ok assignments -> (
      match select table pred with
      | Error e -> Error e
      | Ok rows ->
          let ids = List.map (fun r -> r.Table.id) rows in
          let err = ref None in
          List.iter
            (fun id ->
              List.iter
                (fun (col, v) ->
                  if !err = None then
                    match Table.update_cell table id col v with
                    | Ok _ -> ()
                    | Error e -> err := Some e)
                assignments)
            ids;
          (match !err with None -> Ok ids | Some e -> Error e))

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

let numeric v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let aggregate_rows schema rows agg =
  let col_values col =
        match Schema.column_index schema col with
        | None -> Error (Printf.sprintf "unknown column %s" col)
        | Some i ->
            Ok
              (List.filter_map
                 (fun r ->
                   let v = r.Table.cells.(i) in
                   if v = Value.Null then None else Some v)
                 rows)
      in
      match agg with
      | Count -> Ok (Value.Int (List.length rows))
      | Sum col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok vs -> (
              match List.map numeric vs with
              | nums when List.for_all Option.is_some nums ->
                  let total =
                    List.fold_left (fun a n -> a +. Option.get n) 0. nums
                  in
                  (* Preserve int-ness when all inputs are ints. *)
                  if List.for_all (function Value.Int _ -> true | _ -> false) vs
                  then Ok (Value.Int (int_of_float total))
                  else Ok (Value.Float total)
              | _ -> Error (Printf.sprintf "column %s is not numeric" col)))
      | Avg col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok vs -> (
              match List.map numeric vs with
              | nums when List.for_all Option.is_some nums ->
                  let total =
                    List.fold_left (fun a n -> a +. Option.get n) 0. nums
                  in
                  Ok (Value.Float (total /. float_of_int (List.length vs)))
              | _ -> Error (Printf.sprintf "column %s is not numeric" col)))
      | Min col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok (v :: vs) ->
              Ok (List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs))
      | Max col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok (v :: vs) ->
              Ok (List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs))

let aggregate table pred agg =
  match select table pred with
  | Error e -> Error e
  | Ok rows -> aggregate_rows (Table.schema table) rows agg

let cmp_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_pred fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Cmp (c, op, v) -> Format.fprintf fmt "%s %s %a" c (cmp_name op) Value.pp v
  | IsNull c -> Format.fprintf fmt "%s is null" c
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf fmt "not %a" pp_pred a

let pred_to_string p = Format.asprintf "%a" pp_pred p

(* ------------------------------------------------------------------ *)
(* Parsing: the inverse of [pp_pred], plus the unparenthesised         *)
(* conjunction syntax users type on the command line.                  *)
(* ------------------------------------------------------------------ *)

let cmp_of_name = function
  | "=" -> Some Eq
  | "<>" | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

type token = Word of string | Quoted of string | Lparen | Rparen

exception Parse_error of string

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Word (Buffer.contents buf) :: !toks;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> flush ()
    | '(' ->
        flush ();
        toks := Lparen :: !toks
    | ')' ->
        flush ();
        toks := Rparen :: !toks
    | ('\'' | '"') as q ->
        flush ();
        let j = ref (!i + 1) in
        while !j < n && s.[!j] <> q do
          incr j
        done;
        if !j >= n then raise (Parse_error "unterminated quote");
        toks := Quoted (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
        i := !j
    | c -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !toks

let keyword = function
  | Word w -> Some (String.lowercase_ascii w)
  | _ -> None

let value_of_word w =
  if w = "NULL" || String.lowercase_ascii w = "null" then Value.Null
  else
    match w with
    | "true" -> Value.Bool true
    | "false" -> Value.Bool false
    | _ -> (
        match int_of_string_opt w with
        | Some i -> Value.Int i
        | None -> (
            match float_of_string_opt w with
            | Some f -> Value.Float f
            | None ->
                if
                  String.length w > 2
                  && String.sub w 0 2 = "0x"
                then
                  try
                    Value.Blob
                      (Tep_crypto.Digest_algo.of_hex
                         (String.sub w 2 (String.length w - 2)))
                  with Invalid_argument _ -> Value.Text w
                else Value.Text w))

(* A value runs to the next token the predicate grammar owns. *)
let rec take_value acc toks =
  match toks with
  | [] | Rparen :: _ -> (List.rev acc, toks)
  | t :: _ when keyword t = Some "and" || keyword t = Some "or" ->
      (List.rev acc, toks)
  | t :: rest -> take_value (t :: acc) rest

let parse_value toks =
  match take_value [] toks with
  | [], _ -> raise (Parse_error "expected a value")
  | [ Quoted s ], rest -> (Value.Text s, rest)
  | words, rest ->
      let text =
        String.concat " "
          (List.map
             (function
               | Word w -> w
               | Quoted s -> s
               | Lparen -> "("
               | Rparen -> ")")
             words)
      in
      ((match words with [ Word w ] -> value_of_word w | _ -> Value.Text text),
       rest)

let rec parse_or toks =
  let left, toks = parse_and toks in
  match toks with
  | t :: rest when keyword t = Some "or" ->
      let right, toks = parse_or rest in
      (Or (left, right), toks)
  | _ -> (left, toks)

and parse_and toks =
  let left, toks = parse_unary toks in
  match toks with
  | t :: rest when keyword t = Some "and" ->
      let right, toks = parse_and rest in
      (And (left, right), toks)
  | _ -> (left, toks)

and parse_unary toks =
  match toks with
  | t :: rest when keyword t = Some "not" ->
      let p, toks = parse_unary rest in
      (Not p, toks)
  | Lparen :: rest -> (
      let p, toks = parse_or rest in
      match toks with
      | Rparen :: rest -> (p, rest)
      | _ -> raise (Parse_error "expected )"))
  | Word "true" :: ((([] | Rparen :: _) as rest)) -> (True, rest)
  | Word "true" :: (t :: _ as rest)
    when keyword t = Some "and" || keyword t = Some "or" ->
      (True, rest)
  | Word col :: rest -> (
      match rest with
      | t :: rest' when keyword t = Some "is" -> (
          match rest' with
          | u :: rest'' when keyword u = Some "null" -> (IsNull col, rest'')
          | u :: v :: rest''
            when keyword u = Some "not" && keyword v = Some "null" ->
              (Not (IsNull col), rest'')
          | _ -> raise (Parse_error "expected null after is"))
      | Word op :: rest' when cmp_of_name op <> None ->
          let v, toks = parse_value rest' in
          (Cmp (col, Option.get (cmp_of_name op), v), toks)
      | _ ->
          raise
            (Parse_error
               (Printf.sprintf "expected comparison after column %s" col)))
  | _ -> raise (Parse_error "expected a predicate")

let pred_of_string s =
  match
    let toks = tokenize s in
    if toks = [] then Ok True
    else
      let p, rest = parse_or toks in
      if rest = [] then Ok p else Error "trailing input after predicate"
  with
  | r -> r
  | exception Parse_error e -> Error ("predicate: " ^ e)

(* Predicate literals parse untyped ("5" is an [Int] even when the
   column holds floats); retype them against the schema so comparisons
   land in the column's domain.  Unconvertible literals are left
   alone — [matches] then compares across types, which is simply
   never-equal. *)
let coerce_value ty (v : Value.t) =
  match (ty, v) with
  | _, Value.Null -> v
  | Value.TInt, Value.Float f when Float.is_integer f ->
      Value.Int (int_of_float f)
  | Value.TInt, Value.Text s -> (
      match int_of_string_opt s with Some i -> Value.Int i | None -> v)
  | Value.TFloat, Value.Int i -> Value.Float (float_of_int i)
  | Value.TFloat, Value.Text s -> (
      match float_of_string_opt s with Some f -> Value.Float f | None -> v)
  | Value.TBool, Value.Text s -> (
      match bool_of_string_opt s with Some b -> Value.Bool b | None -> v)
  | Value.TText, (Value.Bool _ | Value.Int _ | Value.Float _ | Value.Blob _) ->
      Value.Text (Value.to_string v)
  | Value.TBlob, Value.Text s
    when String.length s > 2 && String.sub s 0 2 = "0x" -> (
      try Value.Blob (Tep_crypto.Digest_algo.of_hex (String.sub s 2 (String.length s - 2)))
      with Invalid_argument _ -> v)
  | _ -> v

let rec coerce_pred schema p =
  match p with
  | True | IsNull _ -> p
  | Cmp (col, op, v) -> (
      match Schema.column_index schema col with
      | Some i -> Cmp (col, op, coerce_value (Schema.column_at schema i).Schema.ty v)
      | None -> p)
  | And (a, b) -> And (coerce_pred schema a, coerce_pred schema b)
  | Or (a, b) -> Or (coerce_pred schema a, coerce_pred schema b)
  | Not a -> Not (coerce_pred schema a)

(* ------------------------------------------------------------------ *)
(* Aggregate names                                                     *)
(* ------------------------------------------------------------------ *)

let agg_to_string = function
  | Count -> "count(*)"
  | Sum c -> Printf.sprintf "sum(%s)" c
  | Avg c -> Printf.sprintf "avg(%s)" c
  | Min c -> Printf.sprintf "min(%s)" c
  | Max c -> Printf.sprintf "max(%s)" c

let agg_of_string s =
  let s = String.trim s in
  let lower = String.lowercase_ascii s in
  if lower = "count" || lower = "count(*)" then Ok Count
  else
    match (String.index_opt s '(', String.rindex_opt s ')') with
    | Some l, Some r when r = String.length s - 1 && l < r ->
        let f = String.lowercase_ascii (String.sub s 0 l) in
        let col = String.trim (String.sub s (l + 1) (r - l - 1)) in
        if col = "" then Error "aggregate: empty column"
        else (
          match f with
          | "sum" -> Ok (Sum col)
          | "avg" -> Ok (Avg col)
          | "min" -> Ok (Min col)
          | "max" -> Ok (Max col)
          | "count" -> Ok Count
          | _ -> Error (Printf.sprintf "aggregate: unknown function %s" f))
    | _ ->
        Error
          (Printf.sprintf
             "aggregate: expected count, sum(col), avg(col), min(col) or \
              max(col), got %s"
             s)
