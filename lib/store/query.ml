type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t
  | IsNull of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let cmp_ok op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec matches schema pred (row : Table.row) =
  match pred with
  | True -> Ok true
  | Cmp (col, op, v) -> (
      match Schema.column_index schema col with
      | None -> Error (Printf.sprintf "unknown column %s" col)
      | Some i ->
          let cell = row.Table.cells.(i) in
          if cell = Value.Null then Ok false (* SQL: NULL compares unknown *)
          else Ok (cmp_ok op (Value.compare cell v)))
  | IsNull col -> (
      match Schema.column_index schema col with
      | None -> Error (Printf.sprintf "unknown column %s" col)
      | Some i -> Ok (row.Table.cells.(i) = Value.Null))
  | And (a, b) -> (
      match matches schema a row with
      | Ok true -> matches schema b row
      | r -> r)
  | Or (a, b) -> (
      match matches schema a row with
      | Ok false -> matches schema b row
      | r -> r)
  | Not a -> (
      match matches schema a row with Ok b -> Ok (not b) | Error e -> Error e)

let scan table pred f =
  let schema = Table.schema table in
  let err = ref None in
  Table.iter
    (fun row ->
      if !err = None then
        match matches schema pred row with
        | Ok true -> f row
        | Ok false -> ()
        | Error e -> err := Some e)
    table;
  match !err with None -> Ok () | Some e -> Error e

let select table pred =
  let acc = ref [] in
  match scan table pred (fun r -> acc := r :: !acc) with
  | Ok () -> Ok (List.rev !acc)
  | Error e -> Error e

let count table pred =
  let n = ref 0 in
  match scan table pred (fun _ -> incr n) with
  | Ok () -> Ok !n
  | Error e -> Error e

let delete_where table pred =
  match select table pred with
  | Error e -> Error e
  | Ok rows ->
      let ids = List.map (fun r -> r.Table.id) rows in
      List.iter (fun id -> ignore (Table.delete table id)) ids;
      Ok ids

let update_where table pred assignments =
  let schema = Table.schema table in
  let resolved =
    List.map
      (fun (col, v) ->
        match Schema.column_index schema col with
        | None -> Error (Printf.sprintf "unknown column %s" col)
        | Some i -> Ok (i, v))
      assignments
  in
  match
    List.fold_left
      (fun acc r ->
        match (acc, r) with
        | Error e, _ -> Error e
        | Ok l, Ok x -> Ok (x :: l)
        | Ok _, Error e -> Error e)
      (Ok []) resolved
  with
  | Error e -> Error e
  | Ok assignments -> (
      match select table pred with
      | Error e -> Error e
      | Ok rows ->
          let ids = List.map (fun r -> r.Table.id) rows in
          let err = ref None in
          List.iter
            (fun id ->
              List.iter
                (fun (col, v) ->
                  if !err = None then
                    match Table.update_cell table id col v with
                    | Ok _ -> ()
                    | Error e -> err := Some e)
                assignments)
            ids;
          (match !err with None -> Ok ids | Some e -> Error e))

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

let numeric v =
  match v with
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let aggregate table pred agg =
  match select table pred with
  | Error e -> Error e
  | Ok rows -> (
      let schema = Table.schema table in
      let col_values col =
        match Schema.column_index schema col with
        | None -> Error (Printf.sprintf "unknown column %s" col)
        | Some i ->
            Ok
              (List.filter_map
                 (fun r ->
                   let v = r.Table.cells.(i) in
                   if v = Value.Null then None else Some v)
                 rows)
      in
      match agg with
      | Count -> Ok (Value.Int (List.length rows))
      | Sum col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok vs -> (
              match List.map numeric vs with
              | nums when List.for_all Option.is_some nums ->
                  let total =
                    List.fold_left (fun a n -> a +. Option.get n) 0. nums
                  in
                  (* Preserve int-ness when all inputs are ints. *)
                  if List.for_all (function Value.Int _ -> true | _ -> false) vs
                  then Ok (Value.Int (int_of_float total))
                  else Ok (Value.Float total)
              | _ -> Error (Printf.sprintf "column %s is not numeric" col)))
      | Avg col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok vs -> (
              match List.map numeric vs with
              | nums when List.for_all Option.is_some nums ->
                  let total =
                    List.fold_left (fun a n -> a +. Option.get n) 0. nums
                  in
                  Ok (Value.Float (total /. float_of_int (List.length vs)))
              | _ -> Error (Printf.sprintf "column %s is not numeric" col)))
      | Min col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok (v :: vs) ->
              Ok (List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v vs))
      | Max col -> (
          match col_values col with
          | Error e -> Error e
          | Ok [] -> Ok Value.Null
          | Ok (v :: vs) ->
              Ok (List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v vs)))

let cmp_name = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_pred fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Cmp (c, op, v) -> Format.fprintf fmt "%s %s %a" c (cmp_name op) Value.pp v
  | IsNull c -> Format.fprintf fmt "%s is null" c
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp_pred a pp_pred b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp_pred a pp_pred b
  | Not a -> Format.fprintf fmt "not %a" pp_pred a
