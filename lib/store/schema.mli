(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty; nullable : bool }

type t

val make : column list -> t
(** @raise Invalid_argument on duplicate or empty column names, or an
    empty column list. *)

val columns : t -> column list
val arity : t -> int

val column_at : t -> int -> column
(** @raise Invalid_argument if out of range. *)

val column_index : t -> string -> int option
val column_index_exn : t -> string -> int
(** @raise Not_found if absent. *)

val validate_row : t -> Value.t array -> (unit, string) result
(** Check arity, types, and nullability. *)

val to_string : t -> string
val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int

val all_int : string list -> t
(** Convenience: non-nullable integer columns with the given names
    (the paper's synthetic tables are all-integer). *)
