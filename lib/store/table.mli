(** A mutable relational table: schema + rows addressed by stable
    integer row ids. *)

type row = { id : int; cells : Value.t array }

type t

val create : name:string -> Schema.t -> t
val name : t -> string
val schema : t -> Schema.t

val insert : t -> Value.t array -> (int, string) result
(** Insert a row; returns the fresh row id.  Fails (with a message) if
    the row does not validate against the schema. *)

val insert_with_id : t -> int -> Value.t array -> (unit, string) result
(** Insert with a caller-chosen id (WAL replay / snapshot load).
    Fails if the id is taken.  Bumps the id allocator past [id]. *)

val delete : t -> int -> bool
(** [delete t id] removes a row; [false] if absent. *)

val get : t -> int -> row option

val update_cell : t -> int -> int -> Value.t -> (Value.t, string) result
(** [update_cell t row_id col_idx v] sets one cell and returns the
    previous value. *)

val update_row : t -> int -> Value.t array -> (Value.t array, string) result
(** Replace all cells of a row; returns the previous cells. *)

val row_count : t -> int

val iter : (row -> unit) -> t -> unit
(** Iterate in increasing row-id order (deterministic). *)

val fold : ('a -> row -> 'a) -> 'a -> t -> 'a
val rows : t -> row list
(** In increasing id order. *)

val row_ids : t -> int list

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
