(** A named collection of tables — the "back-end database" of the
    paper's experimental setup (and also the provenance database). *)

type t

val create : name:string -> t
val name : t -> string

val create_table : t -> name:string -> Schema.t -> (Table.t, string) result
val drop_table : t -> string -> bool
val get_table : t -> string -> Table.t option
val get_table_exn : t -> string -> Table.t
(** @raise Not_found *)

val table_names : t -> string list
(** Sorted, deterministic. *)

val tables : t -> Table.t list
(** In name order. *)

val total_rows : t -> int

val node_count : t -> int
(** Number of nodes in the depth-4 tree view (1 root + tables + rows +
    cells), as counted by Table 1(b) of the paper. *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
