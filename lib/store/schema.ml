type column = { name : string; ty : Value.ty; nullable : bool }

type t = { cols : column array; index : (string, int) Hashtbl.t }

let make cols =
  if cols = [] then invalid_arg "Schema.make: no columns";
  let arr = Array.of_list cols in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if c.name = "" then invalid_arg "Schema.make: empty column name";
      if Hashtbl.mem index c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add index c.name i)
    arr;
  { cols = arr; index }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let column_at t i = t.cols.(i)

let column_index t name = Hashtbl.find_opt t.index name

let column_index_exn t name =
  match column_index t name with Some i -> i | None -> raise Not_found

let validate_row t row =
  if Array.length row <> Array.length t.cols then
    Error
      (Printf.sprintf "arity mismatch: expected %d, got %d"
         (Array.length t.cols) (Array.length row))
  else begin
    let err = ref None in
    Array.iteri
      (fun i v ->
        if !err = None then begin
          let c = t.cols.(i) in
          if v = Value.Null && not c.nullable then
            err := Some (Printf.sprintf "column %s is not nullable" c.name)
          else if not (Value.conforms c.ty v) then
            err :=
              Some
                (Printf.sprintf "column %s expects %s" c.name
                   (Value.ty_name c.ty))
        end)
      row;
    match !err with None -> Ok () | Some e -> Error e
  end

let to_string t =
  String.concat ", "
    (List.map
       (fun c ->
         Printf.sprintf "%s %s%s" c.name (Value.ty_name c.ty)
           (if c.nullable then "" else " not null"))
       (columns t))

let ty_tag = function
  | Value.TBool -> 0
  | Value.TInt -> 1
  | Value.TFloat -> 2
  | Value.TText -> 3
  | Value.TBlob -> 4

let ty_of_tag = function
  | 0 -> Value.TBool
  | 1 -> Value.TInt
  | 2 -> Value.TFloat
  | 3 -> Value.TText
  | 4 -> Value.TBlob
  | n -> failwith (Printf.sprintf "Schema.decode: bad type tag %d" n)

let encode buf t =
  Value.add_varint buf (Array.length t.cols);
  Array.iter
    (fun c ->
      Value.add_string buf c.name;
      Buffer.add_char buf (Char.chr (ty_tag c.ty));
      Buffer.add_char buf (if c.nullable then '\x01' else '\x00'))
    t.cols

let decode s off =
  let n, off = Value.read_varint s off in
  let off = ref off in
  let cols =
    List.init n (fun _ ->
        let name, o = Value.read_string s !off in
        if o + 2 > String.length s then failwith "Schema.decode: truncated";
        let ty = ty_of_tag (Char.code s.[o]) in
        let nullable = s.[o + 1] = '\x01' in
        off := o + 2;
        { name; ty; nullable })
  in
  (make cols, !off)

let all_int names =
  make (List.map (fun name -> { name; ty = Value.TInt; nullable = false }) names)
