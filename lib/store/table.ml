type row = { id : int; cells : Value.t array }

type t = {
  name : string;
  schema : Schema.t;
  rows : (int, row) Hashtbl.t;
  mutable next_id : int;
  (* Sorted id cache, invalidated on insert/delete, so that repeated
     in-order scans (hashing, snapshots) avoid an O(n log n) sort. *)
  mutable sorted_ids : int array option;
}

let create ~name schema =
  { name; schema; rows = Hashtbl.create 64; next_id = 0; sorted_ids = None }

let name t = t.name
let schema t = t.schema

let insert t cells =
  match Schema.validate_row t.schema cells with
  | Error e -> Error e
  | Ok () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.rows id { id; cells = Array.copy cells };
      t.sorted_ids <- None;
      Ok id

let insert_with_id t id cells =
  if Hashtbl.mem t.rows id then
    Error (Printf.sprintf "row id %d already exists" id)
  else
    match Schema.validate_row t.schema cells with
    | Error e -> Error e
    | Ok () ->
        Hashtbl.replace t.rows id { id; cells = Array.copy cells };
        if id >= t.next_id then t.next_id <- id + 1;
        t.sorted_ids <- None;
        Ok ()

let delete t id =
  if Hashtbl.mem t.rows id then begin
    Hashtbl.remove t.rows id;
    t.sorted_ids <- None;
    true
  end
  else false

let get t id = Hashtbl.find_opt t.rows id

let update_cell t row_id col v =
  match Hashtbl.find_opt t.rows row_id with
  | None -> Error (Printf.sprintf "no row %d" row_id)
  | Some r ->
      if col < 0 || col >= Schema.arity t.schema then
        Error (Printf.sprintf "no column %d" col)
      else begin
        let c = Schema.column_at t.schema col in
        if v = Value.Null && not c.Schema.nullable then
          Error (Printf.sprintf "column %s is not nullable" c.Schema.name)
        else if not (Value.conforms c.Schema.ty v) then
          Error (Printf.sprintf "column %s expects %s" c.Schema.name
                   (Value.ty_name c.Schema.ty))
        else begin
          let prev = r.cells.(col) in
          r.cells.(col) <- v;
          Ok prev
        end
      end

let update_row t row_id cells =
  match Hashtbl.find_opt t.rows row_id with
  | None -> Error (Printf.sprintf "no row %d" row_id)
  | Some r -> (
      match Schema.validate_row t.schema cells with
      | Error e -> Error e
      | Ok () ->
          let prev = Array.copy r.cells in
          Array.blit cells 0 r.cells 0 (Array.length cells);
          Ok prev)

let row_count t = Hashtbl.length t.rows

let ids_sorted t =
  match t.sorted_ids with
  | Some ids -> ids
  | None ->
      let ids = Array.make (Hashtbl.length t.rows) 0 in
      let i = ref 0 in
      Hashtbl.iter
        (fun id _ ->
          ids.(!i) <- id;
          incr i)
        t.rows;
      Array.sort Stdlib.compare ids;
      t.sorted_ids <- Some ids;
      ids

let iter f t =
  Array.iter (fun id -> f (Hashtbl.find t.rows id)) (ids_sorted t)

let fold f init t =
  Array.fold_left (fun acc id -> f acc (Hashtbl.find t.rows id)) init (ids_sorted t)

let rows t = List.rev (fold (fun acc r -> r :: acc) [] t)
let row_ids t = Array.to_list (ids_sorted t)

let encode buf t =
  Value.add_string buf t.name;
  Schema.encode buf t.schema;
  Value.add_varint buf t.next_id;
  Value.add_varint buf (row_count t);
  iter
    (fun r ->
      Value.add_varint buf r.id;
      Array.iter (Value.encode buf) r.cells)
    t

let decode s off =
  let name, off = Value.read_string s off in
  let schema, off = Schema.decode s off in
  let next_id, off = Value.read_varint s off in
  let count, off = Value.read_varint s off in
  let t = create ~name schema in
  let arity = Schema.arity schema in
  let off = ref off in
  for _ = 1 to count do
    let id, o = Value.read_varint s !off in
    off := o;
    let cells =
      Array.init arity (fun _ ->
          let v, o = Value.decode s !off in
          off := o;
          v)
    in
    Hashtbl.replace t.rows id { id; cells }
  done;
  t.next_id <- next_id;
  (t, !off)
