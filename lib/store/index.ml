(* Value → row-id multimap keyed by the value's deterministic
   encoding. *)

type t = {
  column : string;
  col_idx : int;
  buckets : (string, int list ref) Hashtbl.t; (* encoded value -> ids *)
}

let key v = Value.encoded v

let add_id t v id =
  let k = key v in
  match Hashtbl.find_opt t.buckets k with
  | Some l -> l := id :: !l
  | None -> Hashtbl.replace t.buckets k (ref [ id ])

let remove_id t v id =
  let k = key v in
  match Hashtbl.find_opt t.buckets k with
  | None -> ()
  | Some l ->
      l := List.filter (fun i -> i <> id) !l;
      if !l = [] then Hashtbl.remove t.buckets k

let create table ~column =
  match Schema.column_index (Table.schema table) column with
  | None -> Error (Printf.sprintf "no column %s" column)
  | Some col_idx ->
      let t = { column; col_idx; buckets = Hashtbl.create 256 } in
      Table.iter (fun r -> add_id t r.Table.cells.(col_idx) r.Table.id) table;
      Ok t

let column t = t.column

let lookup t v =
  match Hashtbl.find_opt t.buckets (key v) with
  | Some l -> List.sort compare !l
  | None -> []

let on_insert t id cells = add_id t cells.(t.col_idx) id
let on_delete t id cells = remove_id t cells.(t.col_idx) id

let on_update t id ~old_value ~new_value =
  if not (Value.equal old_value new_value) then begin
    remove_id t old_value id;
    add_id t new_value id
  end

let cardinality t = Hashtbl.length t.buckets

let index_create = create

module Indexed_table = struct
  type table = t
  type nonrec t = { tbl : Table.t; mutable indexes : table list }

  let create tbl = { tbl; indexes = [] }
  let table t = t.tbl

  let add_index t ~column =
    if List.exists (fun ix -> ix.column = column) t.indexes then
      Error (Printf.sprintf "column %s already indexed" column)
    else
      match index_create t.tbl ~column with
      | Error e -> Error e
      | Ok ix ->
          t.indexes <- ix :: t.indexes;
          Ok ()

  let indexed_columns t =
    List.sort compare (List.map (fun ix -> ix.column) t.indexes)

  let insert t cells =
    match Table.insert t.tbl cells with
    | Error e -> Error e
    | Ok id ->
        List.iter (fun ix -> on_insert ix id cells) t.indexes;
        Ok id

  let delete t id =
    match Table.get t.tbl id with
    | None -> false
    | Some r ->
        let deleted = Table.delete t.tbl id in
        if deleted then
          List.iter (fun ix -> on_delete ix id r.Table.cells) t.indexes;
        deleted

  let update_cell t id col v =
    match Table.update_cell t.tbl id col v with
    | Error e -> Error e
    | Ok prev ->
        List.iter
          (fun ix ->
            if ix.col_idx = col then
              on_update ix id ~old_value:prev ~new_value:v)
          t.indexes;
        Ok prev

  let find_index t column =
    List.find_opt (fun ix -> ix.column = column) t.indexes

  let rows_of_ids t ids =
    List.filter_map (Table.get t.tbl) ids

  let select_eq t ~column v =
    match find_index t column with
    | Some ix -> Ok (rows_of_ids t (lookup ix v))
    | None -> Query.select t.tbl (Query.Cmp (column, Query.Eq, v))

  (* Pull one indexable Eq conjunct out of a predicate, returning the
     residual predicate to filter with. *)
  let rec split_indexable t pred =
    match pred with
    | Query.Cmp (col, Query.Eq, v) when find_index t col <> None ->
        Some ((col, v), Query.True)
    | Query.And (a, b) -> (
        match split_indexable t a with
        | Some (hit, residual) -> Some (hit, Query.And (residual, b))
        | None -> (
            match split_indexable t b with
            | Some (hit, residual) -> Some (hit, Query.And (a, residual))
            | None -> None))
    | _ -> None

  let select t pred =
    match split_indexable t pred with
    | None -> Query.select t.tbl pred
    | Some ((col, v), residual) -> (
        let ix = Option.get (find_index t col) in
        let candidates = rows_of_ids t (lookup ix v) in
        let schema = Table.schema t.tbl in
        let rec filter acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest -> (
              match Query.matches schema residual r with
              | Ok true -> filter (r :: acc) rest
              | Ok false -> filter acc rest
              | Error e -> Error e)
        in
        filter [] candidates)
end
