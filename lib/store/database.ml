type t = { name : string; tables : (string, Table.t) Hashtbl.t }

let create ~name = { name; tables = Hashtbl.create 8 }

let name t = t.name

let create_table t ~name schema =
  if Hashtbl.mem t.tables name then
    Error (Printf.sprintf "table %s already exists" name)
  else begin
    let table = Table.create ~name schema in
    Hashtbl.replace t.tables name table;
    Ok table
  end

let drop_table t name =
  if Hashtbl.mem t.tables name then begin
    Hashtbl.remove t.tables name;
    true
  end
  else false

let get_table t name = Hashtbl.find_opt t.tables name

let get_table_exn t name =
  match get_table t name with Some tbl -> tbl | None -> raise Not_found

let table_names t =
  List.sort Stdlib.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [])

let tables t = List.map (get_table_exn t) (table_names t)

let total_rows t =
  List.fold_left (fun acc tbl -> acc + Table.row_count tbl) 0 (tables t)

let node_count t =
  List.fold_left
    (fun acc tbl ->
      acc + 1 + (Table.row_count tbl * (1 + Schema.arity (Table.schema tbl))))
    1 (tables t)

let encode buf t =
  Value.add_string buf t.name;
  Value.add_varint buf (Hashtbl.length t.tables);
  List.iter (fun tbl -> Table.encode buf tbl) (tables t)

let decode s off =
  let name, off = Value.read_string s off in
  let count, off = Value.read_varint s off in
  let t = create ~name in
  let off = ref off in
  for _ = 1 to count do
    let tbl, o = Table.decode s !off in
    off := o;
    Hashtbl.replace t.tables (Table.name tbl) tbl
  done;
  (t, !off)
