(** Write-ahead log: a durable, replayable record of every mutation to
    a {!Database}.  The provenance engine journals backend mutations
    here so a crashed backend can be rebuilt and re-checked against the
    provenance store.

    {1 On-disk format}

    v2 files (the only format written for new logs) begin with the
    header ["TEPWAL2\n" · varint(base_seq)] — [base_seq] is the
    sequence number the first frame is expected to carry, so a log
    {!truncate}d to empty still remembers where numbering resumes —
    and contain frames

    {v varint(body_len) · varint(seq) · entry · crc32(4 bytes, BE) v}

    where [body_len] covers everything after the length varint, [seq]
    is a monotonically increasing frame sequence number (the log's
    LSN), and the CRC-32 covers [varint(seq) · entry].  v1 files (no
    magic, [varint(len) · entry] frames, written by earlier versions)
    are read transparently, with sequence numbers synthesised by
    position; {!truncate} upgrades them to v2.

    Reading is {e salvage-mode}: corruption never raises.  A torn
    final frame is reported as [torn_tail]; a corrupt mid-file frame
    is skipped and the reader re-synchronises on the next frame whose
    CRC validates and whose sequence number continues the monotone
    order, so every intact frame after the damage is still
    recovered. *)

type entry =
  | Create_table of string * Schema.t
  | Drop_table of string
  | Insert_row of string * int * Value.t array  (** table, row id, cells *)
  | Delete_row of string * int
  | Update_cell of string * int * int * Value.t  (** table, row, col, new *)
  | Update_row of string * int * Value.t array
  | Commit of string
      (** commit marker written by the engine at complex-operation
          commit; the payload is the post-commit root hash.  Recovery
          replays only up to the last marker — frames after it belong
          to an operation that never committed. *)
  | Blob of string
      (** opaque payload journaled by upper layers (the engine logs
          each emitted provenance record here, {!Tep_core.Record}
          encoded); ignored by {!replay} *)
  | Prepare of string * string
      (** (txid, root_hash): intent marker for a cross-shard two-phase
          commit.  Written in place of [Commit] by a shard
          participating in a distributed transaction; it becomes a
          commit marker only once the coordinator log carries a
          matching [Decide] for the same txid.  Recovery treats an
          undecided [Prepare] like any non-marker frame, so the
          prepared work is rolled back. *)
  | Decide of string * int list
      (** (txid, participant shard indices): coordinator commit
          decision.  Appended (and flushed) to the coordinator log
          only after every participant's [Prepare] is durable; its
          presence makes each matching [Prepare] a commit marker. *)

val is_relational : entry -> bool
(** True for the six backend-mutating entries, false for
    [Commit]/[Blob]/[Prepare]/[Decide]. *)

type salvage = {
  entries : (int * entry) list;  (** (frame seq, entry), in log order *)
  skipped_frames : int;
      (** corrupt regions skipped mid-file (each maximal damaged run
          counts once — the true frame count inside garbage is
          unknowable) *)
  torn_tail : bool;
      (** the file ends in an incomplete frame (crash mid-append) *)
  bytes_salvaged : int;  (** bytes of intact frames recovered *)
}

type t

val in_memory : unit -> t

val open_file : ?sync:bool -> string -> t
(** Append mode; creates the file (v2) if missing or empty.  Existing
    files are scanned (salvage-mode) to learn the next sequence
    number, and keep their format: v1 logs continue to receive v1
    frames so a mixed-version file never exists.  With [~sync:true]
    every append is flushed and fsynced before returning (durable but
    slow); otherwise call {!flush}/{!sync} at commit boundaries.
    @raise Sys_error if the file cannot be opened. *)

val append : t -> entry -> (unit, string) result
(** Append one entry.  Transient I/O errors are retried a bounded
    number of times; a persistent failure returns [Error] and does
    {e not} count the entry, so {!entry_count} never exceeds what was
    handed to the OS. *)

val flush : t -> (unit, string) result
val sync : t -> (unit, string) result
(** [flush] pushes buffered frames to the OS; [sync] additionally
    fsyncs to the device. *)

val close : t -> unit

val last_seq : t -> int
(** Sequence number of the last appended frame; [-1] when the log is
    empty.  For a reopened file this continues across sessions. *)

val checkpoint : t -> (int, string) result
(** Make everything appended so far durable ([sync]) and return the
    last sequence number — the LSN a snapshot taken {e now} covers.
    Pass it to {!truncate} once the snapshot is safely on disk. *)

val truncate : t -> upto:int -> (unit, string) result
(** Drop all frames with [seq <= upto] (atomically: rewrite to a temp
    file, fsync, rename, reopen).  Surviving frames keep their
    sequence numbers, so LSNs remain comparable across truncations.
    A v1 log is rewritten in v2 format. *)

val entries : t -> entry list
(** All entries appended so far (for an [open_file] log, re-reads the
    file in salvage mode, including entries from previous sessions). *)

val entry_count : t -> int
(** Entries successfully appended through this handle (failed appends
    are not counted). *)

val salvage_file : string -> (salvage, string) result
(** Read a log file in salvage mode.  Never raises on corrupt
    content; [Error] only for I/O failures (missing file, etc.). *)

val read_file : string -> entry list
(** Salvaged entries of a log file, discarding the damage report.
    @raise Sys_error on I/O failure. *)

val replay : entry list -> Database.t -> (unit, string) result
(** Apply entries in order to a database.  [Commit]/[Blob]/[Prepare]/
    [Decide] entries are skipped. *)

val load_and_replay : string -> Database.t -> (int, string) result
(** Salvage a log file and replay it into a database; returns the
    number of entries applied. *)

val encode_entry : Buffer.t -> entry -> unit
val decode_entry : string -> int -> entry * int
