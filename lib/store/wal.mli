(** Write-ahead log: a durable, replayable record of every mutation to
    a {!Database}.  The provenance engine journals backend mutations
    here so a crashed backend can be rebuilt and re-checked against the
    provenance store. *)

type entry =
  | Create_table of string * Schema.t
  | Drop_table of string
  | Insert_row of string * int * Value.t array  (** table, row id, cells *)
  | Delete_row of string * int
  | Update_cell of string * int * int * Value.t  (** table, row, col, new *)
  | Update_row of string * int * Value.t array

type t

val in_memory : unit -> t
val open_file : string -> t
(** Append mode; creates the file if missing. *)

val append : t -> entry -> unit
val flush : t -> unit
val close : t -> unit

val entries : t -> entry list
(** All entries appended so far (for an [open_file] log, re-reads the
    file, including entries from previous sessions). *)

val entry_count : t -> int

val replay : entry list -> Database.t -> (unit, string) result
(** Apply entries in order to a database. *)

val load_and_replay : string -> Database.t -> (int, string) result
(** Replay a log file into a database; returns the entry count. *)

val encode_entry : Buffer.t -> entry -> unit
val decode_entry : string -> int -> entry * int
