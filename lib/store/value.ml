type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Text of string
  | Blob of string

type ty = TBool | TInt | TFloat | TText | TBlob

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Text _ -> Some TText
  | Blob _ -> Some TBlob

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TText -> "text"
  | TBlob -> "blob"

let conforms ty v = match type_of v with None -> true | Some t -> t = ty

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Text _ -> 4
  | Blob _ -> 5

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Text x, Text y -> Stdlib.compare x y
  | Blob x, Blob y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Text s -> s
  | Blob s -> "0x" ^ Tep_crypto.Digest_algo.to_hex s

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* Tag byte, then a fixed or length-prefixed payload.  Ints are
   zig-zag varints so negative values encode compactly. *)

let add_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let add_string buf s =
  add_varint buf (String.length s);
  Buffer.add_string buf s

let encode buf = function
  | Null -> Buffer.add_char buf '\x00'
  | Bool false -> Buffer.add_char buf '\x01'
  | Bool true -> Buffer.add_char buf '\x02'
  | Int i ->
      Buffer.add_char buf '\x03';
      add_varint buf (zigzag i)
  | Float f ->
      Buffer.add_char buf '\x04';
      Buffer.add_int64_be buf (Int64.bits_of_float f)
  | Text s ->
      Buffer.add_char buf '\x05';
      add_string buf s
  | Blob s ->
      Buffer.add_char buf '\x06';
      add_string buf s

let read_varint s off =
  let n = ref 0 and shift = ref 0 and off = ref off and continue = ref true in
  while !continue do
    if !off >= String.length s then failwith "Value.decode: truncated varint";
    let b = Char.code s.[!off] in
    incr off;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
    else if !shift > 63 then failwith "Value.decode: varint overflow"
  done;
  (!n, !off)

let read_string s off =
  let len, off = read_varint s off in
  if off + len > String.length s then failwith "Value.decode: truncated string";
  (String.sub s off len, off + len)

let decode s off =
  if off >= String.length s then failwith "Value.decode: empty";
  match s.[off] with
  | '\x00' -> (Null, off + 1)
  | '\x01' -> (Bool false, off + 1)
  | '\x02' -> (Bool true, off + 1)
  | '\x03' ->
      let n, off' = read_varint s (off + 1) in
      (Int (unzigzag n), off')
  | '\x04' ->
      if off + 9 > String.length s then failwith "Value.decode: truncated float";
      let bits = ref 0L in
      for i = 1 to 8 do
        bits := Int64.logor (Int64.shift_left !bits 8)
                  (Int64.of_int (Char.code s.[off + i]))
      done;
      (Float (Int64.float_of_bits !bits), off + 9)
  | '\x05' ->
      let str, off' = read_string s (off + 1) in
      (Text str, off')
  | '\x06' ->
      let str, off' = read_string s (off + 1) in
      (Blob str, off')
  | c -> failwith (Printf.sprintf "Value.decode: bad tag %#x" (Char.code c))

let encoded v =
  let buf = Buffer.create 16 in
  encode buf v;
  Buffer.contents buf
