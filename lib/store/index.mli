(** Secondary hash indexes over table columns.

    Query's scans are O(rows); an {!Index.t} maintains a value → row-id
    multimap for one column, kept consistent through its own update
    hooks.  {!Indexed_table} bundles a table with any number of
    indexes and routes equality predicates through them. *)

type t

val create : Table.t -> column:string -> (t, string) result
(** Build an index over the current rows.  Fails on unknown columns. *)

val column : t -> string

val lookup : t -> Value.t -> int list
(** Row ids whose indexed cell equals the value, ascending. *)

val on_insert : t -> int -> Value.t array -> unit
(** Notify the index of a row insertion (cells as stored). *)

val on_delete : t -> int -> Value.t array -> unit
val on_update : t -> int -> old_value:Value.t -> new_value:Value.t -> unit

val cardinality : t -> int
(** Number of distinct indexed values. *)

(** A table plus maintained indexes; mutations must go through this
    wrapper to keep the indexes consistent. *)
module Indexed_table : sig
  type table = t
  type t

  val create : Table.t -> t
  val table : t -> Table.t

  val add_index : t -> column:string -> (unit, string) result
  val indexed_columns : t -> string list

  val insert : t -> Value.t array -> (int, string) result
  val delete : t -> int -> bool
  val update_cell : t -> int -> int -> Value.t -> (Value.t, string) result

  val select_eq : t -> column:string -> Value.t -> (Table.row list, string) result
  (** Uses the index when one exists for [column], otherwise falls
      back to a scan. *)

  val select : t -> Query.pred -> (Table.row list, string) result
  (** Routes top-level [Cmp (col, Eq, v)] (or such a conjunct of an
      [And]) through an index and filters the remainder; otherwise
      scans. *)
end
