let magic = "TEPSNAP1"

let to_string db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Database.encode buf db;
  let body = Buffer.contents buf in
  body ^ Tep_crypto.Sha256.digest body

let of_string s =
  let dlen = Tep_crypto.Sha256.digest_size in
  let len = String.length s in
  if len < String.length magic + dlen then Error "snapshot: too short"
  else begin
    let body = String.sub s 0 (len - dlen) in
    let trailer = String.sub s (len - dlen) dlen in
    if not (String.equal (Tep_crypto.Sha256.digest body) trailer) then
      Error "snapshot: integrity trailer mismatch"
    else if not (String.length body >= 8 && String.sub body 0 8 = magic) then
      Error "snapshot: bad magic"
    else
      try
        let db, off = Database.decode body 8 in
        if off <> String.length body then Error "snapshot: trailing garbage"
        else Ok db
      with Failure e -> Error ("snapshot: " ^ e)
  end

let save db path =
  try
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (to_string db);
    close_out oc;
    Sys.rename tmp path;
    Ok ()
  with Sys_error e -> Error e

let load path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s
  with Sys_error e -> Error e
