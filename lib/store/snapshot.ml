let magic = "TEPSNAP1"

(* Failpoint sites (see Tep_fault.Fault); registered at load time so
   the crash harness can enumerate them. *)
let site_open = "snapshot.save.open"
let site_write = "snapshot.save.write"
let site_sync = "snapshot.save.sync"
let site_rename = "snapshot.save.rename"

let () =
  List.iter Tep_fault.Fault.register
    [ site_open; site_write; site_sync; site_rename ]

let to_string db =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Database.encode buf db;
  let body = Buffer.contents buf in
  body ^ Tep_crypto.Sha256.digest body

let of_string s =
  let dlen = Tep_crypto.Sha256.digest_size in
  let len = String.length s in
  if len < String.length magic + dlen then Error "snapshot: too short"
  else begin
    let body = String.sub s 0 (len - dlen) in
    let trailer = String.sub s (len - dlen) dlen in
    if not (String.equal (Tep_crypto.Sha256.digest body) trailer) then
      Error "snapshot: integrity trailer mismatch"
    else if not (String.length body >= 8 && String.sub body 0 8 = magic) then
      Error "snapshot: bad magic"
    else
      try
        let db, off = Database.decode body 8 in
        if off <> String.length body then Error "snapshot: trailing garbage"
        else Ok db
      with Failure e -> Error ("snapshot: " ^ e)
  end

let fsync_oc oc =
  try Unix.fsync (Unix.descr_of_out_channel oc)
  with Unix.Unix_error (e, _, _) -> raise (Sys_error (Unix.error_message e))

(* Crash-safe file replacement: write to <path>.tmp, fsync, then
   rename over <path>.  On ANY failure — including injected crashes —
   the channel is closed and the temp file removed, so no .tmp is
   leaked and the old file survives untouched.  Transient I/O errors
   are retried a bounded number of times. *)
let write_atomic path data =
  let tmp = path ^ ".tmp" in
  let attempt () =
    Tep_fault.Fault.hit site_open;
    let oc = open_out_bin tmp in
    let written = ref false in
    Fun.protect
      ~finally:(fun () ->
        if not !written then begin
          close_out_noerr oc;
          try Sys.remove tmp with Sys_error _ -> ()
        end)
      (fun () ->
        Tep_fault.Fault.output site_write oc data;
        Stdlib.flush oc;
        Tep_fault.Fault.hit site_sync;
        fsync_oc oc;
        close_out oc;
        written := true);
    let rename () =
      Tep_fault.Fault.hit site_rename;
      Sys.rename tmp path
    in
    match rename () with
    | () -> ()
    | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e
  in
  Tep_fault.Fault.with_retry attempt

let save db path = write_atomic path (to_string db)

let load path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e
