(** A small predicate/query layer over {!Table}: filtered scans,
    bulk updates/deletes, and the aggregate functions the provenance
    engine's [Aggregate] operation uses. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t  (** column-name comparison *)
  | IsNull of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val matches : Schema.t -> pred -> Table.row -> (bool, string) result
(** Evaluate a predicate on a row; fails on unknown column names. *)

val select : Table.t -> pred -> (Table.row list, string) result
(** Rows matching the predicate, in row-id order. *)

val count : Table.t -> pred -> (int, string) result

val delete_where : Table.t -> pred -> (int list, string) result
(** Delete matching rows; returns the deleted ids. *)

val update_where :
  Table.t -> pred -> (string * Value.t) list -> (int list, string) result
(** Set the given columns on matching rows; returns the touched ids. *)

(** {1 Aggregates} *)

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

val aggregate : Table.t -> pred -> agg -> (Value.t, string) result
(** [Sum]/[Avg] require numeric columns; [Null] cells are skipped (SQL
    semantics).  Empty input yields [Int 0] for [Count], [Null]
    otherwise. *)

val pp_pred : Format.formatter -> pred -> unit
