(** A small predicate/query layer over {!Table}: filtered scans,
    bulk updates/deletes, and the aggregate functions the provenance
    engine's [Aggregate] operation uses. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | True
  | Cmp of string * cmp * Value.t  (** column-name comparison *)
  | IsNull of string
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val matches : Schema.t -> pred -> Table.row -> (bool, string) result
(** Evaluate a predicate on a row; fails on unknown column names. *)

val select : Table.t -> pred -> (Table.row list, string) result
(** Rows matching the predicate, in row-id order. *)

val count : Table.t -> pred -> (int, string) result

val delete_where : Table.t -> pred -> (int list, string) result
(** Delete matching rows; returns the deleted ids. *)

val update_where :
  Table.t -> pred -> (string * Value.t) list -> (int list, string) result
(** Set the given columns on matching rows; returns the touched ids. *)

(** {1 Aggregates} *)

type agg = Count | Sum of string | Avg of string | Min of string | Max of string

val aggregate : Table.t -> pred -> agg -> (Value.t, string) result
(** [Sum]/[Avg] require numeric columns; [Null] cells are skipped (SQL
    semantics).  Empty input yields [Int 0] for [Count], [Null]
    otherwise. *)

val aggregate_rows : Schema.t -> Table.row list -> agg -> (Value.t, string) result
(** {!aggregate} over an already-selected row list — the annotated
    evaluator reuses this so plain and provenance-carrying aggregation
    cannot drift apart. *)

val pp_pred : Format.formatter -> pred -> unit

(** {1 Predicate text syntax}

    [pred_of_string] is the inverse of {!pp_pred} and also accepts the
    unparenthesised infix form users type on the command line
    ([not] binds tightest, then [and], then [or], parentheses
    override):

    {v age >= 42 and (name = 'Alice' or name is not null) v}

    Values parse untyped: unquoted literals become [NULL], booleans,
    ints, floats, [0x…] blobs or text, in that order; quote a literal
    (['42']) to force text.  Run the result through {!coerce_pred} to
    retype literals against a table's schema. *)

val pred_of_string : string -> (pred, string) result
val pred_to_string : pred -> string

val coerce_pred : Schema.t -> pred -> pred
(** Retype comparison literals to their column's declared type where a
    faithful conversion exists (["5"] → [Int 5] for an int column,
    [Int 5] → [Float 5.] for a float column, anything → its
    {!Value.to_string} for a text column).  Literals that do not
    convert are left untouched. *)

val agg_to_string : agg -> string
(** ["count"], ["sum(col)"], … — inverse of {!agg_of_string}. *)

val agg_of_string : string -> (agg, string) result
