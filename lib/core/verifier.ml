open Tep_tree

type violation =
  | No_provenance of Oid.t
  | Object_mismatch of { oid : Oid.t; expected : string; actual : string }
  | Bad_signature of { oid : Oid.t; seq : int; reason : string }
  | Duplicate_seq of { oid : Oid.t; seq : int }
  | Seq_gap of { oid : Oid.t; after_seq : int; found_seq : int }
  | First_record_invalid of { oid : Oid.t; reason : string }
  | Broken_link of { oid : Oid.t; seq : int; reason : string }
  | Dangling_prev of { oid : Oid.t; seq : int; missing : string }
  | Malformed of { oid : Oid.t; seq : int; reason : string }

type report = {
  violations : violation list;
  records_checked : int;
  objects_checked : int;
  signatures_checked : int;
}

let ok r = r.violations = []

let hex_prefix s =
  let h = Tep_crypto.Digest_algo.to_hex s in
  if String.length h > 12 then String.sub h 0 12 else h

(* Group records by output oid, each group sorted by seq. *)
let group_by_object records =
  let tbl = Oid.Tbl.create 64 in
  List.iter
    (fun (r : Record.t) ->
      let l =
        match Oid.Tbl.find_opt tbl r.Record.output_oid with
        | Some l -> l
        | None ->
            let l = ref [] in
            Oid.Tbl.replace tbl r.Record.output_oid l;
            l
      in
      l := r :: !l)
    records;
  Oid.Tbl.fold
    (fun oid l acc -> (oid, List.sort Record.compare_seq !l) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let check_chain ~by_checksum add (oid, (chain : Record.t list)) =
  (* Duplicate seq / gaps. *)
  let rec seq_check = function
    | (a : Record.t) :: (b : Record.t) :: rest ->
        if b.Record.seq_id = a.Record.seq_id then
          add (Duplicate_seq { oid; seq = a.Record.seq_id })
        else if b.Record.seq_id <> a.Record.seq_id + 1 then
          add
            (Seq_gap
               { oid; after_seq = a.Record.seq_id; found_seq = b.Record.seq_id });
        seq_check (b :: rest)
    | _ -> ()
  in
  seq_check chain;
  (* First record. *)
  (match chain with
  | [] -> ()
  | (first : Record.t) :: _ -> (
      match first.Record.kind with
      | Record.Insert ->
          if first.Record.seq_id <> 0 then
            add (First_record_invalid { oid; reason = "insert must have seq 0" })
      | Record.Import ->
          if first.Record.seq_id <> 0 then
            add (First_record_invalid { oid; reason = "import must have seq 0" })
      | Record.Aggregate -> () (* seq checked against inputs below *)
      | Record.Update ->
          add
            (First_record_invalid
               { oid; reason = "chain starts with an update record" })));
  (* Per-record structural checks. *)
  let rec walk prev = function
    | [] -> ()
    | (r : Record.t) :: rest ->
        let seq = r.Record.seq_id in
        (match r.Record.kind with
        | Record.Insert ->
            if
              r.Record.input_hashes <> []
              || r.Record.prev_checksums <> []
              || r.Record.input_oids <> []
            then add (Malformed { oid; seq; reason = "insert with inputs" });
            if prev <> None then
              add
                (Malformed
                   { oid; seq; reason = "insert not first in chain" })
        | Record.Import ->
            if List.length r.Record.input_hashes <> 1 then
              add (Malformed { oid; seq; reason = "import needs one input" });
            if r.Record.prev_checksums <> [] then
              add (Malformed { oid; seq; reason = "import with prev" });
            if prev <> None then
              add (Malformed { oid; seq; reason = "import not first in chain" })
        | Record.Update -> (
            match (r.Record.input_hashes, r.Record.prev_checksums, prev) with
            | [ ih ], [ pc ], Some (p : Record.t) ->
                if not (String.equal pc p.Record.checksum) then
                  add
                    (Broken_link
                       {
                         oid;
                         seq;
                         reason =
                           Printf.sprintf
                             "prev checksum %s does not match preceding record \
                              (%s)"
                             (hex_prefix pc)
                             (hex_prefix p.Record.checksum);
                       })
                else if not (String.equal ih p.Record.output_hash) then
                  add
                    (Broken_link
                       {
                         oid;
                         seq;
                         reason =
                           "input hash does not match preceding record's \
                            output hash";
                       })
            | [ _ ], [ _ ], None ->
                add
                  (Broken_link
                     { oid; seq; reason = "update with no preceding record" })
            | _ ->
                add
                  (Malformed
                     { oid; seq; reason = "update needs one input and one prev" })
            )
        | Record.Aggregate ->
            if prev <> None then
              add (Malformed { oid; seq; reason = "aggregate not first in chain" });
            let n = List.length r.Record.input_hashes in
            if
              n = 0
              || List.length r.Record.prev_checksums <> n
              || List.length r.Record.input_oids <> n
            then
              add
                (Malformed
                   { oid; seq; reason = "aggregate input/prev arity mismatch" })
            else begin
              let max_prev_seq = ref (-1) in
              List.iteri
                (fun i pc ->
                  let in_oid = List.nth r.Record.input_oids i in
                  let in_hash = List.nth r.Record.input_hashes i in
                  match Hashtbl.find_opt by_checksum pc with
                  | None ->
                      add (Dangling_prev { oid; seq; missing = hex_prefix pc })
                  | Some (pr : Record.t) ->
                      if !max_prev_seq < pr.Record.seq_id then
                        max_prev_seq := pr.Record.seq_id;
                      if not (Oid.equal pr.Record.output_oid in_oid) then
                        add
                          (Broken_link
                             {
                               oid;
                               seq;
                               reason =
                                 Printf.sprintf
                                   "aggregate input %d cites a record of %s, \
                                    expected %s"
                                   i
                                   (Oid.to_string pr.Record.output_oid)
                                   (Oid.to_string in_oid);
                             })
                      else if not (String.equal pr.Record.output_hash in_hash)
                      then
                        add
                          (Broken_link
                             {
                               oid;
                               seq;
                               reason =
                                 Printf.sprintf
                                   "aggregate input %d hash does not match \
                                    cited record"
                                   i;
                             }))
                r.Record.prev_checksums;
              if !max_prev_seq >= 0 && seq <> !max_prev_seq + 1 then
                add
                  (Broken_link
                     {
                       oid;
                       seq;
                       reason =
                         Printf.sprintf
                           "aggregate seq %d should be max input seq + 1 = %d"
                           seq (!max_prev_seq + 1);
                     })
            end);
        walk (Some r) rest
  in
  walk None chain

let verify_records ?pool ~algo:_ ~directory records =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let by_checksum = Hashtbl.create (List.length records) in
  List.iter
    (fun (r : Record.t) ->
      Hashtbl.replace by_checksum r.Record.checksum r)
    records;
  (* 1. Signatures (R1, R8) — the dominant cost (one RSA verify per
     record), and embarrassingly parallel: each check is pure apart
     from the directory's mutex-guarded certificate cache.  Results
     are folded back in record order, so the report is byte-identical
     to the sequential pass regardless of domain scheduling. *)
  let signature_results =
    match pool with
    | Some p when Tep_parallel.Pool.size p > 1 ->
        Tep_parallel.Pool.map_list p
          (fun (r : Record.t) -> Checksum.verify_record directory r)
          records
    | _ ->
        List.map (fun (r : Record.t) -> Checksum.verify_record directory r)
          records
  in
  let signatures = ref 0 in
  List.iter2
    (fun (r : Record.t) result ->
      incr signatures;
      match result with
      | Ok () -> ()
      | Error reason ->
          add
            (Bad_signature
               { oid = r.Record.output_oid; seq = r.Record.seq_id; reason }))
    records signature_results;
  (* 2. Per-object chain structure (R2, R3, R6, R7). *)
  let groups = group_by_object records in
  List.iter (check_chain ~by_checksum add) groups;
  {
    violations = List.rev !violations;
    records_checked = List.length records;
    objects_checked = List.length groups;
    signatures_checked = !signatures;
  }

let verify ?pool ~algo ~directory ~data records =
  let base = verify_records ?pool ~algo ~directory records in
  let oid = data.Subtree.oid in
  (* 3. Delivered object vs latest record (R4, R5). *)
  let latest =
    List.fold_left
      (fun acc (r : Record.t) ->
        if not (Oid.equal r.Record.output_oid oid) then acc
        else
          match acc with
          | Some (best : Record.t) when best.Record.seq_id >= r.Record.seq_id ->
              acc
          | _ -> Some r)
      None records
  in
  let extra =
    match latest with
    | None -> [ No_provenance oid ]
    | Some r ->
        let actual = Merkle.hash_subtree algo data in
        if String.equal actual r.Record.output_hash then []
        else
          [
            Object_mismatch
              { oid; expected = hex_prefix r.Record.output_hash;
                actual = hex_prefix actual };
          ]
  in
  { base with violations = base.violations @ extra }

let violation_to_string = function
  | No_provenance oid ->
      Printf.sprintf "no provenance records for delivered object %s"
        (Oid.to_string oid)
  | Object_mismatch { oid; expected; actual } ->
      Printf.sprintf
        "delivered object %s hashes to %s but latest record says %s (R4/R5)"
        (Oid.to_string oid) actual expected
  | Bad_signature { oid; seq; reason } ->
      Printf.sprintf "bad signature on (%s, seq %d): %s (R1/R8)"
        (Oid.to_string oid) seq reason
  | Duplicate_seq { oid; seq } ->
      Printf.sprintf "duplicate seq %d for %s (R3)" seq (Oid.to_string oid)
  | Seq_gap { oid; after_seq; found_seq } ->
      Printf.sprintf "seq gap on %s: %d follows %d (R2/R7)"
        (Oid.to_string oid) found_seq after_seq
  | First_record_invalid { oid; reason } ->
      Printf.sprintf "invalid chain start for %s: %s" (Oid.to_string oid) reason
  | Broken_link { oid; seq; reason } ->
      Printf.sprintf "broken link at (%s, seq %d): %s" (Oid.to_string oid) seq
        reason
  | Dangling_prev { oid; seq; missing } ->
      Printf.sprintf
        "record (%s, seq %d) cites missing predecessor %s (R2/R7)"
        (Oid.to_string oid) seq missing
  | Malformed { oid; seq; reason } ->
      Printf.sprintf "malformed record (%s, seq %d): %s" (Oid.to_string oid)
        seq reason

let pp_violation fmt v = Format.pp_print_string fmt (violation_to_string v)

let pp_report fmt r =
  if ok r then
    Format.fprintf fmt
      "VERIFIED: %d records, %d objects, %d signatures checked"
      r.records_checked r.objects_checked r.signatures_checked
  else begin
    Format.fprintf fmt "TAMPERING DETECTED (%d violations):@\n"
      (List.length r.violations);
    List.iter (fun v -> Format.fprintf fmt "  - %a@\n" pp_violation v) r.violations
  end
