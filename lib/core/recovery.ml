open Tep_store
open Tep_tree

type rejected = { path : string; reason : string }

type report = {
  generation : int;
  checkpoint_lsn : int;
  rejected : rejected list;
  entries_replayed : int;
  records_replayed : int;
  frames_dropped : int;
  skipped_frames : int;
  torn_tail : bool;
  root_hash : string;
  committed_root_hash : string option;
  prov_root_hash : string option;
  hash_verified : bool;
}

let pp_report fmt r =
  let hex = Tep_crypto.Digest_algo.to_hex in
  Format.fprintf fmt
    "@[<v>recovered from generation %d (lsn %d)@,%a\
     replayed: %d entries, %d provenance records; dropped %d uncommitted \
     frame(s)@,\
     wal damage: %d skipped region(s)%s@,\
     root hash: %s@,\
     cross-check: %s@]"
    r.generation r.checkpoint_lsn
    (fun fmt -> function
      | [] -> ()
      | rej ->
          List.iter
            (fun { path; reason } ->
              Format.fprintf fmt "rejected %s: %s@," path reason)
            rej)
    r.rejected r.entries_replayed r.records_replayed r.frames_dropped
    r.skipped_frames
    (if r.torn_tail then ", torn tail" else "")
    (hex r.root_hash)
    (if r.hash_verified then "ok"
     else
       Printf.sprintf "MISMATCH (committed %s, provenance %s)"
         (match r.committed_root_hash with Some h -> hex h | None -> "-")
         (match r.prov_root_hash with Some h -> hex h | None -> "-"))

(* ------------------------------------------------------------------ *)
(* Checkpoint file codec                                               *)
(* ------------------------------------------------------------------ *)

let magic = "TEPCKPT1"

type ckpt = {
  c_gen : int;
  c_lsn : int;
  c_root_hash : string;
  c_db : Database.t;
  c_forest : Forest.t;
  c_view : Tree_view.mapping;
  c_prov : Provstore.t;
}

let encode_checkpoint ~gen ~lsn engine =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf magic;
  Value.add_varint buf gen;
  Value.add_varint buf (lsn + 1) (* lsn >= -1 *);
  Value.add_string buf (Engine.root_hash engine);
  Database.encode buf (Engine.backend engine);
  Forest.encode buf (Engine.forest engine);
  Tree_view.encode buf (Engine.mapping engine);
  Value.add_string buf (Provstore.to_string (Engine.provstore engine));
  let body = Buffer.contents buf in
  body ^ Tep_crypto.Sha256.digest body

let decode_checkpoint s =
  let dlen = Tep_crypto.Sha256.digest_size in
  let len = String.length s in
  if len < String.length magic + dlen then Error "checkpoint: too short"
  else begin
    let body = String.sub s 0 (len - dlen) in
    let trailer = String.sub s (len - dlen) dlen in
    if not (String.equal (Tep_crypto.Sha256.digest body) trailer) then
      Error "checkpoint: integrity trailer mismatch"
    else if String.sub body 0 8 <> magic then Error "checkpoint: bad magic"
    else
      try
        let gen, off = Value.read_varint body 8 in
        let lsn1, off = Value.read_varint body off in
        let root_hash, off = Value.read_string body off in
        let db, off = Database.decode body off in
        let forest, off = Forest.decode body off in
        let view, off = Tree_view.decode body off in
        let prov_s, off = Value.read_string body off in
        if off <> String.length body then Error "checkpoint: trailing garbage"
        else
          match Provstore.of_string prov_s with
          | Error e -> Error ("checkpoint: provenance store: " ^ e)
          | Ok prov ->
              Ok
                {
                  c_gen = gen;
                  c_lsn = lsn1 - 1;
                  c_root_hash = root_hash;
                  c_db = db;
                  c_forest = forest;
                  c_view = view;
                  c_prov = prov;
                }
      with Failure e | Invalid_argument e -> Error ("checkpoint: " ^ e)
  end

let generation_path ~dir gen = Filename.concat dir (Printf.sprintf "ckpt-%06d.snap" gen)

let generations ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           if
             String.length f = 16
             && String.sub f 0 5 = "ckpt-"
             && Filename.check_suffix f ".snap"
           then
             match int_of_string_opt (String.sub f 5 6) with
             | Some g -> Some (g, Filename.concat dir f)
             | None -> None
           else None)
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare b a)

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_generation path =
  match read_whole path with
  | exception Sys_error e -> Error e
  | s -> decode_checkpoint s

let ensure_dir dir =
  try Unix.mkdir dir 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let checkpoint ?(keep = 2) ~dir ~wal engine =
  let keep = max 1 keep in
  ensure_dir dir;
  match Wal.checkpoint wal with
  | Error e -> Error ("checkpoint: wal: " ^ e)
  | Ok lsn -> (
      let gen =
        match generations ~dir with (g, _) :: _ -> g + 1 | [] -> 0
      in
      let data = encode_checkpoint ~gen ~lsn engine in
      match Snapshot.write_atomic (generation_path ~dir gen) data with
      | Error e -> Error ("checkpoint: " ^ e)
      | Ok () -> (
          match Wal.truncate wal ~upto:lsn with
          | Error e -> Error ("checkpoint: " ^ e)
          | Ok () ->
              (* Old generations are pruned last: losing them can only
                 happen once the new one is durably in place. *)
              generations ~dir
              |> List.iteri (fun i (_, path) ->
                     if i >= keep then
                       try Sys.remove path with Sys_error _ -> ());
              Ok gen))

(* ------------------------------------------------------------------ *)
(* Replay: mirror the engine's forest/view mutations exactly           *)
(* ------------------------------------------------------------------ *)

(* Oid assignment comes from Forest.insert's allocator; because the
   crashed engine performed these same operations in this same order
   on this same forest state, replay reproduces identical oids — the
   property Engine.of_parts relies on. *)
let apply_relational db forest view entry =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error ("replay: " ^ s)) fmt in
  match entry with
  | Wal.Create_table (name, schema) ->
      let* _t =
        match Database.create_table db ~name schema with
        | Ok t -> Ok t
        | Error e -> err "create_table %s: %s" name e
      in
      let* toid =
        match
          Forest.insert ~parent:(Tree_view.root view) forest
            (Tree_view.table_value name)
        with
        | Ok o -> Ok o
        | Error e -> err "create_table %s: %s" name e
      in
      Tree_view.register_table view name toid;
      Ok ()
  | Wal.Drop_table name -> (
      match Tree_view.table_oid view name with
      | None -> err "drop_table: no table %s" name
      | Some toid ->
          let removed = ref [] in
          Forest.iter_preorder forest toid (fun o _ -> removed := o :: !removed);
          let* _n =
            match Forest.delete_subtree forest toid with
            | Ok n -> Ok n
            | Error e -> err "drop_table %s: %s" name e
          in
          List.iter (Tree_view.unregister view) !removed;
          if Database.drop_table db name then Ok ()
          else err "drop_table: no table %s" name)
  | Wal.Insert_row (tbl, id, cells) -> (
      match (Database.get_table db tbl, Tree_view.table_oid view tbl) with
      | None, _ | _, None -> err "insert_row: no table %s" tbl
      | Some t, Some toid ->
          let* () =
            match Table.insert_with_id t id cells with
            | Ok () -> Ok ()
            | Error e -> err "insert_row %s/%d: %s" tbl id e
          in
          let* roid =
            match
              Forest.insert ~parent:toid forest (Tree_view.row_value id)
            with
            | Ok o -> Ok o
            | Error e -> err "insert_row %s/%d: %s" tbl id e
          in
          Tree_view.register_row view tbl id roid;
          let rec cells_loop col =
            if col >= Array.length cells then Ok ()
            else
              match Forest.insert ~parent:roid forest cells.(col) with
              | Error e -> err "insert_row %s/%d cell %d: %s" tbl id col e
              | Ok coid ->
                  Tree_view.register_cell view tbl id col coid;
                  cells_loop (col + 1)
          in
          cells_loop 0)
  | Wal.Delete_row (tbl, id) -> (
      match (Database.get_table db tbl, Tree_view.row_oid view tbl id) with
      | None, _ -> err "delete_row: no table %s" tbl
      | _, None -> err "delete_row: no row %d in %s" id tbl
      | Some t, Some roid ->
          if not (Table.delete t id) then err "delete_row: no row %d in %s" id tbl
          else begin
            let rec delete_all = function
              | [] -> Ok ()
              | oid :: rest -> (
                  match Forest.delete forest oid with
                  | Ok _ ->
                      Tree_view.unregister view oid;
                      delete_all rest
                  | Error e -> err "delete_row %s/%d: %s" tbl id e)
            in
            let* () = delete_all (Forest.children forest roid) in
            let* _v =
              match Forest.delete forest roid with
              | Ok v -> Ok v
              | Error e -> err "delete_row %s/%d: %s" tbl id e
            in
            Tree_view.unregister view roid;
            Ok ()
          end)
  | Wal.Update_cell (tbl, id, col, v) -> (
      match (Database.get_table db tbl, Tree_view.cell_oid view tbl id col) with
      | None, _ -> err "update_cell: no table %s" tbl
      | _, None -> err "update_cell: no cell (%s, %d, %d)" tbl id col
      | Some t, Some coid ->
          let* _prev =
            match Table.update_cell t id col v with
            | Ok p -> Ok p
            | Error e -> err "update_cell %s/%d/%d: %s" tbl id col e
          in
          let* _prev =
            match Forest.update forest coid v with
            | Ok p -> Ok p
            | Error e -> err "update_cell %s/%d/%d: %s" tbl id col e
          in
          Ok ())
  | Wal.Update_row (tbl, id, cells) -> (
      match Database.get_table db tbl with
      | None -> err "update_row: no table %s" tbl
      | Some t ->
          let* _prev =
            match Table.update_row t id cells with
            | Ok p -> Ok p
            | Error e -> err "update_row %s/%d: %s" tbl id e
          in
          let rec cells_loop col =
            if col >= Array.length cells then Ok ()
            else
              match Tree_view.cell_oid view tbl id col with
              | None -> err "update_row: no cell (%s, %d, %d)" tbl id col
              | Some coid -> (
                  match Forest.update forest coid cells.(col) with
                  | Ok _ -> cells_loop (col + 1)
                  | Error e -> err "update_row %s/%d/%d: %s" tbl id col e)
          in
          cells_loop 0)
  | Wal.Commit _ | Wal.Blob _ | Wal.Prepare _ | Wal.Decide _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Recover                                                             *)
(* ------------------------------------------------------------------ *)

let recover ?mode ?pool ?wal_path ?(is_decided = fun _ -> false)
    ?(final_checkpoint = true) ~dir ~directory () =
  let wal_path =
    match wal_path with Some p -> p | None -> Filename.concat dir "wal.log"
  in
  match generations ~dir with
  | [] -> Error (Printf.sprintf "recover: no checkpoint generations in %s" dir)
  | gens -> (
      (* 1. newest valid generation, collecting rejections *)
      let rec pick rej = function
        | [] ->
            Error
              (Printf.sprintf "recover: all %d generation(s) invalid: %s"
                 (List.length gens)
                 (String.concat "; "
                    (List.rev_map
                       (fun r -> r.path ^ ": " ^ r.reason)
                       rej)))
        | (_, path) :: rest -> (
            match load_generation path with
            | Ok c -> Ok (c, List.rev rej)
            | Error reason -> pick ({ path; reason } :: rej) rest)
      in
      match pick [] gens with
      | Error e -> Error e
      | Ok (c, rejected) -> (
          (* 2. salvage the WAL tail past the checkpoint LSN *)
          let sv =
            if Sys.file_exists wal_path then
              match Wal.salvage_file wal_path with
              | Ok sv -> sv
              | Error _ ->
                  {
                    Wal.entries = [];
                    skipped_frames = 0;
                    torn_tail = false;
                    bytes_salvaged = 0;
                  }
            else
              {
                Wal.entries = [];
                skipped_frames = 0;
                torn_tail = false;
                bytes_salvaged = 0;
              }
          in
          let tail =
            List.filter (fun (s, _) -> s > c.c_lsn) sv.Wal.entries
          in
          (* 3. contiguous prefix (a seq gap means lost frames: nothing
             after it can be trusted to apply), cut at the last commit
             marker *)
          let rec contiguous expect acc = function
            | (s, e) :: rest when s = expect ->
                contiguous (s + 1) ((s, e) :: acc) rest
            | rest -> (List.rev acc, List.length rest)
          in
          let prefix, gap_dropped = contiguous (c.c_lsn + 1) [] tail in
          (* A Prepare is a commit marker iff the coordinator decided
             its transaction; an undecided Prepare is ordinary frame
             content — trailing prepared work is rolled back, while a
             decided-but-unmarked transaction commits exactly as if
             the shard had written its own Wal.Commit. *)
          let is_marker = function
            | Wal.Commit _ -> true
            | Wal.Prepare (txid, _) -> is_decided txid
            | _ -> false
          in
          let last_commit =
            List.fold_left
              (fun (i, last) (_, e) ->
                if is_marker e then (i + 1, i) else (i + 1, last))
              (0, -1) prefix
            |> snd
          in
          let replayable = List.filteri (fun i _ -> i <= last_commit) prefix in
          let frames_dropped =
            gap_dropped + (List.length prefix - List.length replayable)
          in
          (* 4. apply *)
          let entries_replayed = ref 0 in
          let records_replayed = ref 0 in
          let committed = ref None in
          let apply_one (_, entry) =
            match entry with
            | Wal.Blob payload -> (
                match Record.decode payload 0 with
                | exception (Failure e | Invalid_argument e) ->
                    Error ("replay: bad provenance record: " ^ e)
                | record, _ -> (
                    match Provstore.append c.c_prov record with
                    | () ->
                        incr records_replayed;
                        Ok ()
                    | exception Invalid_argument e ->
                        Error ("replay: provenance append: " ^ e)))
            | Wal.Commit h ->
                committed := Some h;
                Ok ()
            | Wal.Prepare (txid, h) ->
                (* Undecided prepared frames replay only when a later
                   marker committed on top of them (the live engine's
                   state already contained them); the intent marker
                   itself advances the committed root only when
                   decided. *)
                if is_decided txid then committed := Some h;
                Ok ()
            | Wal.Decide _ -> Ok ()
            | e -> (
                match apply_relational c.c_db c.c_forest c.c_view e with
                | Ok () ->
                    incr entries_replayed;
                    Ok ()
                | Error _ as err -> err)
          in
          let rec apply_all = function
            | [] -> Ok ()
            | x :: rest -> (
                match apply_one x with
                | Ok () -> apply_all rest
                | Error _ as e -> e)
          in
          match apply_all replayable with
          | Error e -> Error e
          | Ok () -> (
              (* 5. rebuild the engine on the recovered parts *)
              let wal = Wal.open_file wal_path in
              match
                Engine.of_parts
                  ~algo:(Provstore.algo c.c_prov)
                  ?mode ?pool ~wal ~provstore:c.c_prov ~directory
                  ~forest:c.c_forest ~view:c.c_view c.c_db
              with
              | exception Failure e ->
                  Wal.close wal;
                  Error ("recover: " ^ e)
              | engine -> (
                  (* 6. cross-check the recovered root hash *)
                  let root_hash = Engine.root_hash engine in
                  let committed_root_hash =
                    match !committed with
                    | Some h -> Some h
                    | None -> Some c.c_root_hash
                  in
                  let prov_root_hash =
                    Option.map
                      (fun r -> r.Record.output_hash)
                      (Provstore.latest c.c_prov (Engine.root_oid engine))
                  in
                  let matches = function
                    | Some h -> String.equal h root_hash
                    | None -> true
                  in
                  let hash_verified =
                    matches committed_root_hash && matches prov_root_hash
                  in
                  let report =
                    {
                      generation = c.c_gen;
                      checkpoint_lsn = c.c_lsn;
                      rejected;
                      entries_replayed = !entries_replayed;
                      records_replayed = !records_replayed;
                      frames_dropped;
                      skipped_frames = sv.Wal.skipped_frames;
                      torn_tail = sv.Wal.torn_tail;
                      root_hash;
                      committed_root_hash;
                      prov_root_hash;
                      hash_verified;
                    }
                  in
                  (* 7. checkpoint, so dropped frames are gone for good *)
                  if final_checkpoint then
                    match checkpoint ~dir ~wal engine with
                    | Ok _ -> Ok (engine, wal, report)
                    | Error e -> Error ("recover: final checkpoint: " ^ e)
                  else Ok (engine, wal, report)))))
