(** Slice delivery: one atomic object out of a large compound object,
    with a Merkle membership proof instead of the full subtree.

    A {!Bundle} of a whole table ships every row; a slice ships a
    single cell, the O(depth × fanout) proof path to the table/root,
    and the root object's signed provenance chain that binds the root
    hash.  The recipient gets the same guarantee — this cell value is
    exactly what the provenance-verified database state contains —
    at a fraction of the bytes. *)

open Tep_store
open Tep_tree

type t = {
  algo : Tep_crypto.Digest_algo.algo;
  proof : Proof.t;
  root_records : Record.t list;
      (** provenance object of the proof's root (binds the root hash) *)
  certificates : Tep_crypto.Pki.certificate list;
  ca_key : Tep_crypto.Rsa.public_key;
}

val create : Engine.t -> Oid.t -> (t, string) result
(** Slice out one atomic object (a cell, typically).
    @return [Error] if the object is compound or untracked. *)

val leaf_value : t -> Value.t
val leaf_oid : t -> Oid.t

val verify :
  ?trusted_ca:Tep_crypto.Rsa.public_key -> t -> (Verifier.report, string) result
(** (1) verify the root's provenance records and signatures, (2) check
    the proof chains the leaf to the latest record's output hash.
    [Error] carries proof-level failures; a returned report carries
    record-level violations. *)

val size_bytes : t -> int

val to_string : t -> string
val of_string : string -> (t, string) result
