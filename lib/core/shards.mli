(** Cross-shard two-phase commit plumbing and the shard routing map.

    A sharded deployment partitions the provenance forest into [N]
    independent {!Engine}s, each with its own WAL and checkpoint
    directory.  Tables route to shards by a stable hash of the table
    name ({!shard_of_table}); the published root is the Merkle
    root-of-roots over the per-shard engine roots
    ({!Tep_tree.Merkle.root_of_roots}).

    Cross-shard transactions commit under a two-phase marker protocol
    built on the existing WAL format:

    + {b phase 1} — each participant shard runs its sub-batch through
      {!Engine.complex_op_prepare}, journaling
      [Wal.Prepare (txid, root)] + flush instead of [Wal.Commit];
    + {b decide} — after {e every} prepare is durable, the coordinator
      appends [Wal.Decide (txid, shards)] to its own log
      ({!record_decision}) and flushes.  That frame is the commit
      point;
    + {b phase 2} — each shard appends a plain [Wal.Commit] marker
      ({!finalize_shard}), so later recoveries need not consult the
      coordinator for this transaction.

    A crash before the Decide is durable rolls the prepared frames
    back on every shard; a crash after it commits them on every shard
    (via [Recovery.recover ~is_decided]) — the shards always agree. *)

val site_decide : string
(** Failpoint site hit just before the coordinator Decide is appended
    ("shard.2pc.decide"). *)

val site_phase2 : string
(** Failpoint site hit before each shard's phase-2 commit marker
    ("shard.2pc.phase2"). *)

val shard_of_key : shards:int -> string -> int
(** Stable FNV-1a routing hash folded into [0 .. shards-1].  Not
    [Hashtbl.hash]: the shard map is durable state, so the function
    must be identical across OCaml releases and word sizes. *)

val shard_of_table : shards:int -> ?overrides:(string * int) list -> string -> int
(** Shard owning [table]: the override pin when one names it (and is
    in range), the routing hash otherwise. *)

val decided_txids : string -> string list
(** All transaction ids with a durable [Wal.Decide] in the coordinator
    log at the given path.  A missing file is an empty log; damaged
    frames are skipped (salvage), so a torn final Decide reads as
    "never decided". *)

val is_decided_from : string -> string -> bool
(** [is_decided_from coord_path] loads the decision set once and
    returns the predicate to pass as [Recovery.recover ~is_decided]. *)

val record_decision :
  coord:Tep_store.Wal.t -> txid:string -> shards:int list -> (unit, string) result
(** Append [Wal.Decide (txid, shards)] to the coordinator log and
    flush.  Only call once every participant's prepare is durable.
    [Error] means the decision is not durable: the caller must report
    the transaction failed and let recovery roll the prepares back. *)

val finalize_shard : Engine.t -> unit
(** Phase 2 for one participant: {!Engine.write_commit_marker}.
    @raise Tep_core.Engine.Wal_failure on persistent WAL failure —
    harmless for atomicity (the Decide already committed the
    transaction) but surfaced so the server can count it. *)

type participant_op = {
  p_shard : int;  (** index in the deployment's shard array *)
  p_engine : Engine.t;
  p_by : Participant.t;  (** identity signing this shard's records *)
  p_body : unit -> (unit, string) result;
      (** applies this shard's slice of the transaction.  Must return
          [Error] {e only} when it made no mutation at all (every op
          rejected before touching state) — the shard then drops out
          of the transaction with nothing journaled. *)
}

val commit_cross :
  coord:Tep_store.Wal.t ->
  txid:string ->
  participant_op list ->
  ((int * Engine.metrics) list * string list, string) result
(** Run a cross-shard transaction to completion: phase-1 prepares in
    ascending shard order, the coordinator Decide, then best-effort
    phase-2 commit markers.  The caller must already hold every
    participant's write lock (and whatever serialises coordinator
    access).

    [Ok (committed, warnings)]: per-shard commit metrics for the
    shards that actually mutated, plus phase-2 WAL warnings (the
    transaction {e is} committed despite them — the Decide is the
    commit point).  [Error] means the transaction never committed: no
    Decide was written and recovery rolls every prepared frame back.
    {!Tep_fault.Fault.Crash} escapes untouched from every step. *)
