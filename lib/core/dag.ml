open Tep_tree

type node = {
  record : Record.t;
  predecessors : int list;
  successors : int list;
}

type t = { nodes : node array; dangling : (int * string) list }

let build records =
  let records = List.sort Record.compare_seq records in
  let arr = Array.of_list records in
  let n = Array.length arr in
  let index = Hashtbl.create n in
  Array.iteri
    (fun i (r : Record.t) -> Hashtbl.replace index r.Record.checksum i)
    arr;
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let dangling = ref [] in
  Array.iteri
    (fun i (r : Record.t) ->
      List.iter
        (fun c ->
          match Hashtbl.find_opt index c with
          | Some j ->
              preds.(i) <- j :: preds.(i);
              succs.(j) <- i :: succs.(j)
          | None -> dangling := (i, c) :: !dangling)
        r.Record.prev_checksums)
    arr;
  let nodes =
    Array.mapi
      (fun i r ->
        {
          record = r;
          predecessors = List.rev preds.(i);
          successors = List.rev succs.(i);
        })
      arr
  in
  { nodes; dangling = List.rev !dangling }

let nodes t = t.nodes
let size t = Array.length t.nodes
let dangling t = t.dangling

let roots t =
  Array.to_list
    (Array.of_seq
       (Seq.filter_map
          (fun i -> if t.nodes.(i).predecessors = [] then Some i else None)
          (Seq.init (size t) Fun.id)))

let sinks t =
  List.filter_map
    (fun i -> if t.nodes.(i).successors = [] then Some i else None)
    (List.init (size t) Fun.id)

let topological t =
  let n = size t in
  let indegree = Array.map (fun nd -> List.length nd.predecessors) t.nodes in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indegree;
  let out = ref [] and emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    out := i :: !out;
    incr emitted;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      t.nodes.(i).successors
  done;
  if !emitted <> n then failwith "Dag.topological: cycle";
  List.rev !out

let is_linear t =
  Array.for_all
    (fun nd ->
      List.length nd.predecessors <= 1 && List.length nd.successors <= 1)
    t.nodes
  && List.length (roots t) <= 1

let records_of_participant t name =
  List.filter_map
    (fun nd ->
      if nd.record.Record.participant = name then Some nd.record else None)
    (Array.to_list t.nodes)

let depth t =
  let n = size t in
  if n = 0 then 0
  else begin
    let d = Array.make n 1 in
    List.iter
      (fun i ->
        List.iter
          (fun j -> if d.(i) + 1 > d.(j) then d.(j) <- d.(i) + 1)
          t.nodes.(i).successors)
      (topological t);
    Array.fold_left max 1 d
  end

let node_label (r : Record.t) =
  Printf.sprintf "%s\\n%s seq=%d\\n%s -> %s" r.Record.participant
    (Record.kind_name r.Record.kind)
    r.Record.seq_id
    (String.concat ","
       (List.map Oid.to_string r.Record.input_oids))
    (Oid.to_string r.Record.output_oid)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph provenance {\n  rankdir=BT;\n";
  Array.iteri
    (fun i nd ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"%s\"];\n" i
           (node_label nd.record)))
    t.nodes;
  Array.iteri
    (fun i nd ->
      List.iter
        (fun j -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" j i))
        nd.predecessors)
    t.nodes;
  List.iter
    (fun (i, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  missing_%d [shape=point]; missing_%d -> n%d [style=dashed];\n"
           i i i))
    t.dangling;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t =
  Array.iteri
    (fun i nd ->
      Format.fprintf fmt "%d: %a%s@\n" i Record.pp nd.record
        (match nd.predecessors with
        | [] -> ""
        | ps ->
            "  <- "
            ^ String.concat "," (List.map string_of_int ps)))
    t.nodes
