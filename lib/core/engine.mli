(** The provenance-collecting database engine.

    [Engine] couples a relational backend ({!Tep_store.Database}) with
    its depth-4 tree view ({!Tep_tree.Tree_view}), a Merkle hash cache,
    and a {!Provstore}.  Every mutation performed through the engine:

    + keeps the backend and the forest in sync,
    + captures the input (pre-state) hashes of the modified object and
      all its ancestors,
    + and, at complex-operation commit (Section 4.4), emits one signed
      provenance record per surviving modified object — the actual
      record for directly-modified objects, inherited records for
      ancestors (Section 4.2).

    Hashing strategy is selectable (Section 4.3): [Basic] re-hashes
    the full tree at each commit; [Economical] maintains the
    incremental cache and re-hashes dirty paths only. *)

open Tep_store
open Tep_tree

exception Wal_failure of string
(** A WAL append or flush failed persistently (retries exhausted):
    the mutation's durability cannot be guaranteed and the commit is
    abandoned.  Raised out of {!complex_op} (and the singleton ops
    built on it) so the service layer can classify WAL trouble
    distinctly from logic errors.  Simulated crashes
    ({!Tep_fault.Fault.Crash}) still propagate untouched. *)

type mode = Basic | Economical

type metrics = {
  hash_s : float;  (** seconds spent hashing subtrees *)
  sign_s : float;
      (** wall-clock seconds of the commit signing stage; with a pool
          attached the stage fans signatures out across domains, so
          this can be well below {!field-sign_cpu_s} *)
  sign_cpu_s : float;
      (** cumulative per-signature seconds summed over all signers;
          [sign_cpu_s /. sign_s] approximates the signing concurrency
          actually achieved *)
  store_s : float;  (** seconds spent persisting checksum rows *)
  records_emitted : int;  (** provenance records (= checksums) *)
  nodes_hashed : int;  (** tree nodes actually digested *)
  checksum_bytes : int;  (** paper-schema bytes added to the store *)
}

val zero_metrics : metrics
val add_metrics : metrics -> metrics -> metrics

type t

val create :
  ?algo:Tep_crypto.Digest_algo.algo ->
  ?mode:mode ->
  ?wal:Wal.t ->
  ?pool:Tep_parallel.Pool.t ->
  ?provstore:Provstore.t ->
  directory:Participant.Directory.t ->
  Database.t ->
  t
(** Attach the engine to an existing backend database.  Builds the
    tree view and warms the hash cache.  Pre-existing objects receive
    an [Import] provenance record lazily, on first touch.

    Pass [?provstore] to resume from a persisted provenance store
    (its records must have been produced against the same backend
    contents and oid layout — the layout is deterministic, see
    {!Tep_tree.Tree_view.build}). *)

val of_parts :
  ?algo:Tep_crypto.Digest_algo.algo ->
  ?mode:mode ->
  ?wal:Wal.t ->
  ?pool:Tep_parallel.Pool.t ->
  ?provstore:Provstore.t ->
  directory:Participant.Directory.t ->
  forest:Forest.t ->
  view:Tree_view.mapping ->
  Database.t ->
  t
(** Re-attach an engine to previously persisted state (forest, view
    and provenance store) without rebuilding the tree view — this is
    what preserves oid identity across sessions.

    [?pool] (also accepted by {!create}) parallelises cold full-tree
    Merkle passes — the warm-up hash here, Basic-mode commits —
    recipient-side verification run through {!verify_object}, and the
    commit signing stage: records staged by a complex operation are
    signed concurrently across the pool's domains, in a way that keeps
    record bytes, Provstore order and WAL contents identical to the
    sequential engine (see the [engine.commit.sign] failpoint for
    perturbing signer timing in tests). *)

val backend : t -> Database.t
val forest : t -> Forest.t
val provstore : t -> Provstore.t
val directory : t -> Participant.Directory.t
val root_oid : t -> Oid.t
val mapping : t -> Tree_view.mapping
val algo : t -> Tep_crypto.Digest_algo.algo
val mode : t -> mode
val set_mode : t -> mode -> unit

val root_hash : t -> string
(** Current hash of the whole database tree. *)

(** {1 Complex operations (Section 4.4)}

    Group any number of primitive operations; provenance records and
    checksums are emitted once, at commit.  Primitive operations
    called outside [complex_op] run as singleton complex operations. *)

val complex_op :
  t -> Participant.t -> (unit -> ('a, string) result) -> ('a * metrics, string) result
(** Runs the body, then commits provenance.  Fails (without emitting
    records) if the body fails.  Nested calls are rejected. *)

val complex_op_prepare :
  t ->
  Participant.t ->
  txid:string ->
  (unit -> ('a, string) result) ->
  ('a * metrics, string) result
(** Phase 1 of a cross-shard two-phase commit: identical to
    {!complex_op} except the WAL marker journaled at commit is
    [Wal.Prepare (txid, root_hash)] instead of [Wal.Commit].  The
    prepared frames are durable but {!Tep_core.Recovery} rolls them
    back unless the coordinator log records a [Wal.Decide] for
    [txid] — see {!Shards}. *)

val write_commit_marker : t -> unit
(** Phase 2: append (and flush) a plain [Wal.Commit] marker carrying
    the current root hash, upgrading the shard's last prepared
    transaction so future recoveries need not consult the coordinator
    log for it.  No-op without a WAL.
    @raise Wal_failure when the append or flush fails persistently. *)

val last_metrics : t -> metrics
(** Metrics of the most recent commit. *)

val total_metrics : t -> metrics

(** {1 Primitive object operations (Section 2 / 4.1)} *)

val insert_object :
  t -> Participant.t -> ?parent:Oid.t -> Value.t -> (Oid.t, string) result

val update_object :
  t -> Participant.t -> Oid.t -> Value.t -> (unit, string) result

val delete_object : t -> Participant.t -> Oid.t -> (unit, string) result
(** Leaf-only, like the paper's primitive delete. *)

val delete_object_subtree : t -> Participant.t -> Oid.t -> (int, string) result
(** Cascade of leaf deletes, in one complex operation. *)

val aggregate_objects :
  t ->
  Participant.t ->
  ?value:Value.t ->
  Oid.t list ->
  (Oid.t, string) result
(** The paper's [Aggregate({A_1..A_n}, B)]: deep-copies the input
    subtrees under a fresh root [B] (which gets the [Aggregate]
    record citing each input's latest checksum).  [value] is [B]'s
    own value (defaults to [Text "aggregate"]). *)

(** {1 Relational operations}

    These keep the backend database and the forest in sync and record
    provenance at the matching tree locations. *)

val create_table :
  t -> Participant.t -> name:string -> Schema.t -> (unit, string) result

val insert_row :
  t -> Participant.t -> table:string -> Value.t array -> (int, string) result

val delete_row : t -> Participant.t -> table:string -> int -> (unit, string) result

val update_cell :
  t ->
  Participant.t ->
  table:string ->
  row:int ->
  col:int ->
  Value.t ->
  (unit, string) result

val update_cell_named :
  t ->
  Participant.t ->
  table:string ->
  row:int ->
  column:string ->
  Value.t ->
  (unit, string) result

(** {1 Delivery and verification} *)

val deliver : ?deep:bool -> t -> Oid.t -> (Subtree.t * Record.t list, string) result
(** What a data recipient receives: the object snapshot and its full
    provenance object (DAG closure).  With [~deep:true] the shipment
    also includes the provenance of every descendant object, giving
    the recipient cell-level history for a delivered row or table
    (Definition 1 only requires the object's own records; deep
    delivery is strictly more informative and still verifies). *)

val verify_object : t -> Oid.t -> (Verifier.report, string) result
(** Run recipient-side verification in place. *)

val prove : t -> Oid.t -> (Tep_tree.Proof.t, string) result
(** Build a Merkle membership proof for an atomic object off this
    engine's hash cache — O(dirty path) on a warm (Economical) cache,
    no tree rebuild.  Errors on missing or non-atomic oids. *)
