open Tep_store
open Tep_tree
open Tep_crypto

type t = {
  algo : Digest_algo.algo;
  data : Subtree.t;
  records : Record.t list;
  certificates : Pki.certificate list;
  ca_key : Rsa.public_key;
}

let certs_for directory records =
  let names =
    List.sort_uniq compare
      (List.map (fun r -> r.Record.participant) records)
  in
  List.filter_map (Participant.Directory.lookup directory) names

let create ?deep engine oid =
  match Engine.deliver ?deep engine oid with
  | Error e -> Error e
  | Ok (data, records) ->
      let directory = Engine.directory engine in
      Ok
        {
          algo = Engine.algo engine;
          data;
          records;
          certificates = certs_for directory records;
          ca_key = Participant.Directory.ca_key directory;
        }

let of_atomic store directory oid =
  match Atomic.deliver store oid with
  | Error e -> Error e
  | Ok (data, records) ->
      Ok
        {
          algo = Atomic.algo store;
          data;
          records;
          certificates = certs_for directory records;
          ca_key = Participant.Directory.ca_key directory;
        }

let participants t =
  List.sort_uniq compare (List.map (fun r -> r.Record.participant) t.records)

let verify ?trusted_ca t =
  let ca_key = Option.value trusted_ca ~default:t.ca_key in
  let directory = Participant.Directory.create ~ca_key in
  List.iter
    (fun cert ->
      (* Invalid certificates are silently dropped; their subjects'
         records then fail signature verification. *)
      ignore (Participant.Directory.register_certificate directory cert))
    t.certificates;
  Verifier.verify ~algo:t.algo ~directory ~data:t.data t.records

let magic = "TEPBNDL1"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Value.add_string buf (Digest_algo.name t.algo);
  Subtree.encode buf t.data;
  Value.add_varint buf (List.length t.records);
  List.iter (Record.encode buf) t.records;
  Value.add_varint buf (List.length t.certificates);
  List.iter
    (fun c -> Value.add_string buf (Pki.certificate_to_string c))
    t.certificates;
  Value.add_string buf (Rsa.public_to_string t.ca_key);
  let body = Buffer.contents buf in
  body ^ Sha256.digest body

let of_string s =
  try
    let dlen = Sha256.digest_size in
    if String.length s < String.length magic + dlen then
      Error "bundle: too short"
    else begin
      let body = String.sub s 0 (String.length s - dlen) in
      let trailer = String.sub s (String.length s - dlen) dlen in
      if not (String.equal (Sha256.digest body) trailer) then
        Error "bundle: integrity trailer mismatch"
      else if String.sub body 0 8 <> magic then Error "bundle: bad magic"
      else begin
        let off = 8 in
        let algo_name, off = Value.read_string body off in
        match Digest_algo.of_name algo_name with
        | None -> Error ("bundle: unknown algo " ^ algo_name)
        | Some algo ->
            let data, off = Subtree.decode body off in
            let n, off = Value.read_varint body off in
            let off = ref off in
            let records =
              List.init n (fun _ ->
                  let r, o = Record.decode body !off in
                  off := o;
                  r)
            in
            let nc, o = Value.read_varint body !off in
            off := o;
            let certificates =
              List.init nc (fun _ ->
                  let cs, o = Value.read_string body !off in
                  off := o;
                  match Pki.certificate_of_string cs with
                  | Some c -> c
                  | None -> failwith "bad certificate")
            in
            let ca_s, o = Value.read_string body !off in
            off := o;
            (match Rsa.public_of_string ca_s with
            | None -> Error "bundle: bad CA key"
            | Some ca_key ->
                if !off <> String.length body then
                  Error "bundle: trailing garbage"
                else Ok { algo; data; records; certificates; ca_key })
      end
    end
  with Failure e | Invalid_argument e -> Error ("bundle: " ^ e)

let save t path =
  try
    let oc = open_out_bin path in
    output_string oc (to_string t);
    close_out oc;
    Ok ()
  with Sys_error e -> Error e

let load path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    of_string s
  with Sys_error e -> Error e
