(** Memoized closures over the provenance DAG.

    {!Prov_query} and the lineage engine both walk the same two edge
    sets — backward over predecessor checksums and forward over
    aggregation inputs.  Recomputing those walks per query is
    quadratic on deep derivation chains (the old [derivatives]
    rescanned every record per frontier node); this index builds the
    forward adjacency once per store generation and memoizes the
    closures, so repeated lineage questions over an unchanged store
    are amortised linear.

    An index is a snapshot: it answers over the records present when
    it was built.  {!of_store} keeps a one-slot cache keyed on the
    store's identity and record count, so callers can re-request the
    index per query and still share the memo tables until the store
    grows.  All entry points are thread-safe (the server asks lineage
    questions from concurrent reader threads). *)

open Tep_tree

type t

val of_store : Provstore.t -> t
(** The index for the store's current generation.  Cheap when the
    cached index is still valid; otherwise one linear scan to rebuild
    the forward adjacency. *)

val store : t -> Provstore.t

val closure : t -> Oid.t -> Record.t list
(** Memoized {!Provstore.provenance_object}: the backward transitive
    closure, sorted by [seq_id]. *)

val ancestors : t -> Oid.t -> Oid.t list
(** Objects the given object transitively derives from (excluding
    itself), sorted — [Prov_query.derived_from] semantics. *)

val consumers : t -> Oid.t -> Oid.t list
(** Direct forward edges: objects with an [Aggregate] record citing
    the given object as an input, sorted. *)

val descendants : t -> Oid.t -> Oid.t list
(** Forward transitive closure over aggregation edges (excluding the
    object itself), sorted — [Prov_query.derivatives] semantics. *)

val depth : t -> Oid.t -> int
(** Derivation depth: 0 for objects never output by an [Aggregate]
    record, else 1 + the maximum depth over every aggregate input
    across the object's aggregate records.  Iterative, so 10k-deep
    chains do not overflow the stack. *)
