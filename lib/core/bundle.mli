(** Portable delivery bundles.

    The paper's data recipient "obtains one or more data objects …
    each data object is accompanied by a provenance object".  A bundle
    is exactly that shipment, self-contained and file-serialisable:
    the object snapshot, its provenance records, and the certificates
    of every participant appearing in them.

    The CA public key is the recipient's trust anchor.  It travels in
    the bundle for convenience, but a recipient who trusts the
    embedded key trusts the sender — pass [~trusted_ca] to {!verify}
    with an out-of-band copy for real deployments. *)

open Tep_tree

type t = {
  algo : Tep_crypto.Digest_algo.algo;
  data : Subtree.t;
  records : Record.t list;
  certificates : Tep_crypto.Pki.certificate list;
  ca_key : Tep_crypto.Rsa.public_key;
}

val create : ?deep:bool -> Engine.t -> Oid.t -> (t, string) result
(** Package an object from a live engine: snapshot + provenance DAG
    closure + the certificates of all participants cited.  [~deep]
    additionally ships every descendant object's provenance (see
    {!Engine.deliver}). *)

val of_atomic : Atomic.t -> Participant.Directory.t -> Oid.t -> (t, string) result
(** Same, from the Section-3 atomic store. *)

val verify : ?trusted_ca:Tep_crypto.Rsa.public_key -> t -> Verifier.report
(** Recipient-side check: build a directory from the bundled
    certificates (validated against [trusted_ca], or the embedded key
    if omitted) and run the full {!Verifier}.  Certificates that fail
    CA validation are dropped, so records by their subjects surface as
    signature violations. *)

val participants : t -> string list

(** {1 Serialisation} *)

val to_string : t -> string
(** Binary encoding with a SHA-256 integrity trailer (detects
    accidental corruption; {e malicious} tampering is what the
    provenance checksums themselves catch). *)

val of_string : string -> (t, string) result
val save : t -> string -> (unit, string) result
val load : string -> (t, string) result
