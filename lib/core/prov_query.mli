(** Query interface over collected provenance — the questions the
    paper's motivating scenario asks ("the provenance information
    indicates that the patients' ages were originally collected by
    PCP Paul…"), answered from the records.

    All functions are read-only and respect the partial order of
    Definition 1. *)

open Tep_store
open Tep_tree

val history : Provstore.t -> Oid.t -> Record.t list
(** An object's own chain, oldest first (inherited records included —
    they are part of the object's history per Section 4.2). *)

val value_history : Provstore.t -> Oid.t -> (int * string * Value.t) list
(** (seq, participant, value) for records carrying an embedded value —
    a cell's visible timeline. *)

val last_writer : Provstore.t -> Oid.t -> string option
(** Who performed the most recent operation on the object. *)

val writers : Provstore.t -> Oid.t -> string list
(** Every participant in the object's own chain, de-duplicated,
    chronological by first appearance. *)

val contributors : Provstore.t -> Oid.t -> (string * int) list
(** Participants across the object's whole provenance DAG (transitive
    closure), with record counts, sorted by count descending — the
    "who touched anything this was derived from" question. *)

val derived_from : Provstore.t -> Oid.t -> Oid.t list
(** Objects this object transitively derives from via aggregation
    edges (excluding itself), sorted. *)

val derivatives : Provstore.t -> Oid.t -> Oid.t list
(** Objects whose provenance cites this object as an aggregation
    input — downstream impact ("what was built from this?"). *)

val touched_by : Provstore.t -> string -> Oid.t list
(** Every object with at least one record by the given participant. *)

val state_hash_at : Provstore.t -> Oid.t -> int -> string option
(** The object's subtree hash after its operation [seq] — provenance
    as a version store. *)

val record_at : Provstore.t -> Oid.t -> int -> Record.t option
