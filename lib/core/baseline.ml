module Digest_algo = Tep_crypto.Digest_algo

type op = Insert of int * string | Update of int * string | Delete of int

let frame fields =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "TEPBL1";
  List.iter
    (fun f ->
      Tep_store.Value.add_varint buf (String.length f);
      Buffer.add_string buf f)
    fields;
  Buffer.contents buf

let hash_obj algo oid value = Digest_algo.digest algo (frame [ string_of_int oid; value ])

module Plain = struct
  type rec_ = { seq : int; participant : string; oid : int }

  type t = {
    mutable records : rec_ list;
    values : (int, string * int) Hashtbl.t; (* oid -> value, seq *)
  }

  let create () = { records = []; values = Hashtbl.create 64 }

  let apply t ~participant op =
    let push oid seq = t.records <- { seq; participant; oid } :: t.records in
    match op with
    | Insert (oid, v) ->
        Hashtbl.replace t.values oid (v, 0);
        push oid 0
    | Update (oid, v) ->
        let seq =
          match Hashtbl.find_opt t.values oid with
          | Some (_, s) -> s + 1
          | None -> 0
        in
        Hashtbl.replace t.values oid (v, seq);
        push oid seq
    | Delete oid -> Hashtbl.remove t.values oid

  let record_count t = List.length t.records
  let space_bytes t = record_count t * 12
end

type entry = {
  seq : int;
  participant : string;
  oid : int;
  in_hash : string;
  out_hash : string;
  prev : string; (* previous checksum, or "\x00" genesis *)
  mutable checksum : string;
}

let genesis = "\x00"

let entry_payload e =
  frame
    [
      string_of_int e.seq;
      string_of_int e.oid;
      e.in_hash;
      e.out_hash;
      e.prev;
    ]

let sign_entry p e = { e with checksum = Participant.sign p (entry_payload e) }

let verify_entry dir e =
  match Participant.Directory.lookup dir e.participant with
  | None -> Error (Printf.sprintf "unknown participant %s" e.participant)
  | Some cert ->
      if
        Tep_crypto.Rsa.verify ~algo:Digest_algo.SHA256 cert.Tep_crypto.Pki.subject_key
          ~msg:(entry_payload e) ~signature:e.checksum
      then Ok ()
      else Error (Printf.sprintf "bad checksum at seq %d (oid %d)" e.seq e.oid)

(* Check one object's chain links: seqs consecutive, prev checksums and
   in/out hashes chaining. *)
let check_links entries =
  let rec go prev = function
    | [] -> Ok ()
    | e :: rest -> (
        match prev with
        | None ->
            if e.seq <> 0 then Error "chain does not start at seq 0"
            else if e.prev <> genesis then Error "first record has a prev"
            else go (Some e) rest
        | Some p ->
            if e.seq <> p.seq + 1 then
              Error (Printf.sprintf "seq gap: %d after %d" e.seq p.seq)
            else if not (String.equal e.prev p.checksum) then
              Error (Printf.sprintf "broken prev link at seq %d" e.seq)
            else if not (String.equal e.in_hash p.out_hash) then
              Error (Printf.sprintf "input hash mismatch at seq %d" e.seq)
            else go (Some e) rest)
  in
  go None entries

module Linear = struct
  type t = {
    algo : Digest_algo.algo;
    chains : (int, entry list ref) Hashtbl.t; (* newest first *)
    mutable count : int;
  }

  let create ?(algo = Digest_algo.SHA1) () =
    { algo; chains = Hashtbl.create 64; count = 0 }

  let chain t oid =
    match Hashtbl.find_opt t.chains oid with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.chains oid c;
        c

  let apply t p op =
    match op with
    | Insert (oid, v) ->
        let c = chain t oid in
        if !c <> [] then Error (Printf.sprintf "object %d already exists" oid)
        else begin
          let e =
            sign_entry p
              {
                seq = 0;
                participant = Participant.name p;
                oid;
                in_hash = genesis;
                out_hash = hash_obj t.algo oid v;
                prev = genesis;
                checksum = "";
              }
          in
          c := [ e ];
          t.count <- t.count + 1;
          Ok ()
        end
    | Update (oid, v) -> (
        let c = chain t oid in
        match !c with
        | [] -> Error (Printf.sprintf "object %d does not exist" oid)
        | last :: _ ->
            let e =
              sign_entry p
                {
                  seq = last.seq + 1;
                  participant = Participant.name p;
                  oid;
                  in_hash = last.out_hash;
                  out_hash = hash_obj t.algo oid v;
                  prev = last.checksum;
                  checksum = "";
                }
            in
            c := e :: !c;
            t.count <- t.count + 1;
            Ok ())
    | Delete oid ->
        Hashtbl.remove t.chains oid;
        Ok ()

  let record_count t = t.count

  let space_bytes t =
    Hashtbl.fold (fun _ c acc -> acc + (List.length !c * 140)) t.chains 0

  let verify_object t dir oid =
    match Hashtbl.find_opt t.chains oid with
    | None -> Error (Printf.sprintf "object %d has no provenance" oid)
    | Some c ->
        let entries = List.rev !c in
        let rec sigs = function
          | [] -> Ok ()
          | e :: rest -> (
              match verify_entry dir e with
              | Ok () -> sigs rest
              | Error _ as err -> err)
        in
        (match sigs entries with
        | Error e -> Error e
        | Ok () -> (
            match check_links entries with
            | Error e -> Error e
            | Ok () -> Ok (List.length entries)))

  let verify_all t dir =
    Hashtbl.fold
      (fun oid _ (ok, bad) ->
        match verify_object t dir oid with
        | Ok _ -> (ok + 1, bad)
        | Error _ -> (ok, bad + 1))
      t.chains (0, 0)

  let corrupt t oid =
    match Hashtbl.find_opt t.chains oid with
    | None | Some { contents = [] } -> false
    | Some c ->
        let e = List.nth !c (List.length !c / 2) in
        e.checksum <-
          String.mapi
            (fun i ch -> if i = 0 then Char.chr (Char.code ch lxor 1) else ch)
            e.checksum;
        true
end

module Global = struct
  type t = {
    algo : Digest_algo.algo;
    mutable entries : entry list; (* newest first; one global chain *)
    values : (int, string) Hashtbl.t;
    mutable count : int;
    lock : Mutex.t;
  }

  let create ?(algo = Digest_algo.SHA1) () =
    {
      algo;
      entries = [];
      values = Hashtbl.create 64;
      count = 0;
      lock = Mutex.create ();
    }

  let apply t p op =
    Mutex.lock t.lock;
    let result =
      let head_checksum, head_seq =
        match t.entries with
        | [] -> (genesis, -1)
        | e :: _ -> (e.checksum, e.seq)
      in
      let push oid in_hash out_hash =
        let e =
          sign_entry p
            {
              seq = head_seq + 1;
              participant = Participant.name p;
              oid;
              in_hash;
              out_hash;
              prev = head_checksum;
              checksum = "";
            }
        in
        t.entries <- e :: t.entries;
        t.count <- t.count + 1
      in
      match op with
      | Insert (oid, v) ->
          if Hashtbl.mem t.values oid then
            Error (Printf.sprintf "object %d already exists" oid)
          else begin
            Hashtbl.replace t.values oid v;
            push oid genesis (hash_obj t.algo oid v);
            Ok ()
          end
      | Update (oid, v) -> (
          match Hashtbl.find_opt t.values oid with
          | None -> Error (Printf.sprintf "object %d does not exist" oid)
          | Some old ->
              Hashtbl.replace t.values oid v;
              push oid (hash_obj t.algo oid old) (hash_obj t.algo oid v);
              Ok ())
      | Delete oid ->
          Hashtbl.remove t.values oid;
          Ok ()
    in
    Mutex.unlock t.lock;
    result

  let record_count t = t.count

  let space_bytes t = t.count * 140

  (* Global chain: verifying any object means checking every link of
     the shared chain up to that object's last record. *)
  let verify_object t dir oid =
    let entries = List.rev t.entries in
    let rec go prev n relevant = function
      | [] ->
          if relevant = 0 then
            Error (Printf.sprintf "object %d has no provenance" oid)
          else Ok relevant
      | e :: rest -> (
          (match prev with
          | None ->
              if e.prev <> genesis then Error "first record has a prev" else Ok ()
          | Some (p : entry) ->
              if e.seq <> p.seq + 1 then Error "seq gap in global chain"
              else if not (String.equal e.prev p.checksum) then
                Error (Printf.sprintf "broken global link at seq %d" e.seq)
              else Ok ())
          |> function
          | Error err -> Error err
          | Ok () -> (
              match verify_entry dir e with
              | Error err -> Error err
              | Ok () ->
                  go (Some e) (n + 1)
                    (if e.oid = oid then relevant + 1 else relevant)
                    rest))
    in
    go None 0 0 entries

  let verify_all t dir =
    let oids = Hashtbl.create 64 in
    List.iter (fun e -> Hashtbl.replace oids e.oid ()) t.entries;
    Hashtbl.fold
      (fun oid () (ok, bad) ->
        match verify_object t dir oid with
        | Ok _ -> (ok + 1, bad)
        | Error _ -> (ok, bad + 1))
      oids (0, 0)

  let corrupt t oid =
    match List.filter (fun e -> e.oid = oid) t.entries with
    | [] -> false
    | es ->
        let e = List.nth es (List.length es / 2) in
        e.checksum <-
          String.mapi
            (fun i ch -> if i = 0 then Char.chr (Char.code ch lxor 1) else ch)
            e.checksum;
        true
end
