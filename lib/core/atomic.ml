open Tep_store
open Tep_tree

type version_info = { v_value : Value.t; v_hash : string; v_record : Record.t }

type obj = {
  mutable versions : version_info list; (* newest first; index = seq *)
}

type t = {
  algo : Tep_crypto.Digest_algo.algo;
  dir : Participant.Directory.t;
  objects : obj Oid.Tbl.t;
  gen : Oid.gen;
  prov : Provstore.t;
}

let create ?(algo = Tep_crypto.Digest_algo.SHA1) dir =
  {
    algo;
    dir;
    objects = Oid.Tbl.create 64;
    gen = Oid.gen ();
    prov = Provstore.create ~algo ();
  }

let algo t = t.algo

let atom_hash t oid value = Merkle.hash_subtree t.algo (Subtree.atom oid value)

let emit t participant ~kind ~seq_id ~output_oid ~input_oids ~input_hashes
    ~output_hash ~output_value ~prev_checksums =
  let payload =
    Checksum.payload ~kind ~seq_id ~output_oid ~input_hashes ~output_hash
      ~prev_checksums
  in
  let checksum = Checksum.sign participant payload in
  let record =
    {
      Record.seq_id;
      participant = Participant.name participant;
      kind;
      inherited = false;
      input_oids;
      input_hashes;
      output_oid;
      output_hash;
      output_value = Some output_value;
      prev_checksums;
      checksum;
    }
  in
  Provstore.append t.prov record;
  record

let insert t p value =
  let oid = Oid.fresh t.gen in
  let h = atom_hash t oid value in
  let record =
    emit t p ~kind:Record.Insert ~seq_id:0 ~output_oid:oid ~input_oids:[]
      ~input_hashes:[] ~output_hash:h ~output_value:value ~prev_checksums:[]
  in
  Oid.Tbl.replace t.objects oid
    { versions = [ { v_value = value; v_hash = h; v_record = record } ] };
  (oid, record)

let find t oid = Oid.Tbl.find_opt t.objects oid

let update t p oid value =
  match find t oid with
  | None | Some { versions = [] } ->
      Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some obj ->
      let last = List.hd obj.versions in
      let h = atom_hash t oid value in
      let record =
        emit t p ~kind:Record.Update
          ~seq_id:(last.v_record.Record.seq_id + 1)
          ~output_oid:oid ~input_oids:[ oid ] ~input_hashes:[ last.v_hash ]
          ~output_hash:h ~output_value:value
          ~prev_checksums:[ last.v_record.Record.checksum ]
      in
      obj.versions <-
        { v_value = value; v_hash = h; v_record = record } :: obj.versions;
      Ok record

let delete t oid =
  if Oid.Tbl.mem t.objects oid then begin
    Oid.Tbl.remove t.objects oid;
    Ok ()
  end
  else Error (Printf.sprintf "no object %s" (Oid.to_string oid))

let version_info t oid seq_opt =
  match find t oid with
  | None | Some { versions = [] } ->
      Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some obj -> (
      match seq_opt with
      | None -> Ok (List.hd obj.versions)
      | Some seq -> (
          match
            List.find_opt
              (fun vi -> vi.v_record.Record.seq_id = seq)
              obj.versions
          with
          | Some vi -> Ok vi
          | None ->
              Error
                (Printf.sprintf "object %s has no version %d"
                   (Oid.to_string oid) seq)))

let aggregate t p ~value inputs =
  if inputs = [] then Error "aggregate: no inputs"
  else begin
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | (oid, seq_opt) :: rest -> (
          match version_info t oid seq_opt with
          | Error e -> Error e
          | Ok vi -> collect ((oid, vi) :: acc) rest)
    in
    match collect [] inputs with
    | Error e -> Error e
    | Ok infos ->
        let oid = Oid.fresh t.gen in
        let h = atom_hash t oid value in
        let seq_id =
          1
          + List.fold_left
              (fun acc (_, vi) -> max acc vi.v_record.Record.seq_id)
              (-1) infos
        in
        let record =
          emit t p ~kind:Record.Aggregate ~seq_id ~output_oid:oid
            ~input_oids:(List.map fst infos)
            ~input_hashes:(List.map (fun (_, vi) -> vi.v_hash) infos)
            ~output_hash:h ~output_value:value
            ~prev_checksums:
              (List.map (fun (_, vi) -> vi.v_record.Record.checksum) infos)
        in
        Oid.Tbl.replace t.objects oid
          { versions = [ { v_value = value; v_hash = h; v_record = record } ] };
        Ok (oid, record)
  end

let current t oid =
  match find t oid with
  | Some { versions = vi :: _ } -> Some vi.v_value
  | _ -> None

let version t oid seq =
  match version_info t oid (Some seq) with
  | Ok vi -> Some vi.v_value
  | Error _ -> None

let latest_seq t oid =
  match find t oid with
  | Some { versions = vi :: _ } -> Some vi.v_record.Record.seq_id
  | _ -> None

let provstore t = t.prov

let deliver t oid =
  match find t oid with
  | None | Some { versions = [] } ->
      Error (Printf.sprintf "no object %s" (Oid.to_string oid))
  | Some { versions = vi :: _ } ->
      Ok (Subtree.atom oid vi.v_value, Provstore.provenance_object t.prov oid)

let verify t oid =
  match deliver t oid with
  | Error e -> Error e
  | Ok (data, records) ->
      Ok (Verifier.verify ~algo:t.algo ~directory:t.dir ~data records)
