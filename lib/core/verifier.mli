(** Data-recipient verification (Section 3, "Consider the data
    recipient who obtains object D and the provenance object P...").

    Given a delivered data object (a {!Tep_tree.Subtree.t} snapshot),
    its claimed provenance object (a record list), and the participant
    directory, [verify] re-runs the paper's two checks — latest-record
    output match, and bottom-up checksum recomputation — plus the
    structural chain/DAG validation that realises guarantees R1–R8.
    Every problem found is reported as a typed violation. *)

open Tep_tree

type violation =
  | No_provenance of Oid.t
      (** no record in P outputs the delivered object *)
  | Object_mismatch of { oid : Oid.t; expected : string; actual : string }
      (** delivered object hash ≠ latest record's output hash (R4/R5) *)
  | Bad_signature of { oid : Oid.t; seq : int; reason : string }
      (** stored checksum does not verify for the named participant
          (R1/R8) *)
  | Duplicate_seq of { oid : Oid.t; seq : int }
      (** two records claim the same position (R3) *)
  | Seq_gap of { oid : Oid.t; after_seq : int; found_seq : int }
      (** a hole in an object's chain (R2/R7) *)
  | First_record_invalid of { oid : Oid.t; reason : string }
      (** chains must start with insert / import / aggregate *)
  | Broken_link of { oid : Oid.t; seq : int; reason : string }
      (** prev-checksum or input-hash linkage failure (R1/R2/R3/R6) *)
  | Dangling_prev of { oid : Oid.t; seq : int; missing : string }
      (** a referenced predecessor record is absent from P (R2/R7) *)
  | Malformed of { oid : Oid.t; seq : int; reason : string }

type report = {
  violations : violation list;
  records_checked : int;
  objects_checked : int;
  signatures_checked : int;
}

val ok : report -> bool

val verify :
  ?pool:Tep_parallel.Pool.t ->
  algo:Tep_crypto.Digest_algo.algo ->
  directory:Participant.Directory.t ->
  data:Subtree.t ->
  Record.t list ->
  report
(** Full verification of delivered object [data] against provenance
    object [records].  [?pool] as in {!verify_records}. *)

val verify_records :
  ?pool:Tep_parallel.Pool.t ->
  algo:Tep_crypto.Digest_algo.algo ->
  directory:Participant.Directory.t ->
  Record.t list ->
  report
(** Structure + signature checks only (no delivered object) — e.g. for
    auditing a provenance store in place.

    With [?pool] the per-record RSA signature checks fan out across
    the pool's domains; the returned report (violations, order,
    counters) is byte-identical to the sequential run. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
val violation_to_string : violation -> string
