(** Incremental auditing.

    The paper's recipient re-verifies whole provenance objects from
    their genesis on every delivery.  A standing auditor can do much
    better: after one full verification it records, per object, the
    last verified (seq, checksum) pair — a {e checkpoint} — and later
    verifies only the records appended since, checking that the first
    new record of each object chains onto the checkpointed checksum.
    Tampering with already-audited history is caught by the chain
    break at the checkpoint boundary; tampering after the checkpoint
    is caught by the normal checks.

    Checkpoints are serialisable so periodic audit jobs can persist
    them between runs. *)

open Tep_tree

type checkpoint

val empty : checkpoint

val objects : checkpoint -> int
(** Number of objects with a recorded high-water mark. *)

val mark : checkpoint -> Oid.t -> (int * string) option
(** The (seq, checksum) high-water mark for an object, if audited. *)

val full_audit :
  ?pool:Tep_parallel.Pool.t ->
  algo:Tep_crypto.Digest_algo.algo ->
  directory:Participant.Directory.t ->
  Provstore.t ->
  Verifier.report * checkpoint
(** Verify every record in the store; on success the checkpoint covers
    every object's latest record.  (A failed report yields a
    checkpoint covering only clean objects.)  [?pool] as in
    {!incremental_audit}. *)

val incremental_audit :
  ?pool:Tep_parallel.Pool.t ->
  algo:Tep_crypto.Digest_algo.algo ->
  directory:Participant.Directory.t ->
  checkpoint ->
  Provstore.t ->
  Verifier.report * checkpoint * int
(** Verify only records newer than the checkpoint (plus boundary
    links).  Returns the report, the advanced checkpoint, and the
    number of records actually examined — the audit cost, which is
    proportional to the {e new} work, not to history length.

    With [?pool] the per-object sweeps run on separate domains (the
    store must not be mutated concurrently); report and checkpoint
    are identical to the sequential audit. *)

val to_string : checkpoint -> string
val of_string : string -> (checkpoint, string) result
