(* Cross-shard plumbing shared by the server, the CLI and recovery:
   the routing hash that assigns tables to shards, the coordinator
   decision log, and the two failpoint sites the crash-enumeration
   tests drive.

   The two-phase protocol layered on the WAL commit-marker format:

     phase 1  every participant shard runs the transaction's sub-batch
              as [Engine.complex_op_prepare ~txid], journaling
              [Wal.Prepare (txid, root)] + flush in place of its
              normal [Wal.Commit];
     decide   once ALL prepares are durable, the coordinator appends
              [Wal.Decide (txid, shard indices)] to its own log and
              flushes — this single durable frame is the commit point;
     phase 2  each shard appends a plain [Wal.Commit root] marker, so
              later recoveries need not consult the coordinator for
              this transaction.

   Crash anywhere before the Decide is durable: every shard's Prepare
   is undecided, recovery rolls the prepared frames back on all
   shards.  Crash after: [Recovery.recover ~is_decided] treats each
   Prepare as a commit marker, so all shards come back committed —
   whether or not phase 2 reached them.  Either way the shards agree,
   which is all atomicity requires. *)

let site_decide = "shard.2pc.decide"
let site_phase2 = "shard.2pc.phase2"
let () = List.iter Tep_fault.Fault.register [ site_decide; site_phase2 ]

(* FNV-1a over the key, folded mod the shard count.  Deliberately not
   [Hashtbl.hash]: the shard map is durable state (it decides which
   shard directory owns a table), so it must be stable across OCaml
   releases and word sizes. *)
let hash_key s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(* Fold the full 64-bit digest with an unsigned remainder: truncating
   to the native int first would be word-size dependent (and a 63-bit
   unsigned value wraps negative in a 63-bit signed int, sending [mod]
   out of range). *)
let shard_of_key ~shards key =
  if shards <= 1 then 0
  else Int64.to_int (Int64.unsigned_rem (hash_key key) (Int64.of_int shards))

(* Table-aware override: a deployment can pin hot tables to chosen
   shards; everything else routes by hash. *)
let shard_of_table ~shards ?(overrides = []) table =
  match List.assoc_opt table overrides with
  | Some s when s >= 0 && s < shards -> s
  | _ -> shard_of_key ~shards table

(* ------------------------------------------------------------------ *)
(* Coordinator decision log                                            *)
(* ------------------------------------------------------------------ *)

(* The coordinator log holds only [Wal.Decide] frames; everything else
   (from damage or foreign writers) is ignored.  Salvage-mode reading
   means a torn final Decide is simply absent — exactly the "crash
   before the decision was durable" outcome. *)
let decided_txids coord_path =
  if Sys.file_exists coord_path then
    List.filter_map
      (function Tep_store.Wal.Decide (txid, _) -> Some txid | _ -> None)
      (Tep_store.Wal.read_file coord_path)
  else []

let is_decided_from coord_path =
  let tbl = Hashtbl.create 16 in
  List.iter (fun txid -> Hashtbl.replace tbl txid ()) (decided_txids coord_path);
  fun txid -> Hashtbl.mem tbl txid

let record_decision ~coord ~txid ~shards =
  Tep_fault.Fault.hit site_decide;
  match Tep_store.Wal.append coord (Tep_store.Wal.Decide (txid, shards)) with
  | Error e -> Error ("2pc decide: " ^ e)
  | Ok () -> (
      match Tep_store.Wal.flush coord with
      | Ok () -> Ok ()
      | Error e -> Error ("2pc decide flush: " ^ e))

let finalize_shard engine =
  Tep_fault.Fault.hit site_phase2;
  Engine.write_commit_marker engine

(* ------------------------------------------------------------------ *)
(* The coordinator commit sequence                                     *)
(* ------------------------------------------------------------------ *)

type participant_op = {
  p_shard : int;
  p_engine : Engine.t;
  p_by : Participant.t;
  p_body : unit -> (unit, string) result;
}

(* A body that returns [Error] made no mutation (every op it tried was
   rejected before touching state), so [complex_op_prepare] skips the
   commit entirely — no Prepare frame, nothing to roll back.  Such a
   shard simply drops out of the transaction, mirroring how the
   single-shard batcher skips a commit when a whole group is rejected.

   A [Wal_failure] during phase 1 or during the decision aborts the
   transaction: no Decide is ever written, so every shard's Prepare is
   undecided and recovery rolls the prepared frames back.  (As with a
   single-shard WAL failure, the live engines' in-memory state keeps
   the prepared mutations; durability is what recovery restores.)
   [Fault.Crash] escapes untouched at every step — that is the whole
   point of the crash-enumeration tests. *)
let commit_cross ~coord ~txid parts =
  let parts =
    List.sort (fun a b -> compare a.p_shard b.p_shard) parts
  in
  let prepared = ref [] in
  let abort = ref None in
  List.iter
    (fun p ->
      if !abort = None then
        match Engine.complex_op_prepare p.p_engine p.p_by ~txid p.p_body with
        | Ok ((), m) -> prepared := (p, m) :: !prepared
        | Error _ -> () (* no mutation, no Prepare: shard drops out *)
        | exception Engine.Wal_failure e ->
            abort := Some ("2pc prepare (shard " ^ string_of_int p.p_shard
                           ^ "): " ^ e))
    parts;
  match !abort with
  | Some e -> Error e
  | None -> (
      let prepared = List.rev !prepared in
      if prepared = [] then Ok ([], [])
      else
        let shards = List.map (fun (p, _) -> p.p_shard) prepared in
        match record_decision ~coord ~txid ~shards with
        | Error e -> Error e
        | Ok () ->
            (* Committed.  Phase 2 is best-effort: a shard whose
               upgrade marker fails stays committed via the Decide;
               the failure is only reported so the server can count
               it. *)
            let warnings = ref [] in
            List.iter
              (fun (p, _) ->
                try finalize_shard p.p_engine
                with Engine.Wal_failure e ->
                  warnings :=
                    ("2pc phase 2 (shard " ^ string_of_int p.p_shard ^ "): "
                     ^ e)
                    :: !warnings)
              prepared;
            Ok
              ( List.map (fun (p, m) -> (p.p_shard, m)) prepared,
                List.rev !warnings ))
