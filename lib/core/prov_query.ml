open Tep_tree

let history = Provstore.records_for

let value_history store oid =
  List.filter_map
    (fun (r : Record.t) ->
      Option.map
        (fun v -> (r.Record.seq_id, r.Record.participant, v))
        r.Record.output_value)
    (history store oid)

let last_writer store oid =
  Option.map
    (fun (r : Record.t) -> r.Record.participant)
    (Provstore.latest store oid)

let writers store oid =
  List.fold_left
    (fun acc (r : Record.t) ->
      if List.mem r.Record.participant acc then acc
      else acc @ [ r.Record.participant ])
    [] (history store oid)

let contributors store oid =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (r : Record.t) ->
      let c =
        Option.value (Hashtbl.find_opt counts r.Record.participant) ~default:0
      in
      Hashtbl.replace counts r.Record.participant (c + 1))
    (Provstore.provenance_object store oid);
  Hashtbl.fold (fun p c acc -> (p, c) :: acc) counts []
  |> List.sort (fun (pa, ca) (pb, cb) ->
         let c = compare cb ca in
         if c <> 0 then c else compare pa pb)

let derived_from store oid =
  let closure = Provstore.provenance_object store oid in
  List.filter_map
    (fun (r : Record.t) ->
      if Oid.equal r.Record.output_oid oid then None else Some r.Record.output_oid)
    closure
  |> List.sort_uniq Oid.compare

let derivatives store oid =
  (* forward edges: scan every record's aggregation inputs *)
  let direct =
    List.filter_map
      (fun (r : Record.t) ->
        if
          r.Record.kind = Record.Aggregate
          && List.exists (Oid.equal oid) r.Record.input_oids
        then Some r.Record.output_oid
        else None)
      (Provstore.all store)
    |> List.sort_uniq Oid.compare
  in
  (* transitive closure *)
  let seen = Oid.Tbl.create 16 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | o :: rest ->
        if Oid.Tbl.mem seen o then go rest
        else begin
          Oid.Tbl.replace seen o ();
          let next =
            List.filter_map
              (fun (r : Record.t) ->
                if
                  r.Record.kind = Record.Aggregate
                  && List.exists (Oid.equal o) r.Record.input_oids
                then Some r.Record.output_oid
                else None)
              (Provstore.all store)
          in
          go (next @ rest)
        end
  in
  go direct;
  Oid.Tbl.fold (fun o () acc -> o :: acc) seen [] |> List.sort Oid.compare

let touched_by store participant =
  List.filter
    (fun oid ->
      List.exists
        (fun (r : Record.t) -> r.Record.participant = participant)
        (history store oid))
    (Provstore.objects store)

let record_at store oid seq =
  List.find_opt (fun (r : Record.t) -> r.Record.seq_id = seq) (history store oid)

let state_hash_at store oid seq =
  Option.map (fun (r : Record.t) -> r.Record.output_hash) (record_at store oid seq)
