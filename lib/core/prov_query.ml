let history = Provstore.records_for

let value_history store oid =
  List.filter_map
    (fun (r : Record.t) ->
      Option.map
        (fun v -> (r.Record.seq_id, r.Record.participant, v))
        r.Record.output_value)
    (history store oid)

let last_writer store oid =
  Option.map
    (fun (r : Record.t) -> r.Record.participant)
    (Provstore.latest store oid)

let writers store oid =
  List.fold_left
    (fun acc (r : Record.t) ->
      if List.mem r.Record.participant acc then acc
      else acc @ [ r.Record.participant ])
    [] (history store oid)

let contributors store oid =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (r : Record.t) ->
      let c =
        Option.value (Hashtbl.find_opt counts r.Record.participant) ~default:0
      in
      Hashtbl.replace counts r.Record.participant (c + 1))
    (Prov_index.closure (Prov_index.of_store store) oid);
  Hashtbl.fold (fun p c acc -> (p, c) :: acc) counts []
  |> List.sort (fun (pa, ca) (pb, cb) ->
         let c = compare cb ca in
         if c <> 0 then c else compare pa pb)

let derived_from store oid = Prov_index.ancestors (Prov_index.of_store store) oid

let derivatives store oid =
  Prov_index.descendants (Prov_index.of_store store) oid

let touched_by store participant =
  List.filter
    (fun oid ->
      List.exists
        (fun (r : Record.t) -> r.Record.participant = participant)
        (history store oid))
    (Provstore.objects store)

let record_at store oid seq =
  List.find_opt (fun (r : Record.t) -> r.Record.seq_id = seq) (history store oid)

let state_hash_at store oid seq =
  Option.map (fun (r : Record.t) -> r.Record.output_hash) (record_at store oid seq)
