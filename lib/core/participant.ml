open Tep_crypto

type t = { name : string; keys : Rsa.keypair; cert : Pki.certificate }

let create ?bits ~ca ~name drbg =
  if name = "" then invalid_arg "Participant.create: empty name";
  let keys = Rsa.generate ?bits drbg in
  let cert = Pki.issue ca ~subject:name keys.Rsa.public in
  { name; keys; cert }

let name t = t.name
let public_key t = t.keys.Rsa.public
let certificate t = t.cert

let sign t payload = Rsa.sign ~algo:Digest_algo.SHA256 t.keys.Rsa.private_ payload
let decrypt t ciphertext = Rsa.decrypt t.keys.Rsa.private_ ciphertext

let key_fingerprint t = Rsa.fingerprint (public_key t)

let to_string t =
  String.concat "\n"
    [
      "participant-v1";
      Digest_algo.to_hex t.name;
      Rsa.private_to_string t.keys.Rsa.private_;
      Pki.certificate_to_string t.cert;
    ]

let of_string s =
  match String.split_on_char '\n' s with
  | [ "participant-v1"; name; priv; cert ] -> (
      try
        match (Rsa.private_of_string priv, Pki.certificate_of_string cert) with
        | Some private_, Some cert ->
            Some
              {
                name = Digest_algo.of_hex name;
                keys = { Rsa.public = Rsa.public_of_private private_; private_ };
                cert;
              }
        | _ -> None
      with _ -> None)
  | _ -> None

module Directory = struct
  type participant = t

  type t = {
    ca_key : Rsa.public_key;
    certs : (string, Pki.certificate) Hashtbl.t;
    (* Subjects whose registered certificate has already been checked
       against [ca_key].  Signature verification is per-record; the CA
       check is per-participant — caching it removes one RSA verify
       from every record on the verifier/audit hot paths.  Guarded by
       [vlock] because those paths fan out across domains. *)
    verified : (string, unit) Hashtbl.t;
    vlock : Mutex.t;
  }

  let create ~ca_key =
    {
      ca_key;
      certs = Hashtbl.create 16;
      verified = Hashtbl.create 16;
      vlock = Mutex.create ();
    }

  let ca_key t = t.ca_key

  let invalidate_verified t subject =
    Mutex.lock t.vlock;
    Hashtbl.remove t.verified subject;
    Mutex.unlock t.vlock

  let register_certificate t cert =
    if not (Pki.verify_certificate ~ca_key:t.ca_key cert) then
      Error
        (Printf.sprintf "certificate for %s does not verify" cert.Pki.subject)
    else
      match Hashtbl.find_opt t.certs cert.Pki.subject with
      | Some existing
        when Rsa.public_to_string existing.Pki.subject_key
             <> Rsa.public_to_string cert.Pki.subject_key ->
          Error
            (Printf.sprintf "subject %s already registered with another key"
               cert.Pki.subject)
      | _ ->
          Hashtbl.replace t.certs cert.Pki.subject cert;
          invalidate_verified t cert.Pki.subject;
          Ok ()

  let lookup_verified t name =
    match Hashtbl.find_opt t.certs name with
    | None -> `Unknown
    | Some cert ->
        Mutex.lock t.vlock;
        let hit = Hashtbl.mem t.verified name in
        Mutex.unlock t.vlock;
        if hit then `Verified cert
        else if Pki.verify_certificate ~ca_key:t.ca_key cert then begin
          Mutex.lock t.vlock;
          Hashtbl.replace t.verified name ();
          Mutex.unlock t.vlock;
          `Verified cert
        end
        else `Bad_certificate

  let verified_count t =
    Mutex.lock t.vlock;
    let n = Hashtbl.length t.verified in
    Mutex.unlock t.vlock;
    n

  let register t (p : participant) =
    match register_certificate t p.cert with
    | Ok () -> ()
    | Error e -> invalid_arg ("Participant.Directory.register: " ^ e)

  let lookup t name = Hashtbl.find_opt t.certs name

  let names t =
    List.sort Stdlib.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.certs [])
end
