open Tep_store
open Tep_tree

type t = {
  algo : Tep_crypto.Digest_algo.algo;
  by_object : Record.t list ref Oid.Tbl.t; (* newest first *)
  by_checksum : (string, Record.t) Hashtbl.t;
  mutable arrival : Record.t list; (* newest first *)
  mutable count : int;
  relation : Table.t;
  participant_ids : (string, int) Hashtbl.t;
}

let relation_schema =
  Schema.make
    [
      { Schema.name = "SeqID"; ty = Value.TInt; nullable = false };
      { Schema.name = "Participant"; ty = Value.TInt; nullable = false };
      { Schema.name = "Oid"; ty = Value.TInt; nullable = false };
      { Schema.name = "Checksum"; ty = Value.TBlob; nullable = false };
    ]

let create ?(algo = Tep_crypto.Digest_algo.SHA1) () =
  {
    algo;
    by_object = Oid.Tbl.create 1024;
    by_checksum = Hashtbl.create 1024;
    arrival = [];
    count = 0;
    relation = Table.create ~name:"provenance" relation_schema;
    participant_ids = Hashtbl.create 16;
  }

let algo t = t.algo

let participant_id t name =
  match Hashtbl.find_opt t.participant_ids name with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.participant_ids in
      Hashtbl.replace t.participant_ids name i;
      i

let append t (r : Record.t) =
  let chain =
    match Oid.Tbl.find_opt t.by_object r.Record.output_oid with
    | Some c -> c
    | None ->
        let c = ref [] in
        Oid.Tbl.replace t.by_object r.Record.output_oid c;
        c
  in
  (match !chain with
  | prev :: _ when prev.Record.seq_id >= r.Record.seq_id ->
      invalid_arg
        (Printf.sprintf
           "Provstore.append: seq %d for %s not greater than existing %d"
           r.Record.seq_id
           (Oid.to_string r.Record.output_oid)
           prev.Record.seq_id)
  | _ -> ());
  chain := r :: !chain;
  Hashtbl.replace t.by_checksum r.Record.checksum r;
  t.arrival <- r :: t.arrival;
  t.count <- t.count + 1;
  ignore
    (Table.insert t.relation
       [|
         Value.Int r.Record.seq_id;
         Value.Int (participant_id t r.Record.participant);
         Value.Int (Oid.to_int r.Record.output_oid);
         Value.Blob r.Record.checksum;
       |])

let latest t oid =
  match Oid.Tbl.find_opt t.by_object oid with
  | Some { contents = r :: _ } -> Some r
  | _ -> None

let records_for t oid =
  match Oid.Tbl.find_opt t.by_object oid with
  | Some c -> List.rev !c
  | None -> []

let find_by_checksum t c = Hashtbl.find_opt t.by_checksum c

let provenance_object t oid =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit (r : Record.t) =
    if not (Hashtbl.mem seen r.Record.checksum) then begin
      Hashtbl.replace seen r.Record.checksum ();
      out := r :: !out;
      List.iter
        (fun c ->
          match find_by_checksum t c with
          | Some pred -> visit pred
          | None -> () (* dangling edge: the verifier will flag it *))
        r.Record.prev_checksums
    end
  in
  List.iter visit (records_for t oid);
  List.sort Record.compare_seq !out

let all t = List.rev t.arrival

let record_count t = t.count

let object_count t = Oid.Tbl.length t.by_object

let objects t =
  Oid.Tbl.fold (fun oid _ acc -> oid :: acc) t.by_object []
  |> List.sort Oid.compare

let relation t = t.relation

let space_bytes t =
  let buf = Buffer.create 4096 in
  Table.encode buf t.relation;
  Buffer.length buf

let paper_row_bytes = 4 + 4 + 4 + 128

let paper_space_bytes t = t.count * paper_row_bytes

let prune t ~live =
  let keep = Hashtbl.create 1024 in
  List.iter
    (fun oid ->
      List.iter
        (fun (r : Record.t) -> Hashtbl.replace keep r.Record.checksum ())
        (provenance_object t oid))
    live;
  let t' = create ~algo:t.algo () in
  (* arrival order preserves per-object seq monotonicity *)
  List.iter
    (fun (r : Record.t) ->
      if Hashtbl.mem keep r.Record.checksum then append t' r)
    (all t);
  t'

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "TEPPROV1";
  Buffer.add_string buf (Tep_crypto.Digest_algo.name t.algo);
  Buffer.add_char buf '\n';
  Value.add_varint buf t.count;
  List.iter (fun r -> Record.encode buf r) (all t);
  Buffer.contents buf

let of_string s =
  try
    if String.length s < 8 || String.sub s 0 8 <> "TEPPROV1" then
      Error "provstore: bad magic"
    else begin
      let nl = String.index_from s 8 '\n' in
      let algo_name = String.sub s 8 (nl - 8) in
      match Tep_crypto.Digest_algo.of_name algo_name with
      | None -> Error ("provstore: unknown algo " ^ algo_name)
      | Some algo ->
          let count, off = Value.read_varint s (nl + 1) in
          let t = create ~algo () in
          let off = ref off in
          for _ = 1 to count do
            let r, o = Record.decode s !off in
            off := o;
            append t r
          done;
          Ok t
    end
  with Failure e | Invalid_argument e -> Error ("provstore: " ^ e)
