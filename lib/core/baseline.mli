(** Comparison baselines for the evaluation and ablations.

    All three operate on a simple store of atomic string-valued
    objects, so the ablation benches compare checksum strategies on
    identical workloads:

    - {!Plain}: provenance records with no integrity protection — the
      cost floor; the paper's "overhead" is measured against this.
    - {!Linear}: per-object hash-chained checksums over atomic
      objects — the Hasan et al. (FAST'09) scheme this paper extends.
      No compound objects, no aggregation support.
    - {!Global}: one global checksum chain across all objects — the
      rejected design of Section 3.2.  Correct, but serialises all
      participants through a single chain head, and corruption
      anywhere breaks verification of {e every} object. *)

type op = Insert of int * string | Update of int * string | Delete of int
(** Atomic operations on object ids. *)

module Plain : sig
  type t

  val create : unit -> t
  val apply : t -> participant:string -> op -> unit
  val record_count : t -> int
  val space_bytes : t -> int
  (** 12 bytes per record: ⟨SeqID, Participant, Oid⟩ with no checksum
      column. *)
end

module Linear : sig
  type t

  val create : ?algo:Tep_crypto.Digest_algo.algo -> unit -> t
  val apply : t -> Participant.t -> op -> (unit, string) result
  (** [Delete] drops the chain (like the paper, deletion ends an
      object's provenance). *)

  val record_count : t -> int
  val space_bytes : t -> int

  val verify_object :
    t -> Participant.Directory.t -> int -> (int, string) result
  (** Verify one object's chain; returns its length.  Other objects'
      corruption does not affect it (failure locality). *)

  val verify_all : t -> Participant.Directory.t -> int * int
  (** (objects verified ok, objects failing). *)

  val corrupt : t -> int -> bool
  (** Flip a byte in some checksum of the given object's chain;
      [false] if the object has no records. *)
end

module Global : sig
  type t

  val create : ?algo:Tep_crypto.Digest_algo.algo -> unit -> t

  val apply : t -> Participant.t -> op -> (unit, string) result
  (** Every record chains to the global head — participants must
      serialise here (the Section 3.2 bottleneck).  Thread-safe via a
      single mutex so the contention is measurable with domains. *)

  val record_count : t -> int
  val space_bytes : t -> int

  val verify_object : t -> Participant.Directory.t -> int -> (int, string) result
  (** Verifying one object requires walking (and checking) the whole
      global chain up to its last record. *)

  val verify_all : t -> Participant.Directory.t -> int * int

  val corrupt : t -> int -> bool
  (** Corrupt some record of the given object — with global chaining
      this breaks every object verified through that point. *)
end
