open Tep_store
open Tep_tree
open Tep_crypto

type t = {
  algo : Digest_algo.algo;
  proof : Proof.t;
  root_records : Record.t list;
  certificates : Pki.certificate list;
  ca_key : Rsa.public_key;
}

(* The Merkle cache is internal to the engine; rebuild a scratch one
   bound to the same forest for proof construction. *)
let create engine oid =
  let forest = Engine.forest engine in
  let cache = Merkle.create_cache (Engine.algo engine) forest in
  match Proof.prove cache forest oid with
  | Error e -> Error e
  | Ok proof -> (
      let root = Proof.root_oid proof in
      match Provstore.provenance_object (Engine.provstore engine) root with
      | [] ->
          Error
            (Printf.sprintf "root %s has no provenance to bind the hash"
             (Oid.to_string root))
      | root_records ->
          let directory = Engine.directory engine in
          let names =
            List.sort_uniq compare
              (List.map (fun r -> r.Record.participant) root_records)
          in
          let certificates =
            List.filter_map (Participant.Directory.lookup directory) names
          in
          Ok
            {
              algo = Engine.algo engine;
              proof;
              root_records;
              certificates;
              ca_key = Participant.Directory.ca_key directory;
            })

let leaf_value t = t.proof.Proof.leaf_value
let leaf_oid t = t.proof.Proof.leaf_oid

let verify ?trusted_ca t =
  let ca_key = Option.value trusted_ca ~default:t.ca_key in
  let directory = Participant.Directory.create ~ca_key in
  List.iter
    (fun cert ->
      ignore (Participant.Directory.register_certificate directory cert))
    t.certificates;
  let report =
    Verifier.verify_records ~algo:t.algo ~directory t.root_records
  in
  if not (Verifier.ok report) then Ok report
  else begin
    let root = Proof.root_oid t.proof in
    let latest =
      List.fold_left
        (fun acc (r : Record.t) ->
          if not (Oid.equal r.Record.output_oid root) then acc
          else
            match acc with
            | Some (b : Record.t) when b.Record.seq_id >= r.Record.seq_id -> acc
            | _ -> Some r)
        None t.root_records
    in
    match latest with
    | None ->
        Error
          (Printf.sprintf "no record for proof root %s" (Oid.to_string root))
    | Some r -> (
        match Proof.verify t.algo ~root_hash:r.Record.output_hash t.proof with
        | Ok () -> Ok report
        | Error e -> Error e)
  end

let size_bytes t = Proof.size_bytes t.proof

let magic = "TEPSLCE1"

let to_string t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf magic;
  Value.add_string buf (Digest_algo.name t.algo);
  Proof.encode buf t.proof;
  Value.add_varint buf (List.length t.root_records);
  List.iter (Record.encode buf) t.root_records;
  Value.add_varint buf (List.length t.certificates);
  List.iter
    (fun c -> Value.add_string buf (Pki.certificate_to_string c))
    t.certificates;
  Value.add_string buf (Rsa.public_to_string t.ca_key);
  let body = Buffer.contents buf in
  body ^ Sha256.digest body

let of_string s =
  try
    let dlen = Sha256.digest_size in
    if String.length s < 8 + dlen then Error "slice: too short"
    else begin
      let body = String.sub s 0 (String.length s - dlen) in
      let trailer = String.sub s (String.length s - dlen) dlen in
      if not (String.equal (Sha256.digest body) trailer) then
        Error "slice: integrity trailer mismatch"
      else if String.sub body 0 8 <> magic then Error "slice: bad magic"
      else begin
        let algo_name, off = Value.read_string body 8 in
        match Digest_algo.of_name algo_name with
        | None -> Error ("slice: unknown algo " ^ algo_name)
        | Some algo ->
            let proof, off = Proof.decode body off in
            let n, off = Value.read_varint body off in
            let off = ref off in
            let root_records =
              List.init n (fun _ ->
                  let r, o = Record.decode body !off in
                  off := o;
                  r)
            in
            let nc, o = Value.read_varint body !off in
            off := o;
            let certificates =
              List.init nc (fun _ ->
                  let cs, o = Value.read_string body !off in
                  off := o;
                  match Pki.certificate_of_string cs with
                  | Some c -> c
                  | None -> failwith "bad certificate")
            in
            let ca_s, o = Value.read_string body !off in
            off := o;
            (match Rsa.public_of_string ca_s with
            | None -> Error "slice: bad CA key"
            | Some ca_key ->
                if !off <> String.length body then Error "slice: trailing garbage"
                else Ok { algo; proof; root_records; certificates; ca_key })
      end
    end
  with Failure e | Invalid_argument e -> Error ("slice: " ^ e)
