open Tep_store
open Tep_tree

let flip_first_byte s =
  if s = "" then "\x01"
  else
    String.mapi
      (fun i c -> if i = 0 then Char.chr (Char.code c lxor 0x01) else c)
      s

let at_idx idx f records =
  List.mapi (fun i r -> if i = idx then f r else r) records

let modify_output_hash ~idx records =
  at_idx idx
    (fun (r : Record.t) ->
      { r with Record.output_hash = flip_first_byte r.Record.output_hash })
    records

let modify_embedded_value ~idx v records =
  at_idx idx (fun r -> { r with Record.output_value = Some v }) records

let reattribute ~idx ~to_ records =
  at_idx idx (fun r -> { r with Record.participant = to_ }) records

let sign_record attacker (r : Record.t) =
  let payload =
    Checksum.payload ~kind:r.Record.kind ~seq_id:r.Record.seq_id
      ~output_oid:r.Record.output_oid ~input_hashes:r.Record.input_hashes
      ~output_hash:r.Record.output_hash
      ~prev_checksums:r.Record.prev_checksums
  in
  {
    r with
    Record.participant = Participant.name attacker;
    checksum = Checksum.sign attacker payload;
  }

let resign_as ~idx ~attacker records =
  at_idx idx
    (fun (r : Record.t) ->
      sign_record attacker
        { r with Record.output_hash = flip_first_byte r.Record.output_hash })
    records

let remove ~idx records = List.filteri (fun i _ -> i <> idx) records

let insert_forged ~after ~attacker records =
  match List.nth_opt records after with
  | None -> Error "insert_forged: index out of range"
  | Some (anchor : Record.t) ->
      let forged_hash =
        Tep_crypto.Digest_algo.digest Tep_crypto.Digest_algo.SHA256 "forged"
      in
      let forged =
        sign_record attacker
          {
            Record.seq_id = anchor.Record.seq_id + 1;
            participant = Participant.name attacker;
            kind = Record.Update;
            inherited = false;
            input_oids = [ anchor.Record.output_oid ];
            input_hashes = [ anchor.Record.output_hash ];
            output_oid = anchor.Record.output_oid;
            output_hash = forged_hash;
            output_value = None;
            prev_checksums = [ anchor.Record.checksum ];
            checksum = "";
          }
      in
      (* Splice right after the anchor, leaving later records as they
         were (the attacker cannot re-sign other participants'
         successors). *)
      let before, after_l =
        List.filteri (fun i _ -> i <= after) records,
        List.filteri (fun i _ -> i > after) records
      in
      Ok (before @ (forged :: after_l))

let rec perturb_first_leaf (t : Subtree.t) =
  match t.Subtree.children with
  | [] ->
      let v =
        match t.Subtree.value with
        | Value.Int i -> Value.Int (i + 1)
        | Value.Text s -> Value.Text (s ^ "!")
        | Value.Float f -> Value.Float (f +. 1.)
        | Value.Bool b -> Value.Bool (not b)
        | Value.Blob s -> Value.Blob (flip_first_byte s)
        | Value.Null -> Value.Int 0
      in
      { t with Subtree.value = v }
  | c :: rest -> { t with Subtree.children = perturb_first_leaf c :: rest }

let tamper_data_value = perturb_first_leaf
let reassign_provenance = perturb_first_leaf

let collude_remove_span ~first ~last ~resign records =
  if first >= last then Error "collude_remove_span: first must precede last"
  else
    match (List.nth_opt records first, List.nth_opt records last) with
    | Some (a : Record.t), Some (b : Record.t) -> (
        if not (Oid.equal a.Record.output_oid b.Record.output_oid) then
          Error "collude_remove_span: records belong to different objects"
        else
          match resign b.Record.participant with
          | None ->
              Error
                (Printf.sprintf "collude_remove_span: no key for %s"
                   b.Record.participant)
          | Some colluder ->
              (* Bridge b directly onto a and re-sign. *)
              let bridged =
                sign_record colluder
                  {
                    b with
                    Record.seq_id = a.Record.seq_id + 1;
                    input_hashes = [ a.Record.output_hash ];
                    prev_checksums = [ a.Record.checksum ];
                  }
              in
              Ok
                (List.filteri (fun i _ -> i <= first || i >= last) records
                |> List.map (fun (r : Record.t) ->
                       if r == b then bridged else r)))
    | _ -> Error "collude_remove_span: index out of range"
