open Tep_tree

(* Per-object high-water mark: seq, checksum, and output hash of the
   last verified record (the hash is needed to validate the boundary
   link of the next update). *)
type hwm = { hw_seq : int; hw_checksum : string; hw_hash : string }

type checkpoint = hwm Oid.Map.t

let empty = Oid.Map.empty

let objects cp = Oid.Map.cardinal cp

let mark cp oid =
  Option.map (fun h -> (h.hw_seq, h.hw_checksum)) (Oid.Map.find_opt oid cp)

(* ------------------------------------------------------------------ *)
(* Incremental per-object verification                                 *)
(* ------------------------------------------------------------------ *)

type obj_result = {
  violations : Verifier.violation list;
  examined : int;
  signatures : int;
  new_hwm : hwm option; (* advance only when the object is clean *)
}

let check_object ~directory ~store cp oid records : obj_result =
  let prev_hwm = Oid.Map.find_opt oid cp in
  (* Anchor consistency: the audited record must still be present,
     unchanged.  A store whose history for this object was rewritten
     or truncated below the checkpoint fails here even if the
     replacement chain is internally consistent. *)
  let anchor_violation =
    match prev_hwm with
    | None -> None
    | Some h -> (
        match
          List.find_opt (fun r -> r.Record.seq_id = h.hw_seq) records
        with
        | Some r when String.equal r.Record.checksum h.hw_checksum -> None
        | Some r ->
            Some
              (Verifier.Broken_link
                 {
                   oid;
                   seq = r.Record.seq_id;
                   reason = "audited record was replaced (history rewrite)";
                 })
        | None ->
            Some
              (Verifier.Seq_gap
                 { oid; after_seq = h.hw_seq; found_seq = -1 }))
  in
  match anchor_violation with
  | Some v ->
      (* keep the old mark so the rewrite keeps being reported *)
      { violations = [ v ]; examined = 1; signatures = 0; new_hwm = prev_hwm }
  | None ->
  let new_records =
    match prev_hwm with
    | None -> records
    | Some h -> List.filter (fun r -> r.Record.seq_id > h.hw_seq) records
  in
  if new_records = [] then
    { violations = []; examined = 0; signatures = 0; new_hwm = prev_hwm }
  else begin
    let violations = ref [] in
    let add v = violations := v :: !violations in
    let signatures = ref 0 in
    (* 1. signatures of new records *)
    List.iter
      (fun r ->
        incr signatures;
        match Checksum.verify_record directory r with
        | Ok () -> ()
        | Error reason ->
            add (Verifier.Bad_signature { oid; seq = r.Record.seq_id; reason }))
      new_records;
    (* 2. boundary + structure *)
    let check_first (r : Record.t) =
      match (prev_hwm, r.Record.kind) with
      | Some h, Record.Update ->
          if r.Record.seq_id <> h.hw_seq + 1 then
            add
              (Verifier.Seq_gap
                 { oid; after_seq = h.hw_seq; found_seq = r.Record.seq_id })
          else if r.Record.prev_checksums <> [ h.hw_checksum ] then
            add
              (Verifier.Broken_link
                 {
                   oid;
                   seq = r.Record.seq_id;
                   reason = "does not chain onto the audited checkpoint";
                 })
          else if r.Record.input_hashes <> [ h.hw_hash ] then
            add
              (Verifier.Broken_link
                 {
                   oid;
                   seq = r.Record.seq_id;
                   reason = "input hash differs from the audited state";
                 })
      | Some _, _ ->
          add
            (Verifier.Malformed
               {
                 oid;
                 seq = r.Record.seq_id;
                 reason = "non-update record after the chain started";
               })
      | None, Record.Insert | None, Record.Import ->
          if r.Record.seq_id <> 0 then
            add
              (Verifier.First_record_invalid
                 { oid; reason = "insert/import must have seq 0" })
      | None, Record.Aggregate ->
          (* citations resolve against the whole store; the cited
             records belong to other objects' (audited) chains *)
          let n = List.length r.Record.input_hashes in
          if
            n = 0
            || List.length r.Record.prev_checksums <> n
            || List.length r.Record.input_oids <> n
          then
            add
              (Verifier.Malformed
                 {
                   oid;
                   seq = r.Record.seq_id;
                   reason = "aggregate arity mismatch";
                 })
          else begin
            let max_seq = ref (-1) in
            List.iteri
              (fun i pc ->
                match Provstore.find_by_checksum store pc with
                | None ->
                    add
                      (Verifier.Dangling_prev
                         {
                           oid;
                           seq = r.Record.seq_id;
                           missing = Tep_crypto.Digest_algo.to_hex pc;
                         })
                | Some cited ->
                    if !max_seq < cited.Record.seq_id then
                      max_seq := cited.Record.seq_id;
                    if
                      not
                        (Oid.equal cited.Record.output_oid
                           (List.nth r.Record.input_oids i))
                      || not
                           (String.equal cited.Record.output_hash
                              (List.nth r.Record.input_hashes i))
                    then
                      add
                        (Verifier.Broken_link
                           {
                             oid;
                             seq = r.Record.seq_id;
                             reason =
                               Printf.sprintf "aggregate citation %d mismatch" i;
                           }))
              r.Record.prev_checksums;
            if !max_seq >= 0 && r.Record.seq_id <> !max_seq + 1 then
              add
                (Verifier.Broken_link
                   {
                     oid;
                     seq = r.Record.seq_id;
                     reason = "aggregate seq is not max input seq + 1";
                   })
          end
      | None, Record.Update ->
          add
            (Verifier.First_record_invalid
               { oid; reason = "chain starts with an update record" })
    in
    (match new_records with r :: _ -> check_first r | [] -> ());
    let rec walk = function
      | (a : Record.t) :: (b : Record.t) :: rest ->
          if b.Record.seq_id <> a.Record.seq_id + 1 then
            add
              (Verifier.Seq_gap
                 { oid; after_seq = a.Record.seq_id; found_seq = b.Record.seq_id })
          else if b.Record.kind <> Record.Update then
            add
              (Verifier.Malformed
                 { oid; seq = b.Record.seq_id; reason = "mid-chain non-update" })
          else begin
            if b.Record.prev_checksums <> [ a.Record.checksum ] then
              add
                (Verifier.Broken_link
                   { oid; seq = b.Record.seq_id; reason = "prev checksum mismatch" });
            if b.Record.input_hashes <> [ a.Record.output_hash ] then
              add
                (Verifier.Broken_link
                   { oid; seq = b.Record.seq_id; reason = "input hash mismatch" })
          end;
          walk (b :: rest)
      | _ -> ()
    in
    walk new_records;
    let clean = !violations = [] in
    let new_hwm =
      if clean then
        match List.rev new_records with
        | last :: _ ->
            Some
              {
                hw_seq = last.Record.seq_id;
                hw_checksum = last.Record.checksum;
                hw_hash = last.Record.output_hash;
              }
        | [] -> prev_hwm
      else prev_hwm
    in
    {
      violations = List.rev !violations;
      examined = List.length new_records;
      signatures = !signatures;
      new_hwm;
    }
  end

let incremental_audit ?pool ~algo:_ ~directory cp store =
  let objs = Provstore.objects store in
  (* Per-object checks are independent: they read the (frozen) store
     and the mutex-guarded certificate cache.  Fan the sweep out
     across domains, then fold results back in oid order so the report
     and checkpoint are identical to the sequential sweep. *)
  let check oid =
    check_object ~directory ~store cp oid (Provstore.records_for store oid)
  in
  let results =
    match pool with
    | Some p when Tep_parallel.Pool.size p > 1 ->
        Tep_parallel.Pool.map_list p check objs
    | _ -> List.map check objs
  in
  let violations = ref [] in
  let examined = ref 0 in
  let signatures = ref 0 in
  let cp' =
    List.fold_left2
      (fun acc oid r ->
        violations := !violations @ r.violations;
        examined := !examined + r.examined;
        signatures := !signatures + r.signatures;
        match r.new_hwm with
        | Some h -> Oid.Map.add oid h acc
        | None -> acc)
      Oid.Map.empty objs results
  in
  ( {
      Verifier.violations = !violations;
      records_checked = !examined;
      objects_checked = List.length objs;
      signatures_checked = !signatures;
    },
    cp',
    !examined )

let full_audit ?pool ~algo ~directory store =
  let report, cp, _ = incremental_audit ?pool ~algo ~directory empty store in
  (report, cp)

(* ------------------------------------------------------------------ *)
(* Serialisation                                                       *)
(* ------------------------------------------------------------------ *)

let magic = "TEPAUD1"

let to_string cp =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Tep_store.Value.add_varint buf (Oid.Map.cardinal cp);
  Oid.Map.iter
    (fun oid h ->
      Tep_store.Value.add_varint buf (Oid.to_int oid);
      Tep_store.Value.add_varint buf h.hw_seq;
      Tep_store.Value.add_string buf h.hw_checksum;
      Tep_store.Value.add_string buf h.hw_hash)
    cp;
  Buffer.contents buf

let of_string s =
  try
    if String.length s < 7 || String.sub s 0 7 <> magic then
      Error "checkpoint: bad magic"
    else begin
      let count, off = Tep_store.Value.read_varint s 7 in
      let off = ref off in
      let cp = ref Oid.Map.empty in
      for _ = 1 to count do
        let oid, o = Tep_store.Value.read_varint s !off in
        let seq, o = Tep_store.Value.read_varint s o in
        let cksum, o = Tep_store.Value.read_string s o in
        let hash, o = Tep_store.Value.read_string s o in
        off := o;
        cp :=
          Oid.Map.add (Oid.of_int oid)
            { hw_seq = seq; hw_checksum = cksum; hw_hash = hash }
            !cp
      done;
      Ok !cp
    end
  with Failure e -> Error ("checkpoint: " ^ e)
