open Tep_tree

type t = {
  store : Provstore.t;
  generation : int; (* record_count at build time *)
  children : Oid.t list Oid.Tbl.t; (* input oid -> aggregate output oids *)
  lock : Mutex.t;
  closure_memo : Record.t list Oid.Tbl.t;
  descendants_memo : Oid.t list Oid.Tbl.t;
  depth_memo : int Oid.Tbl.t;
}

let build store =
  let children = Oid.Tbl.create 256 in
  List.iter
    (fun (r : Record.t) ->
      if r.Record.kind = Record.Aggregate then
        List.iter
          (fun input ->
            let prev =
              Option.value (Oid.Tbl.find_opt children input) ~default:[]
            in
            if not (List.exists (Oid.equal r.Record.output_oid) prev) then
              Oid.Tbl.replace children input (r.Record.output_oid :: prev))
          r.Record.input_oids)
    (Provstore.all store);
  {
    store;
    generation = Provstore.record_count store;
    children;
    lock = Mutex.create ();
    closure_memo = Oid.Tbl.create 64;
    descendants_memo = Oid.Tbl.create 64;
    depth_memo = Oid.Tbl.create 64;
  }

(* One-slot cache: lineage sessions hammer the same store, so a single
   slot keyed on physical identity + record count is enough to make
   repeated [of_store] calls free between writes. *)
let cache : t option ref = ref None
let cache_lock = Mutex.create ()

let of_store store =
  Mutex.lock cache_lock;
  let idx =
    match !cache with
    | Some idx
      when idx.store == store
           && idx.generation = Provstore.record_count store ->
        idx
    | _ ->
        let idx = build store in
        cache := Some idx;
        idx
  in
  Mutex.unlock cache_lock;
  idx

let store t = t.store

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let closure t oid =
  with_lock t (fun () ->
      match Oid.Tbl.find_opt t.closure_memo oid with
      | Some rs -> rs
      | None ->
          let rs = Provstore.provenance_object t.store oid in
          Oid.Tbl.replace t.closure_memo oid rs;
          rs)

let ancestors t oid =
  List.filter_map
    (fun (r : Record.t) ->
      if Oid.equal r.Record.output_oid oid then None
      else Some r.Record.output_oid)
    (closure t oid)
  |> List.sort_uniq Oid.compare

let consumers t oid =
  Option.value (Oid.Tbl.find_opt t.children oid) ~default:[]
  |> List.sort Oid.compare

let descendants t oid =
  with_lock t (fun () ->
      match Oid.Tbl.find_opt t.descendants_memo oid with
      | Some os -> os
      | None ->
          let seen = Oid.Tbl.create 16 in
          let rec go = function
            | [] -> ()
            | o :: rest ->
                if Oid.Tbl.mem seen o then go rest
                else begin
                  Oid.Tbl.replace seen o ();
                  let next =
                    Option.value (Oid.Tbl.find_opt t.children o) ~default:[]
                  in
                  go (next @ rest)
                end
          in
          go (Option.value (Oid.Tbl.find_opt t.children oid) ~default:[]);
          Oid.Tbl.remove seen oid;
          let os =
            Oid.Tbl.fold (fun o () acc -> o :: acc) seen []
            |> List.sort Oid.compare
          in
          Oid.Tbl.replace t.descendants_memo oid os;
          os)

(* Aggregate inputs of an object, across all of its aggregate records. *)
let agg_inputs t oid =
  List.concat_map
    (fun (r : Record.t) ->
      if r.Record.kind = Record.Aggregate then r.Record.input_oids else [])
    (Provstore.records_for t.store oid)
  |> List.sort_uniq Oid.compare

let depth t oid =
  with_lock t (fun () ->
      (* iterative post-order: push an oid, revisit it once its inputs
         are resolved.  The DAG is acyclic by construction (seq ids
         grow along edges); a repeat on the in-progress path would mean
         a corrupt store, so break the tie at depth 0 rather than
         looping. *)
      let in_progress = Oid.Tbl.create 16 in
      let rec run stack =
        match stack with
        | [] -> ()
        | o :: rest ->
            if Oid.Tbl.mem t.depth_memo o then run rest
            else
              let inputs = agg_inputs t o in
              if inputs = [] then begin
                Oid.Tbl.replace t.depth_memo o 0;
                run rest
              end
              else
                let pending =
                  List.filter
                    (fun i ->
                      (not (Oid.Tbl.mem t.depth_memo i))
                      && not (Oid.Tbl.mem in_progress i))
                    inputs
                in
                if pending = [] then begin
                  let d =
                    List.fold_left
                      (fun acc i ->
                        max acc
                          (Option.value (Oid.Tbl.find_opt t.depth_memo i)
                             ~default:(-1)))
                      (-1) inputs
                  in
                  Oid.Tbl.replace t.depth_memo o (d + 1);
                  Oid.Tbl.remove in_progress o;
                  run rest
                end
                else begin
                  Oid.Tbl.replace in_progress o ();
                  run (pending @ stack)
                end
      in
      run [ oid ];
      Option.value (Oid.Tbl.find_opt t.depth_memo oid) ~default:0)
