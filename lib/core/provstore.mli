(** The provenance database.

    Stores provenance records indexed by output object and by
    checksum, and mirrors each record into a relational table with the
    paper's experimental schema
    ⟨SeqID(int), Participant(int), Oid(int), Checksum(binary 128)⟩ —
    the artifact whose space overhead Section 5 measures. *)

open Tep_store
open Tep_tree

type t

val create : ?algo:Tep_crypto.Digest_algo.algo -> unit -> t
(** [algo] (default SHA1, as in the paper) is the digest used for
    subtree hashes referenced by the records. *)

val algo : t -> Tep_crypto.Digest_algo.algo

val append : t -> Record.t -> unit
(** Add a record.  Records for one object must arrive in increasing
    [seq_id] order. @raise Invalid_argument otherwise. *)

val latest : t -> Oid.t -> Record.t option
(** The most recent provenance record of an object (Definition 1). *)

val records_for : t -> Oid.t -> Record.t list
(** All records with this output object, ascending [seq_id]. *)

val find_by_checksum : t -> string -> Record.t option

val provenance_object : t -> Oid.t -> Record.t list
(** The full provenance object of [oid] (Definition 1): the
    transitive closure over predecessor-checksum edges, i.e. the
    non-linear provenance DAG flattened to a list sorted by
    [seq_id].  This is what a data recipient is shipped. *)

val all : t -> Record.t list
(** Every record, in arrival order. *)

val record_count : t -> int

val object_count : t -> int

val objects : t -> Oid.t list
(** Every object with at least one record, sorted by oid. *)

(** {1 Space accounting (Figures 9 and 11)} *)

val relation : t -> Table.t
(** The mirrored relational table of checksums. *)

val space_bytes : t -> int
(** Bytes of the encoded relational representation. *)

val paper_row_bytes : int
(** 140 = 4 (SeqID) + 4 (Participant) + 4 (Oid) + 128 (Checksum),
    the fixed row footprint of the paper's provenance schema. *)

val paper_space_bytes : t -> int
(** [record_count * paper_row_bytes]. *)

(** {1 Pruning (the paper's footnote 3)}

    "After an object has been deleted, its provenance object is no
    longer relevant … this enables some optimizations." *)

val prune : t -> live:Oid.t list -> t
(** A new store containing exactly the union of the live objects'
    provenance objects: dead objects' chains are dropped except the
    prefixes still cited (transitively) by live provenance, so every
    surviving object verifies exactly as before.  The original store
    is untouched. *)

(** {1 Persistence} *)

val to_string : t -> string
val of_string : string -> (t, string) result
