(** Attack injection (the threat model of Section 2.2).

    Each function simulates one of the attacks R1–R7 by manipulating a
    delivered provenance object (a record list) and/or the delivered
    data, exactly as an insider attacker could.  They are used by the
    test suite and the security examples to demonstrate that
    {!Verifier.verify} detects every attack the paper guarantees
    detection for.

    Attackers that hold real keys (insiders) are modelled by passing
    their {!Participant.t}, which lets the attack re-sign the records
    it forges — the strongest version of each attack. *)

open Tep_store
open Tep_tree

val modify_output_hash : idx:int -> Record.t list -> Record.t list
(** R1: flip a bit of record [idx]'s output hash, leaving the stored
    checksum untouched. *)

val modify_embedded_value : idx:int -> Value.t -> Record.t list -> Record.t list
(** R1: overwrite the embedded output value of record [idx]. *)

val reattribute : idx:int -> to_:string -> Record.t list -> Record.t list
(** R1/R8: claim record [idx] was made by participant [to_]. *)

val resign_as : idx:int -> attacker:Participant.t -> Record.t list -> Record.t list
(** R1 (insider): the attacker tampers with record [idx]'s output hash
    {e and} re-signs it with their own key under their own name.
    Detected through the broken linkage with the successor record. *)

val remove : idx:int -> Record.t list -> Record.t list
(** R2: drop record [idx] from the provenance object. *)

val insert_forged :
  after:int -> attacker:Participant.t -> Record.t list -> (Record.t list, string) result
(** R3: fabricate an extra update record (correctly signed by the
    insider attacker) claiming an operation that never happened, and
    splice it after record [after] of that object's chain. *)

val reassign_provenance : Subtree.t -> Subtree.t
(** R5 helper: returns a different data object (same shape, one value
    perturbed) to pair with an unmodified provenance object. *)

val tamper_data_value : Subtree.t -> Subtree.t
(** R4 helper: perturb one leaf value of the delivered object without
    touching provenance. *)

val collude_remove_span :
  first:int ->
  last:int ->
  resign:(string -> Participant.t option) ->
  Record.t list ->
  (Record.t list, string) result
(** R6/R7: colluders owning records [first] and [last] (of the same
    object chain) delete every record strictly between them and
    re-sign record [last] so it chains directly to [first].  [resign]
    must return the colluders' credentials by name.  Detected whenever
    a non-colluding record (or the delivered object) follows the
    span — the boundary the paper states ("any provenance record that
    has an immediate successor"). *)
