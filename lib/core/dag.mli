(** Explicit provenance DAGs (Definition 1 / Figure 2).

    A provenance object is a set of records partially ordered by
    [seq_id]; the checksum back-links make the DAG explicit.  This
    module reconstructs that graph from a record list for querying,
    topological traversal, and rendering. *)


type node = {
  record : Record.t;
  predecessors : int list;  (** indices into {!nodes} *)
  successors : int list;
}

type t

val build : Record.t list -> t
(** Nodes are indexed in [seq_id] order.  Predecessor edges follow
    [prev_checksums]; edges whose target checksum is not present in
    the list are recorded as {!dangling}. *)

val nodes : t -> node array
val size : t -> int

val dangling : t -> (int * string) list
(** (node index, missing predecessor checksum) pairs — evidence of
    removed records. *)

val roots : t -> int list
(** Nodes with no predecessors (inserts / imports). *)

val sinks : t -> int list
(** Nodes with no successors (most recent records). *)

val topological : t -> int list
(** Predecessors before successors.  @raise Failure on a cycle (which
    only a malformed/tampered provenance object can contain). *)

val is_linear : t -> bool
(** True when the DAG is a single chain — the Hasan et al. special
    case. *)

val records_of_participant : t -> string -> Record.t list

val depth : t -> int
(** Longest path length (1 for a single record). *)

val to_dot : t -> string
(** Graphviz rendering (records as nodes, labelled with participant,
    kind, seq). *)

val pp : Format.formatter -> t -> unit
