(** Checkpointed crash recovery for the provenance engine.

    {1 Protocol}

    A {e checkpoint generation} is one trailer-checked file holding
    the engine's full durable state — backend database, forest, tree
    view mapping and provenance store — together with the WAL sequence
    number (LSN) it covers and the root hash at capture time.
    {!checkpoint} writes a new generation atomically, then truncates
    the WAL up to the covered LSN; several generations are retained so
    a corrupted newest file falls back to an older one.

    {!recover} rebuilds an engine after a crash:

    + load the newest generation whose integrity trailer and decoding
      validate (older generations are tried in turn; every rejection
      is reported),
    + salvage the WAL and take the tail past the generation's LSN,
    + replay the {e contiguous} tail prefix up to the last
      {!Tep_store.Wal.Commit} marker — relational entries are applied
      to both the backend and the forest/view (mirroring exactly the
      oid assignments the engine performed before the crash), and
      journaled provenance records are re-appended to the store;
      frames after the last commit marker, or after a damaged gap,
      are rolled back,
    + rebuild the engine with {!Engine.of_parts} (preserving oid
      identity),
    + cross-check the recovered root hash against the last commit
      marker and against the provenance store's latest record for the
      root object,
    + write a fresh checkpoint, so rolled-back frames can never
      resurface in a later recovery.

    Object-level operations ([insert_object] & co.) are not journaled
    in the WAL; the pipeline covers the relational workload (the
    paper's experimental setting).  State they created is still
    restored from the checkpoint itself. *)

open Tep_store

type rejected = { path : string; reason : string }

type report = {
  generation : int;  (** generation the recovery started from *)
  checkpoint_lsn : int;  (** LSN covered by that generation *)
  rejected : rejected list;  (** newer generations that failed to load *)
  entries_replayed : int;  (** relational WAL entries re-applied *)
  records_replayed : int;  (** provenance records re-appended *)
  frames_dropped : int;
      (** salvaged frames rolled back: past the last commit marker or
          stranded behind a damaged gap *)
  skipped_frames : int;  (** corrupt WAL regions skipped (salvage) *)
  torn_tail : bool;  (** the WAL ended mid-frame *)
  root_hash : string;  (** recovered engine's root hash *)
  committed_root_hash : string option;
      (** hash in the last replayed commit marker (or the checkpoint's
          root hash when the tail was empty) *)
  prov_root_hash : string option;
      (** output hash of the provenance store's latest record for the
          root object, when one exists *)
  hash_verified : bool;
      (** recovered root hash matches both cross-checks above *)
}

val pp_report : Format.formatter -> report -> unit

val generation_path : dir:string -> int -> string
val generations : dir:string -> (int * string) list
(** Existing generations, newest first. *)

val checkpoint :
  ?keep:int -> dir:string -> wal:Wal.t -> Engine.t -> (int, string) result
(** Capture the engine's state as a new generation under [dir]
    (created if missing), truncate [wal] up to the covered LSN, and
    prune all but the newest [keep] (default 2) generations.  Returns
    the new generation number. *)

val recover :
  ?mode:Engine.mode ->
  ?pool:Tep_parallel.Pool.t ->
  ?wal_path:string ->
  ?is_decided:(string -> bool) ->
  ?final_checkpoint:bool ->
  dir:string ->
  directory:Participant.Directory.t ->
  unit ->
  (Engine.t * Wal.t * report, string) result
(** Run the pipeline described above.  [?pool] parallelises the
    rebuilt engine's cold root-hash pass (the basis of the
    cross-check) across domains.  [wal_path] defaults to
    [dir ^ "/wal.log"]; a missing WAL file is an empty tail.  The
    returned {!Wal.t} is open and already attached to the engine, so
    operation can continue immediately.  [final_checkpoint] (default
    true) writes the post-recovery generation.  [Error] only when no
    generation is loadable or replay cannot be applied — a mismatched
    root hash is reported, not fatal, so tampering diagnosis can
    proceed on the recovered state.

    [?is_decided] resolves cross-shard two-phase commits: a
    [Wal.Prepare (txid, root)] frame counts as a commit marker iff
    [is_decided txid] — i.e. the coordinator log durably recorded a
    [Wal.Decide] for that transaction (see {!Shards.decided_txids}).
    Defaults to [fun _ -> false], so an unsharded recovery rolls
    prepared-but-undecided work back, exactly like any other
    uncommitted tail. *)
