open Tep_crypto
open Tep_tree

let genesis = "\x00"

(* [payload] is on the per-record signing path and runs concurrently
   from pool domains AND from sys-threads sharing one domain (server
   connection threads), so its scratch buffer and digest context live
   in a single-slot atomic cache rather than per-domain storage: a
   caller takes exclusive ownership by exchanging the slot for None
   and puts the scratch back when done.  Under contention the losers
   allocate fresh scratch and the slot keeps one — always safe, and
   allocation-free on the common single-committer path. *)
type scratch = { sbuf : Buffer.t; sctx : Sha256.ctx }

let scratch_slot : scratch option Stdlib.Atomic.t = Stdlib.Atomic.make None

let with_scratch f =
  let s =
    match Stdlib.Atomic.exchange scratch_slot None with
    | Some s -> s
    | None -> { sbuf = Buffer.create 256; sctx = Sha256.init () }
  in
  Fun.protect
    ~finally:(fun () -> Stdlib.Atomic.set scratch_slot (Some s))
    (fun () -> f s)

(* Length-prefixed field framing: no two distinct field lists share an
   encoding. *)
let frame fields =
  with_scratch (fun { sbuf = buf; _ } ->
      Buffer.clear buf;
      Buffer.add_string buf "TEPCK1";
      List.iter
        (fun f ->
          Tep_store.Value.add_varint buf (String.length f);
          Buffer.add_string buf f)
        fields;
      Buffer.contents buf)

(* Incremental digest of the concatenation — identical output to
   [digest (String.concat "" hashes)] without materialising the
   O(inputs) intermediate string (aggregates can cite many inputs). *)
let combined_input_hash hashes =
  with_scratch (fun { sctx = ctx; _ } ->
      Sha256.reset ctx;
      List.iter (Sha256.update ctx) hashes;
      Sha256.final ctx)

let payload ~kind ~seq_id ~output_oid ~input_hashes ~output_hash ~prev_checksums
    =
  let seq = string_of_int seq_id in
  let oid = string_of_int (Oid.to_int output_oid) in
  let kindf = Record.kind_name kind in
  match kind with
  | Record.Insert ->
      if input_hashes <> [] || prev_checksums <> [] then
        invalid_arg "Checksum.payload: insert takes no inputs";
      frame [ kindf; seq; oid; genesis; output_hash; genesis ]
  | Record.Import -> (
      (* Like insert, but binds the pre-provenance state of the object. *)
      match (input_hashes, prev_checksums) with
      | [ h ], [] -> frame [ kindf; seq; oid; h; output_hash; genesis ]
      | _ -> invalid_arg "Checksum.payload: import takes one input, no prev")
  | Record.Update -> (
      match (input_hashes, prev_checksums) with
      | [ h ], [ c ] -> frame [ kindf; seq; oid; h; output_hash; c ]
      | [ h ], [] ->
          (* First update on an imported object whose import record is
             implicit: chain to genesis. *)
          frame [ kindf; seq; oid; h; output_hash; genesis ]
      | _ -> invalid_arg "Checksum.payload: update takes one input/prev")
  | Record.Aggregate ->
      if input_hashes = [] then
        invalid_arg "Checksum.payload: aggregate needs inputs";
      if List.length input_hashes <> List.length prev_checksums then
        invalid_arg "Checksum.payload: aggregate needs one prev per input";
      frame
        ([ kindf; seq; oid; combined_input_hash input_hashes; output_hash ]
        @ prev_checksums)

let sign = Participant.sign

let verify pk ~payload ~checksum =
  Rsa.verify ~algo:Digest_algo.SHA256 pk ~msg:payload ~signature:checksum

let verify_record dir (r : Record.t) =
  (* The CA check on the participant's certificate is cached in the
     directory — without it every record costs an extra RSA verify. *)
  match Participant.Directory.lookup_verified dir r.Record.participant with
  | `Unknown ->
      Error (Printf.sprintf "unknown participant %s" r.Record.participant)
  | `Bad_certificate ->
      Error
        (Printf.sprintf "certificate for %s does not verify"
           r.Record.participant)
  | `Verified cert -> begin
      match
          payload ~kind:r.Record.kind ~seq_id:r.Record.seq_id
            ~output_oid:r.Record.output_oid
            ~input_hashes:r.Record.input_hashes
            ~output_hash:r.Record.output_hash
            ~prev_checksums:r.Record.prev_checksums
        with
        | exception Invalid_argument e -> Error ("malformed record: " ^ e)
        | p ->
            if verify cert.Pki.subject_key ~payload:p ~checksum:r.Record.checksum
            then Ok ()
            else
              Error
                (Printf.sprintf
                   "checksum of record (seq %d, %s, %s) does not verify"
                   r.Record.seq_id r.Record.participant
                   (Oid.to_string r.Record.output_oid))
      end
