open Tep_store
open Tep_tree

type kind = Insert | Import | Update | Aggregate

type t = {
  seq_id : int;
  participant : string;
  kind : kind;
  inherited : bool;
  input_oids : Oid.t list;
  input_hashes : string list;
  output_oid : Oid.t;
  output_hash : string;
  output_value : Value.t option;
  prev_checksums : string list;
  checksum : string;
}

let kind_name = function
  | Insert -> "insert"
  | Import -> "import"
  | Update -> "update"
  | Aggregate -> "aggregate"

let compare_seq a b =
  let c = Stdlib.compare a.seq_id b.seq_id in
  if c <> 0 then c else Oid.compare a.output_oid b.output_oid

let kind_tag = function Insert -> 0 | Import -> 1 | Update -> 2 | Aggregate -> 3

let kind_of_tag = function
  | 0 -> Insert
  | 1 -> Import
  | 2 -> Update
  | 3 -> Aggregate
  | n -> failwith (Printf.sprintf "Record.decode: bad kind %d" n)

let encode buf t =
  Buffer.add_char buf 'R';
  Value.add_varint buf t.seq_id;
  Value.add_string buf t.participant;
  Buffer.add_char buf (Char.chr (kind_tag t.kind));
  Buffer.add_char buf (if t.inherited then '\x01' else '\x00');
  Value.add_varint buf (List.length t.input_oids);
  List.iter (fun o -> Value.add_varint buf (Oid.to_int o)) t.input_oids;
  Value.add_varint buf (List.length t.input_hashes);
  List.iter (Value.add_string buf) t.input_hashes;
  Value.add_varint buf (Oid.to_int t.output_oid);
  Value.add_string buf t.output_hash;
  (match t.output_value with
  | None -> Buffer.add_char buf '\x00'
  | Some v ->
      Buffer.add_char buf '\x01';
      Value.encode buf v);
  Value.add_varint buf (List.length t.prev_checksums);
  List.iter (Value.add_string buf) t.prev_checksums;
  Value.add_string buf t.checksum

let decode s off =
  if off >= String.length s || s.[off] <> 'R' then
    failwith "Record.decode: bad magic";
  let seq_id, off = Value.read_varint s (off + 1) in
  let participant, off = Value.read_string s off in
  if off + 2 > String.length s then failwith "Record.decode: truncated";
  let kind = kind_of_tag (Char.code s.[off]) in
  let inherited = s.[off + 1] = '\x01' in
  let off = off + 2 in
  let n_oids, off = Value.read_varint s off in
  let off = ref off in
  let input_oids =
    List.init n_oids (fun _ ->
        let o, o' = Value.read_varint s !off in
        off := o';
        Oid.of_int o)
  in
  let n_hashes, o = Value.read_varint s !off in
  off := o;
  let input_hashes =
    List.init n_hashes (fun _ ->
        let h, o = Value.read_string s !off in
        off := o;
        h)
  in
  let output_oid, o = Value.read_varint s !off in
  let output_hash, o = Value.read_string s o in
  off := o;
  let output_value =
    if !off >= String.length s then failwith "Record.decode: truncated"
    else if s.[!off] = '\x00' then begin
      incr off;
      None
    end
    else begin
      let v, o = Value.decode s (!off + 1) in
      off := o;
      Some v
    end
  in
  let n_prev, o = Value.read_varint s !off in
  off := o;
  let prev_checksums =
    List.init n_prev (fun _ ->
        let c, o = Value.read_string s !off in
        off := o;
        c)
  in
  let checksum, o = Value.read_string s !off in
  ( {
      seq_id;
      participant;
      kind;
      inherited;
      input_oids;
      input_hashes;
      output_oid = Oid.of_int output_oid;
      output_hash;
      output_value;
      prev_checksums;
      checksum;
    },
    o )

let encoded t =
  let buf = Buffer.create 256 in
  encode buf t;
  Buffer.contents buf

let checksum_hex t =
  let hex = Tep_crypto.Digest_algo.to_hex t.checksum in
  if String.length hex > 12 then String.sub hex 0 12 else hex

let pp fmt t =
  Format.fprintf fmt "[seq %d] %s %s%s %a -> %a%s (C=%s)" t.seq_id t.participant
    (kind_name t.kind)
    (if t.inherited then " (inherited)" else "")
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Oid.pp)
    t.input_oids Oid.pp t.output_oid
    (match t.output_value with
    | Some v -> Printf.sprintf " = %s" (Value.to_string v)
    | None -> "")
    (checksum_hex t)
