(** The Section-3 protocol over atomic objects, standalone.

    This is the paper's base scheme before the compound-object
    extension: a store of atomic objects, each with a per-object
    checksum chain, where aggregation may cite {e any} recorded
    version of an input (the multiversion reads of Figure 2, where C
    aggregates the original value a1 of A after A has moved on).

    {!Engine} supersedes this for real databases; [Atomic] exists
    because it exactly reproduces the paper's worked example
    (Figure 3) and gives linear-provenance applications a minimal
    API. *)

open Tep_store
open Tep_tree

type t

val create : ?algo:Tep_crypto.Digest_algo.algo -> Participant.Directory.t -> t

val algo : t -> Tep_crypto.Digest_algo.algo

(** {1 Operations} *)

val insert : t -> Participant.t -> Value.t -> Oid.t * Record.t
(** [C_0 = S(0 | h(A, val) | 0)], seq 0. *)

val update : t -> Participant.t -> Oid.t -> Value.t -> (Record.t, string) result
(** [C_i = S(h(A,val) | h(A,val') | C_{i-1})], seq [i = prev + 1]. *)

val delete : t -> Oid.t -> (unit, string) result
(** Removes the object; its provenance is no longer deliverable. *)

val aggregate :
  t ->
  Participant.t ->
  value:Value.t ->
  (Oid.t * int option) list ->
  (Oid.t * Record.t, string) result
(** [aggregate t p ~value inputs] creates a new object [B] from the
    given input versions ([None] = the input's latest version).
    [C = S(h(h(A_1,v_1)|..|h(A_n,v_n)) | h(B,val) | C_1|..|C_n)], seq
    [= max input seq + 1]. *)

(** {1 Inspection and delivery} *)

val current : t -> Oid.t -> Value.t option
val version : t -> Oid.t -> int -> Value.t option
val latest_seq : t -> Oid.t -> int option
val provstore : t -> Provstore.t

val deliver : t -> Oid.t -> (Subtree.t * Record.t list, string) result
(** The atom snapshot and the full provenance DAG closure — ready for
    {!Verifier.verify}. *)

val verify : t -> Oid.t -> (Verifier.report, string) result
