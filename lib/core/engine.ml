open Tep_store
open Tep_tree

exception Wal_failure of string
(* A WAL append or flush the engine could not make durable.  Typed so
   the service layer can classify it (count it, answer with a
   wal-failed wire error) instead of pattern-matching on a generic
   [Failure] message escaping a batcher thread. *)

type mode = Basic | Economical

type metrics = {
  hash_s : float;
  sign_s : float;
  sign_cpu_s : float;
  store_s : float;
  records_emitted : int;
  nodes_hashed : int;
  checksum_bytes : int;
}

let zero_metrics =
  {
    hash_s = 0.;
    sign_s = 0.;
    sign_cpu_s = 0.;
    store_s = 0.;
    records_emitted = 0;
    nodes_hashed = 0;
    checksum_bytes = 0;
  }

let add_metrics a b =
  {
    hash_s = a.hash_s +. b.hash_s;
    sign_s = a.sign_s +. b.sign_s;
    sign_cpu_s = a.sign_cpu_s +. b.sign_cpu_s;
    store_s = a.store_s +. b.store_s;
    records_emitted = a.records_emitted + b.records_emitted;
    nodes_hashed = a.nodes_hashed + b.nodes_hashed;
    checksum_bytes = a.checksum_bytes + b.checksum_bytes;
  }

(* Pre-state of an object captured before its first mutation in a
   complex operation. *)
type captured = {
  before_hash : string option; (* None: object created in this batch *)
  prev_record : Record.t option;
  mutable direct : bool; (* directly modified (vs ancestor-inherited) *)
  (* Filled at aggregate time for aggregate outputs: *)
  mutable agg_inputs : (Oid.t * string * string) list option;
      (* (input oid, input hash, prev checksum) *)
}

type batch = {
  participant : Participant.t;
  touched : captured Oid.Tbl.t;
  mutable b_hash_s : float;
}

type t = {
  db : Database.t;
  forest : Forest.t;
  view : Tree_view.mapping;
  cache : Merkle.cache;
  prov : Provstore.t;
  dir : Participant.Directory.t;
  wal : Wal.t option;
  pool : Tep_parallel.Pool.t option;
  mutable mode : mode;
  mutable batch : batch option;
  mutable next_marker : string option;
      (* Some txid: the next commit is phase 1 of a cross-shard 2PC —
         journal Wal.Prepare (txid, root) instead of Wal.Commit *)
  mutable last : metrics;
  mutable total : metrics;
}

let now () = Unix.gettimeofday ()

let backend t = t.db
let forest t = t.forest
let provstore t = t.prov
let directory t = t.dir
let mapping t = t.view
let root_oid t = Tree_view.root t.view
let algo t = Merkle.algo t.cache
let mode t = t.mode
let set_mode t m = t.mode <- m
let last_metrics t = t.last
let total_metrics t = t.total

let of_parts ?(algo = Tep_crypto.Digest_algo.SHA1) ?(mode = Economical) ?wal
    ?pool ?provstore ~directory ~forest ~view db =
  let cache = Merkle.create_cache algo forest in
  (* Warm the cache so economical commits start incremental.  This is
     a cold full-tree pass — the pool (when given) hashes sibling
     subtrees on all domains. *)
  (match Merkle.hash ?pool cache (Tree_view.root view) with
  | Ok _ -> ()
  | Error e -> failwith ("Engine.create: " ^ e));
  {
    db;
    forest;
    view;
    cache;
    prov =
      (match provstore with
      | Some p -> p
      | None -> Provstore.create ~algo ());
    dir = directory;
    wal;
    pool;
    mode;
    batch = None;
    next_marker = None;
    last = zero_metrics;
    total = zero_metrics;
  }

let create ?algo ?mode ?wal ?pool ?provstore ~directory db =
  let forest = Forest.create () in
  let view = Tree_view.build forest db in
  of_parts ?algo ?mode ?wal ?pool ?provstore ~directory ~forest ~view db

let root_hash t =
  match Merkle.hash ?pool:t.pool t.cache (root_oid t) with
  | Ok h -> h
  | Error e -> failwith ("Engine.root_hash: " ^ e)

(* WAL appends are retried internally on transient errors; a
   persistent failure means the mutation's durability cannot be
   guaranteed, so it must not be silently ignored.  Simulated crashes
   (Tep_fault.Fault.Crash) propagate untouched. *)
let wal_log t entry =
  match t.wal with
  | None -> ()
  | Some w -> (
      match Wal.append w entry with
      | Ok () -> ()
      | Error e -> raise (Wal_failure e))

let wal_present t = Option.is_some t.wal

(* ------------------------------------------------------------------ *)
(* Batch capture                                                       *)
(* ------------------------------------------------------------------ *)

let require_batch t op =
  match t.batch with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Engine.%s: no active batch" op)

(* Record the pre-state of [oid] (which must currently exist) and of
   all its ancestors, if not captured yet in this batch. *)
let capture_existing t b ~direct oid =
  let capture_one ~direct oid =
    match Oid.Tbl.find_opt b.touched oid with
    | Some c -> if direct then c.direct <- true
    | None ->
        let t0 = now () in
        let before_hash =
          match Merkle.hash ?pool:t.pool t.cache oid with
          | Ok h -> Some h
          | Error e -> failwith ("Engine.capture: " ^ e)
        in
        b.b_hash_s <- b.b_hash_s +. (now () -. t0);
        let prev_record = Provstore.latest t.prov oid in
        Oid.Tbl.replace b.touched oid
          { before_hash; prev_record; direct; agg_inputs = None }
  in
  capture_one ~direct oid;
  List.iter (capture_one ~direct:false) (Forest.ancestors t.forest oid)

(* Record a brand-new object (no pre-state).  The parent path must
   have been captured with [capture_existing] BEFORE the insertion
   mutated the tree. *)
let mark_created b oid =
  Oid.Tbl.replace b.touched oid
    { before_hash = None; prev_record = None; direct = true; agg_inputs = None }

(* ------------------------------------------------------------------ *)
(* Commit: emit one record per surviving touched object                *)
(* ------------------------------------------------------------------ *)

let object_depth t oid = List.length (Forest.ancestors t.forest oid)

(* Failpoint inside the signing stage: lets tests perturb signer
   completion order (Delay) or kill a signer (Crash) while records are
   fanned out across pool domains. *)
let sign_site = "engine.commit.sign"
let () = Tep_fault.Fault.register sign_site

(* Adaptive gate for the signing fan-out (ROADMAP 2b).  Below this
   many records the per-task handoff and domain wakeup exceed what the
   parallel signatures recover, so the stage runs on the caller; and a
   1-core host never fans out at all — there, pool dispatch is pure
   overhead at any batch size (the recorded pooled write path was ~30x
   slower than serial before this gate). *)
let sign_serial_below = 4
let host_cores = lazy (Domain.recommended_domain_count ())

(* A record fully prepared by the sequential hash/payload stage of
   [commit], awaiting only its signature. *)
type staged = {
  st_oid : Oid.t;
  st_kind : Record.kind;
  st_seq : int;
  st_inherited : bool;
  st_input_oids : Oid.t list;
  st_input_hashes : string list;
  st_output_hash : string;
  st_output_value : Value.t option;
  st_prev_checksums : string list;
  st_payload : string;
}

(* Commit is a deterministic three-stage pipeline:

   1. sequential deepest-first Merkle hashing + payload construction
      (warms the Economical cache bottom-up and fixes the canonical
      record order);
   2. signing of every staged payload — fanned out over the engine's
      pool when one is attached, sequential otherwise.  Payloads are
      mutually independent: each record's [prev_checksums] come from
      the pre-batch store snapshot (or, for aggregates, from Import
      records already emitted during the body), never from a sibling
      staged in the same commit, and [Pool.map_chunked] writes result
      [i] into slot [i], so the output is byte-identical either way;
   3. sequential append + WAL journaling in the stage-1 order, so
      Provstore arrival order and WAL bytes match the serial engine.

   Sequence numbers need one commit-local table: the old interleaved
   loop appended records as it produced them, so an aggregate staged
   after one of its inputs observed the input's in-commit record via
   [Provstore.latest].  [assigned] replays exactly that view without
   touching the store before the signing stage. *)
let commit t (b : batch) : metrics =
  if t.mode = Basic then Merkle.clear t.cache;
  Merkle.reset_stats t.cache;
  let hash_s = ref b.b_hash_s in
  (* Deepest objects first: their hashes warm the cache for ancestors,
     and their records read naturally (actual before inherited).
     Depths are computed once per survivor — [Forest.ancestors] walks
     the parent chain, so calling it inside the comparator would make
     the sort O(n·d log n). *)
  let survivors =
    Oid.Tbl.fold
      (fun oid c acc ->
        if Forest.mem t.forest oid then (object_depth t oid, oid, c) :: acc
        else acc)
      b.touched []
    |> List.sort (fun (da, a, _) (db, bo, _) ->
           if da <> db then Stdlib.compare db da else Oid.compare a bo)
  in
  (* Stage 1: hash + stage payloads, canonical order. *)
  let assigned = Oid.Tbl.create 16 in
  let staged =
    List.map
      (fun (_, oid, c) ->
        let t0 = now () in
        let output_hash =
          match Merkle.hash ?pool:t.pool t.cache oid with
          | Ok h -> h
          | Error e -> failwith ("Engine.commit: " ^ e)
        in
        hash_s := !hash_s +. (now () -. t0);
        let kind, seq_id, input_oids, input_hashes, prev_checksums =
          match c.agg_inputs with
          | Some inputs ->
              let oids = List.map (fun (o, _, _) -> o) inputs in
              let hashes = List.map (fun (_, h, _) -> h) inputs in
              let prevs = List.map (fun (_, _, p) -> p) inputs in
              let max_seq =
                List.fold_left
                  (fun acc (o, _, _) ->
                    match Oid.Tbl.find_opt assigned o with
                    | Some s -> max acc s
                    | None -> (
                        match Provstore.latest t.prov o with
                        | Some r -> max acc r.Record.seq_id
                        | None -> acc))
                  (-1) inputs
              in
              (Record.Aggregate, max_seq + 1, oids, hashes, prevs)
          | None -> (
              match (c.before_hash, c.prev_record) with
              | None, _ -> (Record.Insert, 0, [], [], [])
              | Some h, Some prev ->
                  ( Record.Update,
                    prev.Record.seq_id + 1,
                    [ oid ],
                    [ h ],
                    [ prev.Record.checksum ] )
              | Some h, None -> (Record.Import, 0, [ oid ], [ h ], []))
        in
        Oid.Tbl.replace assigned oid seq_id;
        let payload =
          Checksum.payload ~kind ~seq_id ~output_oid:oid ~input_hashes
            ~output_hash ~prev_checksums
        in
        let output_value =
          if Forest.is_leaf t.forest oid then
            match Forest.value t.forest oid with
            | Ok v -> Some v
            | Error _ -> None
          else None
        in
        {
          st_oid = oid;
          st_kind = kind;
          st_seq = seq_id;
          st_inherited = not c.direct;
          st_input_oids = input_oids;
          st_input_hashes = input_hashes;
          st_output_hash = output_hash;
          st_output_value = output_value;
          st_prev_checksums = prev_checksums;
          st_payload = payload;
        })
      survivors
    |> Array.of_list
  in
  (* Stage 2: sign.  [cpu] slots are disjoint per index, so parallel
     writes are safe; a chunk size of 1 maximises overlap (one RSA
     signature dwarfs the per-task queue cost). *)
  let n = Array.length staged in
  let cpu = Array.make (max n 1) 0. in
  let sign_one i =
    Tep_fault.Fault.hit sign_site;
    let t0 = now () in
    let c = Checksum.sign b.participant (Array.unsafe_get staged i).st_payload in
    cpu.(i) <- now () -. t0;
    c
  in
  let t_sign = now () in
  let checksums =
    match t.pool with
    | Some pool
      when Tep_parallel.Pool.size pool > 1 && n > 1
           && Lazy.force host_cores > 1 ->
        Tep_parallel.Pool.map_chunked ~serial_below:sign_serial_below ~chunk:1
          pool sign_one (Array.init n Fun.id)
    | _ -> Array.init n sign_one
  in
  let sign_s = now () -. t_sign in
  let sign_cpu_s = Array.fold_left ( +. ) 0. cpu in
  (* Stage 3: append + journal, stage-1 order. *)
  let store_s = ref 0. in
  Array.iteri
    (fun i st ->
      let record =
        {
          Record.seq_id = st.st_seq;
          participant = Participant.name b.participant;
          kind = st.st_kind;
          inherited = st.st_inherited;
          input_oids = st.st_input_oids;
          input_hashes = st.st_input_hashes;
          output_oid = st.st_oid;
          output_hash = st.st_output_hash;
          output_value = st.st_output_value;
          prev_checksums = st.st_prev_checksums;
          checksum = checksums.(i);
        }
      in
      let t0 = now () in
      Provstore.append t.prov record;
      (* Journal the record itself so post-checkpoint provenance
         survives a crash (Recovery re-appends it on replay). *)
      if wal_present t then wal_log t (Wal.Blob (Record.encoded record));
      store_s := !store_s +. (now () -. t0))
    staged;
  (* Commit marker: everything journaled before it is now one atomic
     recovery unit; frames after the last marker are rolled back. *)
  if wal_present t then begin
    let root_hash =
      match Merkle.hash ?pool:t.pool t.cache (Tree_view.root t.view) with
      | Ok h -> h
      | Error e -> failwith ("Engine.commit: " ^ e)
    in
    (match t.next_marker with
    | Some txid ->
        t.next_marker <- None;
        wal_log t (Wal.Prepare (txid, root_hash))
    | None -> wal_log t (Wal.Commit root_hash));
    match t.wal with
    | Some w -> (
        match Wal.flush w with
        | Ok () -> ()
        | Error e -> raise (Wal_failure e))
    | None -> ()
  end;
  {
    hash_s = !hash_s;
    sign_s;
    sign_cpu_s;
    store_s = !store_s;
    records_emitted = n;
    nodes_hashed = (Merkle.stats t.cache).Merkle.nodes_hashed;
    checksum_bytes = n * Provstore.paper_row_bytes;
  }

let complex_op t participant body =
  match t.batch with
  | Some _ -> Error "Engine.complex_op: already inside a complex operation"
  | None ->
      let b =
        { participant; touched = Oid.Tbl.create 64; b_hash_s = 0. }
      in
      t.batch <- Some b;
      let result =
        match body () with
        | exception e ->
            t.batch <- None;
            raise e
        | r -> r
      in
      (match result with
      | Error e ->
          t.batch <- None;
          Error e
      | Ok v ->
          let m =
            match commit t b with
            | m -> m
            | exception e ->
                (* A crash or WAL failure mid-commit must not leave the
                   engine wedged inside a phantom batch. *)
                t.batch <- None;
                raise e
          in
          t.batch <- None;
          t.last <- m;
          t.total <- add_metrics t.total m;
          Ok (v, m))

(* Phase 1 of a cross-shard two-phase commit: exactly [complex_op],
   except the commit marker journaled is [Wal.Prepare (txid, root)]
   instead of [Wal.Commit root].  The prepared work is durable but not
   yet a recovery unit — it becomes one when the coordinator's
   [Wal.Decide] for [txid] lands (see Shards). *)
let complex_op_prepare t participant ~txid body =
  t.next_marker <- Some txid;
  match complex_op t participant body with
  | r ->
      t.next_marker <- None;
      r
  | exception e ->
      t.next_marker <- None;
      raise e

(* Phase 2: upgrade the shard's last prepared state to a plain commit
   marker, so later recoveries need not consult the coordinator log
   for this transaction.  The root hash is re-read from the (warm)
   cache — nothing has mutated since the prepare. *)
let write_commit_marker t =
  if wal_present t then begin
    let root_hash =
      match Merkle.hash ?pool:t.pool t.cache (Tree_view.root t.view) with
      | Ok h -> h
      | Error e -> failwith ("Engine.write_commit_marker: " ^ e)
    in
    wal_log t (Wal.Commit root_hash);
    match t.wal with
    | Some w -> (
        match Wal.flush w with
        | Ok () -> ()
        | Error e -> raise (Wal_failure e))
    | None -> ()
  end

(* Run [f] inside the current batch, or as a singleton complex op. *)
let in_batch t participant f =
  match t.batch with
  | Some b ->
      if Participant.name b.participant <> Participant.name participant then
        Error "Engine: complex operation participant mismatch"
      else f b
  | None -> (
      match complex_op t participant (fun () -> f (require_batch t "in_batch")) with
      | Ok (v, _) -> Ok v
      | Error e -> Error e)

(* ------------------------------------------------------------------ *)
(* Primitive object operations                                         *)
(* ------------------------------------------------------------------ *)

let insert_object t p ?parent value =
  in_batch t p (fun b ->
      match parent with
      | Some par when not (Forest.mem t.forest par) ->
          Error (Printf.sprintf "parent %s not found" (Oid.to_string par))
      | _ -> (
          (* Capture the ancestor path before the tree changes. *)
          Option.iter (capture_existing t b ~direct:false) parent;
          match Forest.insert ?parent t.forest value with
          | Error e -> Error e
          | Ok oid ->
              mark_created b oid;
              Ok oid))

let update_object t p oid value =
  in_batch t p (fun b ->
      if not (Forest.mem t.forest oid) then
        Error (Printf.sprintf "no object %s" (Oid.to_string oid))
      else begin
        capture_existing t b ~direct:true oid;
        match Forest.update t.forest oid value with
        | Error e -> Error e
        | Ok _prev ->
            (* Keep the relational backend in sync for cell locations. *)
            (match Tree_view.locate t.view oid with
            | Some (Tree_view.Cell (tbl, row, col)) -> (
                match Database.get_table t.db tbl with
                | Some table ->
                    (match Table.update_cell table row col value with
                    | Ok _ -> wal_log t (Wal.Update_cell (tbl, row, col, value))
                    | Error e -> failwith ("Engine.update_object: " ^ e))
                | None -> ())
            | _ -> ());
            Ok ()
      end)

let delete_object t p oid =
  in_batch t p (fun b ->
      if not (Forest.mem t.forest oid) then
        Error (Printf.sprintf "no object %s" (Oid.to_string oid))
      else begin
        capture_existing t b ~direct:true oid;
        match Forest.delete t.forest oid with
        | Error e -> Error e
        | Ok _ ->
            Tree_view.unregister t.view oid;
            Ok ()
      end)

let delete_object_subtree t p oid =
  in_batch t p (fun b ->
      if not (Forest.mem t.forest oid) then
        Error (Printf.sprintf "no object %s" (Oid.to_string oid))
      else begin
        capture_existing t b ~direct:true oid;
        let removed = ref [] in
        Forest.iter_preorder t.forest oid (fun o _ -> removed := o :: !removed);
        match Forest.delete_subtree t.forest oid with
        | Error e -> Error e
        | Ok n ->
            List.iter (Tree_view.unregister t.view) !removed;
            Ok n
      end)

let aggregate_objects t p ?(value = Value.Text "aggregate") inputs =
  in_batch t p (fun b ->
      if inputs = [] then Error "aggregate: no inputs"
      else begin
        (* Capture input hashes and latest checksums; make sure every
           input has a citable record (emitting Imports if needed). *)
        let rec input_info acc = function
          | [] -> Ok (List.rev acc)
          | oid :: rest -> (
              if not (Forest.mem t.forest oid) then
                Error (Printf.sprintf "no object %s" (Oid.to_string oid))
              else
                let t0 = now () in
                let h =
                  match Merkle.hash ?pool:t.pool t.cache oid with
                  | Ok h -> h
                  | Error e -> failwith e
                in
                b.b_hash_s <- b.b_hash_s +. (now () -. t0);
                match Provstore.latest t.prov oid with
                | Some r -> input_info ((oid, h, r.Record.checksum) :: acc) rest
                | None ->
                    (* Emit an Import record for the untracked input. *)
                    let payload =
                      Checksum.payload ~kind:Record.Import ~seq_id:0
                        ~output_oid:oid ~input_hashes:[ h ] ~output_hash:h
                        ~prev_checksums:[]
                    in
                    let checksum = Checksum.sign b.participant payload in
                    Provstore.append t.prov
                      {
                        Record.seq_id = 0;
                        participant = Participant.name b.participant;
                        kind = Record.Import;
                        inherited = false;
                        input_oids = [ oid ];
                        input_hashes = [ h ];
                        output_oid = oid;
                        output_hash = h;
                        output_value = None;
                        prev_checksums = [];
                        checksum;
                      };
                    input_info ((oid, h, checksum) :: acc) rest)
        in
        match input_info [] inputs with
        | Error e -> Error e
        | Ok infos -> (
            match Forest.aggregate t.forest value inputs with
            | Error e -> Error e
            | Ok (boid, _mapping) ->
                Oid.Tbl.replace b.touched boid
                  {
                    before_hash = None;
                    prev_record = None;
                    direct = true;
                    agg_inputs = Some infos;
                  };
                Ok boid)
      end)

(* ------------------------------------------------------------------ *)
(* Relational operations                                               *)
(* ------------------------------------------------------------------ *)

let create_table t p ~name schema =
  in_batch t p (fun b ->
      match Database.create_table t.db ~name schema with
      | Error e -> Error e
      | Ok _ ->
          wal_log t (Wal.Create_table (name, schema));
          let root = root_oid t in
          capture_existing t b ~direct:false root;
          (match
             Forest.insert ~parent:root t.forest (Tree_view.table_value name)
           with
          | Error e -> Error e
          | Ok toid ->
              Tree_view.register_table t.view name toid;
              mark_created b toid;
              Ok ()))

let insert_row t p ~table cells =
  in_batch t p (fun b ->
      match Database.get_table t.db table with
      | None -> Error (Printf.sprintf "no table %s" table)
      | Some tbl -> (
          match Tree_view.table_oid t.view table with
          | None -> Error (Printf.sprintf "table %s has no tree node" table)
          | Some toid -> (
              match Table.insert tbl cells with
              | Error e -> Error e
              | Ok row_id ->
                  wal_log t (Wal.Insert_row (table, row_id, cells));
                  (* Capture table/root pre-state before growing the
                     tree. *)
                  capture_existing t b ~direct:false toid;
                  (match
                     Forest.insert ~parent:toid t.forest
                       (Tree_view.row_value row_id)
                   with
                  | Error e -> failwith e
                  | Ok roid ->
                      Tree_view.register_row t.view table row_id roid;
                      mark_created b roid;
                      Array.iteri
                        (fun col v ->
                          match Forest.insert ~parent:roid t.forest v with
                          | Error e -> failwith e
                          | Ok coid ->
                              Tree_view.register_cell t.view table row_id col
                                coid;
                              mark_created b coid)
                        cells;
                      Ok row_id))))

let delete_row t p ~table row =
  in_batch t p (fun b ->
      match Database.get_table t.db table with
      | None -> Error (Printf.sprintf "no table %s" table)
      | Some tbl -> (
          match Tree_view.row_oid t.view table row with
          | None -> Error (Printf.sprintf "no row %d in %s" row table)
          | Some roid ->
              if not (Table.delete tbl row) then
                Error (Printf.sprintf "no row %d in %s" row table)
              else begin
                wal_log t (Wal.Delete_row (table, row));
                capture_existing t b ~direct:true roid;
                let cells = Forest.children t.forest roid in
                List.iter
                  (fun coid ->
                    match Forest.delete t.forest coid with
                    | Ok _ -> Tree_view.unregister t.view coid
                    | Error e -> failwith e)
                  cells;
                (match Forest.delete t.forest roid with
                | Ok _ -> Tree_view.unregister t.view roid
                | Error e -> failwith e);
                Ok ()
              end))

let update_cell t p ~table ~row ~col value =
  in_batch t p (fun b ->
      match Database.get_table t.db table with
      | None -> Error (Printf.sprintf "no table %s" table)
      | Some tbl -> (
          match Tree_view.cell_oid t.view table row col with
          | None ->
              Error
                (Printf.sprintf "no cell (%s, row %d, col %d)" table row col)
          | Some coid -> (
              capture_existing t b ~direct:true coid;
              match Table.update_cell tbl row col value with
              | Error e -> Error e
              | Ok _prev -> (
                  wal_log t (Wal.Update_cell (table, row, col, value));
                  match Forest.update t.forest coid value with
                  | Ok _ -> Ok ()
                  | Error e -> failwith e))))

let update_cell_named t p ~table ~row ~column value =
  match Database.get_table t.db table with
  | None -> Error (Printf.sprintf "no table %s" table)
  | Some tbl -> (
      match Schema.column_index (Table.schema tbl) column with
      | None -> Error (Printf.sprintf "no column %s in %s" column table)
      | Some col -> update_cell t p ~table ~row ~col value)

(* ------------------------------------------------------------------ *)
(* Delivery / verification                                             *)
(* ------------------------------------------------------------------ *)

let deliver ?(deep = false) t oid =
  match Forest.subtree t.forest oid with
  | Error e -> Error e
  | Ok snapshot ->
      let records =
        if not deep then Provstore.provenance_object t.prov oid
        else begin
          (* union of the provenance objects of the whole subtree *)
          let seen = Hashtbl.create 256 in
          let out = ref [] in
          Forest.iter_preorder t.forest oid (fun o _ ->
              List.iter
                (fun (r : Record.t) ->
                  if not (Hashtbl.mem seen r.Record.checksum) then begin
                    Hashtbl.replace seen r.Record.checksum ();
                    out := r :: !out
                  end)
                (Provstore.provenance_object t.prov o));
          List.sort Record.compare_seq !out
        end
      in
      Ok (snapshot, records)

let verify_object t oid =
  match deliver t oid with
  | Error e -> Error e
  | Ok (data, records) ->
      Ok (Verifier.verify ?pool:t.pool ~algo:(algo t) ~directory:t.dir ~data records)

let prove t oid = Proof.prove t.cache t.forest oid
