(** Provenance records (Section 2.1, extended in Section 4.2).

    A record documents one operation:
    [(seqID, p, {subtree(A_1)...subtree(A_n)}, subtree(A))] plus the
    integrity checksum of Section 3/4.3.

    Records store the {e hashes} of the input and output compound
    objects (that is what the checksum signs, and what the paper's
    provenance database persists: ⟨SeqID, Participant, Oid,
    Checksum⟩).  Small atomic values may additionally be embedded
    ([output_value]) so worked examples can render Figure-3-style
    tables; the engine leaves them out on large compound objects. *)

open Tep_tree

type kind =
  | Insert  (** new object; no input, no previous checksum *)
  | Import
      (** first record of an object that pre-existed provenance
          tracking; like [Insert] but with the pre-state hash bound in *)
  | Update  (** value change, or structural change under a compound *)
  | Aggregate  (** combine n input objects into a new output object *)

type t = {
  seq_id : int;
  participant : string;
  kind : kind;
  inherited : bool;
      (** true when this record was propagated to an ancestor of the
          directly-modified object (Section 4.2) *)
  input_oids : Oid.t list;
      (** which objects were read: [[output_oid]] for updates, the
          aggregated objects for aggregates, empty for inserts *)
  input_hashes : string list;
      (** [h(subtree(A_i))] for each input, aligned with
          [input_oids] *)
  output_oid : Oid.t;
  output_hash : string;  (** [h(subtree(A))] after the operation *)
  output_value : Tep_store.Value.t option;
      (** embedded value for atomic demos; [None] for big compounds *)
  prev_checksums : string list;
      (** checksums of the immediate predecessor records, one per
          input ([C_{i-1}] for updates, [C_1..C_n] for aggregates;
          empty for [Insert]/[Import]) — these are the DAG edges *)
  checksum : string;  (** the participant's signature (Section 3) *)
}

val compare_seq : t -> t -> int
(** Order records by [seq_id] (the partial order of Definition 1),
    breaking ties by output oid. *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int
val encoded : t -> string

val checksum_hex : t -> string
(** First 12 hex chars of the checksum, for display. *)

val pp : Format.formatter -> t -> unit
val kind_name : kind -> string
