(** Participants — the users / processes / transactions that perform
    database operations and sign provenance checksums (Section 2).
    Each holds an RSA keypair and a CA-issued certificate. *)

type t

val create :
  ?bits:int -> ca:Tep_crypto.Pki.ca -> name:string -> Tep_crypto.Drbg.t -> t
(** Generate a keypair and obtain a certificate from [ca].
    @raise Invalid_argument on an empty name. *)

val name : t -> string
val public_key : t -> Tep_crypto.Rsa.public_key
val certificate : t -> Tep_crypto.Pki.certificate

val sign : t -> string -> string
(** Sign a checksum payload (PKCS#1 v1.5, SHA-256 over the payload). *)

val decrypt : t -> string -> string option
(** RSAES-PKCS1-v1_5 decryption with the participant's private key.
    Used by the service handshake: the client encrypts a session-key
    share to the certificate key, and only a holder of the matching
    private key (the daemon's workspace copy) can recover it. *)

val key_fingerprint : t -> string

val to_string : t -> string
(** Serialise a participant's credentials (name, private key,
    certificate).  Contains the private key — store securely. *)

val of_string : string -> t option

(** {1 Directory}

    A registry of certificates, shipped to data recipients alongside
    provenance objects so signatures can be checked offline. *)

module Directory : sig
  type participant = t
  type t

  val create : ca_key:Tep_crypto.Rsa.public_key -> t
  val ca_key : t -> Tep_crypto.Rsa.public_key

  val register : t -> participant -> unit
  val register_certificate : t -> Tep_crypto.Pki.certificate -> (unit, string) result
  (** Fails if the certificate does not verify against the CA key, or
      if the subject is already registered with a different key. *)

  val lookup : t -> string -> Tep_crypto.Pki.certificate option

  val lookup_verified :
    t ->
    string ->
    [ `Verified of Tep_crypto.Pki.certificate | `Unknown | `Bad_certificate ]
  (** Like {!lookup}, but additionally checks the certificate against
      the CA key, caching the (per-participant) result so per-record
      verification pays at most one CA-signature check per subject.
      The cache entry is invalidated when the subject re-registers.
      Safe to call from multiple domains concurrently (the cache is
      mutex-guarded), provided no concurrent registration. *)

  val verified_count : t -> int
  (** Number of subjects currently in the verified-certificate cache
      (observability / tests). *)

  val names : t -> string list
end
