(** Checksum payload construction and verification — the exact
    constructions of Section 3 (atomic) and Section 4.3 (compound).

    - Insert:    [C_0 = S_SK(0 | h(A,val) | 0)]
    - Update:    [C_i = S_SK(h(A,val) | h(A,val') | C_{i-1})]
    - Aggregate: [C = S_SK(h(h(A_1,v_1)|...|h(A_n,v_n)) | h(B,val) |
                   C_1 | ... | C_n)]
    - Compound update: same as update with [h(subtree(A))] in place of
      [h(A,val)] (the Merkle hashes of {!Tep_tree.Merkle}).

    Payloads are framed with length prefixes so no concatenation of
    fields can collide with a different field split, and include the
    output oid and sequence number so a signature cannot be replayed
    for a different object or position (guarantee R5). *)

open Tep_tree

val genesis : string
(** The "0" marker used where the paper writes a literal zero (absent
    input hash / absent previous checksum). *)

val payload :
  kind:Record.kind ->
  seq_id:int ->
  output_oid:Oid.t ->
  input_hashes:string list ->
  output_hash:string ->
  prev_checksums:string list ->
  string
(** Build the byte string to be signed.  For [Insert], inputs and
    prevs must be empty (the genesis marker is substituted); for
    [Update]/[Import] exactly one input hash; for [Aggregate] the
    combined input hash [h(h_1 | ... | h_n)] is computed internally
    with SHA-256.
    @raise Invalid_argument on arity violations. *)

val sign : Participant.t -> string -> string
(** Sign a payload (alias of {!Participant.sign}). *)

val verify :
  Tep_crypto.Rsa.public_key -> payload:string -> checksum:string -> bool

val verify_record :
  Participant.Directory.t -> Record.t -> (unit, string) result
(** Recompute the record's payload from its own fields and check the
    signature against the participant's registered certificate.  This
    is the core of guarantee R1/R8: a record whose contents were
    altered, or whose signer is not the named participant, fails. *)
