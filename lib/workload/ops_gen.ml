open Tep_store
open Tep_core

type primitive =
  | Update_cell of { table : string; row : int; col : int; value : Value.t }
  | Insert_row of { table : string; cells : Value.t array }
  | Delete_row of { table : string; row : int }

type complex_op = primitive list

let apply engine p op =
  match
    Engine.complex_op engine p (fun () ->
        let rec go = function
          | [] -> Ok ()
          | prim :: rest -> (
              let r =
                match prim with
                | Update_cell { table; row; col; value } ->
                    Engine.update_cell engine p ~table ~row ~col value
                | Insert_row { table; cells } -> (
                    match Engine.insert_row engine p ~table cells with
                    | Ok _ -> Ok ()
                    | Error e -> Error e)
                | Delete_row { table; row } ->
                    Engine.delete_row engine p ~table row
              in
              match r with Ok () -> go rest | Error e -> Error e)
        in
        go op)
  with
  | Ok ((), m) -> Ok m
  | Error e -> Error e

let apply_all engine p ops =
  List.fold_left
    (fun acc op ->
      match acc with
      | Error _ -> acc
      | Ok m -> (
          match apply engine p op with
          | Ok m' -> Ok (Engine.add_metrics m m')
          | Error e -> Error e))
    (Ok Engine.zero_metrics) ops

let setup_a_points =
  (1 :: List.init 10 (fun n -> 400 * (n + 1)))
  @ List.init 7 (fun n -> 4000 * (n + 2))

let live_rows db ~table =
  match Database.get_table db table with
  | None -> [||]
  | Some tbl -> Array.of_list (Table.row_ids tbl)

let arity db ~table =
  match Database.get_table db table with
  | None -> 0
  | Some tbl -> Schema.arity (Table.schema tbl)

let updates_spread drbg db ~table ~cells ~max_rows =
  let rows = live_rows db ~table in
  let nattr = arity db ~table in
  if Array.length rows = 0 || nattr = 0 then []
  else begin
    let nrows = min max_rows (Array.length rows) in
    List.init cells (fun i ->
        let row = rows.(i mod nrows) in
        let col =
          if cells <= nrows then Tep_crypto.Drbg.uniform_int drbg nattr
          else (i / nrows) mod nattr
        in
        Update_cell
          {
            table;
            row;
            col;
            value = Value.Int (Tep_crypto.Drbg.uniform_int drbg 1_000_000);
          })
  end

let all_deletes db ~table ~count =
  let rows = live_rows db ~table in
  let n = min count (Array.length rows) in
  List.init n (fun i -> Delete_row { table; row = rows.(i) })

let random_cells drbg n =
  Array.init n (fun _ -> Value.Int (Tep_crypto.Drbg.uniform_int drbg 1_000_000))

let all_inserts drbg db ~table ~count =
  let nattr = arity db ~table in
  List.init count (fun _ -> Insert_row { table; cells = random_cells drbg nattr })

let all_updates drbg db ~table ~cells ~rows =
  updates_spread drbg db ~table ~cells ~max_rows:rows

type mix = { deletes_pct : float; inserts_pct : float; updates_pct : float }

let paper_mixes =
  [
    { deletes_pct = 19.2; inserts_pct = 37.8; updates_pct = 43.0 };
    { deletes_pct = 36.6; inserts_pct = 30.4; updates_pct = 33.0 };
    { deletes_pct = 57.0; inserts_pct = 21.2; updates_pct = 21.8 };
    { deletes_pct = 78.2; inserts_pct = 9.8; updates_pct = 12.0 };
  ]

let mixed_ops drbg db ~table ~total mix =
  let nattr = arity db ~table in
  let live = ref (Array.to_list (live_rows db ~table)) in
  let n_del = int_of_float (float_of_int total *. mix.deletes_pct /. 100.) in
  let n_ins = int_of_float (float_of_int total *. mix.inserts_pct /. 100.) in
  let n_upd = total - n_del - n_ins in
  (* Interleave kinds deterministically from the drbg so deletes are
     spread through the operation. *)
  let kinds =
    Array.concat
      [
        Array.make n_del `Del; Array.make n_ins `Ins; Array.make n_upd `Upd;
      ]
  in
  (* Fisher-Yates with drbg. *)
  for i = Array.length kinds - 1 downto 1 do
    let j = Tep_crypto.Drbg.uniform_int drbg (i + 1) in
    let tmp = kinds.(i) in
    kinds.(i) <- kinds.(j);
    kinds.(j) <- tmp
  done;
  let pick_live () =
    match !live with
    | [] -> None
    | l ->
        let n = List.length l in
        let i = Tep_crypto.Drbg.uniform_int drbg n in
        Some (List.nth l i)
  in
  Array.to_list kinds
  |> List.filter_map (fun kind ->
         match kind with
         | `Del -> (
             match pick_live () with
             | None -> None
             | Some row ->
                 live := List.filter (fun r -> r <> row) !live;
                 Some (Delete_row { table; row }))
         | `Ins -> Some (Insert_row { table; cells = random_cells drbg nattr })
         | `Upd -> (
             match pick_live () with
             | None -> None
             | Some row ->
                 Some
                   (Update_cell
                      {
                        table;
                        row;
                        col = Tep_crypto.Drbg.uniform_int drbg nattr;
                        value =
                          Value.Int (Tep_crypto.Drbg.uniform_int drbg 1_000_000);
                      })))
