open Tep_store
open Tep_core
open Tep_tree

type env = {
  ca : Tep_crypto.Pki.ca;
  directory : Participant.Directory.t;
  drbg : Tep_crypto.Drbg.t;
}

let make_env ?(seed = "tep-scenario") () =
  let drbg = Tep_crypto.Drbg.create ~seed in
  let ca = Tep_crypto.Pki.create_ca ~name:"TEP Root CA" drbg in
  let directory =
    Participant.Directory.create ~ca_key:(Tep_crypto.Pki.ca_public_key ca)
  in
  { ca; directory; drbg }

let participant env name =
  let p = Participant.create ~ca:env.ca ~name env.drbg in
  Participant.Directory.register env.directory p;
  p

type clinical = {
  engine : Engine.t;
  trial_result : Oid.t;
  patients_amended : int list;
  participants : (string * Participant.t) list;
}

let ok = function Ok v -> v | Error e -> failwith ("Scenario: " ^ e)

let clinical_trial ?(patients = 8) env =
  let paul = participant env "PCP Paul" in
  let clinic = participant env "Perfect Saints Clinic" in
  let pamela = participant env "PCP Pamela" in
  let labs = participant env "GoodStewards Labs" in
  let trustus = participant env "TrustUsRx" in
  let db = Database.create ~name:"clinical_trial" in
  let engine = Engine.create ~directory:env.directory db in
  let schema =
    Schema.make
      [
        { Schema.name = "Age"; ty = Value.TInt; nullable = false };
        { Schema.name = "Weight"; ty = Value.TInt; nullable = false };
        { Schema.name = "Endocrine"; ty = Value.TInt; nullable = true };
        { Schema.name = "White_Count"; ty = Value.TInt; nullable = true };
      ]
  in
  ok (Engine.create_table engine paul ~name:"patients" schema);
  (* Paul collects ages and weights. *)
  let row_ids =
    List.init patients (fun _ ->
        ok
          (Engine.insert_row engine paul ~table:"patients"
             [|
               Value.Int (18 + Tep_crypto.Drbg.uniform_int env.drbg 60);
               Value.Int (45 + Tep_crypto.Drbg.uniform_int env.drbg 60);
               Value.Null;
               Value.Null;
             |]))
  in
  (* The clinic fills in endocrine activity, one complex op. *)
  ignore
    (ok
       (Engine.complex_op engine clinic (fun () ->
            List.fold_left
              (fun acc row ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    Engine.update_cell_named engine clinic ~table:"patients"
                      ~row ~column:"Endocrine"
                      (Value.Int (Tep_crypto.Drbg.uniform_int env.drbg 300)))
              (Ok ()) row_ids)));
  (* Pamela amends the endocrine value for one patient (patient #4 in
     the paper's story). *)
  let amended = List.nth row_ids (min 4 (patients - 1)) in
  ok
    (Engine.update_cell_named engine pamela ~table:"patients" ~row:amended
       ~column:"Endocrine" (Value.Int 212));
  (* GoodStewards Labs determines white blood cell counts. *)
  ignore
    (ok
       (Engine.complex_op engine labs (fun () ->
            List.fold_left
              (fun acc row ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    Engine.update_cell_named engine labs ~table:"patients" ~row
                      ~column:"White_Count"
                      (Value.Int (4000 + Tep_crypto.Drbg.uniform_int env.drbg 7000)))
              (Ok ()) row_ids)));
  (* TrustUsRx aggregates all patient rows into the trial result. *)
  let row_oids =
    List.map
      (fun row ->
        match Tree_view.row_oid (Engine.mapping engine) "patients" row with
        | Some o -> o
        | None -> failwith "Scenario: row oid missing")
      row_ids
  in
  let trial_result =
    ok
      (Engine.aggregate_objects engine trustus
         ~value:(Value.Text "trial_result") row_oids)
  in
  {
    engine;
    trial_result;
    patients_amended = [ amended ];
    participants =
      [
        ("PCP Paul", paul);
        ("Perfect Saints Clinic", clinic);
        ("PCP Pamela", pamela);
        ("GoodStewards Labs", labs);
        ("TrustUsRx", trustus);
      ];
  }

type figure2 = {
  store : Atomic.t;
  a : Oid.t;
  b : Oid.t;
  c : Oid.t;
  d : Oid.t;
  f2_participants : (string * Participant.t) list;
}

let figure2 env =
  let p1 = participant env "p1" in
  let p2 = participant env "p2" in
  let p3 = participant env "p3" in
  let store = Atomic.create env.directory in
  let v name i = Value.Text (Printf.sprintf "%s%d" name i) in
  (* seq 0: p2 inserts A (a1) and B (b1): checksums C1, C2. *)
  let a, _c1 = Atomic.insert store p2 (v "a" 1) in
  let b, _c2 = Atomic.insert store p2 (v "b" 1) in
  (* seq 1: p1 updates A -> a2 (C3); p2 updates B -> b2 (C4). *)
  let _c3 = ok (Atomic.update store p1 a (v "a" 2)) in
  let _c4 = ok (Atomic.update store p2 b (v "b" 2)) in
  (* seq 2: p2 updates A -> a3 (C5). *)
  let _c5 = ok (Atomic.update store p2 a (v "a" 3)) in
  (* seq 2: p3 aggregates the ORIGINAL A (a1, version 0) with B (b2,
     version 1) into C (C6). *)
  let c, _c6 =
    ok (Atomic.aggregate store p3 ~value:(v "c" 1) [ (a, Some 0); (b, Some 1) ])
  in
  (* seq 3: p1 aggregates A (a3) and C into D (C7). *)
  let d, _c7 =
    ok (Atomic.aggregate store p1 ~value:(v "d" 1) [ (a, None); (c, None) ])
  in
  { store; a; b; c; d; f2_participants = [ ("p1", p1); ("p2", p2); ("p3", p3) ] }
