(** Reproduction harness for every table and figure of Section 5.

    Each function regenerates one artifact of the paper's evaluation
    and returns its data series; the bench executable formats them as
    CSV.  All experiments accept a [scale] factor applied to the
    paper's row counts (pure-OCaml RSA on this substrate is slower
    than JCE on the paper's Celeron, so the default bench scale is
    0.1; set [TEP_SCALE=full] to run paper-size).  Signing uses
    [rsa_bits] (1024 in the paper; benches default to 512 to keep the
    sweep under a few minutes — the series shapes are unaffected). *)

open Tep_core

type config = {
  scale : float;  (** row-count multiplier vs the paper's Table 1 *)
  rsa_bits : int;
  seed : string;
  runs : int;  (** repetitions for timed points *)
}

val default_config : config
val config_of_env : unit -> config
(** Reads [TEP_SCALE] (float or ["full"]), [TEP_RSA_BITS], [TEP_RUNS]. *)

(** {1 Table 1} *)

type table1_row = {
  tables : string;  (** e.g. "1,2,3" *)
  expected_nodes : int;
  actual_nodes : int;
}

val table1 : config -> table1_row list
(** Builds the four cumulative databases and counts tree nodes
    (at [scale = 1.0] these are 36002/66003/88004/118005; see
    {!Synth.paper_node_counts} for the two paper typos). *)

(** {1 Figure 6 — hashing time vs database size} *)

type fig6_point = { f6_nodes : int; f6_seconds : float }

val fig6 : config -> fig6_point list

(** {1 Figure 7 — Basic vs Economical output hashing} *)

type fig7_point = {
  f7_updates : int;  (** cells updated in the complex operation *)
  f7_basic_s : float;  (** output-tree hash time, Basic *)
  f7_economical_s : float;  (** output-tree hash time, Economical *)
  f7_basic_nodes : int;
  f7_economical_nodes : int;
}

val fig7 : config -> fig7_point list

(** {1 Figures 8 and 9 — per-operation-type overheads (Setup B)} *)

type setup_b_row = {
  b_label : string;
  b_metrics : Engine.metrics;
      (** time overheads (hash/sign/store) for Figure 8;
          [checksum_bytes] for Figure 9 *)
}

val fig8_9 : config -> setup_b_row list

(** {1 Figures 10 and 11 — mixed-operation overheads (Setup C)} *)

type setup_c_row = {
  c_deletes_pct : float;
  c_inserts_pct : float;
  c_updates_pct : float;
  c_metrics : Engine.metrics;
}

val fig10_11 : config -> setup_c_row list

(** {1 The large-database streaming-hash experiment (§5.2)} *)

type bigdb_result = {
  big_rows : int;
  big_nodes : int;
  big_seconds : float;
  big_ms_per_node : float;  (** the paper reports 0.02156 ms/node *)
}

val bigdb : config -> bigdb_result

(** {1 Ablations} *)

type chaining_result = {
  ch_objects : int;
  ch_ops : int;
  ch_cores : int;  (** physical cores available to the run *)
  local_wall_s : float;  (** per-object chains, 2 domains in parallel *)
  global_wall_s : float;  (** single global chain, serialised *)
  local_critical_path : int;
      (** longest chain of dependent checksum computations (per-object
          chain length) — the §3.2 serialisation bottleneck, measured
          independently of core count *)
  global_critical_path : int;  (** = total ops: everything serialises *)
  local_failed_after_corruption : int;  (** objects failing verification *)
  global_failed_after_corruption : int;
  local_verify_s : float;  (** verify one object *)
  global_verify_s : float;
}

val ablation_chaining : config -> chaining_result
(** Section 3.2: local vs global checksum chaining — parallelism and
    failure locality. *)

type baseline_row = {
  bl_scheme : string;  (** plain / linear (Hasan) / tep (this paper) *)
  bl_ops : int;
  bl_wall_s : float;
  bl_space_bytes : int;
  bl_fine_grained : bool;  (** can it verify a single cell? *)
}

val ablation_baseline : config -> baseline_row list
(** Cost of atomic-object checksum schemes vs this paper's
    compound-object engine on an equivalent update workload. *)

type signing_row = {
  sg_scheme : string;
  sg_ops : int;
  sg_sign_wall_s : float;
  sg_verify_wall_s : float;
  sg_checksum_bytes : int;
  sg_non_repudiation : bool;
}

val ablation_signing : config -> signing_row list
(** Design-choice ablation: the paper's RSA signatures (which provide
    non-repudiation, R8) vs keyed HMAC-SHA256 tags (orders of
    magnitude cheaper, but any key holder can forge — only usable
    inside a single trust domain).  Both runs chain the same checksum
    payloads. *)

type audit_row = {
  au_round : int;
  au_total_records : int;
  au_full_s : float;  (** re-verify the whole store from scratch *)
  au_full_records : int;
  au_incr_s : float;  (** incremental audit from the kept checkpoint *)
  au_incr_records : int;  (** records actually examined *)
}

val ablation_audit : config -> audit_row list
(** Extension experiment: recipient-style full verification vs the
    checkpointed incremental auditor, across growing history.  Full
    cost grows with total records; incremental cost tracks only the
    per-round delta. *)
