open Tep_store
open Tep_core
open Tep_tree

type config = { scale : float; rsa_bits : int; seed : string; runs : int }

let default_config = { scale = 0.1; rsa_bits = 512; seed = "tep-bench"; runs = 3 }

let config_of_env () =
  let scale =
    match Sys.getenv_opt "TEP_SCALE" with
    | Some "full" -> 1.0
    | Some "smoke" -> 0.02
    | Some s -> ( try float_of_string s with _ -> default_config.scale)
    | None -> default_config.scale
  in
  let rsa_bits =
    match Sys.getenv_opt "TEP_RSA_BITS" with
    | Some s -> ( try int_of_string s with _ -> default_config.rsa_bits)
    | None -> if scale >= 1.0 then 1024 else default_config.rsa_bits
  in
  let runs =
    match Sys.getenv_opt "TEP_RUNS" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> default_config.runs)
    | None -> default_config.runs
  in
  { default_config with scale; rsa_bits; runs }

let ok = function Ok v -> v | Error e -> failwith ("Experiments: " ^ e)

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Average wall seconds over cfg.runs executions. *)
let timed_avg cfg f =
  let total = ref 0. in
  for _ = 1 to cfg.runs do
    let _, dt = time f in
    total := !total +. dt
  done;
  !total /. float_of_int cfg.runs

let env_with_participant cfg name =
  let env = Scenario.make_env ~seed:cfg.seed () in
  let drbg = env.Scenario.drbg in
  let p = Participant.create ~bits:cfg.rsa_bits ~ca:env.Scenario.ca ~name drbg in
  Participant.Directory.register env.Scenario.directory p;
  (env, p)

let scaled_specs cfg n =
  List.filteri (fun i _ -> i < n) Synth.paper_tables
  |> List.map (Synth.scale cfg.scale)

let build_db cfg n =
  Synth.build_database ~name:(Printf.sprintf "db%d" n) ~seed:(cfg.seed ^ "-db")
    (scaled_specs cfg n)

(* ---------- Table 1 ---------- *)

type table1_row = { tables : string; expected_nodes : int; actual_nodes : int }

let table1 cfg =
  List.mapi
    (fun i expected ->
      let db = build_db { cfg with scale = 1.0 } (i + 1) in
      {
        tables = String.concat "," (List.init (i + 1) (fun j -> string_of_int (j + 1)));
        expected_nodes = expected;
        actual_nodes = Database.node_count db;
      })
    Synth.paper_node_counts

(* ---------- Figure 6 ---------- *)

type fig6_point = { f6_nodes : int; f6_seconds : float }

let fig6 cfg =
  List.init 4 (fun i ->
      let db = build_db cfg (i + 1) in
      let algo = Tep_crypto.Digest_algo.SHA1 in
      let seconds =
        timed_avg cfg (fun () -> ignore (Streaming.hash_database algo db))
      in
      { f6_nodes = Database.node_count db; f6_seconds = seconds })

(* ---------- Figure 7 ---------- *)

type fig7_point = {
  f7_updates : int;
  f7_basic_s : float;
  f7_economical_s : float;
  f7_basic_nodes : int;
  f7_economical_nodes : int;
}

let scale_point cfg n = max 1 (int_of_float (float_of_int n *. cfg.scale))

let fig7 cfg =
  let points = List.map (scale_point cfg) Ops_gen.setup_a_points in
  (* deduplicate after scaling *)
  let points = List.sort_uniq compare points in
  List.map
    (fun updates ->
      let run mode =
        let env, p = env_with_participant cfg "updater" in
        let db =
          Synth.build_database ~seed:(cfg.seed ^ "-f7")
            [ Synth.scale cfg.scale (List.hd Synth.paper_tables) ]
        in
        let eng = Engine.create ~mode ~directory:env.Scenario.directory db in
        let max_rows =
          if updates <= scale_point cfg 4000 then updates
          else scale_point cfg 4000
        in
        let op =
          Ops_gen.updates_spread env.Scenario.drbg db ~table:"t1" ~cells:updates
            ~max_rows
        in
        let m = ok (Ops_gen.apply eng p op) in
        (m.Engine.hash_s, m.Engine.nodes_hashed)
      in
      let b_s, b_n = run Engine.Basic in
      let e_s, e_n = run Engine.Economical in
      {
        f7_updates = updates;
        f7_basic_s = b_s;
        f7_economical_s = e_s;
        f7_basic_nodes = b_n;
        f7_economical_nodes = e_n;
      })
    points

(* ---------- Figures 8 / 9 ---------- *)

type setup_b_row = { b_label : string; b_metrics : Engine.metrics }

let fresh_engine cfg =
  let env, p = env_with_participant cfg "worker" in
  let db =
    Synth.build_database ~seed:(cfg.seed ^ "-b")
      [ Synth.scale cfg.scale (List.hd Synth.paper_tables) ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  (env, p, db, eng)

let fig8_9 cfg =
  let point label op_of_env =
    let env, p, db, eng = fresh_engine cfg in
    let op = op_of_env env db in
    let m = ok (Ops_gen.apply eng p op) in
    { b_label = label; b_metrics = m }
  in
  let n500 = scale_point cfg 500 in
  let n4000 = scale_point cfg 4000 in
  [
    point (Printf.sprintf "%d row deletes" n500) (fun _env db ->
        Ops_gen.all_deletes db ~table:"t1" ~count:n500);
    point (Printf.sprintf "%d row inserts" n500) (fun env db ->
        Ops_gen.all_inserts env.Scenario.drbg db ~table:"t1" ~count:n500);
    point
      (Printf.sprintf "%d cell updates in %d rows" n4000 n500)
      (fun env db ->
        Ops_gen.all_updates env.Scenario.drbg db ~table:"t1" ~cells:n4000
          ~rows:n500);
    point
      (Printf.sprintf "%d cell updates in %d rows" n4000 n4000)
      (fun env db ->
        Ops_gen.all_updates env.Scenario.drbg db ~table:"t1" ~cells:n4000
          ~rows:n4000);
  ]

(* ---------- Figures 10 / 11 ---------- *)

type setup_c_row = {
  c_deletes_pct : float;
  c_inserts_pct : float;
  c_updates_pct : float;
  c_metrics : Engine.metrics;
}

let fig10_11 cfg =
  let total = scale_point cfg 500 in
  List.map
    (fun mix ->
      let env, p, db, eng = fresh_engine cfg in
      let op = Ops_gen.mixed_ops env.Scenario.drbg db ~table:"t1" ~total mix in
      let m = ok (Ops_gen.apply eng p op) in
      {
        c_deletes_pct = mix.Ops_gen.deletes_pct;
        c_inserts_pct = mix.Ops_gen.inserts_pct;
        c_updates_pct = mix.Ops_gen.updates_pct;
        c_metrics = m;
      })
    Ops_gen.paper_mixes

(* ---------- Big database streaming hash ---------- *)

type bigdb_result = {
  big_rows : int;
  big_nodes : int;
  big_seconds : float;
  big_ms_per_node : float;
}

let bigdb cfg =
  (* paper: 18,962,041 rows; default scale gives ~190k *)
  let rows = max 1000 (int_of_float (18_962_041. *. cfg.scale /. 10.)) in
  let db = Synth.build_title_database ~rows in
  let algo = Tep_crypto.Digest_algo.SHA1 in
  let (h, nodes), seconds =
    time (fun () -> Streaming.hash_database_with_counts algo db)
  in
  ignore h;
  {
    big_rows = rows;
    big_nodes = nodes;
    big_seconds = seconds;
    big_ms_per_node = seconds *. 1000. /. float_of_int nodes;
  }

(* ---------- Ablation: local vs global chaining (Section 3.2) ---------- *)

type chaining_result = {
  ch_objects : int;
  ch_ops : int;
  ch_cores : int;
  local_wall_s : float;
  global_wall_s : float;
  local_critical_path : int;
  global_critical_path : int;
  local_failed_after_corruption : int;
  global_failed_after_corruption : int;
  local_verify_s : float;
  global_verify_s : float;
}

let ablation_chaining cfg =
  let objects = 8 in
  let ops_per_object = max 50 (scale_point cfg 500) in
  let env = Scenario.make_env ~seed:(cfg.seed ^ "-chain") () in
  let mk name =
    let p = Participant.create ~bits:cfg.rsa_bits ~ca:env.Scenario.ca ~name env.Scenario.drbg in
    Participant.Directory.register env.Scenario.directory p;
    p
  in
  let participants = Array.init 4 (fun i -> mk (Printf.sprintf "p%d" i)) in
  let dir = env.Scenario.directory in
  (* Local chains: per-object chains are independent, so update work
     parallelises across domains.  Chains are created sequentially
     first (the chain table itself is not domain-safe); the parallel
     phase then only touches disjoint per-object ref cells. *)
  let local = Baseline.Linear.create () in
  let local_wall =
    let _, dt =
      time (fun () ->
          for oid = 0 to objects - 1 do
            ignore
              (Baseline.Linear.apply local participants.(oid mod 4)
                 (Baseline.Insert (oid, "v0")))
          done;
          let worker lo hi =
            Domain.spawn (fun () ->
                for oid = lo to hi do
                  let p = participants.(oid mod 4) in
                  for k = 1 to ops_per_object - 1 do
                    ignore
                      (Baseline.Linear.apply local p
                         (Baseline.Update (oid, Printf.sprintf "v%d" k)))
                  done
                done)
          in
          let d1 = worker 0 ((objects / 2) - 1) in
          let d2 = worker (objects / 2) (objects - 1) in
          Domain.join d1;
          Domain.join d2)
    in
    dt
  in
  (* Global chain: all ops serialise through one chain head. *)
  let global = Baseline.Global.create () in
  let global_wall =
    let _, dt =
      time (fun () ->
          for oid = 0 to objects - 1 do
            let p = participants.(oid mod 4) in
            ignore (Baseline.Global.apply global p (Baseline.Insert (oid, "v0")));
            for k = 1 to ops_per_object - 1 do
              ignore
                (Baseline.Global.apply global p
                   (Baseline.Update (oid, Printf.sprintf "v%d" k)))
            done
          done)
    in
    dt
  in
  (* Verification cost for a single object. *)
  let _, local_verify_s =
    time (fun () -> ignore (Baseline.Linear.verify_object local dir 0))
  in
  let _, global_verify_s =
    time (fun () -> ignore (Baseline.Global.verify_object global dir 0))
  in
  (* Failure locality: corrupt one object's record in each scheme. *)
  ignore (Baseline.Linear.corrupt local (objects / 2));
  ignore (Baseline.Global.corrupt global (objects / 2));
  let _, local_bad = Baseline.Linear.verify_all local dir in
  let _, global_bad = Baseline.Global.verify_all global dir in
  {
    ch_objects = objects;
    ch_ops = objects * ops_per_object;
    ch_cores = Domain.recommended_domain_count ();
    local_critical_path = ops_per_object;
    global_critical_path = objects * ops_per_object;
    local_wall_s = local_wall;
    global_wall_s = global_wall;
    local_failed_after_corruption = local_bad;
    global_failed_after_corruption = global_bad;
    local_verify_s;
    global_verify_s;
  }

(* ---------- Ablation: scheme comparison ---------- *)

type baseline_row = {
  bl_scheme : string;
  bl_ops : int;
  bl_wall_s : float;
  bl_space_bytes : int;
  bl_fine_grained : bool;
}

let ablation_baseline cfg =
  let n_ops = max 50 (scale_point cfg 500) in
  let env, p = env_with_participant cfg "worker" in
  let dir = env.Scenario.directory in
  ignore dir;
  (* plain provenance, no integrity *)
  let plain = Baseline.Plain.create () in
  let _, plain_s =
    time (fun () ->
        for i = 0 to n_ops - 1 do
          Baseline.Plain.apply plain ~participant:"worker"
            (Baseline.Update ((i mod 20) + 1000, string_of_int i))
        done)
  in
  (* seed objects first so updates apply *)
  let linear = Baseline.Linear.create () in
  for o = 1000 to 1019 do
    ignore (Baseline.Linear.apply linear p (Baseline.Insert (o, "v")))
  done;
  let _, linear_s =
    time (fun () ->
        for i = 0 to n_ops - 1 do
          ignore
            (Baseline.Linear.apply linear p
               (Baseline.Update ((i mod 20) + 1000, string_of_int i)))
        done)
  in
  (* this paper's engine: same number of cell updates on a real table *)
  let db =
    Synth.build_database ~seed:(cfg.seed ^ "-bl")
      [ { Synth.name = "t1"; attrs = 8; rows = 20 } ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  let _, tep_s =
    time (fun () ->
        for i = 0 to n_ops - 1 do
          ignore
            (Engine.update_cell eng p ~table:"t1" ~row:(i mod 20) ~col:(i mod 8)
               (Value.Int i))
        done)
  in
  (* fix the plain baseline: it got Update on unseeded oids; it does
     not validate existence, so counts are comparable *)
  [
    {
      bl_scheme = "plain (no checksums)";
      bl_ops = n_ops;
      bl_wall_s = plain_s;
      bl_space_bytes = Baseline.Plain.space_bytes plain;
      bl_fine_grained = false;
    };
    {
      bl_scheme = "linear chains (Hasan et al.)";
      bl_ops = n_ops;
      bl_wall_s = linear_s;
      bl_space_bytes = Baseline.Linear.space_bytes linear;
      bl_fine_grained = false;
    };
    {
      bl_scheme = "tep compound engine (this paper)";
      bl_ops = n_ops;
      bl_wall_s = tep_s;
      bl_space_bytes = Provstore.paper_space_bytes (Engine.provstore eng);
      bl_fine_grained = true;
    };
  ]

(* ---------- Ablation: RSA signatures vs HMAC tags ---------- *)

type signing_row = {
  sg_scheme : string;
  sg_ops : int;
  sg_sign_wall_s : float;
  sg_verify_wall_s : float;
  sg_checksum_bytes : int;
  sg_non_repudiation : bool;
}

let ablation_signing cfg =
  let n = max 100 (scale_point cfg 1000) in
  let env, p = env_with_participant cfg "signer" in
  let payloads =
    List.init n (fun i ->
        Checksum.payload ~kind:Record.Update ~seq_id:i
          ~output_oid:(Oid.of_int 1)
          ~input_hashes:[ Printf.sprintf "in-%d" i ]
          ~output_hash:(Printf.sprintf "out-%d" i)
          ~prev_checksums:[ Printf.sprintf "prev-%d" i ])
  in
  (* RSA *)
  let sigs = ref [] in
  let _, rsa_sign_s =
    time (fun () -> sigs := List.map (Checksum.sign p) payloads)
  in
  let pk = Participant.public_key p in
  let _, rsa_verify_s =
    time (fun () ->
        List.iter2
          (fun payload checksum ->
            assert (Checksum.verify pk ~payload ~checksum))
          payloads !sigs)
  in
  let rsa_bytes = List.fold_left (fun a s -> a + String.length s) 0 !sigs in
  (* HMAC *)
  let key = Tep_crypto.Drbg.generate env.Scenario.drbg 32 in
  let algo = Tep_crypto.Digest_algo.SHA256 in
  let tags = ref [] in
  let _, mac_sign_s =
    time (fun () ->
        tags := List.map (fun m -> Tep_crypto.Hmac.mac ~algo ~key m) payloads)
  in
  let _, mac_verify_s =
    time (fun () ->
        List.iter2
          (fun msg tag -> assert (Tep_crypto.Hmac.verify ~algo ~key ~msg ~tag))
          payloads !tags)
  in
  let mac_bytes = List.fold_left (fun a s -> a + String.length s) 0 !tags in
  [
    {
      sg_scheme = Printf.sprintf "rsa-%d (paper)" cfg.rsa_bits;
      sg_ops = n;
      sg_sign_wall_s = rsa_sign_s;
      sg_verify_wall_s = rsa_verify_s;
      sg_checksum_bytes = rsa_bytes;
      sg_non_repudiation = true;
    };
    {
      sg_scheme = "hmac-sha256";
      sg_ops = n;
      sg_sign_wall_s = mac_sign_s;
      sg_verify_wall_s = mac_verify_s;
      sg_checksum_bytes = mac_bytes;
      sg_non_repudiation = false;
    };
  ]

(* ---------- Extension: full vs incremental audit ---------- *)

type audit_row = {
  au_round : int;
  au_total_records : int;
  au_full_s : float;
  au_full_records : int;
  au_incr_s : float;
  au_incr_records : int;
}

let ablation_audit cfg =
  let rounds = 5 in
  let ops_per_round = max 5 (scale_point cfg 50) in
  let env, p = env_with_participant cfg "worker" in
  let db =
    Synth.build_database ~seed:(cfg.seed ^ "-audit")
      [ { Synth.name = "t1"; attrs = 8; rows = max 50 (scale_point cfg 500) } ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  let dir = env.Scenario.directory in
  let algo = Engine.algo eng in
  let cp = ref Audit.empty in
  List.init rounds (fun round ->
      for i = 0 to ops_per_round - 1 do
        ignore
          (Engine.update_cell eng p ~table:"t1"
             ~row:(i mod 50) ~col:(i mod 8)
             (Value.Int ((round * 1000) + i)))
      done;
      let store = Engine.provstore eng in
      let (full_report, _), au_full_s =
        time (fun () -> Audit.full_audit ~algo ~directory:dir store)
      in
      let (incr_report, cp', incr_records), au_incr_s =
        time (fun () -> Audit.incremental_audit ~algo ~directory:dir !cp store)
      in
      assert (Verifier.ok full_report && Verifier.ok incr_report);
      cp := cp';
      {
        au_round = round + 1;
        au_total_records = Provstore.record_count store;
        au_full_s;
        au_full_records = full_report.Verifier.records_checked;
        au_incr_s;
        au_incr_records = incr_records;
      })
