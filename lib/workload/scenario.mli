(** The paper's running examples, built programmatically.

    - {!clinical_trial} reproduces Example 1 / Figure 1: PCP Paul
      collects ages and weights, Perfect Saints Clinic produces
      endocrine measurements (later amended by PCP Pamela),
      GoodStewards Labs determines white-cell counts, and TrustUsRx
      aggregates everything for the FDA.
    - {!figure2} reproduces Figure 2/3: objects A and B inserted by
      p2, repeatedly updated, aggregated into C and then D — the
      worked non-linear provenance example with checksums. *)

open Tep_core
open Tep_tree

type env = {
  ca : Tep_crypto.Pki.ca;
  directory : Participant.Directory.t;
  drbg : Tep_crypto.Drbg.t;
}

val make_env : ?seed:string -> unit -> env

val participant : env -> string -> Participant.t
(** Create and register a participant. *)

type clinical = {
  engine : Engine.t;
  trial_result : Oid.t;  (** the aggregate delivered to the FDA *)
  patients_amended : int list;  (** row ids whose endocrine was amended *)
  participants : (string * Participant.t) list;
}

val clinical_trial : ?patients:int -> env -> clinical
(** Build the TrustUsRx scenario with [patients] (default 8) patient
    records and return the delivered aggregate. *)

type figure2 = {
  store : Atomic.t;
  a : Oid.t;
  b : Oid.t;
  c : Oid.t;
  d : Oid.t;
  f2_participants : (string * Participant.t) list;
}

val figure2 : env -> figure2
(** The exact operation sequence of Figure 2 on the atomic-object
    protocol, including the multiversion reads (C aggregates the
    {e original} value a1 of A); the provenance of [d] is the
    7-record DAG with the checksums of Figure 3. *)
