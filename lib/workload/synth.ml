open Tep_store

type table_spec = { name : string; attrs : int; rows : int }

let paper_tables =
  [
    { name = "t1"; attrs = 8; rows = 4000 };
    { name = "t2"; attrs = 9; rows = 3000 };
    { name = "t3"; attrs = 10; rows = 2000 };
    { name = "t4"; attrs = 5; rows = 5000 };
  ]

let paper_node_counts = [ 36002; 66003; 88004; 118005 ]

let scale f spec =
  { spec with rows = max 1 (int_of_float (float_of_int spec.rows *. f)) }

let int_schema attrs =
  Schema.all_int (List.init attrs (fun i -> Printf.sprintf "c%d" i))

let build_table drbg db spec =
  match Database.create_table db ~name:spec.name (int_schema spec.attrs) with
  | Error e -> Error e
  | Ok tbl ->
      let err = ref None in
      for _ = 1 to spec.rows do
        if !err = None then begin
          let cells =
            Array.init spec.attrs (fun _ ->
                Value.Int (Tep_crypto.Drbg.uniform_int drbg 1_000_000))
          in
          match Table.insert tbl cells with
          | Ok _ -> ()
          | Error e -> err := Some e
        end
      done;
      (match !err with None -> Ok tbl | Some e -> Error e)

let build_database ?(name = "synthetic") ~seed specs =
  let drbg = Tep_crypto.Drbg.create ~seed in
  let db = Database.create ~name in
  List.iter
    (fun spec ->
      match build_table drbg db spec with
      | Ok _ -> ()
      | Error e -> failwith ("Synth.build_database: " ^ e))
    specs;
  db

let paper_database ?(scale_factor = 1.0) n =
  if n < 1 || n > 4 then invalid_arg "Synth.paper_database: n must be 1..4";
  let specs =
    List.filteri (fun i _ -> i < n) paper_tables |> List.map (scale scale_factor)
  in
  build_database ~name:(Printf.sprintf "paper_db_%d" n) ~seed:"tep-paper-db" specs

let title_table_spec ~rows = { name = "Title"; attrs = 2; rows }

let build_title_database ~rows =
  let db = Database.create ~name:"title_db" in
  let schema =
    Schema.make
      [
        { Schema.name = "DocumentID"; ty = Value.TInt; nullable = false };
        { Schema.name = "Title"; ty = Value.TText; nullable = false };
      ]
  in
  let tbl =
    match Database.create_table db ~name:"Title" schema with
    | Ok t -> t
    | Error e -> failwith e
  in
  let drbg = Tep_crypto.Drbg.create ~seed:"tep-title-db" in
  for i = 0 to rows - 1 do
    let title =
      Printf.sprintf "Document %d: %s" i
        (Tep_crypto.Digest_algo.to_hex (Tep_crypto.Drbg.generate drbg 8))
    in
    match Table.insert tbl [| Value.Int i; Value.Text title |] with
    | Ok _ -> ()
    | Error e -> failwith e
  done;
  db
