(** Synthetic back-end databases — Table 1 of the paper.

    Table 1(a): four all-integer tables
      (8 attrs × 4000 rows), (9 × 3000), (10 × 2000), (5 × 5000).
    Table 1(b): cumulative databases with node counts
      36002 / 66000 / 88004 / 118006 (1 root + per-table 1 + rows +
    cells). *)

open Tep_store

type table_spec = { name : string; attrs : int; rows : int }

val paper_tables : table_spec list
(** The four specs of Table 1(a), named ["t1".."t4"]. *)

val paper_node_counts : int list
(** [36002; 66003; 88004; 118005].  Table 1(b) of the paper prints
    36002 / 66000 / 88004 / 118006, but those four values are
    mutually inconsistent: with the Table 1(a) specs, every counting
    rule that yields 36002 and 88004 (1 root + per table: 1 + rows x
    (1 + attrs)) necessarily yields 66003 and 118005 for the other
    two.  We use the consistent rule; the two paper values that
    disagree (off by 3 and 1) are evidently typos.  See
    EXPERIMENTS.md. *)

val scale : float -> table_spec -> table_spec
(** Scale a spec's row count (for reduced-scale benching). *)

val build_table : Tep_crypto.Drbg.t -> Database.t -> table_spec -> (Table.t, string) result
(** Create and populate one synthetic table with pseudo-random
    integers. *)

val build_database :
  ?name:string -> seed:string -> table_spec list -> Database.t
(** Deterministic synthetic database from a seed. *)

val paper_database : ?scale_factor:float -> int -> Database.t
(** [paper_database n] is the database made of the first [n] paper
    tables (n in 1..4), matching a row of Table 1(b).  With
    [scale_factor] < 1 the row counts shrink proportionally. *)

val title_table_spec : rows:int -> table_spec
(** The "Title" table of the large-database experiment (2 columns:
    Document ID, Title); the paper used 18,962,041 rows. *)

val build_title_database : rows:int -> Database.t
(** DocID is an int column, Title a text column. *)
