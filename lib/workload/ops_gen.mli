(** Synthetic complex operations — Table 2 of the paper.

    Setup A: pure-update operations with growing update counts
    (Figure 7).  Setup B: all-deletes / all-inserts / all-updates
    (Figures 8–9).  Setup C: 500-op mixes with varying delete
    percentages (Figures 10–11). *)

open Tep_store
open Tep_core

type primitive =
  | Update_cell of { table : string; row : int; col : int; value : Value.t }
  | Insert_row of { table : string; cells : Value.t array }
  | Delete_row of { table : string; row : int }

type complex_op = primitive list
(** One complex operation = primitives executed in one provenance
    batch (Section 4.4). *)

val apply :
  Engine.t -> Participant.t -> complex_op -> (Engine.metrics, string) result
(** Run one complex operation through the engine. *)

val apply_all :
  Engine.t ->
  Participant.t ->
  complex_op list ->
  (Engine.metrics, string) result
(** Run a list of complex operations; sums the metrics. *)

(** {1 Setup A (Figure 7)} *)

val setup_a_points : int list
(** Cell-update counts: 1, 400..4000 step 400, 8000..32000 step 4000 —
    the x-axis of Figure 7. *)

val updates_spread :
  Tep_crypto.Drbg.t ->
  Database.t ->
  table:string ->
  cells:int ->
  max_rows:int ->
  complex_op
(** One complex op of [cells] single-cell updates spread over at most
    [max_rows] distinct rows (Setup A updates [400n] cells in [400n]
    rows, then [4000n] cells in 4000 rows). *)

(** {1 Setup B (Figures 8–9)} *)

val all_deletes : Database.t -> table:string -> count:int -> complex_op
val all_inserts : Tep_crypto.Drbg.t -> Database.t -> table:string -> count:int -> complex_op

val all_updates :
  Tep_crypto.Drbg.t ->
  Database.t ->
  table:string ->
  cells:int ->
  rows:int ->
  complex_op

(** {1 Setup C (Figures 10–11)} *)

type mix = { deletes_pct : float; inserts_pct : float; updates_pct : float }

val paper_mixes : mix list
(** The four mixes of Table 2 Setup C: 19.2/37.8/43, 36.6/30.4/33,
    57/21.2/21.8, 78.2/9.8/12 (% deletes/inserts/updates). *)

val mixed_ops :
  Tep_crypto.Drbg.t ->
  Database.t ->
  table:string ->
  total:int ->
  mix ->
  complex_op
(** [total] primitives drawn per the mix, targeting random live rows
    (deletes and updates pick rows that previous primitives in the op
    have not deleted). *)
