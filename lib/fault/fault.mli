(** Deterministic fault injection for the durability layer.

    The storage code declares named {e failpoint sites} ([register])
    and threads every risky effect through {!hit} (control points:
    fsync, rename, open) or {!output} (data points: file writes).  In
    production nothing is armed and both are near-free.  Tests [arm] a
    site with an {!action} and a hit ordinal, run the workload, and
    observe a crash, a torn or corrupted write, or a transient I/O
    error at an exactly reproducible point.

    Randomness (bit positions for {!Bit_flip}) comes from the
    repository's HMAC-DRBG, re-seeded via {!seed}, so a failing run
    replays identically from the seed.

    All state is global and this module is not thread-safe — the
    harness is single-threaded by design. *)

exception Crash of string
(** Simulated process death at the named site.  Storage code must let
    this escape (never catch it): the crash-enumeration harness relies
    on it unwinding to the test driver, which then exercises
    recovery. *)

type action =
  | Crash_point  (** raise {!Crash} before the effect happens *)
  | Torn_write of float
      (** write only this fraction of the data, flush it, then raise
          {!Crash} — a torn write followed by process death.  Only
          meaningful on {!output} sites. *)
  | Bit_flip
      (** flip one DRBG-chosen bit of the written data and continue —
          silent media corruption.  Only meaningful on {!output}
          sites. *)
  | Transient of int
      (** raise [Sys_error] on this many consecutive hits, then
          succeed — the retryable class ({!with_retry}). *)
  | Delay of float
      (** sleep this many seconds, then let the effect proceed
          normally — a slow disk or a long-running request.  One-shot,
          like the crash class; used by the service tests to hold a
          reader in flight while probing dispatch concurrency. *)

val register : string -> unit
(** Declare a site.  Idempotent; storage modules register their sites
    at load time so {!sites} enumerates them before any I/O runs. *)

val sites : unit -> string list
(** All registered sites, sorted. *)

val arm : ?after:int -> string -> action -> unit
(** Arm [site] to fire on its [after]-th hit from now (default 1 =
    next hit).  Counting starts at the current hit count, so arming is
    insensitive to earlier traffic.  Re-arming replaces the previous
    action.  Unknown sites are registered implicitly. *)

val disarm : string -> unit
val reset : unit -> unit
(** Disarm every site and zero all hit counters (registrations are
    kept). *)

val seed : string -> unit
(** Re-seed the DRBG used for {!Bit_flip} positions. *)

val enabled : unit -> bool
(** True when at least one site is armed (fast path guard). *)

val hit : string -> unit
(** Pass a control point.  Fires [Crash_point] / [Transient] if armed
    and due; [Torn_write] and [Bit_flip] are treated as [Crash_point]
    here (there is no data to shape).  Armed actions are one-shot:
    they disarm on firing ([Transient n] after [n] raises). *)

val hit_count : string -> int

val output : string -> out_channel -> string -> unit
(** [output site oc data] writes [data] to [oc], honouring an armed
    fault: [Crash_point] raises before writing; [Torn_write f] writes
    [f·len] bytes, flushes and raises; [Bit_flip] writes a corrupted
    copy; [Transient] raises [Sys_error] before writing. *)

val input : string -> string -> string
(** [input site data] passes a data-read point (the mirror of
    {!output}): returns [data] untouched when nothing is armed and
    due, otherwise shapes what the reader sees — [Torn_write f]
    returns only the first [f·len] bytes (a short read), [Bit_flip]
    returns a copy with one DRBG-chosen bit flipped, [Crash_point]
    raises {!Crash}, [Transient] raises [Sys_error].  Used by the
    wire layer to inject torn reads into a connection's byte
    stream. *)

val allow : string -> int -> int
(** [allow site n] is the byte-count shaping point for non-blocking
    I/O: the caller intends to transfer [n] bytes and transfers only
    the returned count this attempt.  [Torn_write f] returns a
    strictly partial count ([max 1 (min (n-1) (f·n))] for [n > 1]) —
    the readiness loop must keep the remainder buffered and re-arm
    [POLLOUT]; [Transient k] returns [0] on [k] consecutive hits — an
    injected EAGAIN storm; [Crash_point] raises; [Delay] sleeps then
    allows everything.  Never raises [Sys_error]: short counts are
    indistinguishable from normal kernel behaviour by design. *)

val with_retry :
  ?attempts:int -> ?backoff:(int -> unit) -> (unit -> 'a) -> ('a, string) result
(** Run [f], retrying on [Sys_error] up to [attempts] times (default
    3) with [backoff i] called before retry [i] (default none; pass a
    sleep for real deployments).  Returns the last error message when
    attempts are exhausted.  {!Crash} and every other exception
    propagate untouched — only the transient class is retried. *)
