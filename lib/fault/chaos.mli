(** Socket-level chaos proxy for soak-testing the service path.

    Forwards Unix-domain socket traffic between a client and a server
    while injecting network faults: chunk splits (partial reads at the
    peer), delays, single-bit corruption, and whole-connection drops.
    Fault decisions are drawn from per-connection, per-direction
    HMAC-DRBGs derived from one seed string, so a soak run's fault
    pattern is reproducible from the seed.

    The proxy never invents or reorders bytes within a direction:
    apart from a flipped bit (caught downstream by the frame CRC or
    session MAC), the forwarded stream is prefix-faithful or dead.
    Combined with client reconnect-and-replay and server request-id
    dedup, every injected fault must be survivable without duplicate
    or lost writes — which is exactly what the chaos soak asserts. *)

type profile = {
  p_split : int;  (** per-chunk odds (out of 1024) of a split write *)
  p_delay : int;  (** per-chunk odds of a forwarding delay *)
  p_corrupt : int;  (** per-chunk odds of flipping one bit *)
  p_drop : int;  (** per-chunk odds of killing the connection *)
  max_delay_s : float;  (** upper bound for injected delays *)
}

val default_profile : profile

type t

val start :
  ?profile:profile -> seed:string -> listen:string -> upstream:string -> unit -> t
(** Start proxying: accept on the [listen] socket path, forward each
    connection to the [upstream] path.  Runs on background threads
    until {!stop}. *)

val stop : t -> unit
(** Stop accepting and join the accept loop.  Existing connections
    die with their sockets. *)

val connections : t -> int
(** Connections accepted so far. *)

val faults : t -> int
(** Total fault events injected so far (splits, delays, corruptions,
    drops). *)
