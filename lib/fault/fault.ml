exception Crash of string

type action =
  | Crash_point
  | Torn_write of float
  | Bit_flip
  | Transient of int
  | Delay of float

type armed = {
  action : action;
  fire_at : int; (* absolute hit count at which the action fires *)
  mutable remaining : int; (* Transient: raises left before success *)
}

type site_state = { mutable hits : int; mutable armed : armed option }

let registry : (string, site_state) Hashtbl.t = Hashtbl.create 32
let armed_count = ref 0

let rng = ref (Tep_crypto.Drbg.create ~seed:"tep-fault")
let seed s = rng := Tep_crypto.Drbg.create ~seed:s

let get site =
  match Hashtbl.find_opt registry site with
  | Some st -> st
  | None ->
      let st = { hits = 0; armed = None } in
      Hashtbl.replace registry site st;
      st

let register site = ignore (get site)

let sites () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry []
  |> List.sort String.compare

let disarm site =
  let st = get site in
  if st.armed <> None then begin
    st.armed <- None;
    decr armed_count
  end

let arm ?(after = 1) site action =
  if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  let st = get site in
  disarm site;
  let remaining = match action with Transient n -> max 1 n | _ -> 1 in
  st.armed <- Some { action; fire_at = st.hits + after; remaining };
  incr armed_count

let reset () =
  Hashtbl.iter
    (fun _ st ->
      if st.armed <> None then decr armed_count;
      st.armed <- None;
      st.hits <- 0)
    registry

let enabled () = !armed_count > 0
let hit_count site = (get site).hits

(* Count a hit; if the armed action is due, return it (disarming
   one-shot actions, counting down transients). *)
let fire site =
  let st = get site in
  st.hits <- st.hits + 1;
  match st.armed with
  | Some a when st.hits >= a.fire_at -> (
      match a.action with
      | Crash_point | Torn_write _ | Bit_flip | Delay _ ->
          disarm site;
          Some a.action
      | Transient _ ->
          a.remaining <- a.remaining - 1;
          if a.remaining <= 0 then disarm site;
          Some a.action)
  | _ -> None

let transient_error site =
  Sys_error (Printf.sprintf "%s: injected transient I/O error" site)

let sleepf seconds = if seconds > 0. then Unix.sleepf seconds

let hit site =
  match fire site with
  | None -> ()
  | Some (Crash_point | Torn_write _ | Bit_flip) -> raise (Crash site)
  | Some (Transient _) -> raise (transient_error site)
  | Some (Delay s) -> sleepf s

let flip_one_bit data =
  if String.length data = 0 then data
  else begin
    let pos = Tep_crypto.Drbg.uniform_int !rng (String.length data) in
    let bit = Tep_crypto.Drbg.uniform_int !rng 8 in
    String.mapi
      (fun i c -> if i = pos then Char.chr (Char.code c lxor (1 lsl bit)) else c)
      data
  end

let output site oc data =
  match fire site with
    | None -> output_string oc data
    | Some Crash_point -> raise (Crash site)
    | Some (Transient _) -> raise (transient_error site)
    | Some (Torn_write frac) ->
        let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
        let n = int_of_float (frac *. float_of_int (String.length data)) in
        output_string oc (String.sub data 0 n);
        flush oc;
        raise (Crash site)
    | Some Bit_flip -> output_string oc (flip_one_bit data)
    | Some (Delay s) ->
        sleepf s;
        output_string oc data

let input site data =
  match fire site with
  | None -> data
  | Some Crash_point -> raise (Crash site)
  | Some (Transient _) -> raise (transient_error site)
  | Some (Torn_write frac) ->
      let frac = if frac < 0. then 0. else if frac > 1. then 1. else frac in
      let n = int_of_float (frac *. float_of_int (String.length data)) in
      String.sub data 0 n
  | Some Bit_flip -> flip_one_bit data
  | Some (Delay s) ->
      sleepf s;
      data

(* Byte-count shaping for non-blocking I/O sites: the caller is about
   to write (or read) [n] bytes and asks how many the fault layer will
   let through this attempt.  Torn_write yields a strictly partial
   count (the event loop must re-arm POLLOUT and finish later);
   Transient yields 0 for its k consecutive hits — an injected EAGAIN
   storm.  Unlike [output], nothing here raises except Crash_point:
   readiness loops treat short counts as normal kernel behaviour. *)
let allow site n =
  match fire site with
  | None -> n
  | Some Crash_point -> raise (Crash site)
  | Some (Torn_write frac) ->
      if n <= 1 then n
      else begin
        let frac =
          if frac < 0. then 0. else if frac > 1. then 1. else frac
        in
        let k = int_of_float (frac *. float_of_int n) in
        max 1 (min (n - 1) k)
      end
  | Some (Transient _) -> 0
  | Some Bit_flip -> n
  | Some (Delay s) ->
      sleepf s;
      n

let with_retry ?(attempts = 3) ?(backoff = fun _ -> ()) f =
  let rec go i =
    match f () with
    | v -> Ok v
    | exception Sys_error e ->
        if i + 1 >= attempts then Error e
        else begin
          backoff (i + 1);
          go (i + 1)
        end
  in
  go 0
