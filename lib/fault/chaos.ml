(* Socket-level chaos proxy.

   Sits between a real client and a real server on Unix-domain
   sockets and injects network faults into the forwarded byte stream:
   chunk splits (partial reads/writes at the peer), delays, one-bit
   corruption, and whole-connection drops.  All fault decisions come
   from per-connection, per-direction HMAC-DRBGs derived from one seed
   string, so a soak run's fault pattern is reproducible from its
   seed: connection [n]'s client->server stream always sees the same
   decision sequence, independent of what the other direction or other
   connections are doing.

   The proxy never invents bytes and never reorders within a
   direction: apart from an occasional flipped bit (which the frame
   CRC or the session MAC catches downstream) the stream is either
   prefix-faithful or dead.  That makes it the right adversary for the
   exactly-once guarantees: every observable failure is one the
   wire+session layers are supposed to convert into a clean connection
   death, and the client's reconnect-and-replay plus the server's
   request-id dedup must turn it into no duplicate and no loss. *)

type profile = {
  p_split : int; (* per-chunk odds /1024: forward in two writes *)
  p_delay : int; (* per-chunk odds /1024: sleep before forwarding *)
  p_corrupt : int; (* per-chunk odds /1024: flip one bit *)
  p_drop : int; (* per-chunk odds /1024: kill the connection *)
  max_delay_s : float; (* delay upper bound *)
}

let default_profile =
  { p_split = 200; p_delay = 80; p_corrupt = 25; p_drop = 25; max_delay_s = 0.01 }

type t = {
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  accept_thread : Thread.t option ref;
  connections : int Atomic.t; (* accepted so far *)
  faults : int Atomic.t; (* injected fault events *)
  profile : profile;
  seed : string;
  upstream : string;
}

let connections t = Atomic.get t.connections
let faults t = Atomic.get t.faults

let write_all fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let flip_bit drbg data =
  let b = Bytes.of_string data in
  let bit = Tep_crypto.Drbg.uniform_int drbg (8 * Bytes.length b) in
  let i = bit / 8 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
  Bytes.to_string b

let shutdown_both a b =
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    [ a; b ]

(* One direction of one connection: read from [src], shape, forward to
   [dst].  Exits on EOF, on an injected drop, or when the other
   direction already tore the connection down. *)
let pump t drbg src dst =
  let p = t.profile in
  let chunk = Bytes.create 2048 in
  let fault () = Atomic.incr t.faults in
  let roll odds = Tep_crypto.Drbg.uniform_int drbg 1024 < odds in
  (try
     let run = ref true in
     while !run do
       match Unix.read src chunk 0 (Bytes.length chunk) with
       | 0 -> run := false
       | n ->
           if roll p.p_drop then begin
             fault ();
             run := false
           end
           else begin
             let data = Bytes.sub_string chunk 0 n in
             let data =
               if roll p.p_corrupt then begin
                 fault ();
                 flip_bit drbg data
               end
               else data
             in
             if roll p.p_delay then begin
               fault ();
               Thread.delay
                 (t.profile.max_delay_s
                 *. float_of_int (Tep_crypto.Drbg.uniform_int drbg 1024)
                 /. 1024.)
             end;
             if roll p.p_split && String.length data > 1 then begin
               fault ();
               let cut =
                 1 + Tep_crypto.Drbg.uniform_int drbg (String.length data - 1)
               in
               write_all dst (String.sub data 0 cut);
               Thread.yield ();
               write_all dst
                 (String.sub data cut (String.length data - cut))
             end
             else write_all dst data
           end
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* one side dying kills the whole connection, like a real TCP reset *)
  shutdown_both src dst

let handle t client_fd =
  let id = Atomic.fetch_and_add t.connections 1 in
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.connect fd (Unix.ADDR_UNIX t.upstream);
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | exception Unix.Unix_error _ ->
      (try Unix.close client_fd with Unix.Unix_error _ -> ())
  | server_fd ->
      let dir_drbg dir =
        Tep_crypto.Drbg.create
          ~seed:(Printf.sprintf "%s/%d/%s" t.seed id dir)
      in
      let up =
        Thread.create
          (fun () -> pump t (dir_drbg "c2s") client_fd server_fd)
          ()
      in
      pump t (dir_drbg "s2c") server_fd client_fd;
      Thread.join up;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ client_fd; server_fd ]

let start ?(profile = default_profile) ~seed ~listen ~upstream () =
  (try Unix.unlink listen with Unix.Unix_error _ | Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.bind fd (Unix.ADDR_UNIX listen)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen fd 16;
  let t =
    {
      listen_fd = fd;
      stop = Atomic.make false;
      accept_thread = ref None;
      connections = Atomic.make 0;
      faults = Atomic.make 0;
      profile;
      seed;
      upstream;
    }
  in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get t.stop) do
          match Unix.select [ fd ] [] [] 0.1 with
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept fd with
              | cfd, _ -> ignore (Thread.create (fun () -> handle t cfd) ())
              | exception Unix.Unix_error _ -> ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        try Unix.close fd with Unix.Unix_error _ -> ())
      ()
  in
  t.accept_thread := Some th;
  t

let stop t =
  Atomic.set t.stop true;
  (match !(t.accept_thread) with Some th -> Thread.join th | None -> ());
  ignore t.listen_fd
