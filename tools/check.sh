#!/bin/sh
# Repository check: full build, every test suite, an explicit run of
# the crash-point enumeration harness (the durability gate), and the
# parallel-verification smoke benchmark (fails when any domain-pool
# report disagrees with the sequential run).
# Equivalent to `dune build @check-all`.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== crash-point enumeration =="
dune exec test/test_crash.exe

echo "== bench-smoke (parallel determinism gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- parallel

echo "check: OK"
