#!/bin/sh
# Repository check: full build, every test suite, and an explicit run
# of the crash-point enumeration harness (the durability gate).
# Equivalent to `dune build @check-all`.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== crash-point enumeration =="
dune exec test/test_crash.exe

echo "check: OK"
