#!/bin/sh
# Repository check: full build, every test suite, an explicit run of
# the crash-point enumeration harness (the durability gate), the
# parallel-verification smoke benchmark (fails when any domain-pool
# report disagrees with the sequential run), and the wire-service
# gate (loopback + socket throughput, then a scripted provdbd
# session asserting tampering is reported over the wire), and the
# lineage engine gates (@prov unit suite, @prov-smoke annotated-query
# overhead gate, and a scripted daemon lineage session: insert ->
# derive -> lineage why -> tamper -> detect), and the remote
# verification gates (@proof unit suite, @proof-smoke bytes/latency
# gate, and a scripted daemon proof session: insert -> remote prove
# VERIFIED -> tamper -> remote prove exit 3 -> sampled audit exit 3),
# and the event-loop service gates (@serve-loop: the reactor suite
# plus the service robustness group pinned to the event loop; the
# scripted daemon sessions below run the reactor by default, with an
# explicit thread-per-connection parity check via --event-loop=false).
# Equivalent to `dune build @check-all` plus the daemon sessions.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== crash-point enumeration =="
dune exec test/test_crash.exe

echo "== bench-smoke (parallel determinism gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- parallel

echo "== sign-parallel (pooled commit-signing determinism gate) =="
TEP_DOMAINS=4 dune exec test/test_sign_parallel.exe

echo "== serve-smoke (wire service gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- serve

echo "== serve-pipeline (pipelined-load gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- serve-pipeline

echo "== chaos (network fault soak) =="
TEP_CHAOS_SEED="${TEP_CHAOS_SEED:-tep-chaos-0}" dune exec test/test_chaos.exe

echo "== shard (shard determinism suite) =="
TEP_DOMAINS=4 dune exec test/test_shard.exe

echo "== shard-smoke (sharded write throughput + root determinism) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- shard

echo "== prov (lineage engine suite) =="
dune exec test/test_prov.exe

echo "== prov-smoke (annotated-query overhead gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- prov

echo "== proof (remote verification suite) =="
dune exec test/test_proof_rpc.exe

echo "== proof-smoke (proof bytes / latency gate) =="
TEP_SCALE=smoke TEP_BENCH_JSON=0 dune exec bench/main.exe -- proof

echo "== serve-loop (event-loop reactor gate) =="
dune build @serve-loop

echo "== serve-smoke (scripted provdbd session) =="
PROVDB=_build/default/bin/provdb.exe
PROVDBD=_build/default/bin/provdbd.exe
ws=$(mktemp -d)/ws
ws2=$(mktemp -d)/ws
ws3=$(mktemp -d)/ws
ws4=$(mktemp -d)/ws
cleanup() {
  if [ -n "${daemon_pid:-}" ]; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  rm -rf "$(dirname "$ws")" "$(dirname "$ws2")" "$(dirname "$ws3")" \
    "$(dirname "$ws4")"
}
trap cleanup EXIT

"$PROVDB" init "$ws" --table 'stock:sku,qty@int'
"$PROVDB" participant "$ws" alice

wait_for_socket() {
  i=0
  while [ ! -S "$1/provdbd.sock" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "daemon socket never appeared"; exit 1; }
    sleep 0.1
  done
}

# explicit event-loop flags: the reactor with a small worker pool and
# a non-default idle timeout, exercising the provdbd flag surface
"$PROVDBD" "$ws" --io-threads 2 --idle-timeout 120 & daemon_pid=$!
wait_for_socket "$ws"
"$PROVDB" remote insert "$ws" --as alice --table stock --values 'WIDGET-1,100'
"$PROVDB" remote query "$ws" --as alice > /dev/null
"$PROVDB" remote verify "$ws" --as alice

# SIGTERM drain: the daemon must stop accepting, finish in-flight
# batches, checkpoint, and exit 0 — and a restarted daemon must come
# back with the same root hash it drained with.
root_before=$("$PROVDB" remote root-hash "$ws" --as alice)
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
if [ "$drain_status" -ne 0 ]; then
  echo "FAIL: SIGTERM drain exited $drain_status, expected 0"
  exit 1
fi
daemon_pid=
"$PROVDBD" "$ws" & daemon_pid=$!
wait_for_socket "$ws"
root_after=$("$PROVDB" remote root-hash "$ws" --as alice)
if [ "$root_before" != "$root_after" ]; then
  echo "FAIL: root hash changed across SIGTERM drain + restart"
  echo "  before: $root_before"
  echo "  after:  $root_after"
  exit 1
fi
echo "drain: SIGTERM exited 0, root hash stable across restart"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=

# Thread-per-connection fallback must stay wire-compatible: the same
# workspace served with the event loop disabled answers with the same
# root hash.
"$PROVDBD" "$ws" --event-loop=false & daemon_pid=$!
wait_for_socket "$ws"
root_legacy=$("$PROVDB" remote root-hash "$ws" --as alice)
"$PROVDB" remote verify "$ws" --as alice
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=
if [ "$root_legacy" != "$root_before" ]; then
  echo "FAIL: thread-per-connection fallback served a different root hash"
  exit 1
fi
echo "fallback: --event-loop=false serves the same root (wire parity)"

"$PROVDB" tamper "$ws" --attack data

"$PROVDBD" "$ws" & daemon_pid=$!
wait_for_socket "$ws"
status=0
"$PROVDB" remote verify "$ws" --as alice || status=$?
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
if [ "$status" -ne 3 ]; then
  echo "FAIL: remote verify after tampering exited $status, expected 3"
  exit 1
fi
echo "serve-smoke: tampering reported over the wire (exit 3)"

echo "== shard-smoke (scripted multi-shard provdbd session) =="
# Two tables the routing hash places on different shards of a 2-shard
# workspace: stock -> shard 1, orders -> shard 0.
"$PROVDB" init "$ws2" --shards 2 \
  --table 'stock:sku,qty@int' --table 'orders:id@int,amount@int'
"$PROVDB" participant "$ws2" alice

TEP_DOMAINS=4 "$PROVDBD" "$ws2" --shards 2 & daemon_pid=$!
wait_for_socket "$ws2"
"$PROVDB" remote insert "$ws2" --as alice --table stock --values 'WIDGET-1,100'
"$PROVDB" remote insert "$ws2" --as alice --table orders --values '1,250'
"$PROVDB" remote verify "$ws2" --as alice
stats=$("$PROVDB" remote shard-stats "$ws2" --as alice)
echo "$stats"
if ! echo "$stats" | grep -q '^shard 1:'; then
  echo "FAIL: shard-stats did not report a second shard"
  exit 1
fi

# kill + restart: the published root-of-roots must survive the drain
# and cover both shards identically on the way back up
roots_before=$("$PROVDB" remote root-hash "$ws2" --as alice)
kill -TERM "$daemon_pid"
drain_status=0
wait "$daemon_pid" || drain_status=$?
if [ "$drain_status" -ne 0 ]; then
  echo "FAIL: multi-shard SIGTERM drain exited $drain_status, expected 0"
  exit 1
fi
daemon_pid=
TEP_DOMAINS=4 "$PROVDBD" "$ws2" & daemon_pid=$!
wait_for_socket "$ws2"
roots_after=$("$PROVDB" remote root-hash "$ws2" --as alice)
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=
if [ "$roots_before" != "$roots_after" ]; then
  echo "FAIL: root-of-roots changed across multi-shard drain + restart"
  echo "  before: $roots_before"
  echo "  after:  $roots_after"
  exit 1
fi
echo "shard-smoke: writes landed on both shards, root-of-roots stable \
across restart"

echo "== lineage (scripted daemon lineage session) =="
"$PROVDB" init "$ws3" --table 'stock:sku,qty@int'
"$PROVDB" participant "$ws3" alice
"$PROVDB" insert "$ws3" --as alice --table stock --values 'WIDGET-1,100'
"$PROVDB" insert "$ws3" --as alice --table stock --values 'WIDGET-2,7'

"$PROVDBD" "$ws3" & daemon_pid=$!
wait_for_socket "$ws3"
# Rows 0 and 1 of the only table sit at deterministic forest oids 2
# and 5 (root 0, table 1, then row + two cell leaves each).
agg_out=$("$PROVDB" remote aggregate "$ws3" --as alice --oids 2,5 --value 107)
echo "$agg_out"
agg_oid=$(echo "$agg_out" | sed -n 's/^aggregate object #\([0-9]*\).*/\1/p')
if [ -z "$agg_oid" ]; then
  echo "FAIL: could not extract the aggregate oid"
  exit 1
fi
why=$("$PROVDB" remote lineage "$ws3" --as alice --kind why --oid "$agg_oid")
echo "$why"
if ! echo "$why" | grep -q 'o2\*o5'; then
  echo "FAIL: lineage why did not name both input rows"
  exit 1
fi
sel=$("$PROVDB" remote select "$ws3" --as alice --table stock \
  --where 'qty > 50' --agg count)
echo "$sel"
if ! echo "$sel" | grep -q 'VERIFIED'; then
  echo "FAIL: remote annotated select did not verify its annotation"
  exit 1
fi
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=

# Save a signed annotation locally, tamper with the annotation store,
# and require verify to report the forgery with exit 3.
"$PROVDB" lineage select "$ws3" --table stock --where 'qty > 0' \
  --agg 'sum(qty)' --save audit1 --as alice
"$PROVDB" verify "$ws3"
"$PROVDB" tamper "$ws3" --attack annotation
status=0
"$PROVDB" verify "$ws3" || status=$?
if [ "$status" -ne 3 ]; then
  echo "FAIL: verify after annotation tampering exited $status, expected 3"
  exit 1
fi
echo "lineage: annotation tampering detected (exit 3)"

echo "== proof (scripted daemon proof session) =="
"$PROVDB" init "$ws4" --table 'stock:sku,qty@int'
"$PROVDB" participant "$ws4" alice

"$PROVDBD" "$ws4" & daemon_pid=$!
wait_for_socket "$ws4"
"$PROVDB" remote insert "$ws4" --as alice --table stock --values 'WIDGET-1,100'
"$PROVDB" remote insert "$ws4" --as alice --table stock --values 'WIDGET-2,7'

# O(log n) path: the client fetches a membership proof + checksum
# chain and rechecks the whole hash chain locally against the
# published root it fetched independently.
prove_out=$("$PROVDB" remote prove "$ws4" --as alice --table stock --row 0)
echo "$prove_out"
if ! echo "$prove_out" | grep -q 'VERIFIED'; then
  echo "FAIL: remote prove did not verify a clean cell"
  exit 1
fi
"$PROVDB" remote prove "$ws4" --as alice --table stock --row 1 --col 1 \
  > /dev/null

# proof-path counters must be visible remotely (second prove above
# also exercises the single-cell form)
pstats=$("$PROVDB" remote stats "$ws4" --as alice)
echo "$pstats"
if ! echo "$pstats" | grep -q 'proofs_served=[1-9]'; then
  echo "FAIL: remote stats did not count the served proofs"
  exit 1
fi

# sampled continuous audit: seed-reproducible, clean history -> exit 0
"$PROVDB" remote audit "$ws4" --as alice --sample 0.5 --seed check-sh

kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=

"$PROVDB" tamper "$ws4" --attack data

"$PROVDBD" "$ws4" & daemon_pid=$!
wait_for_socket "$ws4"
status=0
"$PROVDB" remote prove "$ws4" --as alice --table stock --row 0 || status=$?
if [ "$status" -ne 3 ]; then
  echo "FAIL: remote prove after tampering exited $status, expected 3"
  exit 1
fi
status=0
"$PROVDB" remote audit "$ws4" --as alice --sample 1.0 --seed check-sh \
  || status=$?
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=
if [ "$status" -ne 3 ]; then
  echo "FAIL: sampled audit after tampering exited $status, expected 3"
  exit 1
fi
echo "proof: chain mismatch and sampled audit both reported (exit 3)"

echo "check: OK"
