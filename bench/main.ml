(* Benchmark harness.

   Two layers:
   1. Bechamel micro-benchmarks — one [Test.make] per primitive cost
      centre (hashing, signing, verification, end-to-end checksummed
      cell update).
   2. The figure/table harness — regenerates every table and figure of
      the paper's Section 5 as CSV series (see DESIGN.md's
      per-experiment index).

   Usage:
     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig7      # one experiment
     TEP_SCALE=full dune exec bench/main.exe   # paper-size workloads *)

open Tep_store
open Tep_core
open Tep_workload

(* ------------------------------------------------------------------ *)
(* JSON output                                                         *)
(* ------------------------------------------------------------------ *)

(* BENCH_*.json trajectory files are written next to the invocation
   cwd so successive runs can be diffed / committed.  Disabled with
   TEP_BENCH_JSON=0 (the dune bench-smoke alias does this: rule
   actions run inside _build, where stray outputs are unwelcome). *)
let json_enabled () =
  match Sys.getenv_opt "TEP_BENCH_JSON" with Some "0" -> false | _ -> true

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json path contents =
  if json_enabled () then begin
    let oc = open_out path in
    output_string oc contents;
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Each stateful benchmark builds its own environment, engine and
   counters inside its own closure: nothing is shared between tests,
   so Bechamel's interleaved runs cannot contaminate one another
   (previously one engine + one counter were threaded through the
   whole suite, so e.g. rsa-sign measurements ran against a store
   already mutated by engine-update-cell iterations). *)

let crypto_micro_tests cfg =
  let open Bechamel in
  let payload = String.make 256 'x' in
  let payload_4k = String.make 4096 'x' in
  let signer =
    let env = Scenario.make_env ~seed:"bench-micro-sign" () in
    Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
      ~name:"bench-sign" env.Scenario.drbg
  in
  let verifier_pk, verifier_sig =
    let env = Scenario.make_env ~seed:"bench-micro-verify" () in
    let p =
      Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
        ~name:"bench-verify" env.Scenario.drbg
    in
    (Participant.public_key p, Participant.sign p payload)
  in
  let drbg = Tep_crypto.Drbg.create ~seed:"bench-drbg" in
  [
    Test.make ~name:"sha1-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Sha1.digest payload)));
    (* 64 compression rounds per digest — isolates the block-loop cost
       from the init/final overhead the 256B point is dominated by *)
    Test.make ~name:"sha1-4KiB"
      (Staged.stage (fun () -> ignore (Tep_crypto.Sha1.digest payload_4k)));
    Test.make ~name:"sha256-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Sha256.digest payload)));
    Test.make ~name:"md5-256B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Md5.digest payload)));
    Test.make ~name:"hmac-sha256"
      (Staged.stage (fun () ->
           ignore
             (Tep_crypto.Hmac.mac ~algo:Tep_crypto.Digest_algo.SHA256
                ~key:"key" payload)));
    Test.make ~name:"rsa-sign"
      (Staged.stage (fun () -> ignore (Participant.sign signer payload)));
    Test.make ~name:"rsa-verify"
      (Staged.stage (fun () ->
           ignore
             (Tep_crypto.Rsa.verify ~algo:Tep_crypto.Digest_algo.SHA256
                verifier_pk ~msg:payload ~signature:verifier_sig)));
    Test.make ~name:"drbg-32B"
      (Staged.stage (fun () -> ignore (Tep_crypto.Drbg.generate drbg 32)));
  ]

(* Windowed vs binary Montgomery ladder on a full-width 2048-bit
   exponentiation — the tentpole modpow comparison (the ISSUE's
   acceptance bar: windowed must beat the old binary ladder here). *)
let modpow_micro_tests () =
  let open Bechamel in
  let open Tep_bignum in
  let drbg = Tep_crypto.Drbg.create ~seed:"bench-modpow" in
  let rand_bits bits =
    let n = Nat.of_bytes_be (Tep_crypto.Drbg.generate drbg (bits / 8)) in
    Nat.rem n (Nat.shift_left Nat.one (bits - 1))
  in
  let m =
    let m = Nat.add (Nat.shift_left Nat.one 2047) (rand_bits 2048) in
    if Nat.is_even m then Nat.add m Nat.one else m
  in
  let ctx = Zmod.Montgomery.create m in
  let b = rand_bits 2048 in
  let e = Nat.add (Nat.shift_left Nat.one 2047) (rand_bits 2048) in
  [
    Test.make ~name:"modpow-2048-windowed"
      (Staged.stage (fun () -> ignore (Zmod.Montgomery.pow ctx b e)));
    Test.make ~name:"modpow-2048-binary"
      (Staged.stage (fun () -> ignore (Zmod.Montgomery.pow_binary ctx b e)));
  ]

let engine_micro_tests () =
  let open Bechamel in
  [
    Test.make ~name:"engine-update-cell"
      (* All state lives behind [lazy] so it is created when this
         test first runs, not when another test in the suite does. *)
      (let state =
         lazy
           (let env = Scenario.make_env ~seed:"bench-micro-engine" () in
            let cfg = Experiments.config_of_env () in
            let p =
              Participant.create ~bits:cfg.Experiments.rsa_bits
                ~ca:env.Scenario.ca ~name:"bench-engine" env.Scenario.drbg
            in
            Participant.Directory.register env.Scenario.directory p;
            let db =
              Synth.build_database ~seed:"bench-micro-db"
                [ { Synth.name = "t1"; attrs = 8; rows = 400 } ]
            in
            let eng = Engine.create ~directory:env.Scenario.directory db in
            (eng, p, ref 0))
       in
       Staged.stage (fun () ->
           let eng, p, counter = Lazy.force state in
           incr counter;
           ignore
             (Engine.update_cell eng p ~table:"t1" ~row:(!counter mod 400)
                ~col:(!counter mod 8)
                (Value.Int !counter))));
    (* The pooled write path.  A singleton commit never fans out (one
       record signs on the caller), so each iteration is a complex op
       staging four updates — the smallest batch where the signing
       stage actually spreads across the 4-domain pool. *)
    Test.make ~name:"engine-update-cell-pooled"
      (let state =
         lazy
           (let env =
              Scenario.make_env ~seed:"bench-micro-engine-pooled" ()
            in
            let cfg = Experiments.config_of_env () in
            let p =
              Participant.create ~bits:cfg.Experiments.rsa_bits
                ~ca:env.Scenario.ca ~name:"bench-engine" env.Scenario.drbg
            in
            Participant.Directory.register env.Scenario.directory p;
            let db =
              Synth.build_database ~seed:"bench-micro-db-pooled"
                [ { Synth.name = "t1"; attrs = 8; rows = 400 } ]
            in
            let pool = Tep_parallel.Pool.create ~domains:4 () in
            let eng =
              Engine.create ~pool ~directory:env.Scenario.directory db
            in
            (eng, p, ref 0))
       in
       Staged.stage (fun () ->
           let eng, p, counter = Lazy.force state in
           incr counter;
           let base = !counter * 4 in
           match
             Engine.complex_op eng p (fun () ->
                 let rec go i =
                   if i >= 4 then Ok ()
                   else
                     match
                       Engine.update_cell eng p ~table:"t1"
                         ~row:((base + i) mod 400) ~col:((base + i) mod 8)
                         (Value.Int (base + i))
                     with
                     | Ok () -> go (i + 1)
                     | Error _ as e -> e
                 in
                 go 0)
           with
           | Ok _ -> ()
           | Error e -> failwith ("pooled bench: " ^ e)));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "## micro — Bechamel micro-benchmarks (ns per run)";
  let cfg = Experiments.config_of_env () in
  let instance = Toolkit.Instance.monotonic_clock in
  let bench_cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None ()
  in
  let suite =
    Test.make_grouped ~name:"tep"
      (crypto_micro_tests cfg @ modpow_micro_tests () @ engine_micro_tests ())
  in
  let raw = Benchmark.all bench_cfg [ instance ] suite in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name est acc -> (name, est) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-32s %16s\n" "benchmark" "ns/op";
  let measured =
    List.filter_map
      (fun (name, est) ->
        match Analyze.OLS.estimates est with
        | Some (e :: _) ->
            Printf.printf "%-32s %16.1f\n" name e;
            Some (name, e)
        | _ ->
            Printf.printf "%-32s %16s\n" name "n/a";
            None)
      rows
  in
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": %g,\n  \"rsa_bits\": %d,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n  \"shards\": 1,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Buffer.add_string buf
        (Printf.sprintf "    { \"name\": \"%s\", \"ns_per_op\": %.1f }%s\n"
           (json_escape name) ns
           (if i = List.length measured - 1 then "" else ",")))
    measured;
  Buffer.add_string buf "  ]\n}";
  write_json "BENCH_micro.json" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Multicore verification scaling                                      *)
(* ------------------------------------------------------------------ *)

(* Builds a provenance store of at least ~5000 records (default
   scale; ~300 under TEP_SCALE=smoke), then times
   [Verifier.verify_records] with domain pools of size 1/2/4/8 and
   checks every parallel report — including one over a tampered
   record list — is byte-identical to the sequential run.  Exits
   non-zero on any disagreement, so this doubles as a correctness
   gate (the @bench-smoke alias). *)
let run_parallel () =
  let cfg = Experiments.config_of_env () in
  Printf.printf "## parallel — verify_records scaling across domain pools\n";
  let target_records =
    if cfg.Experiments.scale <= 0.02 then 300
    else max 5000 (int_of_float (50_000. *. cfg.Experiments.scale))
  in
  let env = Scenario.make_env ~seed:cfg.Experiments.seed () in
  let p =
    Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
      ~name:"bench-par" env.Scenario.drbg
  in
  Participant.Directory.register env.Scenario.directory p;
  let db =
    Synth.build_database ~seed:(cfg.Experiments.seed ^ "-par")
      [ { Synth.name = "t1"; attrs = 8; rows = 200 } ]
  in
  let eng = Engine.create ~directory:env.Scenario.directory db in
  let i = ref 0 in
  while Provstore.record_count (Engine.provstore eng) < target_records do
    (match
       Engine.update_cell eng p ~table:"t1" ~row:(!i mod 200) ~col:(!i mod 8)
         (Value.Int !i)
     with
    | Ok () -> ()
    | Error e -> failwith ("parallel bench: update failed: " ^ e));
    incr i
  done;
  let records = Provstore.all (Engine.provstore eng) in
  let nrecords = List.length records in
  let algo = Engine.algo eng in
  let directory = env.Scenario.directory in
  let tampered = Tamper.modify_output_hash ~idx:(nrecords / 2) records in
  let render r = Format.asprintf "%a" Verifier.pp_report r in
  let verify ?pool rs = Verifier.verify_records ?pool ~algo ~directory rs in
  let seq_report = verify records in
  let seq_tampered = verify tampered in
  assert (Verifier.ok seq_report);
  assert (not (Verifier.ok seq_tampered));
  let time_avg f =
    let total = ref 0. in
    for _ = 1 to cfg.Experiments.runs do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      total := !total +. (Unix.gettimeofday () -. t0)
    done;
    !total /. float_of_int cfg.Experiments.runs
  in
  let host_cores = Domain.recommended_domain_count () in
  Printf.printf "records=%d host_cores=%d runs=%d\n" nrecords host_cores
    cfg.Experiments.runs;
  Printf.printf "domains,seconds,records_per_s,speedup_vs_1,identical\n";
  let base_1dom = ref None in
  let all_identical = ref true in
  let points =
    List.map
      (fun domains ->
        let pool = Tep_parallel.Pool.create ~domains () in
        let report = verify ~pool records in
        let tampered_report = verify ~pool tampered in
        let identical =
          report = seq_report
          && render report = render seq_report
          && tampered_report = seq_tampered
          && render tampered_report = render seq_tampered
        in
        if not identical then begin
          all_identical := false;
          Printf.eprintf
            "FAIL: %d-domain report differs from sequential run\n" domains
        end;
        let seconds = time_avg (fun () -> verify ~pool records) in
        Tep_parallel.Pool.shutdown pool;
        if domains = 1 then base_1dom := Some seconds;
        let speedup =
          match !base_1dom with Some b when b > 0. -> b /. seconds | _ -> 1.
        in
        let rps = float_of_int nrecords /. seconds in
        Printf.printf "%d,%.4f,%.0f,%.2f,%b\n" domains seconds rps speedup
          identical;
        (domains, seconds, rps, speedup, identical))
      [ 1; 2; 4; 8 ]
  in
  print_newline ();
  (* Commit-signing sweep: the same domain ladder over the WRITE path.
     Each point rebuilds a bit-identical engine from a fixed seed,
     drives complex-op commits whose signatures fan out across the
     pool, and checks the emitted record stream and Merkle root are
     byte-identical to the 1-domain (sequential) run — the pipeline's
     determinism contract, measured rather than assumed. *)
  let sign_commits = if cfg.Experiments.scale <= 0.02 then 8 else 32 in
  let sign_cells = 8 in
  let run_sign domains =
    let pool =
      if domains > 1 then Some (Tep_parallel.Pool.create ~domains ())
      else None
    in
    let env =
      Scenario.make_env ~seed:(cfg.Experiments.seed ^ "-sign") ()
    in
    let p =
      Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
        ~name:"bench-sign-par" env.Scenario.drbg
    in
    Participant.Directory.register env.Scenario.directory p;
    let db =
      Synth.build_database ~seed:(cfg.Experiments.seed ^ "-sign-db")
        [ { Synth.name = "t1"; attrs = 8; rows = 100 } ]
    in
    let eng = Engine.create ?pool ~directory:env.Scenario.directory db in
    let t0 = Unix.gettimeofday () in
    for c = 0 to sign_commits - 1 do
      match
        Engine.complex_op eng p (fun () ->
            let rec go i =
              if i >= sign_cells then Ok ()
              else
                match
                  Engine.update_cell eng p ~table:"t1"
                    ~row:(((c * sign_cells) + i) mod 100)
                    ~col:(i mod 8)
                    (Value.Int ((c * 1000) + i))
                with
                | Ok () -> go (i + 1)
                | Error _ as e -> e
            in
            go 0)
      with
      | Ok _ -> ()
      | Error e -> failwith ("sign bench: commit failed: " ^ e)
    done;
    let seconds = Unix.gettimeofday () -. t0 in
    let recs = Provstore.all (Engine.provstore eng) in
    let fp =
      String.concat "\n" (List.map Record.encoded recs)
      ^ "\n" ^ Engine.root_hash eng
    in
    let m = Engine.total_metrics eng in
    (match pool with Some pl -> Tep_parallel.Pool.shutdown pl | None -> ());
    (List.length recs, seconds, fp, m.Engine.sign_s, m.Engine.sign_cpu_s)
  in
  Printf.printf
    "commit signing: %d complex ops x %d cell updates per point\n"
    sign_commits sign_cells;
  Printf.printf "domains,seconds,records_per_s,speedup_vs_1,identical\n";
  let sign_base = ref None in
  let sign_fp = ref "" in
  let sign_points =
    List.map
      (fun domains ->
        let nrec, seconds, fp, sign_s, sign_cpu_s = run_sign domains in
        if domains = 1 then begin
          sign_base := Some seconds;
          sign_fp := fp
        end;
        let identical = fp = !sign_fp in
        if not identical then begin
          all_identical := false;
          Printf.eprintf
            "FAIL: %d-domain commit stream differs from sequential run\n"
            domains
        end;
        let speedup =
          match !sign_base with
          | Some b when b > 0. -> b /. seconds
          | _ -> 1.
        in
        let rps = float_of_int nrec /. seconds in
        Printf.printf "%d,%.4f,%.0f,%.2f,%b\n" domains seconds rps speedup
          identical;
        (domains, seconds, rps, speedup, sign_s, sign_cpu_s, identical))
      [ 1; 2; 4; 8 ]
  in
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"parallel\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": %g,\n  \"rsa_bits\": %d,\n  \"records\": %d,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits nrecords);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n  \"runs_per_point\": %d,\n"
       host_cores cfg.Experiments.runs);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_reports_identical\": %b,\n" !all_identical);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i (domains, seconds, rps, speedup, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"shards\": 1, \"seconds\": %.6f, \
            \"records_per_s\": %.1f, \"speedup_vs_1\": %.3f, \
            \"report_identical\": %b }%s\n"
           domains seconds rps speedup identical
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"sign_commits\": %d,\n  \"sign_cells\": %d,\n"
       sign_commits sign_cells);
  Buffer.add_string buf "  \"sign_points\": [\n";
  List.iteri
    (fun i (domains, seconds, rps, speedup, sign_s, sign_cpu_s, identical) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"domains\": %d, \"shards\": 1, \"seconds\": %.6f, \
            \"records_per_s\": %.1f, \"speedup_vs_1\": %.3f, \
            \"sign_wall_s\": %.6f, \"sign_cpu_s\": %.6f, \
            \"stream_identical\": %b }%s\n"
           domains seconds rps speedup sign_s sign_cpu_s identical
           (if i = List.length sign_points - 1 then "" else ",")))
    sign_points;
  Buffer.add_string buf "  ]\n}";
  write_json "BENCH_parallel.json" (Buffer.contents buf);
  if not !all_identical then exit 1

(* ------------------------------------------------------------------ *)
(* Service throughput: concurrent clients over loopback and a socket   *)
(* ------------------------------------------------------------------ *)

(* Two phases.  First a scripted correctness gate over the loopback
   transport: submit → query → verify, assert the wire report renders
   byte-identically to the in-process verifier, tamper with a cell
   behind the engine's back and assert the tampering is reported over
   the wire (exit 1 if not — the serve-smoke alias relies on this).
   Then a throughput measurement: N client threads each stream M
   insert requests through one server, once over the in-process
   loopback transport and once over a real Unix-domain socket. *)
let run_serve () =
  let cfg = Experiments.config_of_env () in
  Printf.printf "## serve — provdbd wire protocol: scripted gate + throughput\n";
  let ok = function Ok v -> v | Error e -> failwith ("serve bench: " ^ e) in
  let module Server = Tep_server.Server in
  let module Client = Tep_client.Client in
  let module Message = Tep_wire.Message in
  let make_service ?io_mode ?max_connections seed =
    let env = Scenario.make_env ~seed () in
    (* like every other experiment, the participant key honours the
       configured rsa_bits (Scenario.participant would pin 1024) *)
    let alice =
      Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
        ~name:"alice" env.Scenario.drbg
    in
    Participant.Directory.register env.Scenario.directory alice;
    let db = Database.create ~name:"serve" in
    ignore
      (Database.create_table db ~name:"t1" (Schema.all_int [ "a"; "b" ]));
    let engine = Engine.create ~directory:env.Scenario.directory db in
    let server =
      Server.create ?io_mode ?max_connections
        ~drbg:(Tep_crypto.Drbg.create ~seed:(seed ^ "-srv"))
        ~participants:[ ("alice", alice) ]
        engine
    in
    (engine, alice, server)
  in
  (* -- scripted gate ------------------------------------------------ *)
  let engine, alice, server = make_service (cfg.Experiments.seed ^ "-gate") in
  let c = Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"gate-cli") server in
  ok (Client.authenticate c alice);
  let row, _ = ok (Client.insert c ~table:"t1" [| Value.Int 1; Value.Int 2 |]) in
  let row_oid =
    match Tep_tree.Tree_view.row_oid (Engine.mapping engine) "t1" row with
    | Some o -> o
    | None -> failwith "serve bench: no oid for inserted row"
  in
  let queried = ok (Client.query c ~oid:row_oid ()) in
  if queried = [] then failwith "serve bench: empty provenance for insert";
  let local_report () =
    Format.asprintf "%a" Verifier.pp_report
      (ok (Engine.verify_object engine (Engine.root_oid engine)))
  in
  let report, _ = ok (Client.verify c ()) in
  let identical_clean = Message.render_report report = local_report () in
  if not (Message.report_ok report && identical_clean) then begin
    Printf.eprintf "FAIL: clean wire report differs from in-process verifier\n";
    exit 1
  end;
  let module Forest = Tep_tree.Forest in
  let forest = Engine.forest engine in
  (match
     List.concat_map (Forest.children forest) (Forest.roots forest)
     |> List.concat_map (Forest.children forest)
     |> List.concat_map (Forest.children forest)
   with
  | cell :: _ -> ignore (Forest.update forest cell (Value.Text "TAMPERED"))
  | [] -> failwith "serve bench: no cell to tamper with");
  let tampered, _ = ok (Client.verify c ()) in
  let tamper_detected = not (Message.report_ok tampered) in
  let identical_tampered = Message.render_report tampered = local_report () in
  Client.close c;
  if not tamper_detected then begin
    Printf.eprintf "FAIL: tampering not reported over the wire\n";
    exit 1
  end;
  if not identical_tampered then begin
    Printf.eprintf "FAIL: tamper wire report differs from in-process verifier\n";
    exit 1
  end;
  Printf.printf "gate: reports byte-identical, tampering detected over the wire\n";
  (* -- throughput sweep --------------------------------------------- *)
  (* N pipelined client threads per point, a fresh service per point
     (so table growth in one point cannot skew the next).  Each client
     keeps up to [window] submits in flight on its connection; per-
     request latency is send-to-collect, so it includes queueing. *)
  let sweep = [ 1; 2; 4; 8 ] in
  let requests =
    if cfg.Experiments.scale <= 0.02 then 25
    else max 50 (int_of_float (500. *. cfg.Experiments.scale))
  in
  let window = 8 in
  let percentile p lats =
    match lats with
    | [] -> 0.
    | _ ->
        let a = Array.of_list lats in
        Array.sort compare a;
        let n = Array.length a in
        let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) idx))
  in
  let run_point ?(quiet = false) transport_name clients participant connect =
    let merge_lock = Mutex.create () in
    let all_lats = ref [] in
    let errors = ref 0 in
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "%s\n" m;
          Mutex.lock merge_lock;
          incr errors;
          Mutex.unlock merge_lock)
        fmt
    in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init clients (fun ci ->
          Thread.create
            (fun () ->
              match connect ci with
              | Error e -> fail "client %d: connect: %s" ci e
              | Ok c -> (
                  match Client.authenticate c participant with
                  | Error e ->
                      fail "client %d: auth: %s" ci e;
                      Client.close c
                  | Ok () ->
                      let lats = ref [] in
                      let inflight = Queue.create () in
                      let drain () =
                        let cid, sent = Queue.pop inflight in
                        match Client.collect_submitted c cid with
                        | Ok _ ->
                            lats := (Unix.gettimeofday () -. sent) :: !lats
                        | Error e -> fail "client %d: collect: %s" ci e
                      in
                      for i = 0 to requests - 1 do
                        (match
                           Client.insert_async c ~table:"t1"
                             [| Value.Int ci; Value.Int i |]
                         with
                        | Ok cid ->
                            Queue.push (cid, Unix.gettimeofday ()) inflight
                        | Error e -> fail "client %d: submit: %s" ci e);
                        if Queue.length inflight >= window then drain ()
                      done;
                      while not (Queue.is_empty inflight) do
                        drain ()
                      done;
                      Client.close c;
                      Mutex.lock merge_lock;
                      all_lats := List.rev_append !lats !all_lats;
                      Mutex.unlock merge_lock))
            ())
    in
    List.iter Thread.join threads;
    let seconds = Unix.gettimeofday () -. t0 in
    if !errors > 0 then begin
      Printf.eprintf "FAIL: %d request errors over %s (%d clients)\n" !errors
        transport_name clients;
      exit 1
    end;
    let total = clients * requests in
    let rps = float_of_int total /. seconds in
    let p50 = 1000. *. percentile 50. !all_lats in
    let p95 = 1000. *. percentile 95. !all_lats in
    if not quiet then
      Printf.printf "%s,%d,%d,%.4f,%.0f,%.2f,%.2f\n" transport_name clients
        total seconds rps p50 p95;
    (transport_name, clients, seconds, rps, p50, p95)
  in
  (* sub-second points are bimodal under scheduler noise (the committed
     2-clients-slower-than-1 anomaly was exactly such a roll — see
     EXPERIMENTS.md), so each sweep point records the median-throughput
     trial of cfg.runs fresh-service trials rather than a single one *)
  let median_trials mk =
    let trials = List.init (max 1 cfg.Experiments.runs) (fun _ -> mk ()) in
    let sorted =
      List.sort
        (fun ((_, _, _, r1, _, _), _) ((_, _, _, r2, _, _), _) ->
          compare r1 r2)
        trials
    in
    let ((name, clients, seconds, rps, p50, p95), _) as chosen =
      List.nth sorted (List.length sorted / 2)
    in
    Printf.printf "%s,%d,%d,%.4f,%.0f,%.2f,%.2f\n" name clients
      (clients * requests) seconds rps p50 p95;
    chosen
  in
  Printf.printf
    "transport,clients,total_requests,seconds,requests_per_s,p50_ms,p95_ms\n";
  (* group-commit amortization for a finished point: how many ops the
     signer averaged per signature.  This is the whole story of the
     low-client-count variance (see EXPERIMENTS.md): a point that
     catches the pipelined window in one batch signs ~window ops per
     RSA operation, one that keeps electing leaders over a near-empty
     queue pays a signature for every op or two. *)
  let ops_per_batch server =
    let s = Server.batch_stats server in
    float_of_int s.Server.ops /. float_of_int (max 1 s.Server.batches)
  in
  (* loopback: same codec path, no sockets *)
  let loopback_points =
    List.map
      (fun clients ->
        median_trials (fun () ->
            let _, alice, server =
              make_service
                (Printf.sprintf "%s-loop-%d" cfg.Experiments.seed clients)
            in
            let point =
              run_point ~quiet:true "loopback" clients alice (fun ci ->
                  Ok
                    (Client.loopback
                       ~drbg:
                         (Tep_crypto.Drbg.create
                            ~seed:(Printf.sprintf "cli-%d-%d" clients ci))
                       server))
            in
            (point, ops_per_batch server)))
      sweep
  in
  (* real Unix-domain socket, once per I/O mode: the event-loop
     reactor (the provdbd default) and the thread-per-connection
     fallback.  Same workload either way, so the pair is a direct A/B.
     This is where the old 2-clients-slower-than-1 convoy anomaly
     (EXPERIMENTS.md) shows up under "threaded" and disappears under
     "event": a threaded follower blocks in the batcher's condition
     wait and nobody reads its socket, so its pipelined window
     stalls; the reactor keeps reading while workers batch. *)
  (* The daemon the sweep models is a separate process, so the socket
     points fork the server into a child: under OCaml 5 systhreads all
     share their domain's runtime lock, and an in-process server would
     serialize against the very client threads that are loading it
     (which taxes the reactor's extra wakeup hops far more than the
     thread-per-connection path — the A/B would measure the bench
     harness, not the server).  The child also gives /proc-exact
     thread censuses for the scaling phase below. *)
  let with_forked_server ?max_connections ~io_mode seed body =
    let _, alice, server = make_service ?max_connections ~io_mode seed in
    let path = Filename.temp_file "tep_serve_bench" ".sock" in
    Sys.remove path;
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        (* child: serve until the parent kills us; SIGKILL also keeps
           the inherited stdio buffers from double-flushing *)
        let stop = Stdlib.Atomic.make false in
        (try Server.serve_unix server ~path ~stop with _ -> ());
        Stdlib.exit 0
    | pid ->
        let finally () =
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          try Sys.remove path with Sys_error _ -> ()
        in
        Fun.protect ~finally (fun () ->
            let deadline = Unix.gettimeofday () +. 10. in
            while
              (not (Sys.file_exists path)) && Unix.gettimeofday () < deadline
            do
              Thread.delay 0.02
            done;
            if not (Sys.file_exists path) then
              failwith "serve bench: forked server socket never appeared";
            body ~alice ~path ~pid)
  in
  (* group-commit amortization of a forked point, via the wire: Pong
     carries the server's batch/op counters *)
  let remote_ops_per_batch ~alice ~path ~seed =
    let control =
      ok (Client.connect_unix ~drbg:(Tep_crypto.Drbg.create ~seed) path)
    in
    ok (Client.authenticate control alice);
    let h = ok (Client.ping control) in
    Client.close control;
    float_of_int h.Client.h_ops /. float_of_int (max 1 h.Client.h_batches)
  in
  let socket_points_for ~io_mode ~tag =
    List.map
      (fun clients ->
        median_trials (fun () ->
            with_forked_server ~io_mode
              (Printf.sprintf "%s-sock-%s-%d" cfg.Experiments.seed tag clients)
              (fun ~alice ~path ~pid:_ ->
                let point =
                  run_point ~quiet:true
                    (Printf.sprintf "unix-socket[%s]" tag)
                    clients alice
                    (fun ci ->
                      Client.connect_unix
                        ~drbg:
                          (Tep_crypto.Drbg.create
                             ~seed:
                               (Printf.sprintf "scli-%s-%d-%d" tag clients ci))
                        path)
                in
                let opb =
                  remote_ops_per_batch ~alice ~path
                    ~seed:(Printf.sprintf "sctl-%s-%d" tag clients)
                in
                (point, opb))))
      sweep
  in
  let socket_event_points =
    (* the provdbd default worker count; more workers than this just
       queue up as group-commit followers without adding throughput *)
    socket_points_for ~io_mode:(Server.Event { workers = 4 }) ~tag:"event"
  in
  let socket_threaded_points =
    socket_points_for ~io_mode:Server.Threaded ~tag:"threaded"
  in
  (match
     ( List.find_opt (fun ((_, c, _, _, _, _), _) -> c = 8) socket_event_points,
       List.find_opt
         (fun ((_, c, _, _, _, _), _) -> c = 8)
         socket_threaded_points )
   with
  | Some ((_, _, _, ev, _, _), _), Some ((_, _, _, th, _, _), _) ->
      Printf.printf
        "8-client unix-socket: event %.0f req/s vs threaded %.0f req/s \
         (%+.0f%%)\n"
        ev th
        ((ev -. th) /. th *. 100.)
  | _ -> ());
  (* -- connection scaling: mostly-idle fleets + 8 active clients ---- *)
  (* The server runs in a forked child so (a) its fd table stays dense
     and small while the parent hoards the idle fleet's fds, and (b)
     /proc/<pid>/status gives an exact census of its threads — the
     point of the exercise: under the event loop, a thousand held
     connections must not mean a thousand server threads.  The active
     clients connect *first* so their fds sit in the child's select
     tier even when the idle fleet spills past FD_SETSIZE into the
     reactor's overflow-polling tier. *)
  let scaling_idle =
    if cfg.Experiments.scale <= 0.02 then [ 64 ] else [ 64; 256; 1024 ]
  in
  let scaling_active = 8 in
  let proc_threads pid =
    match open_in (Printf.sprintf "/proc/%d/status" pid) with
    | exception Sys_error _ -> -1
    | ic ->
        let rec scan () =
          match input_line ic with
          | line ->
              if String.length line > 8 && String.sub line 0 8 = "Threads:"
              then
                int_of_string
                  (String.trim (String.sub line 8 (String.length line - 8)))
              else scan ()
          | exception End_of_file -> -1
        in
        let n = try scan () with _ -> -1 in
        close_in ic;
        n
  in
  let run_scaling idle_count =
    with_forked_server
      ~io_mode:(Server.Event { workers = 4 })
      ~max_connections:(idle_count + scaling_active + 8)
      (Printf.sprintf "%s-scale-%d" cfg.Experiments.seed idle_count)
      (fun ~alice ~path ~pid ->
            let actives =
              Array.init scaling_active (fun ci ->
                  ok
                    (Client.connect_unix
                       ~drbg:
                         (Tep_crypto.Drbg.create
                            ~seed:(Printf.sprintf "scale-%d-%d" idle_count ci))
                       path))
            in
            let control =
              ok
                (Client.connect_unix
                   ~drbg:
                     (Tep_crypto.Drbg.create
                        ~seed:(Printf.sprintf "scale-ctl-%d" idle_count))
                   path)
            in
            ok (Client.authenticate control alice);
            let idles =
              Array.init idle_count (fun _ ->
                  let rec go n =
                    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                    match Unix.connect fd (Unix.ADDR_UNIX path) with
                    | () -> fd
                    | exception Unix.Unix_error _ when n > 0 ->
                        (try Unix.close fd with Unix.Unix_error _ -> ());
                        Thread.delay 0.01;
                        go (n - 1)
                  in
                  go 100)
            in
            (* wait until the reactor has accepted the whole fleet *)
            let expected = idle_count + scaling_active + 1 in
            let held = ref 0 in
            let tries = ref 200 in
            while !held < expected && !tries > 0 do
              let h = ok (Client.ping control) in
              held := h.Client.active;
              if !held < expected then Thread.delay 0.05;
              decr tries
            done;
            let threads = proc_threads pid in
            let point =
              run_point
                (Printf.sprintf "unix-socket[scale,%d idle]" idle_count)
                scaling_active alice
                (fun ci -> Ok actives.(ci))
            in
            Array.iter
              (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
              idles;
            Client.close control;
            (idle_count, !held, threads, point))
  in
  Printf.printf "phase,idle_conns,held_connections,server_threads\n";
  let scaling_points =
    List.map
      (fun idle ->
        let (idle_count, held, threads, _) as sp = run_scaling idle in
        Printf.printf "scaling,%d,%d,%d\n" idle_count held threads;
        if held < idle_count + scaling_active then begin
          Printf.eprintf "FAIL: scaling point %d held only %d connections\n"
            idle_count held;
          exit 1
        end;
        if threads >= 0 && threads > 64 then begin
          Printf.eprintf
            "FAIL: event-loop server used %d threads with %d idle conns\n"
            threads idle_count;
          exit 1
        end;
        sp)
      scaling_idle
  in
  (* -- degraded mode: offered load at 2x the admission limit -------- *)
  (* 8 client threads race the batcher against a queue bound of 4
     ops: roughly twice the admitted concurrency is always knocking.
     With shedding on, the excess is refused with the typed overload
     error and the completed requests keep a bounded p95; with
     shedding off (the limit lifted), the same burst is absorbed by
     queueing instead.  The pair quantifies what admission control
     buys (latency) and what it costs (completed throughput). *)
  let deg_clients = 8 in
  let deg_limit = 4 in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let run_degraded shedding =
    let _, alice, server =
      make_service
        (Printf.sprintf "%s-deg-%b" cfg.Experiments.seed shedding)
    in
    Server.set_admission
      ~max_queue_ops:(if shedding then deg_limit else max_int)
      server;
    let merge_lock = Mutex.create () in
    let all_lats = ref [] in
    let completed = ref 0 and shed = ref 0 and hard_errors = ref 0 in
    let t0 = Unix.gettimeofday () in
    let threads =
      List.init deg_clients (fun ci ->
          Thread.create
            (fun () ->
              let c =
                Client.loopback
                  ~drbg:
                    (Tep_crypto.Drbg.create
                       ~seed:(Printf.sprintf "deg-%b-%d" shedding ci))
                  server
              in
              (* the bench measures the server's shedding, not the
                 client's give-up policy: keep the breaker out of it *)
              Client.set_breaker ~threshold:max_int c;
              match Client.authenticate c alice with
              | Error e -> failwith ("degraded: auth: " ^ e)
              | Ok () ->
                  let lats = ref [] in
                  let n_ok = ref 0 and n_shed = ref 0 and n_err = ref 0 in
                  let inflight = Queue.create () in
                  let drain () =
                    let cid, sent = Queue.pop inflight in
                    match Client.collect_submitted c cid with
                    | Ok _ ->
                        lats := (Unix.gettimeofday () -. sent) :: !lats;
                        incr n_ok
                    | Error e ->
                        if contains e "overloaded" then incr n_shed
                        else incr n_err
                  in
                  for i = 0 to requests - 1 do
                    (match
                       Client.insert_async c ~table:"t1"
                         [| Value.Int ci; Value.Int i |]
                     with
                    | Ok cid -> Queue.push (cid, Unix.gettimeofday ()) inflight
                    | Error _ -> incr n_err);
                    if Queue.length inflight >= window then drain ()
                  done;
                  while not (Queue.is_empty inflight) do
                    drain ()
                  done;
                  Client.close c;
                  Mutex.lock merge_lock;
                  all_lats := List.rev_append !lats !all_lats;
                  completed := !completed + !n_ok;
                  shed := !shed + !n_shed;
                  hard_errors := !hard_errors + !n_err;
                  Mutex.unlock merge_lock)
            ())
    in
    List.iter Thread.join threads;
    let seconds = Unix.gettimeofday () -. t0 in
    if !hard_errors > 0 then begin
      Printf.eprintf "FAIL: %d non-overload errors in degraded mode\n"
        !hard_errors;
      exit 1
    end;
    let offered = deg_clients * requests in
    if (not shedding) && !completed <> offered then begin
      Printf.eprintf "FAIL: unlimited admission lost %d of %d requests\n"
        (offered - !completed) offered;
      exit 1
    end;
    let rps = float_of_int !completed /. seconds in
    let p50 = 1000. *. percentile 50. !all_lats in
    let p95 = 1000. *. percentile 95. !all_lats in
    Printf.printf "degraded,shedding=%s,%d,%d,%d,%.4f,%.0f,%.2f,%.2f\n"
      (if shedding then "on" else "off")
      offered !completed !shed seconds rps p50 p95;
    (shedding, offered, !completed, !shed, seconds, rps, p50, p95)
  in
  Printf.printf
    "phase,shedding,offered,completed,shed,seconds,completed_per_s,p50_ms,p95_ms\n";
  (* whether the burst overruns the 4-op queue before the batcher
     drains it is a race the clients occasionally lose outright; a
     run that shed nothing measured the scheduler, not admission
     control, so roll it again (bounded) rather than fail on it *)
  let deg_on =
    let rec go tries =
      let (_, _, _, shed, _, _, _, _) as r = run_degraded true in
      if shed > 0 then r
      else if tries > 1 then begin
        Printf.printf "degraded: burst never overran the queue, retrying\n";
        go (tries - 1)
      end
      else begin
        Printf.eprintf
          "FAIL: degraded runs at 2x the admission limit shed nothing\n";
        exit 1
      end
    in
    go 3
  in
  let deg_off = run_degraded false in
  let degraded_points = [ deg_on; deg_off ] in
  print_newline ();
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"experiment\": \"serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": %g,\n  \"rsa_bits\": %d,\n  \"requests_per_client\": %d,\n\
       \  \"pipeline_window\": %d,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits requests window);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n  \"shards\": 1,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"tamper_detected_over_wire\": %b,\n\
       \  \"reports_byte_identical\": %b,\n"
       tamper_detected
       (identical_clean && identical_tampered));
  Buffer.add_string buf "  \"sweep\": [\n";
  let points =
    List.map (fun p -> ("n/a", p)) loopback_points
    @ List.map (fun p -> ("event", p)) socket_event_points
    @ List.map (fun p -> ("threaded", p)) socket_threaded_points
  in
  List.iteri
    (fun i (mode, ((name, clients, seconds, rps, p50, p95), opb)) ->
      let base =
        match String.index_opt name '[' with
        | Some j -> String.sub name 0 j
        | None -> name
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"transport\": \"%s\", \"io_mode\": \"%s\", \"clients\": \
            %d, \"shards\": 1, \"seconds\": %.6f, \"requests_per_s\": %.1f, \
            \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"ops_per_batch\": %.2f }%s\n"
           (json_escape base) mode clients seconds rps p50 p95 opb
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"connection_scaling\": {\n\
       \    \"io_mode\": \"event\",\n\
       \    \"active_clients\": %d,\n\
       \    \"points\": [\n"
       scaling_active);
  List.iteri
    (fun i (idle, held, threads, (_, _, seconds, rps, p50, p95)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"idle_conns\": %d, \"held_connections\": %d, \
            \"server_threads\": %d, \"seconds\": %.6f, \"requests_per_s\": \
            %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f }%s\n"
           idle held threads seconds rps p50 p95
           (if i = List.length scaling_points - 1 then "" else ",")))
    scaling_points;
  Buffer.add_string buf "    ]\n  },\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"degraded\": {\n\
       \    \"clients\": %d,\n\
       \    \"max_queue_ops\": %d,\n\
       \    \"points\": [\n"
       deg_clients deg_limit);
  List.iteri
    (fun i (shedding, offered, completed, shed, seconds, rps, p50, p95) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      { \"shedding\": %b, \"offered\": %d, \"completed\": %d, \
            \"shed\": %d, \"seconds\": %.6f, \"completed_per_s\": %.1f, \
            \"p50_ms\": %.3f, \"p95_ms\": %.3f }%s\n"
           shedding offered completed shed seconds rps p50 p95
           (if i = List.length degraded_points - 1 then "" else ",")))
    degraded_points;
  Buffer.add_string buf "    ]\n  }\n}";
  write_json "BENCH_serve.json" (Buffer.contents buf)

(* Pipelined-load gate (the serve-pipeline alias): several clients
   stream overlapping submits through one server — loopback clients
   batching across connections, raw pipelined frames coalescing within
   one — then the byte-identity and tamper-detection bars must still
   hold on the resulting history.  Exit 1 on any violation. *)
let run_serve_pipeline () =
  let cfg = Experiments.config_of_env () in
  Printf.printf "## serve-pipeline — report identity under pipelined load\n";
  let ok = function Ok v -> v | Error e -> failwith ("serve-pipeline: " ^ e) in
  let module Server = Tep_server.Server in
  let module Client = Tep_client.Client in
  let module Message = Tep_wire.Message in
  let env = Scenario.make_env ~seed:(cfg.Experiments.seed ^ "-pipe") () in
  let alice =
    Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
      ~name:"alice" env.Scenario.drbg
  in
  Participant.Directory.register env.Scenario.directory alice;
  let db = Database.create ~name:"serve" in
  ignore (Database.create_table db ~name:"t1" (Schema.all_int [ "a"; "b" ]));
  let engine = Engine.create ~directory:env.Scenario.directory db in
  let server =
    Server.create
      ~drbg:(Tep_crypto.Drbg.create ~seed:(cfg.Experiments.seed ^ "-pipe-srv"))
      ~participants:[ ("alice", alice) ]
      engine
  in
  let clients = 3 and per_client = 20 and window = 5 in
  let errors = ref 0 in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            let c =
              Client.loopback
                ~drbg:(Tep_crypto.Drbg.create ~seed:(Printf.sprintf "pipe-%d" ci))
                server
            in
            match Client.authenticate c alice with
            | Error e ->
                Printf.eprintf "client %d: auth: %s\n" ci e;
                incr errors
            | Ok () ->
                let inflight = Queue.create () in
                let drain () =
                  match Client.collect_submitted c (Queue.pop inflight) with
                  | Ok _ -> ()
                  | Error e ->
                      Printf.eprintf "client %d: collect: %s\n" ci e;
                      incr errors
                in
                for i = 0 to per_client - 1 do
                  (match
                     Client.insert_async c ~table:"t1"
                       [| Value.Int ci; Value.Int i |]
                   with
                  | Ok cid -> Queue.push cid inflight
                  | Error e ->
                      Printf.eprintf "client %d: submit: %s\n" ci e;
                      incr errors);
                  if Queue.length inflight >= window then drain ()
                done;
                while not (Queue.is_empty inflight) do
                  drain ()
                done;
                Client.close c)
          ())
  in
  List.iter Thread.join threads;
  if !errors > 0 then begin
    Printf.eprintf "FAIL: %d request errors under pipelined load\n" !errors;
    exit 1
  end;
  let stats = Server.batch_stats server in
  Printf.printf "submitted %d ops in %d group commits (sign %.1f ms wall / %.1f ms cpu)\n"
    stats.Server.ops stats.Server.batches
    (stats.Server.sign_wall_s *. 1e3)
    (stats.Server.sign_cpu_s *. 1e3);
  if stats.Server.ops <> clients * per_client then begin
    Printf.eprintf "FAIL: expected %d ops through the batcher, saw %d\n"
      (clients * per_client) stats.Server.ops;
    exit 1
  end;
  let local_report () =
    Format.asprintf "%a" Verifier.pp_report
      (ok (Engine.verify_object engine (Engine.root_oid engine)))
  in
  let c = Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:"pipe-gate") server in
  ok (Client.authenticate c alice);
  let report, _ = ok (Client.verify c ()) in
  if not (Message.report_ok report) then begin
    Printf.eprintf "FAIL: pipelined history does not verify\n";
    exit 1
  end;
  if Message.render_report report <> local_report () then begin
    Printf.eprintf "FAIL: wire report differs from in-process verifier\n";
    exit 1
  end;
  let module Forest = Tep_tree.Forest in
  let forest = Engine.forest engine in
  (match
     List.concat_map (Forest.children forest) (Forest.roots forest)
     |> List.concat_map (Forest.children forest)
     |> List.concat_map (Forest.children forest)
   with
  | cell :: _ -> ignore (Forest.update forest cell (Value.Text "TAMPERED"))
  | [] -> failwith "serve-pipeline: no cell to tamper with");
  let tampered, _ = ok (Client.verify c ()) in
  Client.close c;
  if Message.report_ok tampered then begin
    Printf.eprintf "FAIL: tampering not reported over the pipelined wire\n";
    exit 1
  end;
  if Message.render_report tampered <> local_report () then begin
    Printf.eprintf "FAIL: tamper report differs from in-process verifier\n";
    exit 1
  end;
  Printf.printf
    "serve-pipeline: reports byte-identical, tampering detected under \
     pipelined load\n"

(* ------------------------------------------------------------------ *)
(* Sharded write throughput                                            *)
(* ------------------------------------------------------------------ *)

(* Write-throughput sweep over 1/2/4/8-shard deployments: one
   pipelined client per shard, each streaming inserts into a table the
   routing hash places on its shard, so every write is single-shard
   and the points measure exactly what sharding buys — fully
   concurrent per-shard group commits instead of one serialized
   batcher.

   Each point doubles as a determinism gate: one client per shard
   means each shard's commit order is that client's program order, so
   the same per-shard op streams re-executed serially on fresh engines
   must land on a byte-identical Merkle root-of-roots.  Exit 1 on any
   mismatch (the sharded acceptance bar). *)
let run_shard () =
  let cfg = Experiments.config_of_env () in
  Printf.printf "## shard — write throughput scaling across shard counts\n";
  let module Server = Tep_server.Server in
  let module Client = Tep_client.Client in
  let module Merkle = Tep_tree.Merkle in
  let table_for_shard ~shards k =
    let rec go i =
      let name = Printf.sprintf "t%d" i in
      if Shards.shard_of_table ~shards name = k then name else go (i + 1)
    in
    go 0
  in
  let requests =
    if cfg.Experiments.scale <= 0.02 then 25
    else max 50 (int_of_float (500. *. cfg.Experiments.scale))
  in
  let window = 8 in
  let host_cores = Domain.recommended_domain_count () in
  let percentile p lats =
    match lats with
    | [] -> 0.
    | _ ->
        let a = Array.of_list lats in
        Array.sort compare a;
        let n = Array.length a in
        let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
        a.(max 0 (min (n - 1) idx))
  in
  (* fresh engines for a given shard count, sharing one PKI env *)
  let make_engines nshards seed =
    let env = Scenario.make_env ~seed () in
    let alice =
      Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
        ~name:"alice" env.Scenario.drbg
    in
    Participant.Directory.register env.Scenario.directory alice;
    let engines =
      Array.init nshards (fun k ->
          let db = Database.create ~name:"shardbench" in
          ignore
            (Database.create_table db
               ~name:(table_for_shard ~shards:nshards k)
               (Schema.all_int [ "a"; "b" ]));
          Engine.create ~directory:env.Scenario.directory db)
    in
    (engines, alice)
  in
  Printf.printf "host_cores=%d requests_per_client=%d window=%d\n" host_cores
    requests window;
  Printf.printf
    "shards,clients,total_requests,seconds,requests_per_s,p50_ms,p95_ms,\
     speedup_vs_1,root_matches_serial\n";
  let base = ref None in
  let all_match = ref true in
  let points =
    List.map
      (fun nshards ->
        let seed = Printf.sprintf "%s-shard-%d" cfg.Experiments.seed nshards in
        let engines, alice = make_engines nshards seed in
        let coord_file =
          if nshards > 1 then Some (Filename.temp_file "tep_shard_bench" ".wal")
          else None
        in
        let coord = Option.map Wal.open_file coord_file in
        let server =
          Server.create
            ~drbg:(Tep_crypto.Drbg.create ~seed:(seed ^ "-srv"))
            ~participants:[ ("alice", alice) ]
            ~shards:
              (List.tl (Array.to_list engines) |> List.map (fun e -> (e, None)))
            ?coord engines.(0)
        in
        (* one pipelined client per shard, each on its own table *)
        let merge_lock = Mutex.create () in
        let all_lats = ref [] in
        let errors = ref 0 in
        let t0 = Unix.gettimeofday () in
        let threads =
          List.init nshards (fun ci ->
              Thread.create
                (fun () ->
                  let table = table_for_shard ~shards:nshards ci in
                  let c =
                    Client.loopback
                      ~drbg:
                        (Tep_crypto.Drbg.create
                           ~seed:(Printf.sprintf "%s-cli-%d" seed ci))
                      server
                  in
                  match Client.authenticate c alice with
                  | Error e ->
                      Printf.eprintf "shard client %d: auth: %s\n" ci e;
                      Mutex.lock merge_lock;
                      incr errors;
                      Mutex.unlock merge_lock;
                      Client.close c
                  | Ok () ->
                      let lats = ref [] in
                      let inflight = Queue.create () in
                      let drain () =
                        let cid, sent = Queue.pop inflight in
                        match Client.collect_submitted c cid with
                        | Ok _ ->
                            lats := (Unix.gettimeofday () -. sent) :: !lats
                        | Error e ->
                            Printf.eprintf "shard client %d: collect: %s\n" ci
                              e;
                            Mutex.lock merge_lock;
                            incr errors;
                            Mutex.unlock merge_lock
                      in
                      for i = 0 to requests - 1 do
                        (match
                           Client.insert_async c ~table
                             [| Value.Int ci; Value.Int i |]
                         with
                        | Ok cid ->
                            Queue.push (cid, Unix.gettimeofday ()) inflight
                        | Error e ->
                            Printf.eprintf "shard client %d: submit: %s\n" ci e;
                            Mutex.lock merge_lock;
                            incr errors;
                            Mutex.unlock merge_lock);
                        if Queue.length inflight >= window then drain ()
                      done;
                      while not (Queue.is_empty inflight) do
                        drain ()
                      done;
                      Client.close c;
                      Mutex.lock merge_lock;
                      all_lats := List.rev_append !lats !all_lats;
                      Mutex.unlock merge_lock)
                ())
        in
        List.iter Thread.join threads;
        let seconds = Unix.gettimeofday () -. t0 in
        if !errors > 0 then begin
          Printf.eprintf "FAIL: %d request errors at %d shards\n" !errors
            nshards;
          exit 1
        end;
        (* serial re-execution: the same per-shard op streams, replayed
           one shard at a time on fresh engines, must reproduce the
           root-of-roots byte-for-byte *)
        let sharded_root =
          Merkle.root_of_roots
            (Engine.algo engines.(0))
            (Array.to_list (Array.map Engine.root_hash engines))
        in
        let serial_engines, serial_alice = make_engines nshards seed in
        Array.iteri
          (fun k eng ->
            let table = table_for_shard ~shards:nshards k in
            for i = 0 to requests - 1 do
              match
                Engine.insert_row eng serial_alice ~table
                  [| Value.Int k; Value.Int i |]
              with
              | Ok _ -> ()
              | Error e -> failwith ("shard bench: serial replay: " ^ e)
            done)
          serial_engines;
        let serial_root =
          Merkle.root_of_roots
            (Engine.algo serial_engines.(0))
            (Array.to_list (Array.map Engine.root_hash serial_engines))
        in
        let root_matches = sharded_root = serial_root in
        if not root_matches then begin
          all_match := false;
          Printf.eprintf
            "FAIL: %d-shard root-of-roots differs from serial re-execution\n"
            nshards
        end;
        (match coord with Some w -> Wal.close w | None -> ());
        (match coord_file with
        | Some f -> ( try Sys.remove f with Sys_error _ -> ())
        | None -> ());
        if nshards = 1 then base := Some seconds;
        (* same per-client workload at every point, so per-shard wall
           time is comparable and aggregate throughput is the signal *)
        let total = nshards * requests in
        let rps = float_of_int total /. seconds in
        let speedup =
          match !base with
          | Some b when b > 0. ->
              rps /. (float_of_int requests /. b)
          | _ -> 1.
        in
        let p50 = 1000. *. percentile 50. !all_lats in
        let p95 = 1000. *. percentile 95. !all_lats in
        Printf.printf "%d,%d,%d,%.4f,%.0f,%.2f,%.2f,%.2f,%b\n" nshards nshards
          total seconds rps p50 p95 speedup root_matches;
        (nshards, seconds, rps, p50, p95, speedup, root_matches))
      [ 1; 2; 4; 8 ]
  in
  print_newline ();
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"shard\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": %g,\n  \"rsa_bits\": %d,\n  \"host_cores\": %d,\n\
       \  \"requests_per_client\": %d,\n  \"pipeline_window\": %d,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits host_cores requests
       window);
  Buffer.add_string buf
    (Printf.sprintf "  \"all_roots_match_serial\": %b,\n" !all_match);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i (nshards, seconds, rps, p50, p95, speedup, root_matches) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"shards\": %d, \"clients\": %d, \"seconds\": %.6f, \
            \"requests_per_s\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
            \"speedup_vs_1\": %.3f, \"root_matches_serial\": %b }%s\n"
           nshards nshards seconds rps p50 p95 speedup root_matches
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}";
  write_json "BENCH_shard.json" (Buffer.contents buf);
  if not !all_match then exit 1

(* ------------------------------------------------------------------ *)
(* Figure/table harness                                                *)
(* ------------------------------------------------------------------ *)

let cfg = lazy (Experiments.config_of_env ())

let header title = Printf.printf "## %s\n" title

let run_table1 () =
  header "table1 — Table 1(b): synthetic database node counts";
  Printf.printf "tables,expected_nodes,actual_nodes,match\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%d,%b\n" r.Experiments.tables
        r.Experiments.expected_nodes r.Experiments.actual_nodes
        (r.Experiments.expected_nodes = r.Experiments.actual_nodes))
    (Experiments.table1 (Lazy.force cfg));
  print_newline ()

let run_fig6 () =
  header "fig6 — average hashing time vs database size (expect ~linear)";
  Printf.printf "nodes,seconds,us_per_node\n";
  List.iter
    (fun p ->
      Printf.printf "%d,%.4f,%.3f\n" p.Experiments.f6_nodes
        p.Experiments.f6_seconds
        (p.Experiments.f6_seconds *. 1e6 /. float_of_int p.Experiments.f6_nodes))
    (Experiments.fig6 (Lazy.force cfg));
  print_newline ()

let run_fig7 () =
  header
    "fig7 — output-tree hashing, Basic vs Economical (expect Basic ~flat, \
     Economical growing with updates)";
  Printf.printf
    "updated_cells,basic_s,economical_s,basic_nodes,economical_nodes\n";
  List.iter
    (fun p ->
      Printf.printf "%d,%.4f,%.4f,%d,%d\n" p.Experiments.f7_updates
        p.Experiments.f7_basic_s p.Experiments.f7_economical_s
        p.Experiments.f7_basic_nodes p.Experiments.f7_economical_nodes)
    (Experiments.fig7 (Lazy.force cfg));
  print_newline ()

let pp_metrics_row label (m : Engine.metrics) =
  Printf.printf "\"%s\",%.4f,%.4f,%.4f,%.4f,%d,%d\n" label m.Engine.hash_s
    m.Engine.sign_s m.Engine.store_s
    (m.Engine.hash_s +. m.Engine.sign_s +. m.Engine.store_s)
    m.Engine.records_emitted m.Engine.checksum_bytes

let run_fig8 () =
  header
    "fig8 — time overhead by operation type (expect deletes < inserts ~ \
     updates)";
  Printf.printf "operation,hash_s,sign_s,store_s,total_s,records,bytes\n";
  List.iter
    (fun r -> pp_metrics_row r.Experiments.b_label r.Experiments.b_metrics)
    (Experiments.fig8_9 (Lazy.force cfg));
  print_newline ()

let run_fig9 () =
  header
    "fig9 — space overhead by operation type (expect inserts/updates >> \
     deletes)";
  Printf.printf "operation,records,checksum_bytes\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%d\n" r.Experiments.b_label
        r.Experiments.b_metrics.Engine.records_emitted
        r.Experiments.b_metrics.Engine.checksum_bytes)
    (Experiments.fig8_9 (Lazy.force cfg));
  print_newline ()

let run_fig10 () =
  header
    "fig10 — time overhead vs %deletes in mixed operations (expect \
     decreasing)";
  Printf.printf
    "deletes_pct,inserts_pct,updates_pct,hash_s,sign_s,store_s,total_s,records\n";
  List.iter
    (fun r ->
      let m = r.Experiments.c_metrics in
      Printf.printf "%.1f,%.1f,%.1f,%.4f,%.4f,%.4f,%.4f,%d\n"
        r.Experiments.c_deletes_pct r.Experiments.c_inserts_pct
        r.Experiments.c_updates_pct m.Engine.hash_s m.Engine.sign_s
        m.Engine.store_s
        (m.Engine.hash_s +. m.Engine.sign_s +. m.Engine.store_s)
        m.Engine.records_emitted)
    (Experiments.fig10_11 (Lazy.force cfg));
  print_newline ()

let run_fig11 () =
  header "fig11 — space overhead vs %deletes (expect decreasing)";
  Printf.printf "deletes_pct,records,checksum_bytes\n";
  List.iter
    (fun r ->
      Printf.printf "%.1f,%d,%d\n" r.Experiments.c_deletes_pct
        r.Experiments.c_metrics.Engine.records_emitted
        r.Experiments.c_metrics.Engine.checksum_bytes)
    (Experiments.fig10_11 (Lazy.force cfg));
  print_newline ()

let run_bigdb () =
  header
    "bigdb — streaming hash of a large 2-column table (paper: 18.9M rows, \
     0.02156 ms/node)";
  let r = Experiments.bigdb (Lazy.force cfg) in
  Printf.printf "rows,nodes,seconds,ms_per_node\n";
  Printf.printf "%d,%d,%.2f,%.5f\n\n" r.Experiments.big_rows
    r.Experiments.big_nodes r.Experiments.big_seconds
    r.Experiments.big_ms_per_node

let run_ablation_chaining () =
  header
    "ablation-chaining — §3.2 local (per-object) vs global checksum chains";
  let r = Experiments.ablation_chaining (Lazy.force cfg) in
  Printf.printf "metric,local,global\n";
  Printf.printf "critical_path_dependent_signatures,%d,%d\n"
    r.Experiments.local_critical_path r.Experiments.global_critical_path;
  Printf.printf "wall_s_for_%d_ops_on_%d_cores,%.3f,%.3f\n" r.Experiments.ch_ops
    r.Experiments.ch_cores r.Experiments.local_wall_s
    r.Experiments.global_wall_s;
  Printf.printf "verify_one_object_s,%.4f,%.4f\n" r.Experiments.local_verify_s
    r.Experiments.global_verify_s;
  Printf.printf "objects_failing_after_1_corruption_of_%d,%d,%d\n\n"
    r.Experiments.ch_objects r.Experiments.local_failed_after_corruption
    r.Experiments.global_failed_after_corruption

let run_ablation_baseline () =
  header
    "ablation-baseline — plain vs Hasan-style linear vs this paper's engine";
  Printf.printf "scheme,ops,wall_s,space_bytes,fine_grained\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%.3f,%d,%b\n" r.Experiments.bl_scheme
        r.Experiments.bl_ops r.Experiments.bl_wall_s
        r.Experiments.bl_space_bytes r.Experiments.bl_fine_grained)
    (Experiments.ablation_baseline (Lazy.force cfg));
  print_newline ()

let run_ablation_signing () =
  header
    "ablation-signing — RSA checksums (non-repudiation, the paper) vs \
     keyed HMAC tags (single trust domain)";
  Printf.printf "scheme,ops,sign_wall_s,verify_wall_s,checksum_bytes,non_repudiation\n";
  List.iter
    (fun r ->
      Printf.printf "\"%s\",%d,%.4f,%.4f,%d,%b\n" r.Experiments.sg_scheme
        r.Experiments.sg_ops r.Experiments.sg_sign_wall_s
        r.Experiments.sg_verify_wall_s r.Experiments.sg_checksum_bytes
        r.Experiments.sg_non_repudiation)
    (Experiments.ablation_signing (Lazy.force cfg));
  print_newline ()

let run_ablation_audit () =
  header
    "ablation-audit — full re-verification vs checkpointed incremental \
     audit (extension; expect full cost growing, incremental ~flat)";
  Printf.printf "round,total_records,full_s,full_records,incr_s,incr_records\n";
  List.iter
    (fun r ->
      Printf.printf "%d,%d,%.4f,%d,%.4f,%d\n" r.Experiments.au_round
        r.Experiments.au_total_records r.Experiments.au_full_s
        r.Experiments.au_full_records r.Experiments.au_incr_s
        r.Experiments.au_incr_records)
    (Experiments.ablation_audit (Lazy.force cfg));
  print_newline ()

(* --------------------------------------------------------------- *)
(* Annotated-query overhead: the lineage engine's semiring evaluator
   against the plain evaluator, over the same engine-backed tables,
   partitioned across 1/2/4 shards.  Asserts (exit 1) that the
   annotated path returns exactly the plain rows and that its best-of
   latency stays within the 2x overhead budget; also reports lineage
   why() latency and the pruning counter.                            *)
(* --------------------------------------------------------------- *)

let run_prov () =
  let cfg = Experiments.config_of_env () in
  header "prov — annotated query overhead vs plain evaluation";
  let module Annotate = Tep_prov.Annotate in
  let module Polynomial = Tep_prov.Polynomial in
  let module Lineage = Tep_prov.Lineage in
  let rows_total =
    if cfg.Experiments.scale <= 0.02 then 200
    else max 400 (int_of_float (2000. *. cfg.Experiments.scale))
  in
  let reps = 200 and trials = 5 in
  (* best-of totals: immune to one-off GC or scheduler hiccups *)
  let time_best f =
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int reps
  in
  Printf.printf "rows_total=%d reps=%d trials=%d\n" rows_total reps trials;
  Printf.printf
    "shards,plain_us,annotated_us,overhead,rows_matched,lineage_why_us,\
     pruned_scans\n";
  let all_ok = ref true in
  let worst = ref 0. in
  let points =
    List.map
      (fun nshards ->
        let seed =
          Printf.sprintf "%s-prov-%d" cfg.Experiments.seed nshards
        in
        let env = Scenario.make_env ~seed () in
        let alice =
          Participant.create ~bits:cfg.Experiments.rsa_bits
            ~ca:env.Scenario.ca ~name:"alice" env.Scenario.drbg
        in
        Participant.Directory.register env.Scenario.directory alice;
        let tname k = Printf.sprintf "t%d" k in
        let engines =
          Array.init nshards (fun k ->
              let db = Database.create ~name:"provbench" in
              ignore
                (Database.create_table db ~name:(tname k)
                   (Schema.all_int [ "a"; "b" ]));
              Engine.create ~directory:env.Scenario.directory db)
        in
        for i = 0 to rows_total - 1 do
          let k = i mod nshards in
          match
            Engine.insert_row engines.(k) alice ~table:(tname k)
              [| Value.Int i; Value.Int (i * 2) |]
          with
          | Ok _ -> ()
          | Error e -> failwith ("prov bench: insert: " ^ e)
        done;
        let pred = Query.Cmp ("a", Query.Gt, Value.Int (rows_total / 2)) in
        let tables =
          Array.to_list
            (Array.mapi
               (fun k e ->
                 match
                   Database.get_table (Engine.backend e) (tname k)
                 with
                 | Some t -> (e, tname k, t)
                 | None -> failwith "prov bench: table missing")
               engines)
        in
        let plain () =
          List.concat_map
            (fun (_, _, tbl) ->
              match Query.select tbl pred with
              | Ok r -> r
              | Error e -> failwith e)
            tables
        in
        let annotated () =
          List.concat_map
            (fun (e, name, tbl) ->
              let var r =
                Polynomial.var (Annotate.row_var (Engine.mapping e) name r)
              in
              match Annotate.select ~var tbl pred with
              | Ok r -> r
              | Error e -> failwith e)
            tables
        in
        let prows = plain () and arows = annotated () in
        let matched = List.length prows in
        if
          List.map (fun (r : Table.row) -> r.Table.cells) prows
          <> List.map (fun ((r : Table.row), _) -> r.Table.cells) arows
        then begin
          Printf.eprintf
            "FAIL: annotated select disagrees with plain select at %d \
             shard(s)\n"
            nshards;
          all_ok := false
        end;
        let plain_s = time_best (fun () -> ignore (plain ())) in
        let annot_s = time_best (fun () -> ignore (annotated ())) in
        let overhead = annot_s /. plain_s in
        if overhead > !worst then worst := overhead;
        (* lineage why() over a fresh aggregate on shard 0 — repeated
           queries hit the shared memoised index *)
        let e0 = engines.(0) in
        let inputs =
          List.filter_map
            (Tep_tree.Tree_view.row_oid (Engine.mapping e0) (tname 0))
            [ 0; 1; 2 ]
        in
        let agg =
          match
            Engine.aggregate_objects e0 alice ~value:(Value.Text "agg")
              inputs
          with
          | Ok o -> o
          | Error e -> failwith ("prov bench: aggregate: " ^ e)
        in
        let idx = Prov_index.of_store (Engine.provstore e0) in
        let why_s = time_best (fun () -> ignore (Lineage.why idx agg)) in
        (* contradiction pruning skips one scan per shard *)
        Annotate.reset_pruned_scans ();
        List.iter
          (fun (_, _, tbl) ->
            ignore
              (Annotate.select tbl (Query.And (pred, Query.IsNull "a"))))
          tables;
        let pruned = Annotate.pruned_scans () in
        if pruned <> nshards then begin
          Printf.eprintf
            "FAIL: expected %d pruned scans, counted %d\n" nshards pruned;
          all_ok := false
        end;
        Printf.printf "%d,%.2f,%.2f,%.3f,%d,%.2f,%d\n" nshards
          (1e6 *. plain_s) (1e6 *. annot_s) overhead matched (1e6 *. why_s)
          pruned;
        (nshards, plain_s, annot_s, overhead, matched, why_s, pruned))
      [ 1; 2; 4 ]
  in
  print_newline ();
  let bound = 2.0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"prov\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": %g,\n  \"rsa_bits\": %d,\n  \"rows_total\": %d,\n\
       \  \"reps\": %d,\n  \"trials\": %d,\n  \"overhead_bound\": %.1f,\n\
       \  \"max_overhead\": %.3f,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits rows_total reps trials
       bound !worst);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i (nshards, plain_s, annot_s, overhead, matched, why_s, pruned) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"shards\": %d, \"plain_us\": %.3f, \"annotated_us\": \
            %.3f, \"overhead\": %.3f, \"rows_matched\": %d, \
            \"lineage_why_us\": %.3f, \"pruned_scans\": %d }%s\n"
           nshards (1e6 *. plain_s) (1e6 *. annot_s) overhead matched
           (1e6 *. why_s) pruned
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}";
  write_json "BENCH_prov.json" (Buffer.contents buf);
  if not !all_ok then exit 1;
  if !worst > bound then begin
    Printf.eprintf "FAIL: annotated overhead %.2fx exceeds the %.1fx budget\n"
      !worst bound;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* proof: O(log n) remote verification vs full remote verify           *)
(* ------------------------------------------------------------------ *)

(* The read-side dual of §4.3 Economical hashing: instead of the
   server re-checking every record and shipping a report (O(database)
   CPU and bytes per client), the client fetches an O(depth × fanout)
   membership proof plus the one relevant checksum chain and rechecks
   the whole hash chain locally against the root it already trusts.

   Records are laid out in fixed-capacity tables (100 rows each — the
   table is the shard-routing unit, so bounded tables are also what
   the sharded write path wants).  With bounded per-node fanout the
   proof grows with tree depth and table count, not record count:
   the gate asserts ≤2x proof bytes from the small to the large
   workload (10x the records) and ≥10x latency advantage over a full
   remote verify at the large size. *)
let run_proof () =
  let module Server = Tep_server.Server in
  let module Client = Tep_client.Client in
  let cfg = Experiments.config_of_env () in
  header "proof — membership-proof RPCs vs full remote verify";
  let small, large =
    if cfg.Experiments.scale <= 0.02 then (100, 1000) else (1000, 10_000)
  in
  let rows_per_table = 100 in
  let sample = 32 in
  let trials = 3 in
  let time_best reps f =
    let best = ref infinity in
    for _ = 1 to trials do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt
    done;
    !best /. float_of_int reps
  in
  Printf.printf
    "sizes=%d/%d rows_per_table=%d sample=%d trials=%d (scale=%.2f rsa=%d)\n"
    small large rows_per_table sample trials cfg.Experiments.scale
    cfg.Experiments.rsa_bits;
  Printf.printf
    "records,shards,proof_bytes,prove_verify_us,full_verify_us,speedup\n";
  let all_ok = ref true in
  let measure nrecords nshards =
    let seed =
      Printf.sprintf "%s-proof-%d-%d" cfg.Experiments.seed nrecords nshards
    in
    let env = Scenario.make_env ~seed () in
    let alice =
      Participant.create ~bits:cfg.Experiments.rsa_bits ~ca:env.Scenario.ca
        ~name:"alice" env.Scenario.drbg
    in
    Participant.Directory.register env.Scenario.directory alice;
    let directory = env.Scenario.directory in
    let ntables = (nrecords + rows_per_table - 1) / rows_per_table in
    let table_name g = Printf.sprintf "t%d" g in
    (* global table g lives on the shard its name routes to *)
    let shard_of g = Shards.shard_of_table ~shards:nshards (table_name g) in
    let engines =
      Array.init nshards (fun k ->
          let db = Database.create ~name:"proofbench" in
          for g = 0 to ntables - 1 do
            if shard_of g = k then
              ignore
                (Database.create_table db ~name:(table_name g)
                   (Schema.all_int [ "a"; "b" ]))
          done;
          Engine.create ~directory db)
    in
    (* populate engines directly: the write path is not under test *)
    let placed = Array.make nrecords ("", 0) in
    for i = 0 to nrecords - 1 do
      let g = i / rows_per_table in
      let eng = engines.(shard_of g) in
      match
        Engine.insert_row eng alice ~table:(table_name g)
          [| Value.Int i; Value.Int (i * 2) |]
      with
      | Ok row -> placed.(i) <- (table_name g, row)
      | Error e -> failwith ("proof bench: insert: " ^ e)
    done;
    let coord_file =
      if nshards > 1 then Some (Filename.temp_file "tep_proof_bench" ".wal")
      else None
    in
    let coord = Option.map Wal.open_file coord_file in
    let server =
      Server.create
        ~drbg:(Tep_crypto.Drbg.create ~seed:(seed ^ "-srv"))
        ~participants:[ ("alice", alice) ]
        ~shards:
          (List.tl (Array.to_list engines) |> List.map (fun e -> (e, None)))
        ?coord engines.(0)
    in
    let c =
      Client.loopback ~drbg:(Tep_crypto.Drbg.create ~seed:(seed ^ "-cli")) server
    in
    (match Client.authenticate c alice with
    | Ok () -> ()
    | Error e -> failwith ("proof bench: auth: " ^ e));
    let trusted_root =
      match Client.root_hash c with
      | Ok r -> r
      | Error e -> failwith ("proof bench: root: " ^ e)
    in
    let algo = Engine.algo engines.(0) in
    (* sampled cells, spread across the whole record range *)
    let picks =
      Array.init sample (fun j -> placed.(j * nrecords / sample))
    in
    let prove_one (table, row) =
      match Client.prove c ~table ~row ~col:0 () with
      | Error e -> failwith ("proof bench: prove: " ^ e)
      | Ok p -> (
          match Client.check_proofs ~algo ~directory ~trusted_root p with
          | Error e -> failwith ("proof bench: check: " ^ e)
          | Ok r ->
              if not (Verifier.ok r) then
                failwith "proof bench: proof report not clean";
              p)
    in
    (* bytes actually shipped per answer: encoded proofs + shard roots *)
    let answer_bytes (p : Client.proofs) =
      List.fold_left
        (fun n (it : Client.proof_item) -> n + String.length it.Client.pf_encoded)
        0 p.Client.pf_items
      + List.fold_left
          (fun n r -> n + String.length r)
          0 p.Client.pf_shard_roots
    in
    let total_bytes =
      Array.fold_left (fun n pick -> n + answer_bytes (prove_one pick)) 0 picks
    in
    let proof_bytes = total_bytes / sample in
    (* latency: full prove+recheck round trip, cycling over the sample
       (mixes LRU hits and misses, like a population of hot readers) *)
    let i = ref 0 in
    let prove_s =
      time_best sample (fun () ->
          ignore (prove_one picks.(!i mod sample));
          incr i)
    in
    let full_s =
      time_best 1 (fun () ->
          match Client.verify c () with
          | Ok (report, _) ->
              if not (Tep_wire.Message.report_ok report) then
                failwith "proof bench: full verify not clean"
          | Error e -> failwith ("proof bench: verify: " ^ e))
    in
    (* tamper sanity: a flipped sibling hash must break the chain *)
    (match Client.prove c ~table:(fst picks.(0)) ~row:(snd picks.(0)) ~col:0 ()
     with
    | Error e -> failwith ("proof bench: prove: " ^ e)
    | Ok p -> (
        let it = List.hd p.Client.pf_items in
        let pf = it.Client.pf_proof in
        let bump s = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) s in
        let step = List.hd pf.Tep_tree.Proof.path in
        let step' =
          {
            step with
            Tep_tree.Proof.children =
              List.map (fun (o, h) -> (o, bump h)) step.Tep_tree.Proof.children;
          }
        in
        let forged =
          {
            p with
            Client.pf_items =
              [
                {
                  it with
                  Client.pf_proof =
                    {
                      pf with
                      Tep_tree.Proof.path =
                        step' :: List.tl pf.Tep_tree.Proof.path;
                    };
                };
              ];
          }
        in
        match Client.check_proofs ~algo ~directory ~trusted_root forged with
        | Error _ -> ()
        | Ok _ ->
            Printf.eprintf
              "FAIL: forged sibling hash not detected (%d records, %d shards)\n"
              nrecords nshards;
            all_ok := false));
    Client.close c;
    Option.iter Wal.close coord;
    Option.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) coord_file;
    let speedup = full_s /. prove_s in
    Printf.printf "%d,%d,%d,%.1f,%.1f,%.1fx\n" nrecords nshards proof_bytes
      (1e6 *. prove_s) (1e6 *. full_s) speedup;
    (nrecords, nshards, proof_bytes, prove_s, full_s, speedup)
  in
  let points =
    List.concat_map
      (fun nshards ->
        let p_small = measure small nshards in
        let p_large = measure large nshards in
        [ p_small; p_large ])
      [ 1; 2; 4 ]
  in
  print_newline ();
  let bytes_bound = 2.0 and speedup_bound = 10.0 in
  let max_ratio = ref 0. and min_speedup = ref infinity in
  List.iter
    (fun nshards ->
      let find n =
        List.find (fun (r, s, _, _, _, _) -> r = n && s = nshards) points
      in
      let _, _, b_small, _, _, _ = find small in
      let _, _, b_large, _, _, speedup = find large in
      let ratio = float_of_int b_large /. float_of_int b_small in
      if ratio > !max_ratio then max_ratio := ratio;
      if speedup < !min_speedup then min_speedup := speedup;
      if ratio > bytes_bound then begin
        Printf.eprintf
          "FAIL: proof bytes grew %.2fx (%d -> %d records, %d shards), \
           budget %.1fx\n"
          ratio small large nshards bytes_bound;
        all_ok := false
      end;
      if speedup < speedup_bound then begin
        Printf.eprintf
          "FAIL: prove+verify only %.1fx faster than full verify at %d \
           records, %d shards (need %.0fx)\n"
          speedup large nshards speedup_bound;
        all_ok := false
      end)
    [ 1; 2; 4 ];
  Printf.printf
    "gate: max proof-bytes growth %.2fx (budget %.1fx), min speedup %.1fx \
     (budget %.0fx)\n"
    !max_ratio bytes_bound !min_speedup speedup_bound;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"proof\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"scale\": %g,\n  \"rsa_bits\": %d,\n  \"rows_per_table\": %d,\n\
       \  \"sample\": %d,\n  \"bytes_ratio_bound\": %.1f,\n\
       \  \"speedup_bound\": %.1f,\n  \"max_bytes_ratio\": %.3f,\n\
       \  \"min_speedup_at_%d\": %.2f,\n"
       cfg.Experiments.scale cfg.Experiments.rsa_bits rows_per_table sample
       bytes_bound speedup_bound !max_ratio large !min_speedup);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i (nrecords, nshards, bytes, prove_s, full_s, speedup) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"records\": %d, \"shards\": %d, \"proof_bytes\": %d, \
            \"prove_verify_us\": %.1f, \"full_verify_us\": %.1f, \
            \"speedup\": %.2f }%s\n"
           nrecords nshards bytes (1e6 *. prove_s) (1e6 *. full_s) speedup
           (if i = List.length points - 1 then "" else ",")))
    points;
  Buffer.add_string buf "  ]\n}";
  write_json "BENCH_proof.json" (Buffer.contents buf);
  if not !all_ok then exit 1

let all =
  [
    ("table1", run_table1);
    ("fig6", run_fig6);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("fig11", run_fig11);
    ("bigdb", run_bigdb);
    ("ablation-chaining", run_ablation_chaining);
    ("ablation-baseline", run_ablation_baseline);
    ("ablation-signing", run_ablation_signing);
    ("ablation-audit", run_ablation_audit);
    ("parallel", run_parallel);
    ("serve", run_serve);
    ("serve-pipeline", run_serve_pipeline);
    ("shard", run_shard);
    ("prov", run_prov);
    ("proof", run_proof);
    ("micro", run_micro);
  ]

let () =
  let cfgv = Lazy.force cfg in
  Printf.printf
    "# tamper-evident provenance benchmarks (scale=%.2f, rsa=%d bits, runs=%d)\n"
    cfgv.Experiments.scale cfgv.Experiments.rsa_bits cfgv.Experiments.runs;
  Printf.printf "# set TEP_SCALE=full for paper-size workloads\n\n";
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst all
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" name
            (String.concat ", " (List.map fst all));
          exit 1)
    requested
